// Homophily-measure tests on closed-form graphs (paper Sec. II-B metrics).

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/metrics/homophily.h"

namespace adpa {
namespace {

// Perfectly homophilous: two disjoint directed triangles with same labels.
Digraph TwoTriangles() {
  return Digraph::CreateOrDie(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
}
const std::vector<int64_t> kTriangleLabels = {0, 0, 0, 1, 1, 1};

// Perfectly heterophilous: directed bipartite 2x2.
Digraph Bipartite() {
  return Digraph::CreateOrDie(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
}
const std::vector<int64_t> kBipartiteLabels = {0, 0, 1, 1};

TEST(HomophilyTest, EdgeHomophilyExtremes) {
  EXPECT_DOUBLE_EQ(EdgeHomophily(TwoTriangles(), kTriangleLabels), 1.0);
  EXPECT_DOUBLE_EQ(EdgeHomophily(Bipartite(), kBipartiteLabels), 0.0);
}

TEST(HomophilyTest, NodeHomophilyExtremes) {
  EXPECT_DOUBLE_EQ(NodeHomophily(TwoTriangles(), kTriangleLabels), 1.0);
  EXPECT_DOUBLE_EQ(NodeHomophily(Bipartite(), kBipartiteLabels), 0.0);
}

TEST(HomophilyTest, NodeHomophilySkipsIsolatedNodes) {
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}});
  // Node 2 has no out-neighbors; only node 0 counts.
  EXPECT_DOUBLE_EQ(NodeHomophily(g, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(NodeHomophily(g, {0, 1, 1}), 0.0);
}

TEST(HomophilyTest, MixedGraphEdgeHomophily) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  // Labels 0,0,1,1: edges 0->1 (same), 1->2 (diff), 2->3 (same), 3->0 (diff).
  EXPECT_DOUBLE_EQ(EdgeHomophily(g, {0, 0, 1, 1}), 0.5);
}

TEST(HomophilyTest, ClassHomophilyPenalizesChanceLevel) {
  // Perfect homophily: h_c = 1, n_c/n = 0.5 -> (1/(C-1)) * 2 * 0.5 = 1.
  EXPECT_NEAR(ClassHomophily(TwoTriangles(), kTriangleLabels, 2), 1.0, 1e-9);
  // Perfect heterophily: h_c = 0 for the only class with edges -> 0.
  EXPECT_NEAR(ClassHomophily(Bipartite(), kBipartiteLabels, 2), 0.0, 1e-9);
}

TEST(HomophilyTest, AdjustedHomophilyExtremes) {
  EXPECT_NEAR(AdjustedHomophily(TwoTriangles(), kTriangleLabels, 2), 1.0,
              1e-9);
  // Bipartite with equal degree mass: expected Σp² = 0.5, H_edge = 0
  // -> (0 - 0.5) / 0.5 = -1 (actively heterophilous).
  EXPECT_NEAR(AdjustedHomophily(Bipartite(), kBipartiteLabels, 2), -1.0,
              1e-9);
}

TEST(HomophilyTest, AdjustedHomophilyNearZeroOnRandomLabels) {
  DsbmConfig config;
  config.num_nodes = 600;
  config.num_classes = 3;
  config.avg_out_degree = 8.0;
  config.class_transition = HomophilousTransition(3, 1.0 / 3.0);  // uniform
  config.edge_noise = 0.0;
  config.feature_dim = 4;
  config.seed = 42;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  EXPECT_NEAR(AdjustedHomophily(ds.graph, ds.labels, 3), 0.0, 0.05);
}

TEST(HomophilyTest, LabelInformativenessExtremes) {
  // Deterministic coupling (same class): LI = 1.
  EXPECT_NEAR(LabelInformativeness(TwoTriangles(), kTriangleLabels, 2), 1.0,
              1e-9);
  // Deterministic cross coupling (bipartite): also LI = 1 — informative
  // despite zero homophily. This is the metric's whole point.
  EXPECT_NEAR(LabelInformativeness(Bipartite(), kBipartiteLabels, 2), 1.0,
              1e-9);
}

TEST(HomophilyTest, LabelInformativenessNearZeroOnIndependentLabels) {
  DsbmConfig config;
  config.num_nodes = 800;
  config.num_classes = 4;
  config.avg_out_degree = 10.0;
  config.class_transition = HomophilousTransition(4, 0.25);  // uniform
  config.edge_noise = 0.0;
  config.feature_dim = 4;
  config.seed = 7;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  EXPECT_NEAR(LabelInformativeness(ds.graph, ds.labels, 4), 0.0, 0.02);
}

TEST(HomophilyTest, DirectedVsUndirectedDifference) {
  // A cyclic class-progression graph: undirected transformation keeps edge
  // homophily identical (every edge stays cross-class).
  DsbmConfig config;
  config.num_nodes = 500;
  config.num_classes = 5;
  config.avg_out_degree = 6.0;
  config.class_transition = CyclicTransition(5, 0.9, 0.0);
  config.edge_noise = 0.0;
  config.feature_dim = 4;
  config.seed = 3;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  const double directed = EdgeHomophily(ds.graph, ds.labels);
  const double undirected =
      EdgeHomophily(ds.graph.ToUndirected(), ds.labels);
  EXPECT_LT(directed, 0.1);
  EXPECT_NEAR(directed, undirected, 0.02);
}

TEST(HomophilyTest, ReportBundlesAllFiveMeasures) {
  const HomophilyReport report =
      ComputeHomophilyReport(TwoTriangles(), kTriangleLabels, 2);
  EXPECT_DOUBLE_EQ(report.node, 1.0);
  EXPECT_DOUBLE_EQ(report.edge, 1.0);
  EXPECT_NEAR(report.cls, 1.0, 1e-9);
  EXPECT_NEAR(report.adjusted, 1.0, 1e-9);
  EXPECT_NEAR(report.li, 1.0, 1e-9);
}

TEST(HomophilyTest, EmptyEdgeSetIsZero) {
  Digraph g = Digraph::CreateOrDie(4, {});
  EXPECT_DOUBLE_EQ(EdgeHomophily(g, {0, 1, 0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(LabelInformativeness(g, {0, 1, 0, 1}, 2), 0.0);
}

// Homophilous transitions must produce monotonically increasing edge
// homophily in the in-class probability.
class HomophilySweep : public ::testing::TestWithParam<double> {};

TEST_P(HomophilySweep, EdgeHomophilyTracksInClassProbability) {
  const double p = GetParam();
  DsbmConfig config;
  config.num_nodes = 800;
  config.num_classes = 4;
  config.avg_out_degree = 8.0;
  config.class_transition = HomophilousTransition(4, p);
  config.edge_noise = 0.0;
  config.feature_dim = 4;
  config.seed = 11;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  EXPECT_NEAR(EdgeHomophily(ds.graph, ds.labels), p, 0.04);
}

INSTANTIATE_TEST_SUITE_P(InClassProbabilities, HomophilySweep,
                         ::testing::Values(0.25, 0.4, 0.6, 0.8, 0.95));

}  // namespace
}  // namespace adpa
