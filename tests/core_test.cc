// Tests for src/core: Status/Result, Rng, string utilities, and flags.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/flags.h"
#include "src/core/random.h"
#include "src/core/status.h"
#include "src/core/strings.h"

namespace adpa {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) differing += a.NextU64() != b.NextU64();
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 values hit in 1000 draws
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(99);
  const int kDraws = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.SampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = values;
  rng.Shuffle(&values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, FormatMeanStd) {
  EXPECT_EQ(FormatMeanStd(84.52, 0.64, 2), "84.52±0.64");
  EXPECT_EQ(FormatMeanStd(84.5, 0.6), "84.5±0.6");
}

TEST(StringsTest, SplitAndJoinRoundTrip) {
  const std::string text = "a,b,,c";
  const auto parts = SplitString(text, ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, ","), text);
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcd", 2), "abcd");  // never truncates
}

TEST(StringsTest, PaddingCountsUtf8CodePoints) {
  // "1.0±0.1" has 7 display columns but 8 bytes.
  EXPECT_EQ(PadLeft("1.0±0.1", 8).size(), 9u);  // one space + 8 bytes
}

TEST(StringsTest, TablePrinterAlignsColumns) {
  TablePrinter table({"Model", "Acc"});
  table.AddRow({"GCN", "84.2"});
  table.AddRow({"ADPA", "86.0"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| Model | "), std::string::npos);
  EXPECT_NE(rendered.find("| GCN   |"), std::string::npos);
  EXPECT_NE(rendered.find("| ADPA  |"), std::string::npos);
}

// ----------------------------------------------------------------- Flags --

TEST(FlagsTest, ParsesKeyEqualsValue) {
  const char* argv[] = {"prog", "--epochs=50", "--lr=0.01", "--name=test"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("epochs", 0), 50);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.0), 0.01);
  EXPECT_EQ(flags.GetString("name", ""), "test");
}

TEST(FlagsTest, ParsesSpaceSeparatedValue) {
  const char* argv[] = {"prog", "--epochs", "50"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("epochs", 0), 50);
}

TEST(FlagsTest, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenMissing) {
  Flags flags;
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
  EXPECT_EQ(flags.GetString("absent", "x"), "x");
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_FALSE(flags.Has("absent"));
}

TEST(FlagsTest, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  Flags flags;
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, MalformedNumberFallsBackToDefault) {
  const char* argv[] = {"prog", "--epochs=abc"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("epochs", 12), 12);
}

}  // namespace
}  // namespace adpa
