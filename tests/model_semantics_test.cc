// Semantic (operator-level) correctness tests for individual models —
// beyond the generic "trains above chance" suite in models_test.cc, these
// pin down the defining equation of each method.

#include <cmath>
#include <cstring>
#include <numbers>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/graph/patterns.h"
#include "src/models/adpa.h"
#include "src/models/factory.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset Tiny(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 80;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

TEST(SgcSemanticsTest, PropagationIsPrecomputedPower) {
  // SGC's logits must be a *linear* function of ÃᴷX: training with zero
  // weights yields exactly zero logits plus bias.
  Dataset ds = Tiny();
  Rng rng(1);
  ModelConfig config;
  config.propagation_steps = 2;
  ModelPtr sgc = std::move(CreateModel("SGC", ds, config, &rng)).value();
  // Zero out all parameters: output must be all-zero (affine with b = 0).
  for (auto& p : sgc->Parameters()) p.mutable_value()->Fill(0.0f);
  ag::Variable out = sgc->Forward(false, &rng);
  EXPECT_NEAR(out.value().FrobeniusNorm(), 0.0f, 1e-6f);
}

TEST(SgcSemanticsTest, EvalIndependentOfDropoutFlag) {
  // SGC has no dropout path: train/eval forwards coincide.
  Dataset ds = Tiny();
  Rng rng(2);
  ModelPtr sgc = std::move(CreateModel("SGC", ds, ModelConfig(), &rng)).value();
  Matrix train_out = sgc->Forward(true, &rng).value();
  Matrix eval_out = sgc->Forward(false, &rng).value();
  EXPECT_TRUE(AllClose(train_out, eval_out));
}

TEST(GcnSemanticsTest, UsesSymmetricNormalizedOperator) {
  // On a symmetric graph, permuting two structurally identical nodes
  // (same neighborhoods, same features) must give identical logits.
  Dataset ds;
  ds.graph = Digraph::CreateOrDie(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}});
  ds.features = Matrix::FromRows(
      {{1, 0}, {0, 1}, {1, 0}, {0, 1}});  // node 0 ≅ node 2, 1 ≅ 3
  ds.labels = {0, 1, 0, 1};
  ds.num_classes = 2;
  ds.train_idx = {0, 1};
  ds.val_idx = {2};
  ds.test_idx = {3};
  Rng rng(3);
  ModelConfig config;
  config.hidden = 8;
  config.dropout = 0.0f;
  ModelPtr gcn = std::move(CreateModel("GCN", ds, config, &rng)).value();
  Matrix out = gcn->Forward(false, &rng).value();
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(out.At(0, c), out.At(2, c), 1e-5f);
    EXPECT_NEAR(out.At(1, c), out.At(3, c), 1e-5f);
  }
}

TEST(GprSemanticsTest, GammaInitializationIsPpr) {
  // γ_k = α(1-α)^k at construction (APPNP-like start).
  Dataset ds = Tiny();
  Rng rng(4);
  ModelConfig config;
  config.alpha = 0.2f;
  config.propagation_steps = 3;
  ModelPtr gpr = std::move(CreateModel("GPRGNN", ds, config, &rng)).value();
  const auto params = gpr->Parameters();
  // The last K+1 parameters are the gammas.
  const size_t first_gamma = params.size() - 4;
  for (int k = 0; k <= 3; ++k) {
    EXPECT_NEAR(params[first_gamma + k].value().At(0, 0),
                0.2f * std::pow(0.8f, static_cast<float>(k)), 1e-6f);
  }
}

TEST(BernNetSemanticsTest, BasisIsPartitionOfUnity) {
  // Σ_k C(K,k)/2^K (2I-L)^{K-k} L^k = ((2I-L) + L)^K / 2^K = I.
  // With all θ_k equal, BernNet's filter must therefore act as a scaled
  // identity on the encoded signal. We verify the operator identity
  // directly on the constructed L and 2I-L.
  Dataset ds = Tiny();
  const SparseMatrix conv = NormalizeConvolution(
      AddSelfLoops(ds.graph.AdjacencyMatrix()), 0.5);
  const SparseMatrix identity = SparseMatrix::Identity(ds.num_nodes());
  SparseMatrix neg = conv;
  neg.ScaleInPlace(-1.0f);
  const SparseMatrix laplacian = identity.AddSparse(neg);
  const SparseMatrix two_i_minus_l = identity.AddSparse(conv);
  Rng rng(5);
  Matrix x = Matrix::RandomNormal(ds.num_nodes(), 3, &rng);
  const int big_k = 3;
  Matrix total(ds.num_nodes(), 3);
  double binom = 1.0;
  for (int k = 0; k <= big_k; ++k) {
    Matrix term = x;
    for (int j = 0; j < k; ++j) term = laplacian.Multiply(term);
    for (int j = 0; j < big_k - k; ++j) term = two_i_minus_l.Multiply(term);
    term.ScaleInPlace(static_cast<float>(binom * std::pow(0.5, big_k)));
    total.AddInPlace(term);
    binom = binom * (big_k - k) / (k + 1);
  }
  EXPECT_TRUE(AllClose(total, x, 1e-4f));
}

TEST(MagNetSemanticsTest, MagneticLaplacianIsHermitian) {
  // Rebuild H = Ã_s ⊙ exp(iΘ) the way MagNetModel does and verify
  // H(u,v) = conj(H(v,u)): real part symmetric, imaginary antisymmetric.
  Dataset ds = Tiny(7);
  const SparseMatrix a = ds.graph.AdjacencyMatrix();
  SparseMatrix sym = a.AddSparse(a.Transposed());
  const SparseMatrix a_s = NormalizeSymmetric(AddSelfLoops(sym.Binarized()));
  const double q = 0.25;
  const Matrix dense = a_s.ToDense();
  const Matrix a_dense = a.ToDense();
  for (int64_t u = 0; u < dense.rows(); ++u) {
    for (int64_t v = 0; v < dense.cols(); ++v) {
      const double theta_uv = 2.0 * std::numbers::pi * q *
                              (a_dense.At(u, v) - a_dense.At(v, u));
      const double theta_vu = 2.0 * std::numbers::pi * q *
                              (a_dense.At(v, u) - a_dense.At(u, v));
      const double re_uv = dense.At(u, v) * std::cos(theta_uv);
      const double im_uv = dense.At(u, v) * std::sin(theta_uv);
      const double re_vu = dense.At(v, u) * std::cos(theta_vu);
      const double im_vu = dense.At(v, u) * std::sin(theta_vu);
      EXPECT_NEAR(re_uv, re_vu, 1e-5);
      EXPECT_NEAR(im_uv, -im_vu, 1e-5);
    }
  }
}

TEST(MagNetSemanticsTest, QZeroReducesToRealConvolution) {
  // With q = 0 the phase vanishes: the model must produce identical logits
  // on a digraph and on its reversed version (direction-blind).
  Dataset ds = Tiny(8);
  Dataset reversed = ds;
  std::vector<Edge> flipped;
  for (const Edge& e : ds.graph.edges()) flipped.push_back({e.dst, e.src});
  reversed.graph = Digraph::CreateOrDie(ds.num_nodes(), flipped);
  ModelConfig config;
  config.magnet_q = 0.0f;
  config.dropout = 0.0f;
  Rng rng1(9), rng2(9);
  ModelPtr m1 = std::move(CreateModel("MagNet", ds, config, &rng1)).value();
  ModelPtr m2 =
      std::move(CreateModel("MagNet", reversed, config, &rng2)).value();
  EXPECT_TRUE(AllClose(m1->Forward(false, &rng1).value(),
                       m2->Forward(false, &rng2).value(), 1e-4f));
}

TEST(MagNetSemanticsTest, QPositiveSeesDirection) {
  Dataset ds = Tiny(8);
  Dataset reversed = ds;
  std::vector<Edge> flipped;
  for (const Edge& e : ds.graph.edges()) flipped.push_back({e.dst, e.src});
  reversed.graph = Digraph::CreateOrDie(ds.num_nodes(), flipped);
  ModelConfig config;
  config.magnet_q = 0.25f;
  config.dropout = 0.0f;
  Rng rng1(9), rng2(9);
  ModelPtr m1 = std::move(CreateModel("MagNet", ds, config, &rng1)).value();
  ModelPtr m2 =
      std::move(CreateModel("MagNet", reversed, config, &rng2)).value();
  EXPECT_FALSE(AllClose(m1->Forward(false, &rng1).value(),
                        m2->Forward(false, &rng2).value(), 1e-4f));
}

TEST(DirGnnSemanticsTest, DistinguishesEdgeDirection) {
  // Same graph vs reversed graph must produce different representations
  // (separate in/out weights), with identical initialization.
  Dataset ds = Tiny(10);
  Dataset reversed = ds;
  std::vector<Edge> flipped;
  for (const Edge& e : ds.graph.edges()) flipped.push_back({e.dst, e.src});
  reversed.graph = Digraph::CreateOrDie(ds.num_nodes(), flipped);
  ModelConfig config;
  config.dropout = 0.0f;
  Rng rng1(11), rng2(11);
  ModelPtr m1 = std::move(CreateModel("DirGNN", ds, config, &rng1)).value();
  ModelPtr m2 =
      std::move(CreateModel("DirGNN", reversed, config, &rng2)).value();
  EXPECT_FALSE(AllClose(m1->Forward(false, &rng1).value(),
                        m2->Forward(false, &rng2).value(), 1e-4f));
}

TEST(GcnSemanticsTest, BlindToEdgeDirectionOnUndirectedInput) {
  // The control for the test above: after the undirected transformation,
  // graph and reversed graph coincide, so any model must agree.
  Dataset ds = Tiny(10).WithUndirectedGraph();
  ModelConfig config;
  config.dropout = 0.0f;
  Rng rng1(12), rng2(12);
  ModelPtr m1 = std::move(CreateModel("GCN", ds, config, &rng1)).value();
  ModelPtr m2 = std::move(CreateModel("GCN", ds, config, &rng2)).value();
  EXPECT_TRUE(AllClose(m1->Forward(false, &rng1).value(),
                       m2->Forward(false, &rng2).value(), 1e-5f));
}

TEST(DiGcnSemanticsTest, PprOperatorIsSymmetric) {
  Dataset ds = Tiny(13);
  Rng rng(13);
  // Reconstruct the operator the model builds and check symmetry — the
  // theoretical selling point of DiGCN's digraph Laplacian.
  ModelPtr model = std::move(CreateModel("DiGCN", ds, ModelConfig(), &rng)).value();
  // Indirect check: logits of the model on x and the operator's action
  // being symmetric is internal; instead verify via forward determinism
  // and gradient flow (structural), plus training sanity elsewhere.
  // Direct check: rebuild as the model does.
  const SparseMatrix p =
      NormalizeRow(AddSelfLoops(ds.graph.AdjacencyMatrix()));
  const int64_t n = p.rows();
  std::vector<double> pi(n, 1.0 / n), next(n, 0.0);
  for (int iter = 0; iter < 64; ++iter) {
    std::fill(next.begin(), next.end(), 0.1 / n);
    for (int64_t u = 0; u < n; ++u) {
      for (int64_t e = p.row_ptr()[u]; e < p.row_ptr()[u + 1]; ++e) {
        next[p.col_idx()[e]] += 0.9 * pi[u] * p.values()[e];
      }
    }
    pi.swap(next);
  }
  std::vector<Triplet> triplets;
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t e = p.row_ptr()[u]; e < p.row_ptr()[u + 1]; ++e) {
      const int64_t v = p.col_idx()[e];
      const double scale =
          0.5 * std::sqrt(std::max(pi[u], 1e-12) / std::max(pi[v], 1e-12));
      triplets.push_back({u, v, static_cast<float>(scale * p.values()[e])});
      triplets.push_back({v, u, static_cast<float>(scale * p.values()[e])});
    }
  }
  const SparseMatrix op = SparseMatrix::FromTriplets(n, n, triplets);
  EXPECT_TRUE(AllClose(op.ToDense(), op.ToDense().Transposed(), 1e-5f));
}

TEST(AdpaSemanticsTest, PropagatedBlocksMatchPatternSetApplication) {
  // The cached Eq. (9) states must equal iterating PatternSet::Apply.
  Dataset ds = Tiny(14);
  Rng rng(14);
  ModelConfig config;
  config.pattern_order = 1;
  config.propagation_steps = 2;
  config.dropout = 0.0f;
  AdpaModel model(ds, config, &rng);
  PatternSet patterns(ds.graph.AdjacencyMatrix(), config.conv_r,
                      config.propagation_self_loops);
  // Reference: X_A^{(2)} = Â(ÂX). The model's block layout is internal, so
  // probe through the public patterns() accessor + a fresh computation.
  ASSERT_EQ(model.patterns().size(), 2u);
  Matrix state = ds.features;
  state = patterns.Apply(model.patterns()[0], state);
  state = patterns.Apply(model.patterns()[0], state);
  // Structural sanity: two propagation steps leave shape invariant and are
  // not the identity on a connected graph.
  EXPECT_EQ(state.rows(), ds.num_nodes());
  EXPECT_FALSE(AllClose(state, ds.features, 1e-3f));
}

TEST(AdpaSemanticsTest, OnSymmetricGraphOutInPatternsCoincide) {
  Dataset ds = Tiny(15).WithUndirectedGraph();
  PatternSet patterns(ds.graph.AdjacencyMatrix(), 0.5, false);
  Rng rng(15);
  Matrix x = Matrix::RandomNormal(ds.num_nodes(), 4, &rng);
  const Matrix via_out = patterns.Apply(DirectedPattern{{Hop::kOut}}, x);
  const Matrix via_in = patterns.Apply(DirectedPattern{{Hop::kIn}}, x);
  EXPECT_TRUE(AllClose(via_out, via_in, 1e-5f));
}

TEST(AdpaSemanticsTest, EvalForwardIsDeterministicAndDropoutFree) {
  // The serving contract (src/serve/engine.h) leans on eval-mode Dropout
  // being the exact identity: two eval forwards must agree bitwise with
  // each other even while the Rng advances, and training-mode forwards must
  // differ (dropout actually firing) — a regression guard against dropout
  // leaking into the eval path.
  Dataset ds = Tiny(16);
  Rng rng(16);
  ModelConfig config;
  config.hidden = 16;
  config.dropout = 0.5f;
  ModelPtr model = std::move(CreateModel("ADPA", ds, config, &rng)).value();

  const Matrix eval_a = model->Forward(/*training=*/false, &rng).value();
  const Matrix train_out = model->Forward(/*training=*/true, &rng).value();
  const Matrix eval_b = model->Forward(/*training=*/false, &rng).value();

  ASSERT_TRUE(eval_a.SameShape(eval_b));
  EXPECT_EQ(std::memcmp(eval_a.data(), eval_b.data(),
                        static_cast<size_t>(eval_a.size()) * sizeof(float)),
            0)
      << "eval forward must be bitwise repeatable (Dropout as identity)";
  EXPECT_FALSE(AllClose(train_out, eval_a, 1e-6f))
      << "training forward should differ once dropout fires";
}

}  // namespace
}  // namespace adpa
