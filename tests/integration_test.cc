// End-to-end pipeline tests reproducing the paper's core qualitative
// claims on small instances: AMUD guidance is actionable, directed modeling
// matters exactly when AMUD says it does, and ADPA's attention earns its
// keep. These are the repo's "does the science hold together" checks.

#include <gtest/gtest.h>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/data/benchmarks.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/models/adpa.h"
#include "src/models/factory.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset WithSplits(Dataset ds, uint64_t seed) {
  Rng rng(seed);
  Split split = std::move(
      SplitFractions(ds.labels, ds.num_classes, 0.48, 0.32, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

Dataset DirectedHeterophilousTask(uint64_t seed) {
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 5;
  config.avg_out_degree = 6.0;
  config.class_transition = CyclicTransition(5, 0.8, 0.05);
  config.edge_noise = 0.05;
  config.feature_dim = 24;
  config.feature_noise = 3.0;  // features alone are weak
  config.seed = seed;
  return WithSplits(std::move(GenerateDsbm(config)).value(), seed + 1);
}

Dataset HomophilousTask(uint64_t seed) {
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 5;
  config.avg_out_degree = 6.0;
  config.class_transition = HomophilousTransition(5, 0.8);
  config.reciprocal_prob = 0.8;
  config.feature_dim = 24;
  config.feature_noise = 3.0;
  config.seed = seed;
  return WithSplits(std::move(GenerateDsbm(config)).value(), seed + 1);
}

double TrainOnce(const std::string& model_name, const Dataset& ds,
                 uint64_t seed, int epochs = 80) {
  Rng rng(seed);
  ModelConfig mc;
  mc.hidden = 32;
  ModelPtr model = std::move(CreateModel(model_name, ds, mc, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = epochs;
  tc.patience = 20;
  return TrainModel(model.get(), ds, tc, &rng).test_accuracy;
}

TEST(IntegrationTest, FullPipelineQuickstart) {
  // The README pipeline: generate -> AMUD -> model choice -> train.
  Dataset ds = DirectedHeterophilousTask(1);
  AmudReport report =
      std::move(ComputeAmud(ds.graph, ds.labels, ds.num_classes)).value();
  EXPECT_EQ(report.decision, AmudDecision::kDirected);
  Dataset input = ds;  // decision says: keep directed edges
  const double acc = TrainOnce("ADPA", input, 7);
  EXPECT_GT(acc, 0.6);
}

TEST(IntegrationTest, C1_DirectedModelsWinOnAmDirectedData) {
  // Paper conclusion C1 (Sec. III-A): directed GNNs have the advantage on
  // heterophilous digraphs. Compare a representative pair across 2 seeds.
  double directed_acc = 0.0, undirected_acc = 0.0;
  for (uint64_t seed : {11u, 12u}) {
    Dataset ds = DirectedHeterophilousTask(seed);
    directed_acc += TrainOnce("DirGNN", ds, seed);
    undirected_acc += TrainOnce("GCN", ds.WithUndirectedGraph(), seed);
  }
  EXPECT_GT(directed_acc, undirected_acc + 0.05);
}

TEST(IntegrationTest, C2_UndirectedAugmentationHelpsHomophily) {
  // Paper conclusion C2: discarding direction is the right call under
  // homophily — a directed model fed the undirected transformation should
  // do at least as well as the same model on raw directed input.
  double raw = 0.0, undirected = 0.0;
  for (uint64_t seed : {21u, 22u}) {
    Dataset ds = HomophilousTask(seed);
    raw += TrainOnce("MagNet", ds, seed);
    undirected += TrainOnce("MagNet", ds.WithUndirectedGraph(), seed);
  }
  EXPECT_GE(undirected, raw - 0.02);
}

TEST(IntegrationTest, AmudScoreSeparatesTheTwoRegimes) {
  Dataset directed = DirectedHeterophilousTask(31);
  Dataset homophilous = HomophilousTask(32);
  const double s_directed =
      std::move(ComputeAmud(directed.graph, directed.labels, 5))
          .value()
          .score;
  const double s_homophilous =
      std::move(ComputeAmud(homophilous.graph, homophilous.labels, 5))
          .value()
          .score;
  EXPECT_GT(s_directed, 0.5);
  EXPECT_LT(s_homophilous, 0.5);
  EXPECT_GT(s_directed, s_homophilous + 0.3);
}

TEST(IntegrationTest, AdpaBeatsStructureFreeMlpWhenTopologyMatters) {
  Dataset ds = DirectedHeterophilousTask(41);
  const double adpa = TrainOnce("ADPA", ds, 41);
  const double mlp = TrainOnce("MLP", ds, 41);
  EXPECT_GT(adpa, mlp + 0.1);
}

TEST(IntegrationTest, DpAttentionAblationHurtsOnDirectedData) {
  // Table VII's qualitative claim: removing DP attention costs accuracy.
  Dataset ds = DirectedHeterophilousTask(51);
  double with_attention = 0.0, without = 0.0;
  for (uint64_t seed : {51u, 52u, 53u}) {
    Rng rng(seed);
    ModelConfig mc;
    mc.hidden = 32;
    AdpaModel full(ds, mc, &rng);
    TrainConfig tc;
    tc.max_epochs = 80;
    tc.patience = 20;
    with_attention += TrainModel(&full, ds, tc, &rng).test_accuracy;
    Rng rng2(seed);
    ModelConfig ablated = mc;
    ablated.use_dp_attention = false;
    AdpaModel cut(ds, ablated, &rng2);
    without += TrainModel(&cut, ds, tc, &rng2).test_accuracy;
  }
  EXPECT_GT(with_attention, without);
}

TEST(IntegrationTest, SecondOrderPatternsBeatFirstOrderOnDirectedData) {
  // Table VI's qualitative claim: 2-order DPs outperform 1-order.
  Dataset ds = DirectedHeterophilousTask(61);
  double first = 0.0, second = 0.0;
  for (uint64_t seed : {61u, 62u}) {
    Rng rng(seed);
    ModelConfig mc;
    mc.hidden = 32;
    mc.pattern_order = 1;
    AdpaModel k1(ds, mc, &rng);
    TrainConfig tc;
    tc.max_epochs = 80;
    tc.patience = 20;
    first += TrainModel(&k1, ds, tc, &rng).test_accuracy;
    Rng rng2(seed);
    mc.pattern_order = 2;
    AdpaModel k2(ds, mc, &rng2);
    second += TrainModel(&k2, ds, tc, &rng2).test_accuracy;
  }
  EXPECT_GT(second, first);
}

TEST(IntegrationTest, RegistryDatasetTrainsEndToEnd) {
  // One full registry dataset through the whole stack at reduced scale.
  Dataset ds = std::move(BuildBenchmarkByName("Chameleon", 0, 0.5)).value();
  const double acc = TrainOnce("ADPA", ds, 71, /*epochs=*/60);
  EXPECT_GT(acc, 0.4);  // chance is 0.2
}

}  // namespace
}  // namespace adpa
