// Universal gradcheck: every autograd op is verified against central finite
// differences through the src/tensor/gradcheck.h harness, and the composed
// checks (two-layer MLP with attention, full ADPA) pin the op *interactions*
// — chain rule across MatMul/SpMM/attention — not just the leaves.
//
// tools/lint.py (rule `gradcheck-registry`) enforces that every
// Variable-returning op declared in src/tensor/autograd.h has a registry
// entry, so this suite cannot silently fall behind the op set.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/graph/sparse_matrix.h"
#include "src/models/adpa.h"
#include "src/tensor/gradcheck.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

using ag::CheckGradients;
using ag::GradcheckCase;
using ag::GradcheckOptions;
using ag::GradcheckReport;
using ag::OpGradcheckRegistry;
using ag::RunGradcheck;
using ag::Variable;

// Every registry case must pass at its per-op tolerance. One test per op
// would be nicer for reporting, but a value-parameterized suite over the
// registry achieves the same failure granularity.
class OpGradcheckTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OpGradcheckTest, AnalyticMatchesCentralDifferences) {
  const std::vector<GradcheckCase> cases = OpGradcheckRegistry();
  ASSERT_LT(GetParam(), cases.size());
  const GradcheckCase& c = cases[GetParam()];
  const GradcheckReport report = RunGradcheck(c);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_GT(report.entries_checked, 0) << report.Summary();
}

std::string OpName(const ::testing::TestParamInfo<size_t>& info) {
  return OpGradcheckRegistry()[info.param].name;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpGradcheckTest,
                         ::testing::Range<size_t>(
                             0, OpGradcheckRegistry().size()),
                         OpName);

TEST(GradcheckRegistryTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (const GradcheckCase& c : OpGradcheckRegistry()) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_TRUE(names.insert(c.name).second)
        << "duplicate registry entry " << c.name;
  }
  // Every op in autograd.h must be present (lint enforces the exact list;
  // this is a cheap lower-bound sanity check that the registry was built).
  EXPECT_GE(names.size(), 23u);
}

TEST(GradcheckHarnessTest, FrozenDropoutMaskIsDeterministic) {
  // The mask-freezing trick underpinning the Dropout registry entry: a
  // fresh fixed-seed Rng inside the forward closure must reproduce the
  // identical graph output across calls.
  Rng rng(5);
  Variable x = ag::Parameter(Matrix::RandomNormal(4, 6, &rng));
  auto forward = [&x]() {
    Rng mask_rng(0xD80);
    return ag::Dropout(x, 0.4f, /*training=*/true, &mask_rng);
  };
  const Matrix first = forward().value();
  const Matrix second = forward().value();
  EXPECT_TRUE(AllClose(first, second, 0.0f));
}

TEST(GradcheckHarnessTest, DetectsAWrongGradientImmediately) {
  // Sanity-check the checker itself. A correct op can never trip it (the
  // analytic and numeric passes share the closure), so we emulate a buggy
  // backward by making the closure inconsistent across calls: the first
  // call — the one CheckGradients differentiates — computes sum(x)
  // (analytic grad 1), every FD probe afterwards computes sum(2x)
  // (difference quotient 2).
  Rng rng(7);
  Variable p = ag::Parameter(Matrix::RandomNormal(3, 3, &rng));
  int calls = 0;
  auto loss = [&]() {
    ++calls;
    return calls == 1 ? ag::SumAll(p) : ag::SumAll(ag::Scale(p, 2.0f));
  };
  const GradcheckReport report =
      CheckGradients("deliberate-mismatch", loss, {p});
  EXPECT_FALSE(report.ok) << report.Summary();
  EXPECT_GT(report.max_rel_error, 0.3) << report.Summary();
}

// Composed regression anchor (satellite of the verification layer): a
// two-layer MLP with node-wise attention over a sparse propagation step,
// touching MatMul/AddBias/Relu/SpMM/SoftmaxRows/SliceCols/ScaleRows/Add/
// MaskedCrossEntropy in one graph. All ops pass individually; this pins
// their composition.
TEST(ComposedGradcheckTest, TwoLayerMlpWithAttention) {
  Rng rng(11);
  const int64_t n = 6, in_dim = 5, hidden = 4, classes = 3;
  const Matrix x_value = Matrix::RandomNormal(n, in_dim, &rng, 0.0f, 0.8f);
  const SparseMatrix adj = SparseMatrix::FromTriplets(
      n, n,
      {{0, 1, 0.7f}, {1, 2, 0.5f}, {2, 0, 0.4f}, {3, 4, 0.9f},
       {4, 5, 0.6f}, {5, 3, 0.8f}, {0, 3, 0.3f}});
  const std::vector<int64_t> labels = {0, 1, 2, 0, 1, 2};
  const std::vector<int64_t> mask = {0, 2, 3, 5};

  Variable w1 = ag::Parameter(Matrix::RandomNormal(in_dim, hidden, &rng,
                                                   0.0f, 0.5f));
  Variable b1 = ag::Parameter(Matrix::RandomNormal(1, hidden, &rng, 0.0f,
                                                   0.2f));
  Variable wa = ag::Parameter(Matrix::RandomNormal(hidden, 2, &rng, 0.0f,
                                                   0.5f));
  Variable w2 = ag::Parameter(Matrix::RandomNormal(hidden, classes, &rng,
                                                   0.0f, 0.5f));
  Variable b2 = ag::Parameter(Matrix::RandomNormal(1, classes, &rng, 0.0f,
                                                   0.2f));

  auto loss = [&]() {
    Variable x = ag::Constant(x_value);
    Variable h = ag::Relu(ag::AddBias(ag::MatMul(x, w1), b1));
    // Node-wise two-way attention between the ego and propagated views.
    Variable scores = ag::SoftmaxRows(ag::MatMul(h, wa));
    Variable ego = ag::ScaleRows(h, ag::SliceCols(scores, 0, 1));
    Variable prop = ag::ScaleRows(ag::SpMM(adj, h),
                                  ag::SliceCols(scores, 1, 2));
    Variable fused = ag::Add(ego, prop);
    Variable logits = ag::AddBias(ag::MatMul(fused, w2), b2);
    return ag::MaskedCrossEntropy(logits, labels, mask);
  };

  const GradcheckReport report =
      CheckGradients("TwoLayerMlpWithAttention", loss, {w1, b1, wa, w2, b2});
  EXPECT_TRUE(report.ok) << report.Summary();
}

// End-to-end: one full ADPA forward pass (DP-guided propagation + DP
// attention + hop attention + MLP classifier) against finite differences.
// Entries are sampled per parameter to keep the quadratic FD cost bounded;
// the tolerance is looser than the per-op ones because float32 error
// compounds across the deep composition.
TEST(ComposedGradcheckTest, FullAdpaForwardPass) {
  DsbmConfig config;
  config.num_nodes = 24;
  config.num_classes = 3;
  config.avg_out_degree = 3.0;
  config.class_transition = CyclicTransition(3, 0.7, 0.1);
  config.feature_dim = 6;
  config.seed = 21;
  Result<Dataset> generated = GenerateDsbm(config);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  Dataset dataset = std::move(generated).value();
  Rng split_rng(22);
  Result<Split> split = SplitFractions(dataset.labels, dataset.num_classes,
                                       0.5, 0.25, &split_rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  dataset.train_idx = split->train;
  dataset.val_idx = split->val;
  dataset.test_idx = split->test;

  ModelConfig model_config;
  model_config.hidden = 8;
  model_config.num_layers = 2;
  model_config.dropout = 0.0f;  // eval-mode forward is dropout-free anyway
  model_config.propagation_steps = 2;
  model_config.pattern_order = 1;
  Rng model_rng(23);
  AdpaModel model(dataset, model_config, &model_rng);

  Rng forward_rng(24);
  auto loss = [&]() {
    ag::Variable logits = model.Forward(/*training=*/false, &forward_rng);
    return ag::MaskedCrossEntropy(logits, dataset.labels, dataset.train_idx);
  };

  GradcheckOptions options;
  options.tolerance = 5e-2;
  options.max_entries_per_input = 6;
  options.seed = 25;
  const GradcheckReport report =
      CheckGradients("FullAdpaForwardPass", loss, model.Parameters(),
                     options);
  EXPECT_TRUE(report.ok) << report.Summary();
  EXPECT_GT(report.entries_checked, 0);
}

}  // namespace
}  // namespace adpa
