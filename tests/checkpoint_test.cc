// Checkpoint format tests: exact round-trips, hostile-input rejection
// (truncation, bad magic, version skew, CRC corruption, limit breaches),
// and the propagation sidecar cache.

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/hash.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/io/binary.h"
#include "src/io/checkpoint.h"
#include "src/models/adpa.h"
#include "src/models/factory.h"
#include "src/serve/engine.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset Tiny(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 60;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      static_cast<size_t>(a.size()) * sizeof(float)) == 0);
}

/// Trains a small ADPA model for 3 epochs and checkpoints it.
struct TrainedFixture {
  Dataset dataset;
  ModelPtr model;
  ModelConfig config;
  TrainConfig train_config;
  Checkpoint checkpoint;
  Matrix logits;  // eval forward after training

  explicit TrainedFixture(uint64_t seed = 7) : dataset(Tiny(seed)) {
    config.hidden = 16;
    config.dropout = 0.2f;
    Rng rng(seed);
    model = std::move(CreateModel("ADPA", dataset, config, &rng)).value();
    train_config.max_epochs = 3;
    train_config.patience = 0;
    TrainModel(model.get(), dataset, train_config, &rng);
    logits = model->Forward(/*training=*/false, &rng).value();
    checkpoint =
        MakeCheckpoint(*model, "ADPA", dataset, config, train_config);
  }
};

std::string Serialize(const Checkpoint& checkpoint) {
  std::ostringstream out;
  EXPECT_TRUE(SaveCheckpointToStream(checkpoint, out).ok());
  return out.str();
}

Result<Checkpoint> Deserialize(const std::string& bytes,
                               const CheckpointLimits& limits = {}) {
  std::istringstream in(bytes);
  return TryLoadCheckpointFromStream(in, limits);
}

TEST(CheckpointTest, RoundTripIsExact) {
  TrainedFixture fixture;
  Result<Checkpoint> loaded = Deserialize(Serialize(fixture.checkpoint));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->model_name, "ADPA");
  EXPECT_EQ(loaded->dataset_name, fixture.dataset.name);
  EXPECT_EQ(loaded->dataset_hash, DatasetContentHash(fixture.dataset));
  EXPECT_EQ(loaded->model_config.hidden, fixture.config.hidden);
  EXPECT_EQ(loaded->model_config.dropout, fixture.config.dropout);
  EXPECT_EQ(loaded->model_config.propagation_steps,
            fixture.config.propagation_steps);
  EXPECT_EQ(loaded->model_config.conv_r, fixture.config.conv_r);
  EXPECT_EQ(static_cast<int>(loaded->model_config.dp_attention),
            static_cast<int>(fixture.config.dp_attention));
  EXPECT_EQ(loaded->train_config.max_epochs, 3);
  EXPECT_EQ(loaded->train_config.learning_rate,
            fixture.train_config.learning_rate);
  EXPECT_EQ(loaded->patterns, fixture.checkpoint.patterns);
  ASSERT_EQ(loaded->tensors.size(), fixture.checkpoint.tensors.size());
  for (size_t i = 0; i < loaded->tensors.size(); ++i) {
    EXPECT_EQ(loaded->tensors[i].name, fixture.checkpoint.tensors[i].name);
    EXPECT_TRUE(BitwiseEqual(loaded->tensors[i].value,
                             fixture.checkpoint.tensors[i].value))
        << "tensor " << loaded->tensors[i].name << " changed in transit";
  }
}

TEST(CheckpointTest, RestoredModelReproducesLogitsAndAccuracyExactly) {
  TrainedFixture fixture;
  Result<Checkpoint> loaded = Deserialize(Serialize(fixture.checkpoint));
  ASSERT_TRUE(loaded.ok());

  // A *differently seeded* fresh model: every parameter starts different,
  // so agreement below can only come from the checkpoint.
  Rng other_rng(999);
  ModelPtr restored =
      std::move(
          CreateModel(loaded->model_name, fixture.dataset,
                      loaded->model_config, &other_rng))
          .value();
  ASSERT_TRUE(LoadCheckpointIntoModel(*loaded, restored.get()).ok());

  const Matrix restored_logits =
      restored->Forward(/*training=*/false, &other_rng).value();
  EXPECT_TRUE(BitwiseEqual(restored_logits, fixture.logits))
      << "restored logits are not bitwise identical";
  EXPECT_EQ(Accuracy(restored_logits, fixture.dataset.labels,
                     fixture.dataset.test_idx),
            Accuracy(fixture.logits, fixture.dataset.labels,
                     fixture.dataset.test_idx));
}

TEST(CheckpointTest, FileRoundTripIsExact) {
  TrainedFixture fixture;
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(SaveCheckpoint(fixture.checkpoint, path).ok());
  Result<Checkpoint> loaded = TryLoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->tensors.size(), fixture.checkpoint.tensors.size());
  for (size_t i = 0; i < loaded->tensors.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(loaded->tensors[i].value,
                             fixture.checkpoint.tensors[i].value));
  }
}

TEST(CheckpointTest, SingleCorruptedPayloadByteIsRejectedByCrc) {
  TrainedFixture fixture;
  std::string bytes = Serialize(fixture.checkpoint);
  ASSERT_GT(bytes.size(), 24u);
  // Flip one bit in the middle of the payload (well past the header).
  const size_t victim = 24 + (bytes.size() - 24) / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x01);
  Result<Checkpoint> loaded = Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << "CRC rejection should say so: " << loaded.status().ToString();
}

TEST(CheckpointTest, EveryTruncationIsRejectedNotCrashed) {
  TrainedFixture fixture;
  const std::string bytes = Serialize(fixture.checkpoint);
  for (size_t len : {size_t{0}, size_t{4}, size_t{12}, size_t{20},
                     size_t{24}, bytes.size() / 2, bytes.size() - 1}) {
    Result<Checkpoint> loaded = Deserialize(bytes.substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
  }
}

TEST(CheckpointTest, BadMagicIsRejected) {
  TrainedFixture fixture;
  std::string bytes = Serialize(fixture.checkpoint);
  bytes[0] = 'X';
  Result<Checkpoint> loaded = Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST(CheckpointTest, UnsupportedVersionIsRejected) {
  TrainedFixture fixture;
  std::string bytes = Serialize(fixture.checkpoint);
  bytes[8] = 9;  // version field (little-endian u32 at offset 8)
  Result<Checkpoint> loaded = Deserialize(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
}

TEST(CheckpointTest, LimitsAreEnforcedBeforeAllocation) {
  TrainedFixture fixture;
  const std::string bytes = Serialize(fixture.checkpoint);

  CheckpointLimits tiny_payload;
  tiny_payload.max_payload_bytes = 16;
  EXPECT_FALSE(Deserialize(bytes, tiny_payload).ok());

  CheckpointLimits few_tensors;
  few_tensors.max_tensors = 1;
  EXPECT_FALSE(Deserialize(bytes, few_tensors).ok());

  CheckpointLimits short_names;
  short_names.max_name_bytes = 2;
  EXPECT_FALSE(Deserialize(bytes, short_names).ok());

  CheckpointLimits small_tensors;
  small_tensors.max_tensor_entries = 4;
  EXPECT_FALSE(Deserialize(bytes, small_tensors).ok());

  CheckpointLimits few_patterns;
  few_patterns.max_patterns = 1;
  EXPECT_FALSE(Deserialize(bytes, few_patterns).ok());
}

TEST(CheckpointTest, LoadIntoMismatchedModelFailsWithShapeError) {
  TrainedFixture fixture;
  Result<Checkpoint> loaded = Deserialize(Serialize(fixture.checkpoint));
  ASSERT_TRUE(loaded.ok());
  ModelConfig other = fixture.config;
  other.hidden = 8;  // different classifier shapes
  Rng rng(1);
  ModelPtr mismatched =
      std::move(CreateModel("ADPA", fixture.dataset, other, &rng)).value();
  const Status status = LoadCheckpointIntoModel(*loaded, mismatched.get());
  ASSERT_FALSE(status.ok());
}

TEST(CheckpointTest, DatasetHashIsContentSensitive) {
  Dataset a = Tiny(3);
  const uint64_t base = DatasetContentHash(a);
  Dataset b = Tiny(3);
  EXPECT_EQ(DatasetContentHash(b), base) << "hash must be deterministic";
  b.features.At(0, 0) += 1.0f;
  EXPECT_NE(DatasetContentHash(b), base);
  Dataset c = Tiny(3);
  c.labels[0] = (c.labels[0] + 1) % c.num_classes;
  EXPECT_NE(DatasetContentHash(c), base);
}

TEST(PropagationCacheTest, RoundTripPreservesKeyAndBlocksExactly) {
  Dataset ds = Tiny(11);
  ModelConfig config;
  const std::vector<DirectedPattern> patterns = EnumeratePatterns(2);
  PropagationCache cache;
  cache.key = MakePropagationCacheKey(ds, config, patterns);
  cache.blocks = serve::ComputePropagationBlocks(ds, config, patterns);

  std::ostringstream out;
  ASSERT_TRUE(SavePropagationCacheToStream(cache, out).ok());
  std::istringstream in(out.str());
  Result<PropagationCache> loaded = TryLoadPropagationCacheFromStream(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->key == cache.key);
  ASSERT_EQ(loaded->blocks.size(), cache.blocks.size());
  for (size_t l = 0; l < cache.blocks.size(); ++l) {
    ASSERT_EQ(loaded->blocks[l].size(), cache.blocks[l].size());
    for (size_t g = 0; g < cache.blocks[l].size(); ++g) {
      EXPECT_TRUE(BitwiseEqual(loaded->blocks[l][g], cache.blocks[l][g]));
    }
  }
}

TEST(PropagationCacheTest, KeyTracksEveryPropagationInput) {
  Dataset ds = Tiny(12);
  ModelConfig config;
  const std::vector<DirectedPattern> patterns = EnumeratePatterns(2);
  const PropagationCacheKey base =
      MakePropagationCacheKey(ds, config, patterns);

  ModelConfig other = config;
  other.conv_r = 0.25;
  EXPECT_FALSE(MakePropagationCacheKey(ds, other, patterns) == base);
  other = config;
  other.propagation_steps = 5;
  EXPECT_FALSE(MakePropagationCacheKey(ds, other, patterns) == base);
  other = config;
  other.propagation_self_loops = !other.propagation_self_loops;
  EXPECT_FALSE(MakePropagationCacheKey(ds, other, patterns) == base);

  Dataset changed = Tiny(12);
  changed.features.At(1, 1) += 0.5f;
  EXPECT_FALSE(MakePropagationCacheKey(changed, config, patterns) == base);

  EXPECT_FALSE(MakePropagationCacheKey(ds, config, EnumeratePatterns(1)) ==
               base);
}

TEST(CheckpointTest, RestoreWithRecordedPatternsSkipsRederivation) {
  // Correlation-selected pattern subsets (select_patterns > 0) depend on
  // the train split, which DatasetContentHash does not cover. The restore
  // path must install the checkpoint's recorded set, not re-derive one.
  Dataset dataset = Tiny(17);
  ModelConfig config;
  config.hidden = 16;
  config.pattern_order = 2;
  config.select_patterns = 2;
  Rng rng(7);
  ModelPtr model =
      std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  TrainConfig train_config;
  train_config.max_epochs = 2;
  train_config.patience = 0;
  TrainModel(model.get(), dataset, train_config, &rng);
  const Matrix logits = model->Forward(/*training=*/false, &rng).value();
  const Checkpoint checkpoint =
      MakeCheckpoint(*model, "ADPA", dataset, config, train_config);
  ASSERT_EQ(checkpoint.patterns.size(), 2u);

  // Same dataset content (hash unchanged), different labeled subset: any
  // re-derived selection is untrustworthy here, the recorded one is not.
  std::reverse(dataset.train_idx.begin(), dataset.train_idx.end());
  dataset.train_idx.resize(dataset.train_idx.size() / 2);
  Rng other_rng(999);
  ModelPtr restored = std::move(CreateModelWithPatterns(
                                    "ADPA", dataset, checkpoint.model_config,
                                    checkpoint.patterns, &other_rng))
                          .value();
  ASSERT_TRUE(LoadCheckpointIntoModel(checkpoint, restored.get()).ok());
  const auto* adpa = dynamic_cast<const AdpaModel*>(restored.get());
  ASSERT_NE(adpa, nullptr);
  EXPECT_EQ(adpa->patterns(), checkpoint.patterns);
  const Matrix restored_logits =
      restored->Forward(/*training=*/false, &other_rng).value();
  EXPECT_TRUE(BitwiseEqual(restored_logits, logits))
      << "restored model does not propagate with the recorded patterns";
}

/// A syntactically valid cache container whose block-count header claims
/// `steps` x `per_step` blocks (with a minimal key and no block data).
std::string HostileCacheBytes(uint32_t steps, uint32_t per_step) {
  std::ostringstream body_stream;
  BinaryWriter body(&body_stream);
  body.WriteU64(0);    // graph_hash
  body.WriteU64(0);    // feature_hash
  body.WriteF64(0.5);  // conv_r
  body.WriteU8(0);     // self_loops
  body.WriteU8(1);     // initial_residual
  body.WriteI32(1);    // key steps
  body.WriteU32(0);    // no patterns
  body.WriteU32(steps);
  body.WriteU32(per_step);
  const std::string payload = body_stream.str();
  std::ostringstream out;
  BinaryWriter header(&out);
  header.WriteBytes("ADPAPCHE", 8);
  header.WriteU32(1);  // format version
  header.WriteU32(Crc32(payload.data(), payload.size()));
  header.WriteU64(payload.size());
  header.WriteBytes(payload.data(), payload.size());
  return out.str();
}

TEST(PropagationCacheTest, HostileStepCountWithZeroPerStepIsRejected) {
  // per_step == 0 must not bypass the block-count ceiling: `steps` alone
  // would otherwise drive a multi-gigabyte resize before any block read.
  for (uint32_t steps : {uint32_t{4097}, uint32_t{0xFFFFFFFF}}) {
    std::istringstream in(HostileCacheBytes(steps, /*per_step=*/0));
    Result<PropagationCache> loaded = TryLoadPropagationCacheFromStream(in);
    ASSERT_FALSE(loaded.ok()) << "steps=" << steps << " accepted";
    EXPECT_NE(loaded.status().message().find("block count"),
              std::string::npos)
        << loaded.status().ToString();
  }
}

TEST(PropagationCacheTest, CacheErrorsAreNotReportedAsCheckpointErrors) {
  std::istringstream in(std::string("XXXXXXXX") + std::string(24, '\0'));
  Result<PropagationCache> loaded = TryLoadPropagationCacheFromStream(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("malformed propagation cache"),
            std::string::npos)
      << loaded.status().ToString();
  EXPECT_EQ(loaded.status().message().find("malformed checkpoint"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST(PropagationCacheTest, CorruptedCacheIsRejected) {
  Dataset ds = Tiny(13);
  ModelConfig config;
  const std::vector<DirectedPattern> patterns = EnumeratePatterns(1);
  PropagationCache cache;
  cache.key = MakePropagationCacheKey(ds, config, patterns);
  cache.blocks = serve::ComputePropagationBlocks(ds, config, patterns);
  std::ostringstream out;
  ASSERT_TRUE(SavePropagationCacheToStream(cache, out).ok());
  std::string bytes = out.str();
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::istringstream in(bytes);
  EXPECT_FALSE(TryLoadPropagationCacheFromStream(in).ok());
}

TEST(PropagationCacheTest, CheckpointMagicIsNotACacheMagic) {
  // The two containers must not be confusable.
  TrainedFixture fixture;
  const std::string bytes = Serialize(fixture.checkpoint);
  std::istringstream in(bytes);
  EXPECT_FALSE(TryLoadPropagationCacheFromStream(in).ok());
}

}  // namespace
}  // namespace adpa
