// Tests for the dense Matrix kernels against hand-computed references.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/tensor/matrix.h"

namespace adpa {
namespace {

TEST(MatrixTest, ConstructZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

TEST(MatrixTest, FromRowsRoundTrip) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
}

TEST(MatrixTest, IdentityHasUnitDiagonal) {
  Matrix identity = Matrix::Identity(4);
  for (int64_t r = 0; r < 4; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(identity.At(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, MatMulHandComputed) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(5, 5, &rng);
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(5)), a));
  EXPECT_TRUE(AllClose(MatMul(Matrix::Identity(5), a), a));
}

TEST(MatrixTest, MatMulTransposeAMatchesExplicit) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(4, 3, &rng);
  Matrix b = Matrix::RandomNormal(4, 5, &rng);
  EXPECT_TRUE(AllClose(MatMulTransposeA(a, b), MatMul(a.Transposed(), b),
                       1e-4f));
}

TEST(MatrixTest, MatMulTransposeBMatchesExplicit) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(4, 3, &rng);
  Matrix b = Matrix::RandomNormal(5, 3, &rng);
  EXPECT_TRUE(AllClose(MatMulTransposeB(a, b), MatMul(a, b.Transposed()),
                       1e-4f));
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(3, 7, &rng);
  EXPECT_TRUE(AllClose(a.Transposed().Transposed(), a));
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  EXPECT_TRUE(AllClose(Add(a, b), Matrix::FromRows({{11, 22}, {33, 44}})));
  EXPECT_TRUE(AllClose(Sub(b, a), Matrix::FromRows({{9, 18}, {27, 36}})));
  EXPECT_TRUE(
      AllClose(Hadamard(a, b), Matrix::FromRows({{10, 40}, {90, 160}})));
  EXPECT_TRUE(AllClose(Scale(a, 2.0f), Matrix::FromRows({{2, 4}, {6, 8}})));
}

TEST(MatrixTest, InPlaceOpsMatchOutOfPlace) {
  Matrix a = Matrix::FromRows({{1, -2}, {0.5, 4}});
  Matrix b = Matrix::FromRows({{2, 2}, {2, 2}});
  Matrix sum = a;
  sum.AddInPlace(b);
  EXPECT_TRUE(AllClose(sum, Add(a, b)));
  Matrix scaled = a;
  scaled.AddScaledInPlace(b, -0.5f);
  EXPECT_TRUE(AllClose(scaled, Sub(a, Scale(b, 0.5f))));
}

TEST(MatrixTest, ApplyTransformsEveryEntry) {
  Matrix a = Matrix::FromRows({{-1, 2}, {-3, 4}});
  a.Apply([](float v) { return v < 0 ? 0.0f : v; });
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{0, 2}, {0, 4}})));
}

TEST(MatrixTest, Reductions) {
  Matrix a = Matrix::FromRows({{3, -4}, {0, 12}});
  EXPECT_FLOAT_EQ(a.SumAll(), 11.0f);
  EXPECT_FLOAT_EQ(a.MaxAll(), 12.0f);
  EXPECT_FLOAT_EQ(a.FrobeniusNorm(), 13.0f);  // sqrt(9+16+0+144)
}

TEST(MatrixTest, SliceRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix mid = a.SliceRows(1, 3);
  EXPECT_TRUE(AllClose(mid, Matrix::FromRows({{3, 4}, {5, 6}})));
}

TEST(MatrixTest, ConcatCols) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix c = ConcatCols({a, b, a});
  EXPECT_TRUE(AllClose(c, Matrix::FromRows({{1, 3, 4, 1}, {2, 5, 6, 2}})));
}

TEST(MatrixTest, AddRowBroadcast) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix row = Matrix::FromRows({{10, 20}});
  EXPECT_TRUE(
      AllClose(AddRowBroadcast(a, row), Matrix::FromRows({{11, 22}, {13, 24}})));
}

TEST(MatrixTest, SoftmaxRowsSumsToOne) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(6, 4, &rng, 0.0f, 3.0f);
  Matrix s = SoftmaxRows(a);
  for (int64_t r = 0; r < s.rows(); ++r) {
    double total = 0.0;
    for (int64_t c = 0; c < s.cols(); ++c) {
      EXPECT_GT(s.At(r, c), 0.0f);
      total += s.At(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(MatrixTest, SoftmaxRowsIsShiftInvariant) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  Matrix b = Matrix::FromRows({{101, 102, 103}});
  EXPECT_TRUE(AllClose(SoftmaxRows(a), SoftmaxRows(b), 1e-5f));
}

TEST(MatrixTest, SoftmaxRowsNumericallyStableOnLargeInputs) {
  Matrix a = Matrix::FromRows({{1000, 1001}});
  Matrix s = SoftmaxRows(a);
  EXPECT_FALSE(std::isnan(s.At(0, 0)));
  EXPECT_NEAR(s.At(0, 0) + s.At(0, 1), 1.0f, 1e-5f);
}

TEST(MatrixTest, AllCloseRespectsTolerance) {
  Matrix a = Matrix::FromRows({{1.0f}});
  Matrix b = Matrix::FromRows({{1.001f}});
  EXPECT_FALSE(AllClose(a, b, 1e-4f));
  EXPECT_TRUE(AllClose(a, b, 1e-2f));
  EXPECT_FALSE(AllClose(a, Matrix(2, 1)));  // shape mismatch
}

TEST(MatrixTest, RandomNormalMoments) {
  Rng rng(6);
  Matrix m = Matrix::RandomNormal(100, 100, &rng, 2.0f, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (int64_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  const double mean = sum / m.size();
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(sq / m.size() - mean * mean, 0.25, 0.02);
}

TEST(MatrixTest, RandomUniformRange) {
  Rng rng(7);
  Matrix m = Matrix::RandomUniform(50, 50, &rng, -0.25f, 0.75f);
  for (int64_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -0.25f);
    EXPECT_LT(m.data()[i], 0.75f);
  }
}

// Parameterized shape sweep: (AB)ᵀ == Bᵀ Aᵀ across sizes.
class MatMulShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapeTest, TransposeOfProductIdentity) {
  const auto [n, k, m] = GetParam();
  Rng rng(n * 10007 + k * 101 + m);
  Matrix a = Matrix::RandomNormal(n, k, &rng);
  Matrix b = Matrix::RandomNormal(k, m, &rng);
  Matrix left = MatMul(a, b).Transposed();
  Matrix right = MatMul(b.Transposed(), a.Transposed());
  EXPECT_TRUE(AllClose(left, right, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 1, 5),
                                           std::make_tuple(16, 16, 16),
                                           std::make_tuple(5, 31, 2)));

// Invariant-enforcement coverage: shape-mismatched ops must hit ADPA_CHECK
// and abort, the DCHECK bounds layer must fire when compiled in, and the
// CheckFinite guard must catch NaN/Inf. The "threadsafe" style re-executes
// the test binary for the child, which is the only style that is reliable
// under the sanitizer presets.
class MatrixDeathTest : public ::testing::Test {
 protected:
  MatrixDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(MatrixDeathTest, MatMulInnerDimensionMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(4, 2);
  EXPECT_DEATH(MatMul(a, b), "Check failed");
  EXPECT_DEATH(MatMulSparseA(a, b), "Check failed");
}

TEST_F(MatrixDeathTest, TransposeKernelShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(4, 5);
  EXPECT_DEATH(MatMulTransposeA(a, b), "Check failed");  // needs a.rows == b.rows
  EXPECT_DEATH(MatMulTransposeB(a, b), "Check failed");  // needs a.cols == b.cols
}

TEST_F(MatrixDeathTest, ElementwiseShapeMismatchAborts) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  EXPECT_DEATH(a.AddInPlace(b), "Check failed");
  EXPECT_DEATH(Sub(a, b), "Check failed");
  EXPECT_DEATH(Hadamard(a, b), "Check failed");
}

TEST_F(MatrixDeathTest, BroadcastAndConcatShapeMismatchAborts) {
  Matrix a(2, 3);
  EXPECT_DEATH(AddRowBroadcast(a, Matrix(2, 3)), "Check failed");
  EXPECT_DEATH(AddRowBroadcast(a, Matrix(1, 2)), "Check failed");
  EXPECT_DEATH(ConcatCols(a, Matrix(3, 3)), "Check failed");
}

TEST_F(MatrixDeathTest, SliceAndCheckedAtOutOfRangeAborts) {
  Matrix a(2, 3);
  EXPECT_DEATH(a.SliceRows(0, 3), "Check failed");
  EXPECT_DEATH(a.SliceRows(-1, 2), "Check failed");
  EXPECT_DEATH(a.CheckedAt(2, 0), "Check failed");
  EXPECT_DEATH(a.CheckedAt(0, -1), "Check failed");
}

TEST_F(MatrixDeathTest, DcheckedAtCatchesOutOfBoundsWhenEnabled) {
#if ADPA_DCHECK_IS_ON
  Matrix a(2, 3);
  EXPECT_DEATH(a.At(2, 0), "Check failed");
  EXPECT_DEATH(a.At(0, 3), "Check failed");
  EXPECT_DEATH(a.Row(3), "Check failed");
#else
  GTEST_SKIP() << "ADPA_DCHECK compiled out (Release without "
                  "ADPA_FORCE_DCHECKS)";
#endif
}

TEST_F(MatrixDeathTest, CheckFiniteCatchesNanAndInf) {
  Matrix ok = Matrix::FromRows({{1.0f, -2.0f}, {0.0f, 3.5f}});
  ok.CheckFinite("ok");  // finite data must pass silently

  Matrix with_nan = ok;
  with_nan.At(1, 0) = std::nanf("");
  EXPECT_DEATH(with_nan.CheckFinite("grad"), "grad: non-finite");

  Matrix with_inf = ok;
  with_inf.At(0, 1) = std::numeric_limits<float>::infinity();
  EXPECT_DEATH(with_inf.CheckFinite("logits"), "logits: non-finite");
}

}  // namespace
}  // namespace adpa
