// Per-model tests: construction, shapes, gradient flow, and the ability to
// fit a small structured task. Parameterized across all 17 registered
// models so every implementation gets identical scrutiny.

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/models/adpa.h"
#include "src/models/factory.h"
#include "src/tensor/optimizer.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset TinyTask(uint64_t seed = 3) {
  DsbmConfig config;
  config.num_nodes = 120;
  config.num_classes = 3;
  config.avg_out_degree = 5.0;
  config.class_transition = HomophilousTransition(3, 0.8);
  config.feature_dim = 12;
  config.feature_noise = 0.8;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

std::vector<std::string> AllNamesPlusMlp() {
  std::vector<std::string> names = {"MLP"};
  for (const auto& n : AllModelNames()) names.push_back(n);
  return names;
}

class ModelSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelSuite, ForwardShapeIsNodesByClasses) {
  Dataset ds = TinyTask();
  Rng rng(1);
  ModelConfig config;
  config.hidden = 16;
  ModelPtr model = std::move(CreateModel(GetParam(), ds, config, &rng)).value();
  ag::Variable logits = model->Forward(/*training=*/false, &rng);
  EXPECT_EQ(logits.rows(), ds.num_nodes());
  EXPECT_EQ(logits.cols(), ds.num_classes);
}

TEST_P(ModelSuite, HasTrainableParametersAndGradientsFlow) {
  Dataset ds = TinyTask();
  Rng rng(2);
  ModelConfig config;
  config.hidden = 16;
  ModelPtr model = std::move(CreateModel(GetParam(), ds, config, &rng)).value();
  const auto params = model->Parameters();
  ASSERT_FALSE(params.empty());
  ag::Variable logits = model->Forward(/*training=*/true, &rng);
  ag::Variable loss =
      ag::MaskedCrossEntropy(logits, ds.labels, ds.train_idx);
  ag::Backward(loss);
  int64_t with_grad = 0;
  for (const auto& p : params) with_grad += !p.grad().empty();
  // Every registered parameter must participate in the graph.
  EXPECT_EQ(with_grad, static_cast<int64_t>(params.size()));
}

TEST_P(ModelSuite, LossDecreasesOverShortTraining) {
  Dataset ds = TinyTask();
  Rng rng(3);
  ModelConfig config;
  config.hidden = 16;
  config.dropout = 0.0f;
  ModelPtr model = std::move(CreateModel(GetParam(), ds, config, &rng)).value();
  Adam adam(model->Parameters(), 0.01f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 30; ++epoch) {
    adam.ZeroGrad();
    ag::Variable logits = model->Forward(true, &rng);
    ag::Variable loss =
        ag::MaskedCrossEntropy(logits, ds.labels, ds.train_idx);
    ag::Backward(loss);
    adam.Step();
    if (epoch == 0) first_loss = loss.value().At(0, 0);
    last_loss = loss.value().At(0, 0);
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST_P(ModelSuite, BeatsChanceOnEasyHomophilousTask) {
  Dataset ds = TinyTask();
  Rng rng(4);
  ModelConfig config;
  config.hidden = 16;
  ModelPtr model = std::move(CreateModel(GetParam(), ds, config, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 80;
  tc.patience = 40;
  const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
  // Chance is 1/3; every model must be well clear of it on this easy task.
  EXPECT_GT(result.test_accuracy, 0.55) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSuite,
                         ::testing::ValuesIn(AllNamesPlusMlp()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string name = i.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(FactoryTest, UnknownModelIsNotFound) {
  Dataset ds = TinyTask();
  Rng rng(5);
  Result<ModelPtr> r = CreateModel("NotAModel", ds, ModelConfig(), &rng);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FactoryTest, NameListsArePartition) {
  EXPECT_EQ(UndirectedModelNames().size(), 8u);
  EXPECT_EQ(DirectedModelNames().size(), 7u);
  EXPECT_EQ(AllModelNames().size(), 16u);
  for (const auto& name : UndirectedModelNames()) {
    EXPECT_FALSE(IsDirectedModel(name)) << name;
  }
  for (const auto& name : DirectedModelNames()) {
    EXPECT_TRUE(IsDirectedModel(name)) << name;
  }
  EXPECT_TRUE(IsDirectedModel("ADPA"));
}

// ------------------------------------------------------- ADPA specifics --

TEST(AdpaTest, PatternCountFollowsOrderRule) {
  Dataset ds = TinyTask();
  Rng rng(6);
  ModelConfig config;
  config.hidden = 16;
  config.pattern_order = 1;
  AdpaModel k1(ds, config, &rng);
  EXPECT_EQ(k1.patterns().size(), 2u);
  config.pattern_order = 2;
  AdpaModel k2(ds, config, &rng);
  EXPECT_EQ(k2.patterns().size(), 6u);
  config.pattern_order = 3;
  AdpaModel k3(ds, config, &rng);
  EXPECT_EQ(k3.patterns().size(), 14u);
}

class AdpaVariantTest : public ::testing::TestWithParam<DpAttention> {};

TEST_P(AdpaVariantTest, EveryAttentionVariantTrains) {
  Dataset ds = TinyTask();
  Rng rng(7);
  ModelConfig config;
  config.hidden = 16;
  config.dp_attention = GetParam();
  AdpaModel model(ds, config, &rng);
  TrainConfig tc;
  tc.max_epochs = 60;
  tc.patience = 30;
  const TrainResult result = TrainModel(&model, ds, tc, &rng);
  EXPECT_GT(result.test_accuracy, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Variants, AdpaVariantTest,
                         ::testing::Values(DpAttention::kOriginal,
                                           DpAttention::kGate,
                                           DpAttention::kRecursive,
                                           DpAttention::kJk),
                         [](const ::testing::TestParamInfo<DpAttention>& i) {
                           switch (i.param) {
                             case DpAttention::kOriginal: return "Original";
                             case DpAttention::kGate: return "Gate";
                             case DpAttention::kRecursive: return "Recursive";
                             case DpAttention::kJk: return "JK";
                           }
                           return "Unknown";
                         });

TEST(AdpaTest, AblationSwitchesStillTrain) {
  Dataset ds = TinyTask();
  for (const bool use_dp : {true, false}) {
    for (const bool use_hop : {true, false}) {
      Rng rng(8);
      ModelConfig config;
      config.hidden = 16;
      config.use_dp_attention = use_dp;
      config.use_hop_attention = use_hop;
      AdpaModel model(ds, config, &rng);
      TrainConfig tc;
      tc.max_epochs = 40;
      tc.patience = 40;
      const TrainResult result = TrainModel(&model, ds, tc, &rng);
      EXPECT_GT(result.test_accuracy, 0.45)
          << "dp=" << use_dp << " hop=" << use_hop;
    }
  }
}

TEST(AdpaTest, InitialResidualToggleChangesBlockCount) {
  Dataset ds = TinyTask();
  Rng rng(9);
  ModelConfig config;
  config.hidden = 16;
  config.initial_residual = false;
  AdpaModel model(ds, config, &rng);
  ag::Variable logits = model.Forward(false, &rng);
  EXPECT_EQ(logits.rows(), ds.num_nodes());  // still functional without X⁰
}

TEST(AdpaTest, WorksOnUndirectedInputToo) {
  // The paper's claim: ADPA is a feasible choice for AMUndirected as well.
  Dataset ds = TinyTask().WithUndirectedGraph();
  Rng rng(10);
  ModelConfig config;
  config.hidden = 16;
  AdpaModel model(ds, config, &rng);
  TrainConfig tc;
  tc.max_epochs = 60;
  tc.patience = 30;
  const TrainResult result = TrainModel(&model, ds, tc, &rng);
  EXPECT_GT(result.test_accuracy, 0.55);
}

}  // namespace
}  // namespace adpa
