// Gradient correctness tests: every autograd op is checked against central
// finite differences through a scalar loss.

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/graph/sparse_matrix.h"
#include "src/tensor/autograd.h"

namespace adpa {
namespace {

/// Builds loss(params) -> 1x1 Variable. The callable must rebuild the graph
/// from the *current values* of the given leaf parameters on every call.
using LossFn =
    std::function<ag::Variable(const std::vector<ag::Variable>& params)>;

/// Checks d(loss)/d(params) via central differences with step `eps`.
void CheckGradients(const LossFn& loss_fn, std::vector<ag::Variable> params,
                    float eps = 1e-3f, float tolerance = 2e-2f) {
  ag::Variable loss = loss_fn(params);
  for (auto& p : params) p.ZeroGrad();
  ag::Backward(loss);
  for (size_t k = 0; k < params.size(); ++k) {
    Matrix analytic = params[k].grad();
    ASSERT_FALSE(analytic.empty()) << "param " << k << " got no gradient";
    Matrix* value = params[k].mutable_value();
    for (int64_t i = 0; i < value->size(); ++i) {
      const float original = value->data()[i];
      value->data()[i] = original + eps;
      const float up = loss_fn(params).value().At(0, 0);
      value->data()[i] = original - eps;
      const float down = loss_fn(params).value().At(0, 0);
      value->data()[i] = original;
      const float numeric = (up - down) / (2.0f * eps);
      EXPECT_NEAR(analytic.data()[i], numeric,
                  tolerance * std::max(1.0f, std::fabs(numeric)))
          << "param " << k << " entry " << i;
    }
  }
}

ag::Variable RandomParam(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  return ag::Parameter(Matrix::RandomNormal(rows, cols, &rng, 0.0f, 0.7f));
}

TEST(AutogradTest, AddGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Mul(ag::Add(p[0], p[1]), ag::Add(p[0], p[1])));
      },
      {RandomParam(3, 2, 1), RandomParam(3, 2, 2)});
}

TEST(AutogradTest, SubGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Mul(ag::Sub(p[0], p[1]), ag::Sub(p[0], p[1])));
      },
      {RandomParam(2, 4, 3), RandomParam(2, 4, 4)});
}

TEST(AutogradTest, MatMulGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Mul(ag::MatMul(p[0], p[1]),
                                  ag::MatMul(p[0], p[1])));
      },
      {RandomParam(3, 4, 5), RandomParam(4, 2, 6)});
}

TEST(AutogradTest, MatMulTransposeAGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::MatMulTransposeA(p[0], p[1]);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(4, 3, 7), RandomParam(4, 2, 8)});
}

TEST(AutogradTest, AddBiasGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::AddBias(p[0], p[1]);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(3, 4, 9), RandomParam(1, 4, 10)});
}

TEST(AutogradTest, SpMMGradients) {
  SparseMatrix a = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0f}, {1, 0, -1.0f}, {1, 2, 0.5f}, {2, 2, 3.0f}});
  CheckGradients(
      [a](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::SpMM(a, p[0]);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(3, 2, 11)});
}

TEST(AutogradTest, ReluGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Mul(ag::Relu(p[0]), ag::Relu(p[0])));
      },
      {RandomParam(4, 4, 12)});
}

TEST(AutogradTest, LeakyReluGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::LeakyRelu(p[0], 0.1f);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(4, 3, 13)});
}

TEST(AutogradTest, SigmoidGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Sigmoid(p[0]));
      },
      {RandomParam(3, 3, 14)});
}

TEST(AutogradTest, TanhGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        return ag::SumAll(ag::Mul(ag::Tanh(p[0]), ag::Tanh(p[0])));
      },
      {RandomParam(3, 3, 15)});
}

TEST(AutogradTest, ConcatAndSliceGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable cat = ag::ConcatCols({p[0], p[1]});
        ag::Variable left = ag::SliceCols(cat, 0, 2);
        ag::Variable right = ag::SliceCols(cat, 2, 5);
        return ag::Add(ag::SumAll(ag::Mul(left, left)),
                       ag::SumAll(ag::Mul(right, right)));
      },
      {RandomParam(3, 2, 16), RandomParam(3, 3, 17)});
}

TEST(AutogradTest, ScaleRowsGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::ScaleRows(p[0], p[1]);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(4, 3, 18), RandomParam(4, 1, 19)});
}

TEST(AutogradTest, ScaleScalarGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable out = ag::ScaleScalar(p[0], p[1]);
        return ag::SumAll(ag::Mul(out, out));
      },
      {RandomParam(3, 3, 20), RandomParam(1, 1, 21)});
}

TEST(AutogradTest, SoftmaxRowsGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable s = ag::SoftmaxRows(p[0]);
        // Weighted sum so the gradient is not trivially zero.
        return ag::SumAll(ag::Mul(s, p[1]));
      },
      {RandomParam(3, 4, 22), RandomParam(3, 4, 23)});
}

TEST(AutogradTest, LogSoftmaxGradients) {
  CheckGradients(
      [](const std::vector<ag::Variable>& p) {
        ag::Variable s = ag::LogSoftmaxRows(p[0]);
        return ag::SumAll(ag::Mul(s, p[1]));
      },
      {RandomParam(3, 4, 24), RandomParam(3, 4, 25)});
}

TEST(AutogradTest, MaskedCrossEntropyGradients) {
  const std::vector<int64_t> labels = {0, 2, 1, 2};
  const std::vector<int64_t> mask = {0, 2, 3};
  CheckGradients(
      [&](const std::vector<ag::Variable>& p) {
        return ag::MaskedCrossEntropy(p[0], labels, mask);
      },
      {RandomParam(4, 3, 26)});
}

TEST(AutogradTest, ChainedGraphGradients) {
  // A miniature GCN-like composite: relu(A relu(X W1) W2) -> CE loss.
  SparseMatrix a = SparseMatrix::FromTriplets(
      3, 3,
      {{0, 0, 0.5f}, {0, 1, 0.5f}, {1, 1, 1.0f}, {2, 0, 0.3f}, {2, 2, 0.7f}});
  Rng rng(27);
  Matrix x = Matrix::RandomNormal(3, 4, &rng);
  const std::vector<int64_t> labels = {0, 1, 1};
  const std::vector<int64_t> mask = {0, 1, 2};
  CheckGradients(
      [&](const std::vector<ag::Variable>& p) {
        ag::Variable h = ag::Relu(ag::MatMul(ag::Constant(x), p[0]));
        ag::Variable logits = ag::MatMul(ag::SpMM(a, h), p[1]);
        return ag::MaskedCrossEntropy(logits, labels, mask);
      },
      {RandomParam(4, 5, 28), RandomParam(5, 2, 29)});
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  ag::Variable p = RandomParam(2, 2, 30);
  ag::Variable loss1 = ag::SumAll(p);
  ag::Backward(loss1);
  Matrix first = p.grad();
  ag::Variable loss2 = ag::SumAll(p);
  ag::Backward(loss2);
  EXPECT_TRUE(AllClose(p.grad(), Scale(first, 2.0f)));
  p.ZeroGrad();
  EXPECT_TRUE(p.grad().empty());
}

TEST(AutogradTest, ConstantsReceiveNoGradient) {
  ag::Variable c = ag::Constant(Matrix(2, 2, 1.0f));
  ag::Variable p = RandomParam(2, 2, 31);
  ag::Variable loss = ag::SumAll(ag::Mul(c, p));
  ag::Backward(loss);
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FALSE(p.grad().empty());
}

TEST(AutogradTest, DropoutEvalIsIdentity) {
  Rng rng(32);
  ag::Variable p = RandomParam(5, 5, 33);
  ag::Variable out = ag::Dropout(p, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(AllClose(out.value(), p.value()));
}

TEST(AutogradTest, DropoutTrainScalesSurvivors) {
  Rng rng(34);
  ag::Variable p = ag::Parameter(Matrix(40, 40, 1.0f));
  ag::Variable out = ag::Dropout(p, 0.25f, /*training=*/true, &rng);
  int64_t zeros = 0;
  for (int64_t i = 0; i < out.value().size(); ++i) {
    const float v = out.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5f);
    }
  }
  const double drop_rate = static_cast<double>(zeros) / out.value().size();
  EXPECT_NEAR(drop_rate, 0.25, 0.05);
}

TEST(AutogradTest, DropoutMatchesDropoutWithPrecomputedMask) {
  // Dropout(p, ...) is defined as DropoutWithMask over a mask drawn from
  // the same Rng stream, so the two paths must agree bit-for-bit. The
  // split exists so gradcheck can freeze the mask across FD probes.
  ag::Variable p = RandomParam(6, 4, 36);
  Rng mask_rng_a(37), mask_rng_b(37);
  const Matrix mask = ag::DropoutMask(6, 4, 0.3f, &mask_rng_a);
  ag::Variable via_mask = ag::DropoutWithMask(p, mask);
  ag::Variable via_dropout = ag::Dropout(p, 0.3f, /*training=*/true,
                                         &mask_rng_b);
  EXPECT_TRUE(AllClose(via_mask.value(), via_dropout.value(), 0.0f));
}

TEST(AutogradTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(p + p): gradient must be 2 everywhere (two paths to p).
  ag::Variable p = RandomParam(2, 3, 35);
  ag::Variable loss = ag::SumAll(ag::Add(p, p));
  ag::Backward(loss);
  EXPECT_TRUE(AllClose(p.grad(), Matrix(2, 3, 2.0f)));
}

// Shape checks fire at node construction, not first use, so a bad graph
// aborts where it is built.
class AutogradDeathTest : public ::testing::Test {
 protected:
  AutogradDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(AutogradDeathTest, OpConstructionRejectsShapeMismatches) {
  ag::Variable a = ag::Parameter(Matrix(2, 3));
  ag::Variable b = ag::Parameter(Matrix(4, 2));
  EXPECT_DEATH(ag::MatMul(a, b), "MatMul shape mismatch");
  EXPECT_DEATH(ag::MatMulTransposeA(a, b), "MatMulTransposeA shape mismatch");
  EXPECT_DEATH(ag::Add(a, b), "Check failed");
  EXPECT_DEATH(ag::AddBias(a, ag::Parameter(Matrix(1, 2))), "Check failed");
}

TEST_F(AutogradDeathTest, SpMMRejectsOperandWithWrongRowCount) {
  SparseMatrix op = SparseMatrix::Identity(3);
  ag::Variable x = ag::Parameter(Matrix(4, 2));
  EXPECT_DEATH(ag::SpMM(op, x), "SpMM shape mismatch");
}

TEST_F(AutogradDeathTest, DefaultConstructedVariableAccessorsAbort) {
#if ADPA_DCHECK_IS_ON
  ag::Variable v;
  EXPECT_DEATH(v.value(), "default-constructed Variable");
  EXPECT_DEATH(v.grad(), "default-constructed Variable");
  EXPECT_DEATH(v.requires_grad(), "default-constructed Variable");
  EXPECT_DEATH(v.rows(), "default-constructed Variable");
  EXPECT_DEATH(v.cols(), "default-constructed Variable");
  EXPECT_DEATH(v.mutable_value(), "default-constructed Variable");
#else
  GTEST_SKIP() << "accessor guards are ADPA_DCHECKs, off in this build";
#endif
}

}  // namespace
}  // namespace adpa
