// Serving subsystem tests: the no-tape InferenceSession must be bitwise
// identical to the training model's eval forward for every DP-attention
// variant and ablation; batched/subset queries must match full forwards;
// the micro-batcher must answer concurrent clients correctly; the JSON
// lines codec must accept exactly the request schema.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/serve/batcher.h"
#include "src/serve/engine.h"
#include "src/serve/jsonl.h"
#include "src/serve/metrics.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset Tiny(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 60;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      static_cast<size_t>(a.size()) * sizeof(float)) == 0);
}

struct SessionFixture {
  Dataset dataset;
  ModelPtr model;
  Checkpoint checkpoint;
  Matrix eval_logits;

  SessionFixture(ModelConfig config, uint64_t seed = 21)
      : dataset(Tiny(seed)) {
    Rng rng(seed);
    model = std::move(CreateModel("ADPA", dataset, config, &rng)).value();
    eval_logits = model->Forward(/*training=*/false, &rng).value();
    checkpoint =
        MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());
  }

  serve::InferenceSession Session(
      const serve::EngineOptions& options = {}) const {
    Result<serve::InferenceSession> session =
        serve::InferenceSession::Create(checkpoint, dataset, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return std::move(*session);
  }
};

ModelConfig SmallConfig() {
  ModelConfig config;
  config.hidden = 16;
  config.dropout = 0.4f;  // must be elided in eval — the parity proves it
  return config;
}

TEST(InferenceSessionTest, MatchesEvalForwardBitwiseForEveryVariant) {
  for (DpAttention variant :
       {DpAttention::kOriginal, DpAttention::kGate, DpAttention::kRecursive,
        DpAttention::kJk}) {
    ModelConfig config = SmallConfig();
    config.dp_attention = variant;
    SessionFixture fixture(config);
    serve::InferenceSession session = fixture.Session();
    EXPECT_TRUE(BitwiseEqual(session.ForwardAll(), fixture.eval_logits))
        << "variant " << static_cast<int>(variant)
        << " diverged from the training-path eval forward";
  }
}

TEST(InferenceSessionTest, MatchesEvalForwardForAblations) {
  {
    ModelConfig config = SmallConfig();
    config.use_dp_attention = false;
    SessionFixture fixture(config);
    EXPECT_TRUE(
        BitwiseEqual(fixture.Session().ForwardAll(), fixture.eval_logits));
  }
  {
    ModelConfig config = SmallConfig();
    config.use_hop_attention = false;
    SessionFixture fixture(config);
    EXPECT_TRUE(
        BitwiseEqual(fixture.Session().ForwardAll(), fixture.eval_logits));
  }
  {
    ModelConfig config = SmallConfig();
    config.initial_residual = false;
    SessionFixture fixture(config);
    EXPECT_TRUE(
        BitwiseEqual(fixture.Session().ForwardAll(), fixture.eval_logits));
  }
  {
    ModelConfig config = SmallConfig();
    config.propagation_steps = 1;  // hop attention degenerates
    config.num_layers = 3;         // deeper classifier head
    SessionFixture fixture(config);
    EXPECT_TRUE(
        BitwiseEqual(fixture.Session().ForwardAll(), fixture.eval_logits));
  }
}

TEST(InferenceSessionTest, ForwardRowsEqualsFullForwardRows) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  const std::vector<int64_t> nodes = {5, 0, 17, 5, 59};
  Result<Matrix> subset = session.ForwardRows(nodes);
  ASSERT_TRUE(subset.ok());
  ASSERT_EQ(subset->rows(), static_cast<int64_t>(nodes.size()));
  const Matrix full = session.ForwardAll();
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int64_t c = 0; c < full.cols(); ++c) {
      EXPECT_EQ(subset->At(static_cast<int64_t>(i), c),
                full.At(nodes[i], c))
          << "row " << i << " (node " << nodes[i] << ") col " << c;
    }
  }
}

TEST(InferenceSessionTest, RejectsBadInputs) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  EXPECT_FALSE(session.ForwardRows({}).ok());
  EXPECT_FALSE(session.ForwardRows({-1}).ok());
  EXPECT_FALSE(session.ForwardRows({session.num_nodes()}).ok());

  // Wrong dataset: content hash must protect the deployment.
  Dataset other = Tiny(99);
  Result<serve::InferenceSession> mismatch =
      serve::InferenceSession::Create(fixture.checkpoint, other);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);

  // Truncated tensor list: positional binding must fail loudly.
  Checkpoint broken = fixture.checkpoint;
  broken.tensors.pop_back();
  EXPECT_FALSE(
      serve::InferenceSession::Create(broken, fixture.dataset).ok());
}

TEST(InferenceSessionTest, PropagationCacheHitReproducesResults) {
  SessionFixture fixture(SmallConfig());
  serve::EngineOptions options;
  options.propagation_cache_path =
      testing::TempDir() + "/serve_propagation.cache";
  std::remove(options.propagation_cache_path.c_str());  // stale previous run
  serve::InferenceSession first = fixture.Session(options);
  EXPECT_FALSE(first.used_propagation_cache()) << "first run must miss";
  serve::InferenceSession second = fixture.Session(options);
  EXPECT_TRUE(second.used_propagation_cache()) << "second run must hit";
  EXPECT_TRUE(BitwiseEqual(second.ForwardAll(), fixture.eval_logits));
}

TEST(MicroBatcherTest, CoalescesConcurrentClientsWithoutChangingAnswers) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::ServeMetrics metrics;
  serve::MicroBatcher batcher(&session, &metrics);

  // Ground truth, computed without the batcher.
  const std::vector<std::vector<int64_t>> queries = {
      {0, 1, 2}, {3}, {4, 5}, {6, 7, 8, 9}, {10}, {11, 12},
      {13}, {14, 15}, {16, 17, 18}, {19}, {0, 19}, {7}};
  std::vector<std::vector<int64_t>> expected;
  for (const auto& nodes : queries) {
    expected.push_back(std::move(session.Classify(nodes)).value());
  }

  std::thread pump([&batcher] {
    while (batcher.PumpOnce()) {
    }
  });

  constexpr int kClients = 4;
  std::vector<std::vector<int>> mismatches(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = static_cast<size_t>(c); q < queries.size();
           q += kClients) {
        Result<std::vector<int64_t>> got = batcher.Submit(queries[q]).Wait();
        if (!got.ok() || *got != expected[q]) {
          mismatches[c].push_back(static_cast<int>(q));
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  batcher.Shutdown();
  pump.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(mismatches[c].empty())
        << "client " << c << " got wrong answers";
  }
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.requests, queries.size());
  EXPECT_EQ(snapshot.errors, 0u);
  uint64_t total_nodes = 0;
  for (const auto& nodes : queries) total_nodes += nodes.size();
  EXPECT_EQ(snapshot.nodes, total_nodes);
  EXPECT_GE(snapshot.batches, 1u);
  EXPECT_LE(snapshot.batches, snapshot.requests);
  EXPECT_GE(snapshot.max_queue_depth, 1);
}

TEST(MicroBatcherTest, ErrorsStayPerRequest) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::MicroBatcher batcher(&session, nullptr);
  auto good = batcher.Submit({0, 1});
  auto bad = batcher.Submit({session.num_nodes() + 5});
  auto also_good = batcher.Submit({2});
  while (batcher.queue_depth() > 0) batcher.PumpOnce();
  EXPECT_TRUE(good.Wait().ok());
  EXPECT_FALSE(bad.Wait().ok());
  EXPECT_TRUE(also_good.Wait().ok())
      << "a bad batch mate must not poison this request";
}

TEST(MicroBatcherTest, ShutdownFailsLateSubmitsInsteadOfHanging) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::MicroBatcher batcher(&session, nullptr);
  batcher.Shutdown();
  Result<std::vector<int64_t>> late = batcher.Submit({0}).Wait();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(batcher.PumpOnce());
}

TEST(MicroBatcherTest, FullQueueRejectsWithRetryableOverloadError) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::ServeMetrics metrics;
  serve::MicroBatcher::Options options;
  options.max_queue_depth = 1;
  serve::MicroBatcher batcher(&session, &metrics, options);

  auto accepted = batcher.Submit({0});
  auto rejected = batcher.Submit({1});  // queue already at its ceiling
  Result<std::vector<int64_t>> overflow = rejected.Wait();
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable)
      << "queue-full must be the retryable overload code, got "
      << overflow.status().ToString();
  EXPECT_NE(overflow.status().message().find("queue full"),
            std::string::npos);

  while (batcher.queue_depth() > 0) batcher.PumpOnce();
  EXPECT_TRUE(accepted.Wait().ok())
      << "the request that made it into the queue must still be served";
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.rejected, 1u);
  EXPECT_EQ(snapshot.shed, 0u);
}

TEST(MicroBatcherTest, ExpiredDeadlineShedsInsteadOfServingStale) {
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::ServeMetrics metrics;
  serve::MicroBatcher batcher(&session, &metrics);

  auto doomed = batcher.Submit({0, 1}, /*deadline_ms=*/1);
  auto patient = batcher.Submit({2}, /*deadline_ms=*/600000);
  auto forever = batcher.Submit({3});  // 0 = no deadline
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  while (batcher.queue_depth() > 0) batcher.PumpOnce();

  Result<std::vector<int64_t>> shed = doomed.Wait();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("deadline"), std::string::npos);
  EXPECT_TRUE(patient.Wait().ok());
  EXPECT_TRUE(forever.Wait().ok());
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.shed, 1u);
  EXPECT_EQ(snapshot.rejected, 0u);
}

TEST(MicroBatcherTest, PumpReturnsTrueWhenEverythingPendingWasShed) {
  // A pump round that sheds its whole queue must report "keep pumping",
  // not "drained and shut down".
  SessionFixture fixture(SmallConfig());
  serve::InferenceSession session = fixture.Session();
  serve::MicroBatcher batcher(&session, nullptr);
  auto doomed = batcher.Submit({0}, /*deadline_ms=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(batcher.PumpOnce());
  EXPECT_FALSE(doomed.Wait().ok());
}

TEST(ServeMetricsTest, LatencyMemoryIsBoundedButStatsStayRepresentative) {
  // Far more requests than the reservoir holds: the mean must stay exact
  // (running sum) and the sampled percentiles representative of the whole
  // 1..100 ms stream, not just a recent window.
  serve::ServeMetrics metrics;
  constexpr size_t kTotal = 12800;  // > 3x kLatencyReservoirCapacity
  static_assert(kTotal > 3 * serve::ServeMetrics::kLatencyReservoirCapacity,
                "test must overflow the reservoir");
  for (size_t i = 0; i < kTotal; ++i) {
    metrics.RecordRequest(static_cast<double>(i % 100) + 1.0, 1, true);
  }
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.requests, kTotal);
  EXPECT_NEAR(snapshot.mean_latency_ms, 50.5, 1e-9);
  EXPECT_NEAR(snapshot.p50_latency_ms, 50.0, 10.0);
  EXPECT_NEAR(snapshot.p99_latency_ms, 99.0, 5.0);
  EXPECT_GT(snapshot.p99_latency_ms, snapshot.p50_latency_ms);
}

TEST(ServeMetricsTest, PercentilesUseNearestRank) {
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) values.push_back(i);
  EXPECT_EQ(serve::Percentile(values, 50.0), 50.0);
  EXPECT_EQ(serve::Percentile(values, 99.0), 99.0);
  EXPECT_EQ(serve::Percentile(values, 100.0), 100.0);
  EXPECT_EQ(serve::Percentile(values, 0.0), 1.0);
  EXPECT_EQ(serve::Percentile({}, 50.0), 0.0);
}

TEST(JsonlTest, ParsesTheRequestSchema) {
  Result<serve::ServeRequest> request =
      serve::ParseRequestLine(R"({"id": 7, "nodes": [0, 12, 3]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, 7);
  EXPECT_EQ(request->nodes, (std::vector<int64_t>{0, 12, 3}));

  // Key order is free; empty arrays and negative ids are legal JSON here.
  request = serve::ParseRequestLine(R"({"nodes":[],"id":-2})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, -2);
  EXPECT_TRUE(request->nodes.empty());
}

TEST(JsonlTest, RejectsEverythingOutsideTheSchema) {
  const char* bad[] = {
      "",
      "not json",
      "{}",
      R"({"id": 1})",
      R"({"nodes": [1]})",
      R"({"id": 1, "nodes": [1], "extra": 2})",
      R"({"id": 1, "id": 2, "nodes": []})",
      R"({"id": 1, "nodes": [1,]})",
      R"({"id": 1, "nodes": [1]} trailing)",
      R"({"id": 99999999999999999999, "nodes": []})",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(serve::ParseRequestLine(line).ok())
        << "accepted: " << line;
  }
  // The node-count ceiling must bound the array before building it.
  EXPECT_FALSE(
      serve::ParseRequestLine(R"({"id":1,"nodes":[1,2,3]})", 2).ok());
}

TEST(JsonlTest, FormatsRepliesWithEscaping) {
  EXPECT_EQ(serve::FormatClassesReply(7, {1, 0, 2}),
            R"({"id":7,"classes":[1,0,2]})");
  EXPECT_EQ(serve::FormatClassesReply(-1, {}), R"({"id":-1,"classes":[]})");
  EXPECT_EQ(serve::FormatErrorReply(3, "bad \"node\"\n"),
            R"({"id":3,"error":"bad \"node\"\n"})");
}

TEST(JsonlTest, ParsesOptionalDeadline) {
  Result<serve::ServeRequest> request = serve::ParseRequestLine(
      R"({"id": 7, "nodes": [1], "deadline_ms": 50})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->deadline_ms, 50);

  request = serve::ParseRequestLine(R"({"deadline_ms":0,"id":1,"nodes":[]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->deadline_ms, 0);

  // Absent key means no deadline.
  request = serve::ParseRequestLine(R"({"id":1,"nodes":[2]})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->deadline_ms, 0);

  EXPECT_FALSE(serve::ParseRequestLine(
                   R"({"id":1,"nodes":[],"deadline_ms":-5})")
                   .ok());
  EXPECT_FALSE(serve::ParseRequestLine(
                   R"({"id":1,"nodes":[],"deadline_ms":1,"deadline_ms":2})")
                   .ok());
}

TEST(JsonlTest, FormatsTheStructuredOverloadReply) {
  EXPECT_EQ(serve::FormatOverloadedReply(9, "queue full"),
            R"({"id":9,"error":"overloaded","detail":"queue full"})");
  EXPECT_EQ(serve::FormatOverloadedReply(-1, "say \"later\"\n"),
            R"({"id":-1,"error":"overloaded","detail":"say \"later\"\n"})");
}

}  // namespace
}  // namespace adpa
