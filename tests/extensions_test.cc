// Tests for the extension surface: grid search, extended baselines
// (H2GCN / APPNP / GraphSAGE), label propagation, and the Sec. IV-B
// correlation-guided DP selection.

#include <gtest/gtest.h>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/models/extended.h"
#include "src/models/factory.h"
#include "src/models/label_propagation.h"
#include "src/train/grid_search.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset SmallTask(uint64_t seed = 2, double in_class = 0.8) {
  DsbmConfig config;
  config.num_nodes = 150;
  config.num_classes = 3;
  config.avg_out_degree = 5.0;
  config.class_transition = HomophilousTransition(3, in_class);
  config.feature_dim = 10;
  config.feature_noise = 1.2;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

// ------------------------------------------------------------ GridSearch --

TEST(GridSearchTest, EvaluatesFullGrid) {
  Dataset ds = SmallTask();
  GridSearchSpace space;
  space.learning_rates = {0.01f, 0.001f};
  space.dropouts = {0.2f, 0.5f};
  TrainConfig tc;
  tc.max_epochs = 20;
  tc.patience = 10;
  Result<GridSearchResult> result =
      GridSearch("SGC", ds, ModelConfig(), tc, space);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trials.size(), 4u);
  for (const GridTrial& trial : result->trials) {
    EXPECT_LE(trial.val_accuracy, result->best.val_accuracy);
  }
}

TEST(GridSearchTest, EmptyAxesFallBackToBaseConfig) {
  Dataset ds = SmallTask();
  GridSearchSpace space;
  space.learning_rates = {0.01f};
  space.dropouts = {};  // keep base dropout
  ModelConfig base;
  base.dropout = 0.33f;
  TrainConfig tc;
  tc.max_epochs = 10;
  Result<GridSearchResult> result = GridSearch("SGC", ds, base, tc, space);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trials.size(), 1u);
  EXPECT_FLOAT_EQ(result->trials[0].model_config.dropout, 0.33f);
}

TEST(GridSearchTest, PropagatesUnknownModel) {
  Dataset ds = SmallTask();
  Result<GridSearchResult> result =
      GridSearch("Nope", ds, ModelConfig(), TrainConfig(), GridSearchSpace());
  EXPECT_FALSE(result.ok());
}

TEST(GridSearchTest, IsDeterministic) {
  Dataset ds = SmallTask();
  GridSearchSpace space;
  space.learning_rates = {0.01f};
  space.dropouts = {0.4f};
  TrainConfig tc;
  tc.max_epochs = 15;
  Result<GridSearchResult> a = GridSearch("GCN", ds, ModelConfig(), tc, space);
  Result<GridSearchResult> b = GridSearch("GCN", ds, ModelConfig(), tc, space);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->best.val_accuracy, b->best.val_accuracy);
  EXPECT_DOUBLE_EQ(a->best.test_accuracy, b->best.test_accuracy);
}

// -------------------------------------------------------- Extended models --

class ExtendedModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtendedModelTest, TrainsAboveChance) {
  Dataset ds = SmallTask().WithUndirectedGraph();
  Rng rng(4);
  ModelConfig config;
  config.hidden = 16;
  Result<ModelPtr> model = CreateModel(GetParam(), ds, config, &rng);
  ASSERT_TRUE(model.ok());
  TrainConfig tc;
  tc.max_epochs = 60;
  tc.patience = 30;
  const TrainResult result = TrainModel(model->get(), ds, tc, &rng);
  EXPECT_GT(result.test_accuracy, 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Extensions, ExtendedModelTest,
                         ::testing::ValuesIn(ExtendedModelNames()));

TEST(ExtendedModelTest, H2GcnBeatsGcnUnderHeterophily) {
  // The design motivation: ego/neighbor separation and 2-hop neighborhoods
  // rescue accuracy when 1-hop neighbors are mostly cross-class.
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 4;
  config.avg_out_degree = 6.0;
  config.class_transition = SymmetricHeterophilousTransition(4, 0.05);
  config.reciprocal_prob = 1.0;
  config.feature_dim = 16;
  config.feature_noise = 2.5;
  config.seed = 11;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng srng(11);
  Split split =
      std::move(SplitFractions(ds.labels, 4, 0.5, 0.25, &srng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;

  auto run = [&](const char* name) {
    double total = 0.0;
    for (uint64_t seed : {1u, 2u, 3u}) {
      Rng rng(seed);
      ModelPtr model =
          std::move(CreateModel(name, ds, ModelConfig(), &rng)).value();
      TrainConfig tc;
      tc.max_epochs = 80;
      tc.patience = 20;
      total += TrainModel(model.get(), ds, tc, &rng).test_accuracy;
    }
    return total / 3.0;
  };
  EXPECT_GT(run("H2GCN"), run("GCN"));
}

// ------------------------------------------------------ Label propagation --

TEST(LabelPropagationTest, PerfectOnHomophilousClusters) {
  // Two disjoint same-label triangles with one labeled node each.
  Dataset ds;
  ds.graph = Digraph::CreateOrDie(
      6, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2},
          {3, 4}, {4, 3}, {4, 5}, {5, 4}, {5, 3}, {3, 5}});
  ds.features = Matrix(6, 1);
  ds.labels = {0, 0, 0, 1, 1, 1};
  ds.num_classes = 2;
  ds.train_idx = {0, 3};
  ds.test_idx = {1, 2, 4, 5};
  const LabelPropagationResult result = PropagateLabels(ds, 10, 0.1f);
  EXPECT_EQ(result.predictions, ds.labels);
  EXPECT_DOUBLE_EQ(LabelPropagationAccuracy(ds), 1.0);
}

TEST(LabelPropagationTest, TrainRowsStayClamped) {
  Dataset ds = SmallTask();
  const LabelPropagationResult result = PropagateLabels(ds, 5, 0.2f);
  for (int64_t i : ds.train_idx) {
    EXPECT_EQ(result.predictions[i], ds.labels[i]);
  }
}

TEST(LabelPropagationTest, StrongOnHomophilyWeakOnRandomTopology) {
  Dataset homophilous = SmallTask(7, 0.85);
  Dataset random = SmallTask(7, 1.0 / 3.0);  // uniform transition
  const double acc_homophilous =
      LabelPropagationAccuracy(homophilous.WithUndirectedGraph());
  const double acc_random =
      LabelPropagationAccuracy(random.WithUndirectedGraph());
  EXPECT_GT(acc_homophilous, 0.7);
  EXPECT_GT(acc_homophilous, acc_random + 0.2);
}

// ----------------------------------------------------------- DP selection --

TEST(DpSelectionTest, MaskedCorrelationMatchesFullOnCompleteMask) {
  Dataset ds = SmallTask(9);
  PatternSet patterns(ds.graph.AdjacencyMatrix(), 0.5, false);
  std::vector<int64_t> all_nodes;
  for (int64_t i = 0; i < ds.num_nodes(); ++i) all_nodes.push_back(i);
  for (const DirectedPattern& p : SecondOrderPatterns()) {
    const SparseMatrix reach = patterns.Reachability(p);
    EXPECT_NEAR(PatternLabelCorrelationMasked(reach, ds.labels, all_nodes),
                PatternLabelCorrelation(reach, ds.labels), 1e-12);
  }
}

TEST(DpSelectionTest, PicksHomophilousPatternsOnCyclicGraph) {
  // On a cyclic class progression, A*AT and AT*A are the label-aligned
  // operators; selection with keep=2 must surface them.
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 5;
  config.avg_out_degree = 6.0;
  config.class_transition = CyclicTransition(5, 0.85, 0.05);
  config.feature_dim = 4;
  config.seed = 13;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(13);
  Split split =
      std::move(SplitFractions(ds.labels, 5, 0.5, 0.25, &rng)).value();
  Result<std::vector<DirectedPattern>> selected =
      SelectPatternsByCorrelation(ds.graph, ds.labels, split.train,
                                  /*max_order=*/2, /*keep=*/2);
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected->size(), 2u);
  for (const DirectedPattern& p : *selected) {
    EXPECT_TRUE(p.Name() == "A*AT" || p.Name() == "AT*A") << p.Name();
  }
}

TEST(DpSelectionTest, ValidatesArguments) {
  Dataset ds = SmallTask(15);
  EXPECT_FALSE(SelectPatternsByCorrelation(ds.graph, ds.labels,
                                           ds.train_idx, 0, 2).ok());
  EXPECT_FALSE(SelectPatternsByCorrelation(ds.graph, ds.labels,
                                           ds.train_idx, 2, 0).ok());
  EXPECT_FALSE(
      SelectPatternsByCorrelation(ds.graph, ds.labels, {0}, 2, 2).ok());
}

TEST(DpSelectionTest, AdpaWithSelectionStillTrains) {
  Dataset ds = SmallTask(17);
  Rng rng(17);
  ModelConfig config;
  config.hidden = 16;
  config.select_patterns = 3;
  ModelPtr model = std::move(CreateModel("ADPA", ds, config, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 50;
  tc.patience = 25;
  EXPECT_GT(TrainModel(model.get(), ds, tc, &rng).test_accuracy, 0.5);
}

}  // namespace
}  // namespace adpa
