// Tests for layers, initializers, and optimizers.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/tensor/autograd.h"
#include "src/tensor/nn.h"
#include "src/tensor/optimizer.h"

namespace adpa {
namespace {

TEST(InitTest, GlorotUniformWithinLimit) {
  Rng rng(1);
  Matrix w = nn::GlorotUniform(30, 50, &rng);
  const float limit = std::sqrt(6.0f / 80.0f);
  for (int64_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w.data()[i], -limit);
    EXPECT_LE(w.data()[i], limit);
  }
}

TEST(InitTest, KaimingNormalVariance) {
  Rng rng(2);
  Matrix w = nn::KaimingNormal(200, 200, &rng);
  double sq = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) sq += w.data()[i] * w.data()[i];
  EXPECT_NEAR(sq / w.size(), 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(3);
  nn::Linear layer(4, 3, &rng);
  ag::Variable x = ag::Constant(Matrix(5, 4, 1.0f));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // W and b
  nn::Linear no_bias(4, 3, &rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, BiasStartsAtZeroSoForwardIsPureMatmul) {
  Rng rng(4);
  nn::Linear layer(3, 2, &rng);
  Matrix x_val = Matrix::FromRows({{1, 0, 0}});
  ag::Variable y = layer.Forward(ag::Constant(x_val));
  // With zero bias, output row equals first row of W.
  const Matrix w = layer.Parameters()[0].value();
  EXPECT_FLOAT_EQ(y.value().At(0, 0), w.At(0, 0));
  EXPECT_FLOAT_EQ(y.value().At(0, 1), w.At(0, 1));
}

TEST(MlpTest, SingleLayerIsLinear) {
  Rng rng(5);
  nn::Mlp mlp(4, 16, 3, /*num_layers=*/1, &rng);
  EXPECT_EQ(mlp.num_layers(), 1);
  ag::Variable y = mlp.Forward(ag::Constant(Matrix(2, 4, 0.5f)), false, nullptr);
  EXPECT_EQ(y.cols(), 3);
}

TEST(MlpTest, DeepShapes) {
  Rng rng(6);
  nn::Mlp mlp(8, 16, 5, /*num_layers=*/3, &rng, 0.2f);
  ag::Variable y =
      mlp.Forward(ag::Constant(Matrix(7, 8, 1.0f)), /*training=*/true, &rng);
  EXPECT_EQ(y.rows(), 7);
  EXPECT_EQ(y.cols(), 5);
  // 3 layers x (W, b).
  EXPECT_EQ(mlp.Parameters().size(), 6u);
}

TEST(MlpTest, EvalForwardIsDeterministic) {
  Rng rng(7);
  nn::Mlp mlp(4, 8, 2, 2, &rng, 0.5f);
  ag::Variable x = ag::Constant(Matrix(3, 4, 1.0f));
  Matrix out1 = mlp.Forward(x, false, nullptr).value();
  Matrix out2 = mlp.Forward(x, false, nullptr).value();
  EXPECT_TRUE(AllClose(out1, out2));
}

// A tiny least-squares problem: fit y = xW* with W* known.
struct Regression {
  Matrix x;
  Matrix y;
  Regression() {
    Rng rng(8);
    x = Matrix::RandomNormal(64, 4, &rng);
    Matrix w_star = Matrix::FromRows(
        {{1.0f, -2.0f}, {0.5f, 0.0f}, {-1.0f, 1.0f}, {2.0f, 0.5f}});
    y = MatMul(x, w_star);
  }
  ag::Variable Loss(const ag::Variable& w) const {
    ag::Variable pred = ag::MatMul(ag::Constant(x), w);
    ag::Variable diff = ag::Sub(pred, ag::Constant(y));
    return ag::Scale(ag::SumAll(ag::Mul(diff, diff)),
                     1.0f / static_cast<float>(x.rows()));
  }
};

TEST(OptimizerTest, SgdConvergesOnLeastSquares) {
  Regression problem;
  Rng rng(9);
  ag::Variable w = ag::Parameter(Matrix::RandomNormal(4, 2, &rng, 0, 0.1f));
  Sgd sgd({w}, /*learning_rate=*/0.05f);
  float last_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    sgd.ZeroGrad();
    ag::Variable loss = problem.Loss(w);
    ag::Backward(loss);
    sgd.Step();
    last_loss = loss.value().At(0, 0);
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(OptimizerTest, AdamConvergesFasterThanSgdHere) {
  Regression problem;
  auto run = [&](Optimizer* opt, const ag::Variable& w) {
    float loss_value = 0.0f;
    for (int step = 0; step < 100; ++step) {
      opt->ZeroGrad();
      ag::Variable loss = problem.Loss(w);
      ag::Backward(loss);
      opt->Step();
      loss_value = loss.value().At(0, 0);
    }
    return loss_value;
  };
  Rng rng(10);
  Matrix init = Matrix::RandomNormal(4, 2, &rng, 0, 0.1f);
  ag::Variable w_adam = ag::Parameter(init);
  ag::Variable w_sgd = ag::Parameter(init);
  Adam adam({w_adam}, 0.05f);
  Sgd sgd({w_sgd}, 0.005f);  // conservative lr to stay stable
  EXPECT_LT(run(&adam, w_adam), run(&sgd, w_sgd));
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  // With zero gradient signal, decay must pull weights toward zero.
  ag::Variable w = ag::Parameter(Matrix(3, 3, 1.0f));
  Sgd sgd({w}, /*learning_rate=*/0.1f, /*weight_decay=*/1.0f);
  // Build a loss independent of w... instead call Step with explicit grad 0:
  // accumulate a zero gradient first.
  w.node()->AccumulateGrad(Matrix(3, 3));
  sgd.Step();
  EXPECT_NEAR(w.value().At(0, 0), 0.9f, 1e-6f);
}

TEST(OptimizerTest, StepSkipsParametersWithoutGradients) {
  ag::Variable w = ag::Parameter(Matrix(2, 2, 1.0f));
  Adam adam({w}, 0.1f);
  adam.Step();  // no gradient accumulated: value must stay put
  EXPECT_FLOAT_EQ(w.value().At(0, 0), 1.0f);
}

TEST(OptimizerTest, AdamStateIsPerParameter) {
  Regression problem;
  Rng rng(11);
  ag::Variable w1 = ag::Parameter(Matrix::RandomNormal(4, 2, &rng, 0, 0.1f));
  ag::Variable w2 = ag::Parameter(Matrix(4, 2, 0.0f));
  Adam adam({w1, w2}, 0.05f);
  for (int step = 0; step < 50; ++step) {
    adam.ZeroGrad();
    ag::Variable loss = problem.Loss(w1);  // w2 never participates
    ag::Backward(loss);
    adam.Step();
  }
  // w2 had no gradient: untouched.
  EXPECT_TRUE(AllClose(w2.value(), Matrix(4, 2, 0.0f)));
}

}  // namespace
}  // namespace adpa
