// Fixture (never compiled): ADPA_HOT on a templated function must still
// register it as a hot root, and an allocation in its body must fire.
#include <vector>

namespace fixture {

template <typename T>
ADPA_HOT void HotTemplate(std::vector<T>& v, T value) {
  v.emplace_back(value);  // expect: hot-alloc inside a template
}

}  // namespace fixture
