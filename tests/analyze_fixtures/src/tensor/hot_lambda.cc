// Fixture (never compiled): a lambda body is lexically part of its
// enclosing function, so an allocation inside a lambda defined in an
// ADPA_HOT function must be attributed to that function and reported.
#include <vector>

namespace fixture {

ADPA_HOT void HotLambda(std::vector<int>& v) {
  auto add = [&v](int x) {
    v.push_back(x);  // expect: hot-alloc attributed to HotLambda
  };
  add(7);
}

}  // namespace fixture
