// Fixture (never compiled): every untrusted count here is bounded before
// its allocation — by an if-comparison against a named limit, a CHECK
// macro, a consumed Validate call, an equality pin, a std::min clamp at
// the sink, and the divide-the-limit product guard (the corrected PR 4
// shape). The analyzer must stay silent on this entire file.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace fixture {

struct CacheLimits {
  uint32_t max_entries = 4096;
  uint32_t max_cache_blocks = 4096;
  uint32_t expected_entries = 16;
};

struct BinaryReader {
  bool ReadU32(uint32_t* value);
};

bool ValidateCount(uint32_t n);

bool ComparisonBounded(BinaryReader& reader, const CacheLimits& limits,
                       std::vector<int>* out) {
  uint32_t n = 0;
  if (!reader.ReadU32(&n)) return false;
  if (n > limits.max_entries) return false;
  out->resize(n);
  return true;
}

bool CheckMacroBounded(BinaryReader& reader, const CacheLimits& limits,
                       std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  ADPA_CHECK_LE(n, limits.max_entries);
  out->resize(n);
  return true;
}

bool ValidateCallBounded(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  if (!ValidateCount(n)) return false;
  out->resize(n);
  return true;
}

bool EqualityPinned(BinaryReader& reader, const CacheLimits& limits,
                    std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  if (n == limits.expected_entries) out->resize(n);
  return true;
}

bool ClampedAtSink(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  out->reserve(std::min<uint32_t>(n, 1024));
  return true;
}

bool ProductBoundedByDivision(BinaryReader& reader, const CacheLimits& limits,
                              std::vector<std::vector<int>>* blocks) {
  uint32_t steps = 0;
  uint32_t per_step = 0;
  reader.ReadU32(&steps);
  reader.ReadU32(&per_step);
  if (steps > limits.max_cache_blocks ||
      (per_step != 0 && steps > limits.max_cache_blocks / per_step)) {
    return false;
  }
  blocks->resize(steps);
  for (uint32_t l = 0; l < steps; ++l) {
    (*blocks)[l].resize(per_step);
  }
  return true;
}

}  // namespace fixture
