// Fixture (never compiled): untrusted sizes must be tracked through every
// propagation edge the dataflow pass claims to handle — a local copy, a
// call argument, a return value, a struct member, and a stream extraction —
// and each chain ends in an unchecked allocation that must be reported.
#include <cstdint>
#include <istream>
#include <vector>

namespace fixture {

struct BinaryReader {
  bool ReadU32(uint32_t* value);
  bool ReadI64(int64_t* value);
};

struct Header {
  int64_t count = 0;
};

void SinkParam(std::vector<int>* out, uint32_t n) {
  out->resize(n);  // reported: every caller passes a wire-read count
}

void FlowThroughParam(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  SinkParam(out, n);
}

int64_t ReadCount(BinaryReader& reader) {
  int64_t n = 0;
  reader.ReadI64(&n);
  return n;
}

void FlowThroughReturnAndLocal(BinaryReader& reader, std::vector<int>* out) {
  int64_t n = ReadCount(reader);
  int64_t copy = n;
  out->reserve(copy);  // reported: taint survives the return and the copy
}

void FlowThroughMember(BinaryReader& reader, std::vector<int>* out) {
  Header header;
  reader.ReadI64(&header.count);
  out->assign(header.count, 0);  // reported: member-granular taint
}

void FlowFromStream(std::istream& in, std::vector<int>* out) {
  int64_t n = 0;
  in >> n;
  out->resize(n);  // reported: stream extraction is a source
}

void FlowIntoArrayNew(BinaryReader& reader) {
  int64_t rows = 0;
  reader.ReadI64(&rows);
  int* buffer = new int[rows];  // reported: new[] count is a sink
  delete[] buffer;
}

}  // namespace fixture
