// Fixture (never compiled): verbatim reproduction of the PR 4 propagation
// cache allocation bomb. Both counts come straight off the wire and the
// only bound check multiplies them — `per_step == 0` zeroes the product and
// forges the comparison for ANY `steps`, and large factors forge it via
// wrap-around — so the resize loop still allocates unbounded. Expect one
// tainted-multiply finding on the check plus a finding per sink.
#include <cstdint>
#include <vector>

namespace fixture {

struct CacheLimits {
  uint32_t max_cache_blocks = 4096;
};

struct BinaryReader {
  bool ReadU32(uint32_t* value);
};

bool LoadCacheBomb(BinaryReader& reader, const CacheLimits& limits,
                   std::vector<std::vector<int>>* blocks) {
  uint32_t steps = 0;
  uint32_t per_step = 0;
  if (!reader.ReadU32(&steps)) return false;
  if (!reader.ReadU32(&per_step)) return false;
  // Product-only check: reported as an untrusted multiply, and it bounds
  // neither factor, so the sinks below stay tainted.
  if (steps * per_step > limits.max_cache_blocks) return false;
  blocks->resize(steps);
  for (uint32_t l = 0; l < steps; ++l) {
    (*blocks)[l].resize(per_step);
  }
  return true;
}

}  // namespace fixture
