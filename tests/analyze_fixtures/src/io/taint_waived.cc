// Fixture (never compiled): all three analyze:allow(untrusted-size)
// placements — on the sink, on the call site that would export the taint,
// and on the definition header (trusting the whole function) — must each
// suppress the report. Expect zero findings from this file.
#include <cstdint>
#include <vector>

namespace fixture {

struct BinaryReader {
  bool ReadU32(uint32_t* value);
};

void SiteWaived(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  // analyze:allow(untrusted-size): capped upstream by the frame size
  out->resize(n);
}

void TrustedSink(std::vector<int>* out, uint32_t n) {
  out->resize(n);  // unreported: the only tainting call site is waived
}

void CallSiteWaived(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  // analyze:allow(untrusted-size): n is re-validated inside
  TrustedSink(out, n);
}

// analyze:allow(untrusted-size): sizes are re-checked by the arena below
void DeclWaived(BinaryReader& reader, std::vector<int>* out) {
  uint32_t n = 0;
  reader.ReadU32(&n);
  out->resize(n);  // unreported: the definition header is waived
}

}  // namespace fixture
