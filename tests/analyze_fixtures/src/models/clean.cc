// Fixture (never compiled): an allocation-free hot path produces no
// findings — the analyzer must not flag plain arithmetic, calls into
// alloc-free helpers, or loops.
#include <vector>

namespace fixture {

float Dot(const float* a, const float* b, long n);

ADPA_HOT float HotClean(const std::vector<float>& x) {
  return Dot(x.data(), x.data(), static_cast<long>(x.size()));
}

float Dot(const float* a, const float* b, long n) {
  double acc = 0.0;
  for (long i = 0; i < n; ++i) acc += a[i] * b[i];
  return static_cast<float>(acc);
}

}  // namespace fixture
