// Fixture (never compiled): guard-coverage. In a class that owns a Mutex,
// every mutable member must be ADPA_GUARDED_BY, exempt by construction
// (const / std::atomic / sync primitive), or carry analyze:allow(guard).
// Exactly one member below (errors_) violates that.
#pragma once
#include <atomic>

namespace fixture {

struct Mutex {};
struct CondVar {};

class Counters {
 public:
  void Record();

 private:
  mutable Mutex mu_;
  long requests_ ADPA_GUARDED_BY(mu_) = 0;  // ok: guarded
  long errors_ = 0;                         // expect: guard-coverage
  const long capacity_ = 64;                // ok: const
  std::atomic<long> peak_ = 0;              // ok: atomic
  long waived_ = 0;  // analyze:allow(guard): fixture protocol note
  CondVar cv_;                              // ok: sync primitive
};

class NoMutex {
  long free_counter_ = 0;  // ok: class owns no Mutex, rule does not apply
};

}  // namespace fixture
