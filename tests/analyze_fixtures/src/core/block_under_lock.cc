// Fixture (never compiled): blocking-under-lock coverage. File IO inside a
// MutexLock scope or a Lock()/Unlock() span fires; CondVar::Wait fires
// unless it is the body of a while/for predicate loop; lambda bodies
// inherit the enclosing lock scope.
#include <fstream>

namespace fixture {

struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex* mu);
};
struct CondVar {
  void Wait(Mutex* mu);
};

struct Queue {
  Mutex mu;
  CondVar cv;
  int depth = 0;  // analyze:allow(guard): fixture — protocol documented here
};

void BlockedRead(Queue* q) {
  MutexLock lock(&q->mu);
  std::ifstream in("state.bin");  // expect: blocking-under-lock (file IO)
}

void WaitNoLoop(Queue* q) {
  MutexLock lock(&q->mu);
  q->cv.Wait(&q->mu);  // expect: blocking-under-lock (Wait outside a loop)
}

void WaitInLoop(Queue* q) {
  MutexLock lock(&q->mu);
  while (q->depth == 0) q->cv.Wait(&q->mu);  // ok: predicate loop body
}

void WaitInBracedLoop(Queue* q) {
  MutexLock lock(&q->mu);
  while (q->depth == 0) {
    q->cv.Wait(&q->mu);  // ok: enclosing block is a while loop
  }
}

void ManualLockSpan(Queue* q) {
  q->mu.Lock();
  std::ifstream in("state.bin");  // expect: blocking-under-lock (Lock span)
  q->mu.Unlock();
  std::ifstream after("done.bin");  // ok: lock released above
}

void LambdaUnderLock(Queue* q) {
  MutexLock lock(&q->mu);
  auto read = [&] {
    std::ifstream in("l.bin");  // expect: lambda inherits the lock scope
  };
  read();
}

}  // namespace fixture
