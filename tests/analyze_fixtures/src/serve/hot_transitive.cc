// Fixture (never compiled): an allocation in a helper reached *through* a
// call edge from an ADPA_HOT root must be reported, with the call chain
// named in the message.
#include <vector>

namespace fixture {

void Helper(std::vector<int>& v) {
  v.resize(10);  // expect: hot-alloc via HotCaller -> Helper
}

ADPA_HOT void HotCaller(std::vector<int>& v) {
  Helper(v);
}

}  // namespace fixture
