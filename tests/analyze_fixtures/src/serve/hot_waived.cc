// Fixture (never compiled): all three analyze:allow(alloc) placements —
// on the allocation site, on a call site, and on a declaration (leaf
// waiver) — must each suppress the hot-alloc report. Expect zero findings
// from this file.
#include <vector>

namespace fixture {

void LeafGrow(std::vector<int>& v);  // analyze:allow(alloc): decl-level leaf waiver

void LeafGrow(std::vector<int>& v) {
  v.push_back(1);  // unreported: LeafGrow is a waived leaf everywhere
}

void CallSiteGrow(std::vector<int>& v) {
  v.reserve(32);  // unreported: the only call into this helper is waived
}

ADPA_HOT void HotSiteWaiver(std::vector<int>& v) {
  v.push_back(2);  // analyze:allow(alloc): site waiver
}

ADPA_HOT void HotLeafWaiver(std::vector<int>& v) {
  LeafGrow(v);
}

ADPA_HOT void HotCallSiteWaiver(std::vector<int>& v) {
  CallSiteGrow(v);  // analyze:allow(alloc): call-site waiver
}

}  // namespace fixture
