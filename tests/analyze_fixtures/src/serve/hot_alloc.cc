// Fixture (never compiled): direct allocations inside an ADPA_HOT function
// must be reported by tools/analyze.py.
#include <vector>

namespace fixture {

ADPA_HOT void HotDirect(std::vector<int>& v) {
  v.push_back(1);       // expect: hot-alloc (container growth)
  int* p = new int(3);  // expect: hot-alloc (operator new)
  delete p;
}

}  // namespace fixture
