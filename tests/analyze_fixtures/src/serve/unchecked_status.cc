// Fixture (never compiled): every call to a Status/Result-returning
// function must consume the value. The bare discard and the (void)-cast
// discard are reported; assignment, return, branching, macro operands,
// member-chained consumption, and both waiver placements stay silent.
#include <cstdint>

namespace fixture {

struct Status {
  bool ok() const;
  static Status OK();
};

Status Flush();
Result<int> CountRows();

// analyze:allow(unchecked-status): best-effort metrics emission
Status BestEffortNotify();

Status BareDiscards() {
  Flush();        // reported: value dropped on the floor
  (void)CountRows();  // reported: (void)-cast is not consumption
  return Status::OK();
}

Status ProperConsumption() {
  Status st = Flush();                 // assigned
  if (!Flush().ok()) return st;        // branched on, member-chained
  ADPA_CHECK_OK(Flush());              // macro operand
  ADPA_RETURN_IF_ERROR(Flush());       // macro operand
  return Flush();                      // returned
}

void DeclWaivedDiscard() {
  BestEffortNotify();  // unreported: waived at the declaration
}

void SiteWaivedDiscard() {
  // analyze:allow(unchecked-status): shutdown path, errors already logged
  Flush();
}

}  // namespace fixture
