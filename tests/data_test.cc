// Tests for datasets, splits, the DSBM generator, the benchmark registry,
// and the sparsity injectors.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/benchmarks.h"
#include "src/data/generators.h"
#include "src/data/sparsity.h"
#include "src/data/splits.h"
#include "src/metrics/homophily.h"

namespace adpa {
namespace {

Dataset SmallDataset(uint64_t seed = 1) {
  DsbmConfig config;
  config.num_nodes = 200;
  config.num_classes = 4;
  config.avg_out_degree = 5.0;
  config.class_transition = HomophilousTransition(4, 0.7);
  config.feature_dim = 8;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split = std::move(
      SplitFractions(ds.labels, ds.num_classes, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

// ----------------------------------------------------------------- Splits --

TEST(SplitTest, PerClassCounts) {
  std::vector<int64_t> labels;
  for (int i = 0; i < 120; ++i) labels.push_back(i % 3);
  Rng rng(1);
  Split split =
      std::move(SplitPerClass(labels, 3, 10, 30, 0, &rng)).value();
  EXPECT_EQ(split.train.size(), 30u);
  EXPECT_EQ(split.val.size(), 30u);
  EXPECT_EQ(split.test.size(), 60u);
  // Exactly 10 training nodes per class.
  std::vector<int> per_class(3, 0);
  for (int64_t i : split.train) ++per_class[labels[i]];
  for (int count : per_class) EXPECT_EQ(count, 10);
}

TEST(SplitTest, PerClassFailsOnTinyClass) {
  std::vector<int64_t> labels = {0, 0, 0, 1};
  Rng rng(2);
  EXPECT_FALSE(SplitPerClass(labels, 2, 5, 0, 0, &rng).ok());
}

TEST(SplitTest, SplitsAreDisjointAndCoverNoDuplicates) {
  std::vector<int64_t> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i % 5);
  Rng rng(3);
  Split split =
      std::move(SplitFractions(labels, 5, 0.48, 0.32, &rng)).value();
  std::set<int64_t> seen;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int64_t i : *part) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 200u);
  EXPECT_NEAR(static_cast<double>(split.train.size()), 96.0, 5.0);
  EXPECT_NEAR(static_cast<double>(split.val.size()), 64.0, 5.0);
}

TEST(SplitTest, FractionsStratifyEveryClassIntoTrain) {
  std::vector<int64_t> labels;
  for (int i = 0; i < 50; ++i) labels.push_back(i < 45 ? 0 : 1);
  Rng rng(4);
  Split split =
      std::move(SplitFractions(labels, 2, 0.4, 0.2, &rng)).value();
  bool has_minority = false;
  for (int64_t i : split.train) has_minority |= labels[i] == 1;
  EXPECT_TRUE(has_minority);
}

TEST(SplitTest, InvalidFractionsRejected) {
  std::vector<int64_t> labels = {0, 1, 0, 1};
  Rng rng(5);
  EXPECT_FALSE(SplitFractions(labels, 2, 0.8, 0.3, &rng).ok());
  EXPECT_FALSE(SplitFractions(labels, 2, 0.0, 0.3, &rng).ok());
}

TEST(SplitTest, SeedsAreReproducible) {
  std::vector<int64_t> labels;
  for (int i = 0; i < 100; ++i) labels.push_back(i % 4);
  Rng rng1(7), rng2(7);
  Split a = std::move(SplitFractions(labels, 4, 0.5, 0.25, &rng1)).value();
  Split b = std::move(SplitFractions(labels, 4, 0.5, 0.25, &rng2)).value();
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
}

// -------------------------------------------------------------- Generator --

TEST(GeneratorTest, RejectsBadConfigs) {
  DsbmConfig config;
  config.num_classes = 1;
  EXPECT_FALSE(GenerateDsbm(config).ok());
  config = DsbmConfig();
  config.class_transition = Matrix(2, 2);  // wrong shape vs 5 classes
  EXPECT_FALSE(GenerateDsbm(config).ok());
}

TEST(GeneratorTest, BalancedLabels) {
  Dataset ds = SmallDataset();
  std::vector<int> counts(4, 0);
  for (int64_t label : ds.labels) ++counts[label];
  for (int count : counts) EXPECT_EQ(count, 50);
}

TEST(GeneratorTest, EdgeCountNearTarget) {
  Dataset ds = SmallDataset();
  // target 200*5 = 1000 pre-dedup edges; dedup loses a few.
  EXPECT_GT(ds.num_edges(), 800);
  EXPECT_LE(ds.num_edges(), 1000);
}

TEST(GeneratorTest, DeterministicForSeed) {
  Dataset a = SmallDataset(9);
  Dataset b = SmallDataset(9);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_TRUE(AllClose(a.features, b.features));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GeneratorTest, ReciprocalProbControlsSymmetry) {
  DsbmConfig config;
  config.num_nodes = 300;
  config.num_classes = 3;
  config.avg_out_degree = 6.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 4;
  config.seed = 21;
  config.reciprocal_prob = 0.0;
  Dataset loose = std::move(GenerateDsbm(config)).value();
  config.reciprocal_prob = 1.0;
  Dataset tight = std::move(GenerateDsbm(config)).value();
  EXPECT_LT(loose.graph.ReciprocityRatio(), 0.2);
  EXPECT_DOUBLE_EQ(tight.graph.ReciprocityRatio(), 1.0);
}

TEST(GeneratorTest, FeatureNoiseControlsClassSeparation) {
  auto class_mean_distance = [](const Dataset& ds) {
    Matrix mean0(1, ds.feature_dim());
    Matrix mean1(1, ds.feature_dim());
    int n0 = 0, n1 = 0;
    for (int64_t i = 0; i < ds.num_nodes(); ++i) {
      if (ds.labels[i] == 0) {
        for (int64_t c = 0; c < ds.feature_dim(); ++c) {
          mean0.At(0, c) += ds.features.At(i, c);
        }
        ++n0;
      } else if (ds.labels[i] == 1) {
        for (int64_t c = 0; c < ds.feature_dim(); ++c) {
          mean1.At(0, c) += ds.features.At(i, c);
        }
        ++n1;
      }
    }
    mean0.ScaleInPlace(1.0f / n0);
    mean1.ScaleInPlace(1.0f / n1);
    return Sub(mean0, mean1).FrobeniusNorm();
  };
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 2;
  config.avg_out_degree = 3.0;
  config.class_transition = HomophilousTransition(2, 0.7);
  config.feature_dim = 16;
  config.seed = 33;
  config.feature_noise = 0.1;
  Dataset crisp = std::move(GenerateDsbm(config)).value();
  // Class means are the same draw (same seed); separation estimate is only
  // degraded by within-class noise, so crisp >= noisy estimate distance...
  // Directly: per-node deviation from own class mean grows with noise.
  config.feature_noise = 5.0;
  Dataset noisy = std::move(GenerateDsbm(config)).value();
  EXPECT_NEAR(class_mean_distance(crisp), class_mean_distance(noisy), 2.0);
  // Variance check instead: average distance of a node to its class mean.
  auto scatter = [](const Dataset& ds) {
    double total = 0.0;
    Matrix mean(2, ds.feature_dim());
    std::vector<int> counts(2, 0);
    for (int64_t i = 0; i < ds.num_nodes(); ++i) {
      for (int64_t c = 0; c < ds.feature_dim(); ++c) {
        mean.At(ds.labels[i], c) += ds.features.At(i, c);
      }
      counts[ds.labels[i]]++;
    }
    for (int64_t k = 0; k < 2; ++k) {
      for (int64_t c = 0; c < ds.feature_dim(); ++c) {
        mean.At(k, c) /= counts[k];
      }
    }
    for (int64_t i = 0; i < ds.num_nodes(); ++i) {
      for (int64_t c = 0; c < ds.feature_dim(); ++c) {
        const double d = ds.features.At(i, c) - mean.At(ds.labels[i], c);
        total += d * d;
      }
    }
    return total / ds.num_nodes();
  };
  EXPECT_GT(scatter(noisy), 10.0 * scatter(crisp));
}

TEST(GeneratorTest, TransitionMatrixShapesEdgeDistribution) {
  DsbmConfig config;
  config.num_nodes = 600;
  config.num_classes = 3;
  config.avg_out_degree = 8.0;
  config.class_transition = CyclicTransition(3, 1.0, 0.0);
  config.edge_noise = 0.0;
  config.feature_dim = 4;
  config.seed = 8;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  // Every edge goes from class c to class (c+1) % 3.
  for (const Edge& e : ds.graph.edges()) {
    EXPECT_EQ(ds.labels[e.dst], (ds.labels[e.src] + 1) % 3);
  }
}

// --------------------------------------------------------------- Registry --

TEST(RegistryTest, HasAllFourteenDatasets) {
  EXPECT_EQ(BenchmarkSuite().size(), 14u);
  EXPECT_TRUE(FindBenchmark("CoraML").ok());
  EXPECT_TRUE(FindBenchmark("AmazonRating").ok());
  EXPECT_FALSE(FindBenchmark("NotADataset").ok());
}

TEST(RegistryTest, BuildValidatesAndSplits) {
  Dataset ds = std::move(BuildBenchmarkByName("CiteSeer", 0)).value();
  EXPECT_TRUE(ds.Validate().ok());
  EXPECT_EQ(ds.name, "CiteSeer");
  EXPECT_EQ(ds.train_idx.size(), 120u);  // 20 per class x 6 classes
  EXPECT_EQ(ds.val_idx.size(), 300u);
}

TEST(RegistryTest, ScaleShrinksNodeCount) {
  Dataset full = std::move(BuildBenchmarkByName("CoraML", 0)).value();
  Dataset half = std::move(BuildBenchmarkByName("CoraML", 0, 0.5)).value();
  EXPECT_EQ(half.num_nodes(), full.num_nodes() / 2);
}

TEST(RegistryTest, SeedsChangeTheGraph) {
  Dataset a = std::move(BuildBenchmarkByName("Texas", 0)).value();
  Dataset b = std::move(BuildBenchmarkByName("Texas", 1)).value();
  EXPECT_NE(a.graph.edges(), b.graph.edges());
}

TEST(RegistryTest, HomophilyMatchesDeclaredRegime) {
  for (const BenchmarkSpec& spec : BenchmarkSuite()) {
    Dataset ds = std::move(BuildBenchmark(spec, 0, 0.5)).value();
    const double h = EdgeHomophily(ds.graph, ds.labels);
    if (spec.homophilous) {
      EXPECT_GT(h, 0.5) << spec.name;
    } else {
      EXPECT_LT(h, 0.5) << spec.name;
    }
  }
}

// --------------------------------------------------------------- Sparsity --

TEST(SparsityTest, MaskFeaturesZeroesOnlyNonTrainRows) {
  Dataset ds = SmallDataset();
  Rng rng(41);
  Dataset masked = std::move(MaskFeatures(ds, 0.5, &rng)).value();
  std::unordered_set<int64_t> train(ds.train_idx.begin(), ds.train_idx.end());
  int64_t zero_rows = 0;
  for (int64_t i = 0; i < masked.num_nodes(); ++i) {
    bool all_zero = true;
    for (int64_t c = 0; c < masked.feature_dim(); ++c) {
      all_zero &= masked.features.At(i, c) == 0.0f;
    }
    if (all_zero) {
      EXPECT_EQ(train.count(i), 0u) << "train row " << i << " was masked";
      ++zero_rows;
    }
  }
  const int64_t non_train = ds.num_nodes() - ds.train_idx.size();
  EXPECT_NEAR(static_cast<double>(zero_rows),
              0.5 * static_cast<double>(non_train), 3.0);
}

TEST(SparsityTest, DropEdgesRemovesRequestedFraction) {
  Dataset ds = SmallDataset();
  Rng rng(42);
  Dataset dropped = std::move(DropEdges(ds, 0.4, &rng)).value();
  EXPECT_NEAR(static_cast<double>(dropped.num_edges()),
              0.6 * static_cast<double>(ds.num_edges()), 1.0);
  // Remaining edges are a subset of the original edge set.
  for (const Edge& e : dropped.graph.edges()) {
    EXPECT_TRUE(ds.graph.HasEdge(e.src, e.dst));
  }
}

TEST(SparsityTest, ReduceTrainLabelsKeepsPerClassBudget) {
  Dataset ds = SmallDataset();
  Rng rng(43);
  Dataset reduced = std::move(ReduceTrainLabels(ds, 5, &rng)).value();
  std::vector<int> per_class(ds.num_classes, 0);
  for (int64_t i : reduced.train_idx) ++per_class[reduced.labels[i]];
  for (int count : per_class) EXPECT_LE(count, 5);
  EXPECT_TRUE(reduced.Validate().ok());
  // Dropped train nodes moved to test: totals conserved.
  EXPECT_EQ(reduced.train_idx.size() + reduced.val_idx.size() +
                reduced.test_idx.size(),
            ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size());
}

TEST(SparsityTest, FractionValidation) {
  Dataset ds = SmallDataset();
  Rng rng(44);
  EXPECT_FALSE(MaskFeatures(ds, 1.0, &rng).ok());
  EXPECT_FALSE(DropEdges(ds, -0.1, &rng).ok());
  EXPECT_FALSE(ReduceTrainLabels(ds, 0, &rng).ok());
}

// ---------------------------------------------------------------- Dataset --

TEST(DatasetTest, ValidateCatchesOverlappingSplits) {
  Dataset ds = SmallDataset();
  EXPECT_TRUE(ds.Validate().ok());
  ds.val_idx.push_back(ds.train_idx[0]);
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesBadLabels) {
  Dataset ds = SmallDataset();
  ds.labels[0] = 99;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(DatasetTest, WithUndirectedGraphKeepsEverythingElse) {
  Dataset ds = SmallDataset();
  Dataset u = ds.WithUndirectedGraph();
  EXPECT_TRUE(u.graph.IsSymmetric());
  EXPECT_TRUE(AllClose(u.features, ds.features));
  EXPECT_EQ(u.labels, ds.labels);
  EXPECT_EQ(u.train_idx, ds.train_idx);
}

}  // namespace
}  // namespace adpa
