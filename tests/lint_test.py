#!/usr/bin/env python3
"""Fixture-driven tests for tools/lint.py.

Runs the linter against tests/lint_fixtures/ (a miniature repo tree in
which every rule is violated at least once) and asserts that each rule
fires where expected, that the `// lint:allow(<rule>)` escape hatch and the
per-file exemptions (src/core/parallel.*, src/core/random.*) suppress
findings, and that clean code produces none.
"""

import os
import re
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_ROOT = os.path.join(REPO_ROOT, "tests", "lint_fixtures")
LINT = os.path.join(REPO_ROOT, "tools", "lint.py")

FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_lint(files=None):
    """Returns (exit_code, list of (path, line, rule))."""
    cmd = [sys.executable, LINT, "--root", FIXTURE_ROOT, "--no-shellcheck"]
    if files is not None:
        cmd += ["--files"] + files
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append((match.group("path").replace(os.sep, "/"),
                             int(match.group("line")), match.group("rule")))
    return proc.returncode, findings


def rules_for(findings, path):
    return sorted({rule for p, _, rule in findings if p == path})


class LintRuleTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.exit_code, cls.findings = run_lint()

    def test_violations_fail_the_run(self):
        self.assertEqual(self.exit_code, 1)

    def test_parallel_primitives_fires_on_thread_use(self):
        rules = rules_for(self.findings, "src/models/bad_thread.cc")
        self.assertEqual(rules, ["parallel-primitives"])
        hits = [line for p, line, r in self.findings
                if p == "src/models/bad_thread.cc"]
        self.assertEqual(len(hits), 2)  # the #include and the declaration

    def test_mutex_annotations_fires_on_raw_locking_types(self):
        rules = rules_for(self.findings, "src/models/bad_mutex.cc")
        self.assertEqual(rules, ["mutex-annotations"])
        hits = [line for p, line, r in self.findings
                if p == "src/models/bad_mutex.cc"]
        # Two raw includes, two raw members, and the lock_guard fire; the
        # lint:allow'd std::mutex is suppressed.
        self.assertEqual(len(hits), 5)

    def test_deterministic_randomness_fires_on_entropy_and_clock(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/models/bad_random.cc"]
        self.assertTrue(hits)
        self.assertEqual({rule for _, rule in hits},
                         {"deterministic-randomness"})
        # random_device, rand(), and the wall-clock read must all fire.
        self.assertGreaterEqual(len(hits), 3)

    def test_float_accumulator_fires_in_kernel_scope(self):
        rules = rules_for(self.findings, "src/tensor/bad_float_acc.cc")
        self.assertEqual(rules, ["float-accumulator"])
        hits = [line for p, line, r in self.findings
                if p == "src/tensor/bad_float_acc.cc"]
        self.assertEqual(len(hits), 2)  # `float sum =` and `float dot_acc{`

    def test_no_direct_io_fires_on_cout_and_printf_only(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/data/bad_io.cc"]
        self.assertEqual({rule for _, rule in hits}, {"no-direct-io"})
        # std::cout and printf( are findings; fprintf(stderr)/snprintf are
        # not, so exactly two lines fire.
        self.assertEqual(len(hits), 2)

    def test_no_direct_io_fires_on_raw_stdio_in_serve_layer(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/serve/bad_fopen.cc"]
        self.assertEqual({rule for _, rule in hits}, {"no-direct-io"})
        # The FILE*/fopen line, fread, and fclose fire (one finding per
        # line); snprintf does not.
        self.assertEqual(len(hits), 3)

    def test_no_bare_exit_fires_on_process_terminating_calls(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/serve/bad_exit.cc"]
        self.assertEqual({rule for _, rule in hits}, {"no-bare-exit"})
        # exit(2), std::abort(), and _exit(3) fire; the lint:allow'd exit(0)
        # is suppressed.
        self.assertEqual(len(hits), 3)

    def test_no_unordered_iteration_fires_on_range_for_only(self):
        hits = [line for p, line, rule in self.findings
                if p == "src/models/bad_unordered.cc"]
        self.assertEqual(len(hits), 1)  # size()/membership uses stay legal

    def test_pragma_once_fires_on_guard_style_header(self):
        rules = rules_for(self.findings, "src/graph/bad_header.h")
        self.assertEqual(rules, ["pragma-once"])

    def test_gradcheck_registry_fires_on_unregistered_op(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/tensor/autograd.h"]
        self.assertEqual({rule for _, rule in hits}, {"gradcheck-registry"})
        # Only Frobnicate fires: Add is registered, MakeMask returns Matrix,
        # Backward returns void.
        self.assertEqual(len(hits), 1)

    def test_failpoint_coverage_fires_on_untested_point(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/core/failpoint.cc"]
        self.assertEqual({rule for _, rule in hits}, {"failpoint-coverage"})
        # Only uncovered.point fires: covered.point is mentioned by
        # tests/covered_test.cc and waived.point carries lint:allow.
        self.assertEqual(len(hits), 1)

    def test_simd_isolation_fires_outside_kernel_files(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/tensor/bad_intrinsics.cc"]
        self.assertEqual({rule for _, rule in hits}, {"simd-isolation"})
        # The <immintrin.h> include and all four raw intrinsic calls fire;
        # the lint:allow'd fence is suppressed.
        self.assertEqual(len(hits), 5)

    def test_simd_isolation_exempts_dispatch_kernel_files(self):
        self.assertEqual(
            rules_for(self.findings, "src/tensor/kernels_avx512.cc"), [])

    def test_socket_isolation_fires_outside_net_layer(self):
        hits = [(line, rule) for p, line, rule in self.findings
                if p == "src/serve/bad_socket.cc"]
        self.assertEqual({rule for _, rule in hits}, {"socket-isolation"})
        # The <sys/socket.h> include, the socket() call, and the qualified
        # ::listen() fire; the lint:allow'd shutdown() is suppressed and
        # member-call/std::bind-style mentions never match.
        self.assertEqual(len(hits), 3)

    def test_allow_escape_hatch_suppresses_everything(self):
        self.assertEqual(rules_for(self.findings, "src/models/allowed.cc"), [])

    def test_clean_file_has_no_findings(self):
        self.assertEqual(rules_for(self.findings, "src/models/clean.cc"), [])

    def test_parallel_and_random_cores_are_exempt(self):
        self.assertEqual(rules_for(self.findings, "src/core/parallel.cc"), [])
        self.assertEqual(rules_for(self.findings, "src/core/random.cc"), [])


class LintInvocationTest(unittest.TestCase):
    def test_explicit_file_list_restricts_the_run(self):
        code, findings = run_lint(files=["src/models/clean.cc"])
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_explicit_bad_file_fails(self):
        code, findings = run_lint(files=["src/models/bad_thread.cc"])
        self.assertEqual(code, 1)
        self.assertEqual(rules_for(findings, "src/models/bad_thread.cc"),
                         ["parallel-primitives"])

    def test_real_tree_walk_skips_fixtures(self):
        # Linting the actual repository must pass — and must not pick the
        # deliberately broken fixture files up.
        proc = subprocess.run(
            [sys.executable, LINT, "--root", REPO_ROOT, "--no-shellcheck"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, msg=proc.stdout + proc.stderr)
        self.assertNotIn("lint_fixtures", proc.stdout)


if __name__ == "__main__":
    unittest.main()
