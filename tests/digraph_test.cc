// Tests for the Digraph container and directed-pattern algebra.

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/graph/digraph.h"
#include "src/graph/patterns.h"

namespace adpa {
namespace {

Digraph ToyCycle() {
  // 0 -> 1 -> 2 -> 0 plus chord 0 -> 2.
  return Digraph::CreateOrDie(3, {{0, 1}, {1, 2}, {2, 0}, {0, 2}});
}

TEST(DigraphTest, CreateValidatesEndpoints) {
  EXPECT_FALSE(Digraph::Create(2, {{0, 5}}).ok());
  EXPECT_FALSE(Digraph::Create(2, {{-1, 0}}).ok());
  EXPECT_EQ(Digraph::Create(2, {{0, 5}}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(DigraphTest, CreateRejectsSelfLoops) {
  Result<Digraph> r = Digraph::Create(3, {{1, 1}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(DigraphTest, DuplicateEdgesAreCoalesced) {
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(DigraphTest, NeighborsAndDegrees) {
  Digraph g = ToyCycle();
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(0), 1);
  EXPECT_EQ(g.OutNeighbors(0), (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(g.InNeighbors(2), (std::vector<int64_t>{0, 1}));
}

TEST(DigraphTest, HasEdgeIsDirectional) {
  Digraph g = ToyCycle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(DigraphTest, AdjacencyMatrixMatchesEdges) {
  Digraph g = ToyCycle();
  SparseMatrix a = g.AdjacencyMatrix();
  EXPECT_EQ(a.nnz(), g.num_edges());
  for (const Edge& e : g.edges()) {
    EXPECT_FLOAT_EQ(a.At(e.src, e.dst), 1.0f);
  }
  EXPECT_FLOAT_EQ(a.At(1, 0), 0.0f);
}

TEST(DigraphTest, ToUndirectedSymmetrizes) {
  Digraph g = ToyCycle();
  EXPECT_FALSE(g.IsSymmetric());
  Digraph u = g.ToUndirected();
  EXPECT_TRUE(u.IsSymmetric());
  // 4 directed edges cover 3 distinct node pairs -> 6 symmetric arcs.
  EXPECT_EQ(u.num_edges(), 6);
  EXPECT_TRUE(u.HasEdge(1, 0));
}

TEST(DigraphTest, ReciprocityRatio) {
  Digraph one_way = Digraph::CreateOrDie(3, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(one_way.ReciprocityRatio(), 0.0);
  Digraph mixed = Digraph::CreateOrDie(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_NEAR(mixed.ReciprocityRatio(), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(one_way.ToUndirected().ReciprocityRatio(), 1.0);
}

TEST(DigraphTest, EmptyGraph) {
  Digraph g = Digraph::CreateOrDie(5, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.IsSymmetric());
  EXPECT_EQ(g.AdjacencyMatrix().nnz(), 0);
}

// ------------------------------------------------------------- Patterns --

TEST(PatternTest, NameFormatting) {
  EXPECT_EQ((DirectedPattern{{Hop::kOut}}).Name(), "A");
  EXPECT_EQ((DirectedPattern{{Hop::kIn}}).Name(), "AT");
  EXPECT_EQ((DirectedPattern{{Hop::kOut, Hop::kIn}}).Name(), "A*AT");
}

TEST(PatternTest, EnumerationSizesFollowPaperRule) {
  // k = 2^1 + ... + 2^N (Sec. IV-B).
  EXPECT_EQ(EnumeratePatterns(1).size(), 2u);
  EXPECT_EQ(EnumeratePatterns(2).size(), 6u);
  EXPECT_EQ(EnumeratePatterns(3).size(), 14u);
  EXPECT_EQ(EnumeratePatterns(4).size(), 30u);
}

TEST(PatternTest, EnumerationIsShortestFirstAndDistinct) {
  const auto patterns = EnumeratePatterns(3);
  for (size_t i = 1; i < patterns.size(); ++i) {
    EXPECT_LE(patterns[i - 1].order(), patterns[i].order());
    for (size_t j = 0; j < i; ++j) {
      EXPECT_FALSE(patterns[i] == patterns[j]);
    }
  }
}

TEST(PatternTest, SecondOrderPatternsAreTheFourProducts) {
  const auto patterns = SecondOrderPatterns();
  ASSERT_EQ(patterns.size(), 4u);
  EXPECT_EQ(patterns[0].Name(), "A*A");
  EXPECT_EQ(patterns[1].Name(), "AT*AT");
  EXPECT_EQ(patterns[2].Name(), "A*AT");
  EXPECT_EQ(patterns[3].Name(), "AT*A");
}

TEST(PatternTest, ApplyMatchesDenseOperatorProduct) {
  Digraph g = ToyCycle();
  PatternSet patterns(g.AdjacencyMatrix(), /*conv_r=*/0.5,
                      /*self_loops=*/true);
  Rng rng(1);
  Matrix x = Matrix::RandomNormal(3, 4, &rng);
  const Matrix a = patterns.normalized_out().ToDense();
  const Matrix at = patterns.normalized_in().ToDense();
  // A*AT word applied to x must equal (A @ Aᵀnorm) @ x.
  DirectedPattern p{{Hop::kOut, Hop::kIn}};
  EXPECT_TRUE(
      AllClose(patterns.Apply(p, x), MatMul(a, MatMul(at, x)), 1e-4f));
  // AT*A word: (ATnorm @ Anorm) @ x.
  DirectedPattern q{{Hop::kIn, Hop::kOut}};
  EXPECT_TRUE(
      AllClose(patterns.Apply(q, x), MatMul(at, MatMul(a, x)), 1e-4f));
}

TEST(PatternTest, ReachabilityMatchesHandComputedToy) {
  // Fig. 3-style: 0 -> 1, 2 -> 1 (co-target through node 1).
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {2, 1}});
  PatternSet patterns(g.AdjacencyMatrix(), 0.5, false);
  // A*AT: u and v reachable iff they share an out-neighbor.
  SparseMatrix aat =
      patterns.Reachability(DirectedPattern{{Hop::kOut, Hop::kIn}});
  EXPECT_FLOAT_EQ(aat.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(aat.At(2, 0), 1.0f);
  EXPECT_FLOAT_EQ(aat.At(0, 0), 1.0f);  // shares out-neighbor with itself
  EXPECT_FLOAT_EQ(aat.At(0, 1), 0.0f);
  // A*A: two-step forward walks; none exist here.
  SparseMatrix aa =
      patterns.Reachability(DirectedPattern{{Hop::kOut, Hop::kOut}});
  EXPECT_EQ(aa.nnz(), 0);
}

TEST(PatternTest, ReachabilityOnCycleWrapsAround) {
  // 0 -> 1 -> 2 -> 0: A*A reaches two steps ahead.
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {1, 2}, {2, 0}});
  PatternSet patterns(g.AdjacencyMatrix(), 0.5, false);
  SparseMatrix aa =
      patterns.Reachability(DirectedPattern{{Hop::kOut, Hop::kOut}});
  EXPECT_FLOAT_EQ(aa.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(aa.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(aa.At(2, 1), 1.0f);
  EXPECT_EQ(aa.nnz(), 3);
}

TEST(PatternTest, UndirectedGraphDegeneratesGracefully) {
  // On a symmetric graph, A and AT reachabilities coincide.
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                       {2, 3}, {3, 2}});
  PatternSet patterns(g.AdjacencyMatrix(), 0.5, false);
  SparseMatrix out = patterns.Reachability(DirectedPattern{{Hop::kOut}});
  SparseMatrix in = patterns.Reachability(DirectedPattern{{Hop::kIn}});
  EXPECT_TRUE(AllClose(out.ToDense(), in.ToDense()));
}

}  // namespace
}  // namespace adpa
