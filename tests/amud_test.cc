// AMUD framework tests: the Eq. (4-7) correlation, the Eq. (8) score, and
// the modeling guidance over constructed and calibrated graphs.

#include <gtest/gtest.h>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/data/benchmarks.h"
#include "src/data/generators.h"

namespace adpa {
namespace {

TEST(AmudCorrelationTest, PositiveWhenConnectionPredictsSameLabel) {
  // Reachability exactly equals "same label" -> phi well above zero.
  // Same-label pairs connected, cross pairs not.
  SparseMatrix reach = SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0f}, {1, 0, 1.0f}, {2, 3, 1.0f}, {3, 2, 1.0f}});
  const double r = PatternLabelCorrelation(reach, {0, 0, 1, 1});
  EXPECT_NEAR(r, 1.0, 1e-9);  // perfect agreement over all 12 ordered pairs
}

TEST(AmudCorrelationTest, NegativeWhenConnectionPredictsDifferentLabel) {
  SparseMatrix reach = SparseMatrix::FromTriplets(
      4, 4, {{0, 2, 1.0f}, {0, 3, 1.0f}, {1, 2, 1.0f}, {1, 3, 1.0f}});
  const double r = PatternLabelCorrelation(reach, {0, 0, 1, 1});
  EXPECT_NEAR(r, -0.5, 1e-6);  // exact phi for this contingency table
}

TEST(AmudCorrelationTest, ZeroWhenNoConnections) {
  SparseMatrix reach = SparseMatrix::FromTriplets(4, 4, {});
  EXPECT_DOUBLE_EQ(PatternLabelCorrelation(reach, {0, 0, 1, 1}), 0.0);
}

TEST(AmudCorrelationTest, DiagonalEntriesAreIgnored) {
  SparseMatrix with_diag = SparseMatrix::FromTriplets(
      4, 4, {{0, 0, 1.0f}, {1, 1, 1.0f}, {0, 1, 1.0f}, {1, 0, 1.0f},
             {2, 3, 1.0f}, {3, 2, 1.0f}});
  SparseMatrix without = SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 1.0f}, {1, 0, 1.0f}, {2, 3, 1.0f}, {3, 2, 1.0f}});
  EXPECT_DOUBLE_EQ(PatternLabelCorrelation(with_diag, {0, 0, 1, 1}),
                   PatternLabelCorrelation(without, {0, 0, 1, 1}));
}

TEST(AmudCorrelationTest, SampledEstimatorAgreesWithExact) {
  DsbmConfig config;
  config.num_nodes = 300;
  config.num_classes = 4;
  config.avg_out_degree = 6.0;
  config.class_transition = CyclicTransition(4, 0.8, 0.1);
  config.feature_dim = 4;
  config.seed = 5;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  PatternSet patterns(ds.graph.AdjacencyMatrix(), 0.5, false);
  Rng rng(17);
  for (const DirectedPattern& p : SecondOrderPatterns()) {
    const double exact =
        PatternLabelCorrelation(patterns.Reachability(p), ds.labels);
    const double sampled = PatternLabelCorrelationSampled(
        ds.graph, p, ds.labels, /*num_samples=*/200000, &rng);
    EXPECT_NEAR(sampled, exact, 0.02) << p.Name();
  }
}

TEST(AmudScoreTest, InputValidation) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}});
  EXPECT_FALSE(ComputeAmud(g, {0, 1}, 2).ok());               // size mismatch
  EXPECT_FALSE(ComputeAmud(g, {0, 1, 5, 0}, 2).ok());         // label range
  Digraph empty = Digraph::CreateOrDie(4, {});
  EXPECT_FALSE(ComputeAmud(empty, {0, 1, 0, 1}, 2).ok());     // no edges
}

TEST(AmudScoreTest, ReportContainsSixPatternCorrelations) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  AmudReport report = std::move(ComputeAmud(g, {0, 1, 0, 1}, 2)).value();
  EXPECT_EQ(report.correlations.size(), 6u);  // A, AT + four 2-order DPs
  EXPECT_EQ(report.correlations[0].pattern.Name(), "A");
  EXPECT_EQ(report.correlations[1].pattern.Name(), "AT");
  for (const auto& c : report.correlations) {
    EXPECT_NEAR(c.r_squared, c.r * c.r, 1e-12);
  }
}

TEST(AmudScoreTest, SymmetricGraphScoresNearZero) {
  // On a symmetric graph all four 2-order reachabilities coincide exactly,
  // so the disparity — and the score — must vanish.
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 3;
  config.avg_out_degree = 5.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.reciprocal_prob = 1.0;
  config.feature_dim = 4;
  config.seed = 9;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  AmudReport report =
      std::move(ComputeAmud(ds.graph, ds.labels, 3)).value();
  EXPECT_LT(report.score, 1e-6);
  EXPECT_EQ(report.decision, AmudDecision::kUndirected);
}

TEST(AmudScoreTest, CyclicClassProgressionScoresHigh) {
  // The paper's Fig. 3 situation: A·Aᵀ homophilous, A·A walks two classes
  // ahead. Disparity among 2-order DPs must push S above θ.
  DsbmConfig config;
  config.num_nodes = 500;
  config.num_classes = 5;
  config.avg_out_degree = 5.0;
  config.class_transition = CyclicTransition(5, 0.85, 0.05);
  config.feature_dim = 4;
  config.seed = 10;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  AmudReport report =
      std::move(ComputeAmud(ds.graph, ds.labels, 5)).value();
  EXPECT_GT(report.score, 0.5);
  EXPECT_EQ(report.decision, AmudDecision::kDirected);
  // And the co-target pattern must be the homophilous one: r(A·Aᵀ) high.
  double r_aat = 0.0, r_aa = 0.0;
  for (const auto& c : report.correlations) {
    if (c.pattern.Name() == "A*AT") r_aat = c.r;
    if (c.pattern.Name() == "A*A") r_aa = c.r;
  }
  EXPECT_GT(r_aat, 0.1);
  EXPECT_LT(r_aa, r_aat);
}

TEST(AmudScoreTest, ThresholdIsConfigurable) {
  DsbmConfig config;
  config.num_nodes = 400;
  config.num_classes = 5;
  config.avg_out_degree = 5.0;
  config.class_transition = CyclicTransition(5, 0.85, 0.05);
  config.feature_dim = 4;
  config.seed = 12;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  AmudOptions lenient;
  lenient.threshold = 1e9;  // nothing passes
  AmudReport report =
      std::move(ComputeAmud(ds.graph, ds.labels, 5, lenient)).value();
  EXPECT_EQ(report.decision, AmudDecision::kUndirected);
}

TEST(AmudScoreTest, RowCapApproximationStaysOnTheRightSide) {
  DsbmConfig config;
  config.num_nodes = 500;
  config.num_classes = 5;
  config.avg_out_degree = 8.0;
  config.class_transition = CyclicTransition(5, 0.8, 0.1);
  config.feature_dim = 4;
  config.seed = 13;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  AmudOptions capped;
  capped.max_row_nnz = 64;
  AmudReport exact = std::move(ComputeAmud(ds.graph, ds.labels, 5)).value();
  AmudReport approx =
      std::move(ComputeAmud(ds.graph, ds.labels, 5, capped)).value();
  EXPECT_EQ(exact.decision, approx.decision);
}

TEST(AmudDecisionTest, ApplyDecisionTransformsGraph) {
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {1, 2}});
  Digraph kept = ApplyAmudDecision(g, AmudDecision::kDirected);
  EXPECT_EQ(kept.num_edges(), 2);
  EXPECT_FALSE(kept.IsSymmetric());
  Digraph undirected = ApplyAmudDecision(g, AmudDecision::kUndirected);
  EXPECT_TRUE(undirected.IsSymmetric());
  EXPECT_EQ(undirected.num_edges(), 4);
}

// Calibration property: every registry dataset must reproduce the paper's
// U-/D- guidance (Table II), including the two "abnormal" heterophilous
// cases Actor and Amazon-rating.
class RegistryAmudTest : public ::testing::TestWithParam<int> {};

TEST_P(RegistryAmudTest, DecisionMatchesPaper) {
  const BenchmarkSpec& spec = BenchmarkSuite()[GetParam()];
  Dataset ds = std::move(BuildBenchmark(spec, /*seed=*/0)).value();
  AmudReport report =
      std::move(ComputeAmud(ds.graph, ds.labels, ds.num_classes)).value();
  EXPECT_EQ(report.decision, spec.expect_directed
                                 ? AmudDecision::kDirected
                                 : AmudDecision::kUndirected)
      << spec.name << " S=" << report.score;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, RegistryAmudTest,
                         ::testing::Range(0, 14),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return BenchmarkSuite()[info.param].name;
                         });

}  // namespace
}  // namespace adpa
