// Tests for the CSR SparseMatrix: construction invariants, kernels vs dense
// references, and the normalization family.

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/graph/sparse_matrix.h"

namespace adpa {
namespace {

SparseMatrix RandomSparse(int64_t rows, int64_t cols, int64_t nnz,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (int64_t i = 0; i < nnz; ++i) {
    triplets.push_back({rng.UniformInt(rows), rng.UniformInt(cols),
                        static_cast<float>(rng.Normal())});
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(SparseMatrixTest, EmptyMatrix) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.nnz(), 0);
}

TEST(SparseMatrixTest, FromTripletsCoalescesDuplicates) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}, {1, 0, 1.0f}});
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3.5f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(SparseMatrixTest, CsrInvariants) {
  SparseMatrix m = RandomSparse(20, 30, 100, 1);
  const auto& row_ptr = m.row_ptr();
  ASSERT_EQ(row_ptr.size(), 21u);
  EXPECT_EQ(row_ptr[0], 0);
  EXPECT_EQ(row_ptr[20], m.nnz());
  for (int64_t r = 0; r < 20; ++r) {
    EXPECT_LE(row_ptr[r], row_ptr[r + 1]);
    for (int64_t p = row_ptr[r] + 1; p < row_ptr[r + 1]; ++p) {
      EXPECT_LT(m.col_idx()[p - 1], m.col_idx()[p]);  // strictly ascending
    }
  }
}

TEST(SparseMatrixTest, IdentityMultiplyIsNoop) {
  Rng rng(2);
  Matrix x = Matrix::RandomNormal(6, 3, &rng);
  EXPECT_TRUE(AllClose(SparseMatrix::Identity(6).Multiply(x), x));
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  SparseMatrix a = RandomSparse(8, 10, 30, 3);
  Rng rng(4);
  Matrix x = Matrix::RandomNormal(10, 5, &rng);
  EXPECT_TRUE(AllClose(a.Multiply(x), MatMul(a.ToDense(), x), 1e-4f));
}

TEST(SparseMatrixTest, MultiplyTransposedMatchesDense) {
  SparseMatrix a = RandomSparse(8, 10, 30, 5);
  Rng rng(6);
  Matrix x = Matrix::RandomNormal(8, 4, &rng);
  EXPECT_TRUE(AllClose(a.MultiplyTransposed(x),
                       MatMul(a.ToDense().Transposed(), x), 1e-4f));
}

TEST(SparseMatrixTest, TransposedMatchesDense) {
  SparseMatrix a = RandomSparse(7, 9, 25, 7);
  EXPECT_TRUE(AllClose(a.Transposed().ToDense(), a.ToDense().Transposed()));
}

TEST(SparseMatrixTest, MultiplySparseMatchesDense) {
  SparseMatrix a = RandomSparse(6, 8, 20, 8);
  SparseMatrix b = RandomSparse(8, 5, 20, 9);
  EXPECT_TRUE(AllClose(a.MultiplySparse(b).ToDense(),
                       MatMul(a.ToDense(), b.ToDense()), 1e-4f));
}

TEST(SparseMatrixTest, MultiplySparseRowCapKeepsStrongestEntries) {
  // Dense row product, capped to 2 entries per row.
  SparseMatrix a = SparseMatrix::FromTriplets(1, 3, {{0, 0, 1.0f},
                                                     {0, 1, 1.0f},
                                                     {0, 2, 1.0f}});
  SparseMatrix b = SparseMatrix::FromTriplets(
      3, 3,
      {{0, 0, 5.0f}, {1, 1, 0.1f}, {2, 2, -3.0f}});
  SparseMatrix capped = a.MultiplySparse(b, /*max_row_nnz=*/2);
  EXPECT_EQ(capped.nnz(), 2);
  EXPECT_FLOAT_EQ(capped.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 2), -3.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 1), 0.0f);  // weakest entry dropped
}

TEST(SparseMatrixTest, AddSparseMatchesDense) {
  SparseMatrix a = RandomSparse(6, 6, 15, 10);
  SparseMatrix b = RandomSparse(6, 6, 15, 11);
  EXPECT_TRUE(AllClose(a.AddSparse(b).ToDense(),
                       Add(a.ToDense(), b.ToDense()), 1e-5f));
}

TEST(SparseMatrixTest, BinarizedSetsValuesToOne) {
  SparseMatrix a = SparseMatrix::FromTriplets(2, 2,
                                              {{0, 0, 3.5f}, {1, 1, -2.0f}});
  SparseMatrix b = a.Binarized();
  EXPECT_FLOAT_EQ(b.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(b.At(1, 1), 1.0f);
}

TEST(SparseMatrixTest, RowAndColSums) {
  SparseMatrix a = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 2, 4.0f}});
  const auto rows = a.RowSums();
  EXPECT_FLOAT_EQ(rows[0], 3.0f);
  EXPECT_FLOAT_EQ(rows[1], 4.0f);
  const auto cols = a.ColSums();
  EXPECT_FLOAT_EQ(cols[0], 1.0f);
  EXPECT_FLOAT_EQ(cols[1], 0.0f);
  EXPECT_FLOAT_EQ(cols[2], 6.0f);
}

TEST(SparseMatrixTest, AddSelfLoops) {
  SparseMatrix a = SparseMatrix::FromTriplets(3, 3,
                                              {{0, 1, 1.0f}, {1, 1, 2.0f}});
  SparseMatrix with_loops = AddSelfLoops(a);
  EXPECT_FLOAT_EQ(with_loops.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(with_loops.At(1, 1), 3.0f);  // added to existing diagonal
  EXPECT_FLOAT_EQ(with_loops.At(2, 2), 1.0f);
  EXPECT_FLOAT_EQ(with_loops.At(0, 1), 1.0f);
}

TEST(NormalizeTest, RowNormalizationIsRowStochastic) {
  SparseMatrix a = RandomSparse(10, 10, 40, 12).Binarized();
  SparseMatrix norm = NormalizeRow(a);
  const auto sums = norm.RowSums();
  for (int64_t r = 0; r < 10; ++r) {
    if (a.RowSums()[r] > 0) {
      EXPECT_NEAR(sums[r], 1.0f, 1e-5f);
    }
  }
}

TEST(NormalizeTest, SymmetricNormalizationMatchesClosedForm) {
  // Path graph 0-1-2 (symmetric), no self loops.
  SparseMatrix a = SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {1, 2, 1.0f}, {2, 1, 1.0f}});
  SparseMatrix norm = NormalizeSymmetric(a);
  // Entry (0,1) = 1/sqrt(d0*d1) = 1/sqrt(1*2).
  EXPECT_NEAR(norm.At(0, 1), 1.0f / std::sqrt(2.0f), 1e-5f);
  EXPECT_NEAR(norm.At(1, 0), 1.0f / std::sqrt(2.0f), 1e-5f);
}

TEST(NormalizeTest, ConvolutionFamilyEndpoints) {
  SparseMatrix a = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 1, 1.0f}, {1, 0, 1.0f}});
  // r = 0: D_row⁻¹ A (row-stochastic).
  SparseMatrix rw = NormalizeConvolution(a, 0.0);
  EXPECT_NEAR(rw.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(rw.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(rw.At(1, 0), 1.0f, 1e-6f);
  // r = 1: A D_col⁻¹ (column-stochastic).
  SparseMatrix rev = NormalizeConvolution(a, 1.0);
  const auto col_sums = rev.ColSums();
  EXPECT_NEAR(col_sums[0], 1.0f, 1e-5f);
  EXPECT_NEAR(col_sums[1], 1.0f, 1e-5f);
}

TEST(NormalizeTest, ZeroDegreeRowsSurvive) {
  SparseMatrix a = SparseMatrix::FromTriplets(3, 3, {{0, 1, 1.0f}});
  SparseMatrix norm = NormalizeSymmetric(a);  // rows 1, 2 are empty
  EXPECT_EQ(norm.nnz(), 1);
  EXPECT_FALSE(std::isnan(norm.At(0, 1)));
}

// Property sweep: Multiply and MultiplyTransposed agree with the dense
// reference across shapes and densities.
class SparseKernelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SparseKernelSweep, KernelsMatchDense) {
  const auto [n, m, nnz] = GetParam();
  SparseMatrix a = RandomSparse(n, m, nnz, n * 131 + m);
  Rng rng(99);
  Matrix x = Matrix::RandomNormal(m, 3, &rng);
  Matrix y = Matrix::RandomNormal(n, 3, &rng);
  EXPECT_TRUE(AllClose(a.Multiply(x), MatMul(a.ToDense(), x), 1e-4f));
  EXPECT_TRUE(AllClose(a.MultiplyTransposed(y),
                       MatMul(a.ToDense().Transposed(), y), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SparseKernelSweep,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(5, 5, 2),
                                           std::make_tuple(10, 20, 50),
                                           std::make_tuple(20, 10, 150),
                                           std::make_tuple(32, 32, 32)));

TEST(SparseCsrTest, FromCsrAcceptsWellFormedInput) {
  // 2x3: row 0 = {(0,1), (2,3)}, row 1 = {(1,5)}.
  SparseMatrix m = SparseMatrix::FromCsr(2, 3, {0, 2, 3}, {0, 2, 1},
                                         {1.0f, 3.0f, 5.0f});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_FLOAT_EQ(m.At(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 5.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 0.0f);
  m.CheckInvariants();  // explicit sweep must also pass
}

// Malformed-CSR coverage: every well-formedness clause must be enforced by
// an ADPA_CHECK in FromCsr / CheckInvariants.
class SparseCsrDeathTest : public ::testing::Test {
 protected:
  SparseCsrDeathTest() {
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST_F(SparseCsrDeathTest, BadRowPointersAbort) {
  // Wrong length.
  EXPECT_DEATH(SparseMatrix::FromCsr(2, 2, {0, 1}, {0}, {1.0f}),
               "Check failed");
  // Does not start at zero.
  EXPECT_DEATH(SparseMatrix::FromCsr(2, 2, {1, 1, 1}, {}, {}),
               "Check failed");
  // Not monotone (front/back are consistent, so this isolates the check).
  EXPECT_DEATH(SparseMatrix::FromCsr(2, 2, {0, 3, 2}, {0, 1}, {1.0f, 1.0f}),
               "row_ptr not monotone");
  // Last entry disagrees with nnz.
  EXPECT_DEATH(SparseMatrix::FromCsr(2, 2, {0, 1, 3}, {0, 1}, {1.0f, 1.0f}),
               "Check failed");
}

TEST_F(SparseCsrDeathTest, OutOfRangeColumnIndicesAbort) {
  EXPECT_DEATH(SparseMatrix::FromCsr(1, 2, {0, 1}, {2}, {1.0f}),
               "column out of range");
  EXPECT_DEATH(SparseMatrix::FromCsr(1, 2, {0, 1}, {-1}, {1.0f}),
               "negative column");
}

TEST_F(SparseCsrDeathTest, UnsortedOrDuplicateColumnsAbort) {
  EXPECT_DEATH(
      SparseMatrix::FromCsr(1, 3, {0, 2}, {2, 0}, {1.0f, 1.0f}),
      "columns not strictly increasing");
  EXPECT_DEATH(
      SparseMatrix::FromCsr(1, 3, {0, 2}, {1, 1}, {1.0f, 1.0f}),
      "columns not strictly increasing");
}

TEST(SparseCsrStatusTest, TryFromCsrReportsInsteadOfAborting) {
  // The Status-returning path used by untrusted-input consumers (fuzz
  // targets, future file readers): same validation as FromCsr, but every
  // violation comes back as InvalidArgument instead of a process abort.
  Result<SparseMatrix> ok =
      SparseMatrix::TryFromCsr(2, 3, {0, 2, 3}, {0, 2, 1},
                               {1.0f, 2.0f, 3.0f});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->nnz(), 3);

  const auto expect_invalid = [](Result<SparseMatrix> r,
                                 const std::string& substring) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find(substring), std::string::npos)
        << r.status().ToString();
  };
  expect_invalid(SparseMatrix::TryFromCsr(-1, 3, {0}, {}, {}),
                 "negative dimensions");
  expect_invalid(SparseMatrix::TryFromCsr(2, 3, {0, 1}, {0}, {1.0f}),
                 "row_ptr length");
  expect_invalid(SparseMatrix::TryFromCsr(1, 3, {1, 1}, {}, {}),
                 "does not start at 0");
  expect_invalid(SparseMatrix::TryFromCsr(1, 3, {0, 2}, {0, 1}, {1.0f}),
                 "length mismatch");
  expect_invalid(SparseMatrix::TryFromCsr(1, 3, {0, 2}, {0}, {1.0f}),
                 "does not end at nnz");
  expect_invalid(SparseMatrix::TryFromCsr(3, 3, {0, 2, 1, 3}, {0, 1, 2},
                                          {1.0f, 1.0f, 1.0f}),
                 "not monotone");
  expect_invalid(SparseMatrix::TryFromCsr(1, 3, {0, 1}, {3}, {1.0f}),
                 "column out of range");
  expect_invalid(SparseMatrix::TryFromCsr(1, 3, {0, 2}, {1, 1},
                                          {1.0f, 1.0f}),
                 "not strictly increasing");
}

TEST_F(SparseCsrDeathTest, FromTripletsRejectsOutOfRangeEntries) {
  EXPECT_DEATH(SparseMatrix::FromTriplets(2, 2, {{2, 0, 1.0f}}),
               "Check failed");
  EXPECT_DEATH(SparseMatrix::FromTriplets(2, 2, {{0, -1, 1.0f}}),
               "Check failed");
}

TEST_F(SparseCsrDeathTest, KernelShapeMismatchesAbort) {
  SparseMatrix a = SparseMatrix::FromCsr(2, 3, {0, 1, 1}, {0}, {1.0f});
  EXPECT_DEATH(a.Multiply(Matrix(2, 4)), "Check failed");
  EXPECT_DEATH(a.MultiplyTransposed(Matrix(3, 4)), "Check failed");
  EXPECT_DEATH(a.MultiplySparse(SparseMatrix::Identity(2)), "Check failed");
  EXPECT_DEATH(a.AddSparse(SparseMatrix::Identity(3)), "Check failed");
}

}  // namespace
}  // namespace adpa
