// Tests for graph algorithms: components, BFS, k-hop neighborhoods,
// degree statistics.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/graph/algorithms.h"

namespace adpa {
namespace {

TEST(WccTest, TwoIslands) {
  Digraph g = Digraph::CreateOrDie(5, {{0, 1}, {1, 2}, {3, 4}});
  ComponentLabeling wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 2);
  EXPECT_EQ(wcc.component_of[0], wcc.component_of[2]);
  EXPECT_EQ(wcc.component_of[3], wcc.component_of[4]);
  EXPECT_NE(wcc.component_of[0], wcc.component_of[3]);
}

TEST(WccTest, DirectionIsIgnored) {
  // 0 -> 1 <- 2: weakly connected even though 0 cannot reach 2.
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {2, 1}});
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 1);
}

TEST(WccTest, IsolatedNodesAreSingletons) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}});
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 3);
}

TEST(SccTest, CycleIsOneComponent) {
  Digraph g = Digraph::CreateOrDie(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(StronglyConnectedComponents(g).num_components, 1);
}

TEST(SccTest, ChainIsAllSingletons) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 3}});
  ComponentLabeling scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4);
}

TEST(SccTest, MixedGraph) {
  // SCC {0,1,2} (cycle), singleton {3}, SCC {4,5}.
  Digraph g = Digraph::CreateOrDie(
      6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 4}});
  ComponentLabeling scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3);
  EXPECT_EQ(scc.component_of[0], scc.component_of[1]);
  EXPECT_EQ(scc.component_of[0], scc.component_of[2]);
  EXPECT_EQ(scc.component_of[4], scc.component_of[5]);
  EXPECT_NE(scc.component_of[0], scc.component_of[3]);
  EXPECT_NE(scc.component_of[3], scc.component_of[4]);
}

TEST(SccTest, SccRefinesWcc) {
  DsbmConfig config;
  config.num_nodes = 300;
  config.num_classes = 3;
  config.avg_out_degree = 3.0;
  config.class_transition = HomophilousTransition(3, 0.6);
  config.feature_dim = 4;
  config.seed = 5;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  ComponentLabeling wcc = WeaklyConnectedComponents(ds.graph);
  ComponentLabeling scc = StronglyConnectedComponents(ds.graph);
  EXPECT_GE(scc.num_components, wcc.num_components);
  // Nodes in the same SCC must share a WCC.
  for (int64_t u = 0; u < ds.num_nodes(); ++u) {
    for (int64_t v : ds.graph.OutNeighbors(u)) {
      if (scc.component_of[u] == scc.component_of[v]) {
        EXPECT_EQ(wcc.component_of[u], wcc.component_of[v]);
      }
    }
  }
}

TEST(BfsTest, DistancesOnChain) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto d = BfsDistances(g, {0});
  EXPECT_EQ(d, (std::vector<int64_t>{0, 1, 2, 3}));
  // Direction matters: from node 3 nothing is reachable.
  const auto back = BfsDistances(g, {3});
  EXPECT_EQ(back, (std::vector<int64_t>{-1, -1, -1, 0}));
}

TEST(BfsTest, MaxHopsTruncates) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto d = BfsDistances(g, {0}, /*max_hops=*/2);
  EXPECT_EQ(d, (std::vector<int64_t>{0, 1, 2, -1}));
}

TEST(BfsTest, MultiSource) {
  Digraph g = Digraph::CreateOrDie(5, {{0, 1}, {4, 3}, {3, 2}});
  const auto d = BfsDistances(g, {0, 4});
  EXPECT_EQ(d, (std::vector<int64_t>{0, 1, 2, 1, 0}));
}

TEST(KHopTest, NeighborhoodExcludesSelf) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  const auto hop2 = KHopOutNeighborhood(g, 0, 2);
  EXPECT_EQ(hop2, (std::vector<int64_t>{1, 2}));
  const auto hop3 = KHopOutNeighborhood(g, 0, 3);
  EXPECT_EQ(hop3, (std::vector<int64_t>{1, 2, 3}));
}

TEST(DegreeStatsTest, HandComputed) {
  Digraph g = Digraph::CreateOrDie(4, {{0, 1}, {0, 2}, {1, 2}});
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_DOUBLE_EQ(stats.mean_out, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats.max_out, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_in, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(stats.max_in, 2.0);
  EXPECT_EQ(stats.sources, 2);  // nodes 0 and 3
  EXPECT_EQ(stats.sinks, 2);    // nodes 2 and 3
}

TEST(DegreeStatsTest, GeneratorMatchesConfiguredDegree) {
  DsbmConfig config;
  config.num_nodes = 500;
  config.num_classes = 4;
  config.avg_out_degree = 7.0;
  config.class_transition = HomophilousTransition(4, 0.7);
  config.feature_dim = 4;
  config.seed = 9;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  const DegreeStats stats = ComputeDegreeStats(ds.graph);
  EXPECT_NEAR(stats.mean_out, 7.0, 0.5);  // dedup removes a few edges
}

}  // namespace
}  // namespace adpa
