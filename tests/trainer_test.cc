// Trainer and experiment-harness semantics.

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/models/factory.h"
#include "src/train/experiment.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset EasyTask(uint64_t seed = 1) {
  DsbmConfig config;
  config.num_nodes = 150;
  config.num_classes = 3;
  config.avg_out_degree = 5.0;
  config.class_transition = HomophilousTransition(3, 0.85);
  config.feature_dim = 10;
  config.feature_noise = 0.6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed + 100);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.4, 0.3, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

TEST(AccuracyTest, HandComputed) {
  Matrix logits = Matrix::FromRows({{2, 1}, {0, 3}, {5, 4}});
  const std::vector<int64_t> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1, 2}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {2}), 0.0);
}

TEST(TrainerTest, EarlyStoppingCutsEpochs) {
  Dataset ds = EasyTask();
  Rng rng(2);
  ModelConfig mc;
  mc.hidden = 16;
  ModelPtr model = std::move(CreateModel("SGC", ds, mc, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 500;
  tc.patience = 5;
  const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
  EXPECT_LT(result.epochs_run, 500);
  EXPECT_GE(result.epochs_run, result.best_epoch + 1);
}

TEST(TrainerTest, PatienceZeroDisablesEarlyStopping) {
  Dataset ds = EasyTask();
  Rng rng(3);
  ModelConfig mc;
  mc.hidden = 8;
  ModelPtr model = std::move(CreateModel("SGC", ds, mc, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 25;
  tc.patience = 0;
  const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
  EXPECT_EQ(result.epochs_run, 25);
}

TEST(TrainerTest, CurvesRecordedWhenRequested) {
  Dataset ds = EasyTask();
  Rng rng(4);
  ModelConfig mc;
  mc.hidden = 8;
  ModelPtr model = std::move(CreateModel("GCN", ds, mc, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 10;
  tc.patience = 0;
  tc.record_curves = true;
  const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
  EXPECT_EQ(result.val_curve.size(), 10u);
  EXPECT_EQ(result.train_loss_curve.size(), 10u);
  // Loss should drop over 10 epochs on this easy task.
  EXPECT_LT(result.train_loss_curve.back(), result.train_loss_curve.front());
}

TEST(TrainerTest, TestAccuracyTakenAtBestValidationEpoch) {
  Dataset ds = EasyTask();
  Rng rng(5);
  ModelConfig mc;
  mc.hidden = 8;
  ModelPtr model = std::move(CreateModel("GCN", ds, mc, &rng)).value();
  TrainConfig tc;
  tc.max_epochs = 40;
  tc.patience = 0;
  tc.record_curves = true;
  const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
  // best_val_accuracy must equal the max of the recorded curve.
  double max_val = 0.0;
  for (double v : result.val_curve) max_val = std::max(max_val, v);
  EXPECT_DOUBLE_EQ(result.best_val_accuracy, max_val);
}

TEST(AggregateTest, MeanAndStd) {
  RepeatedResult r = Aggregate({0.8, 0.9, 1.0});
  EXPECT_NEAR(r.mean, 90.0, 1e-9);
  EXPECT_NEAR(r.stddev, 10.0, 1e-9);
  EXPECT_EQ(r.ToString(), "90.0±10.0");
}

TEST(AggregateTest, SingleRunHasZeroStd) {
  RepeatedResult r = Aggregate({0.5});
  EXPECT_NEAR(r.mean, 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
}

TEST(ExperimentTest, RunRepeatedAggregatesAcrossSeeds) {
  ModelConfig mc;
  mc.hidden = 8;
  TrainConfig tc;
  tc.max_epochs = 30;
  tc.patience = 10;
  Result<RepeatedResult> result = RunRepeated(
      "SGC", [](uint64_t seed) { return Result<Dataset>(EasyTask(seed)); },
      mc, tc, /*runs=*/3, /*undirect_input=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->accuracies.size(), 3u);
  EXPECT_GT(result->mean, 40.0);  // percent
}

TEST(ExperimentTest, PropagatesBuilderFailure) {
  ModelConfig mc;
  TrainConfig tc;
  Result<RepeatedResult> result = RunRepeated(
      "SGC",
      [](uint64_t) {
        return Result<Dataset>(Status::Internal("builder broke"));
      },
      mc, tc, 2, false);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ExperimentTest, UndirectConventionFollowsModelType) {
  EXPECT_TRUE(ShouldUndirectInput("GCN"));
  EXPECT_TRUE(ShouldUndirectInput("JacobiConv"));
  EXPECT_FALSE(ShouldUndirectInput("MagNet"));
  EXPECT_FALSE(ShouldUndirectInput("ADPA"));
}

}  // namespace
}  // namespace adpa
