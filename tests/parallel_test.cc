#include "src/core/parallel.h"

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/random.h"
#include "src/graph/patterns.h"
#include "src/graph/sparse_matrix.h"
#include "src/tensor/matrix.h"
#include "src/tensor/simd.h"

namespace adpa {
namespace {

/// Every test restores automatic thread detection so the fixture never
/// leaks a pool configuration into other test suites.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { SetNumThreads(0); }
};

TEST_F(ParallelTest, PoolStartupShutdownAndReconfigure) {
  for (int n : {1, 2, 4, 8, 3}) {
    SetNumThreads(n);
    EXPECT_EQ(GetNumThreads(), n);
    std::atomic<int64_t> visited{0};
    ParallelFor(0, 1000, 1, [&](int64_t begin, int64_t end) {
      visited.fetch_add(end - begin);
    });
    EXPECT_EQ(visited.load(), 1000);
  }
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1);
}

TEST_F(ParallelTest, EmptyAndReversedRangesNeverInvokeTheBody) {
  SetNumThreads(4);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(3, 1, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(0, 0, 0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_F(ParallelTest, CoversEveryIndexExactlyOnce) {
  SetNumThreads(8);
  for (int64_t total : {1, 2, 3, 7, 64, 1001}) {
    for (int64_t grain : {1, 7, 100}) {
      std::vector<int> counts(total, 0);
      ParallelFor(0, total, grain, [&](int64_t begin, int64_t end) {
        ASSERT_LE(0, begin);
        ASSERT_LT(begin, end);
        ASSERT_LE(end, total);
        for (int64_t i = begin; i < end; ++i) ++counts[i];
      });
      for (int64_t i = 0; i < total; ++i) {
        EXPECT_EQ(counts[i], 1) << "index " << i << " of " << total
                                << " grain " << grain;
      }
    }
  }
}

TEST_F(ParallelTest, RespectsGrainAsMinimumChunkSize) {
  SetNumThreads(8);
  ParallelFor(0, 100, 30, [&](int64_t begin, int64_t end) {
    // Only the last chunk may be smaller than the grain, and with a
    // balanced partition of 100 over at most 3 chunks every chunk has at
    // least 30 indices.
    EXPECT_GE(end - begin, 30);
  });
}

TEST_F(ParallelTest, ExceptionFromWorkerChunkPropagatesToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(ParallelFor(0, 64, 1,
                           [](int64_t begin, int64_t) {
                             if (begin >= 0) {
                               throw std::runtime_error("chunk failure");
                             }
                           }),
               std::runtime_error);
  // The pool must survive a failed job.
  std::atomic<int64_t> visited{0};
  ParallelFor(0, 64, 1, [&](int64_t begin, int64_t end) {
    visited.fetch_add(end - begin);
  });
  EXPECT_EQ(visited.load(), 64);
}

TEST_F(ParallelTest, NestedParallelForRunsInline) {
  SetNumThreads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> inner_total{0};
  ParallelFor(0, 8, 1, [&](int64_t begin, int64_t end) {
    EXPECT_TRUE(InParallelRegion());
    for (int64_t i = begin; i < end; ++i) {
      int64_t local = 0;
      ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
        // Inline: the nested body runs on this same thread, so plain
        // accumulation is safe.
        local += e - b;
      });
      inner_total.fetch_add(local);
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 80);
}

// --- Bitwise determinism across thread counts -----------------------------

/// Runs `compute` under each thread count and asserts the resulting dense
/// matrix is bit-for-bit the single-threaded one.
template <typename ComputeFn>
void ExpectBitwiseAcrossThreadCounts(ComputeFn compute) {
  SetNumThreads(1);
  const Matrix reference = compute();
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const Matrix got = compute();
    ASSERT_EQ(got.rows(), reference.rows());
    ASSERT_EQ(got.cols(), reference.cols());
    EXPECT_EQ(std::memcmp(got.data(), reference.data(),
                          sizeof(float) * reference.size()),
              0)
        << "not bitwise identical at " << threads << " threads";
  }
  SetNumThreads(0);
}

SparseMatrix RandomSparse(int64_t rows, int64_t cols, int64_t nnz, Rng* rng) {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz);
  for (int64_t i = 0; i < nnz; ++i) {
    triplets.push_back({static_cast<int64_t>(rng->Uniform(0.0, 1.0) * rows),
                        static_cast<int64_t>(rng->Uniform(0.0, 1.0) * cols),
                        static_cast<float>(rng->Normal(0.0, 1.0))});
  }
  for (Triplet& t : triplets) {
    t.row = std::min(t.row, rows - 1);
    t.col = std::min(t.col, cols - 1);
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST_F(ParallelTest, MatMulFamilyIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Matrix a = Matrix::RandomNormal(129, 67, &rng);
  const Matrix b = Matrix::RandomNormal(67, 93, &rng);
  const Matrix same_rows = Matrix::RandomNormal(129, 93, &rng);  // aᵀ·this
  const Matrix same_cols = Matrix::RandomNormal(93, 67, &rng);   // a·thisᵀ
  ExpectBitwiseAcrossThreadCounts([&] { return MatMul(a, b); });
  ExpectBitwiseAcrossThreadCounts(
      [&] { return MatMulTransposeA(a, same_rows); });
  ExpectBitwiseAcrossThreadCounts(
      [&] { return MatMulTransposeB(a, same_cols); });
}

TEST_F(ParallelTest, MatMulSparseAMatchesMatMulAndIsThreadCountInvariant) {
  Rng rng(11);
  Matrix a = Matrix::RandomNormal(75, 40, &rng);
  // Punch exact zeros so the skip branch is exercised.
  a.ApplyFn([](float v) { return v > 0.0f ? v : 0.0f; });
  const Matrix b = Matrix::RandomNormal(40, 33, &rng);
  ExpectBitwiseAcrossThreadCounts([&] { return MatMulSparseA(a, b); });
  SetNumThreads(1);
  // MatMulSparseA keeps the one-double-chain-per-element accumulation at
  // every level, so it matches MatMul bit for bit at the levels that share
  // that discipline. The AVX-512 MatMul accumulates float runs
  // (simd::KernelTable::gemm_rows), so there agreement is to rel-error —
  // covered per level by tests/simd_test.cc.
  const simd::Level saved = simd::ActiveLevel();
  for (simd::Level level : {simd::Level::kPortable, simd::Level::kAvx2}) {
    if (!simd::LevelSupported(level)) continue;
    simd::SetLevel(level);
    const Matrix dense = MatMul(a, b);
    const Matrix sparse = MatMulSparseA(a, b);
    EXPECT_EQ(std::memcmp(dense.data(), sparse.data(),
                          sizeof(float) * dense.size()),
              0)
        << "level " << simd::LevelName(level);
  }
  simd::SetLevel(saved);
}

TEST_F(ParallelTest, ElementwiseAndSoftmaxAreThreadCountInvariant) {
  Rng rng(13);
  const Matrix a = Matrix::RandomNormal(83, 59, &rng);
  const Matrix b = Matrix::RandomNormal(83, 59, &rng);
  ExpectBitwiseAcrossThreadCounts([&] { return SoftmaxRows(a); });
  ExpectBitwiseAcrossThreadCounts([&] { return a.Transposed(); });
  ExpectBitwiseAcrossThreadCounts([&] {
    Matrix out = a;
    out.AddScaledInPlace(b, 0.37f);
    out.ApplyFn([](float v) { return v * v; });
    return out;
  });
}

TEST_F(ParallelTest, SpmmIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(17);
  const SparseMatrix s = RandomSparse(210, 140, 1500, &rng);
  const Matrix x = Matrix::RandomNormal(140, 23, &rng);
  const Matrix xt = Matrix::RandomNormal(210, 23, &rng);
  ExpectBitwiseAcrossThreadCounts([&] { return s.Multiply(x); });
  ExpectBitwiseAcrossThreadCounts([&] { return s.MultiplyTransposed(xt); });
}

TEST_F(ParallelTest, SparseSparseProductIsIdenticalAcrossThreadCounts) {
  Rng rng(19);
  const SparseMatrix a = RandomSparse(180, 120, 1200, &rng);
  const SparseMatrix b = RandomSparse(120, 160, 1000, &rng);
  SetNumThreads(1);
  const SparseMatrix reference = a.MultiplySparse(b, /*max_row_nnz=*/24);
  for (int threads : {2, 8}) {
    SetNumThreads(threads);
    const SparseMatrix got = a.MultiplySparse(b, /*max_row_nnz=*/24);
    EXPECT_EQ(got.row_ptr(), reference.row_ptr());
    EXPECT_EQ(got.col_idx(), reference.col_idx());
    EXPECT_EQ(got.values(), reference.values());
  }
}

TEST_F(ParallelTest, DpPropagationIsBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(23);
  const SparseMatrix adjacency = RandomSparse(160, 160, 900, &rng);
  const Matrix features = Matrix::RandomNormal(160, 31, &rng);
  const PatternSet set(adjacency);
  const std::vector<DirectedPattern> patterns = SecondOrderPatterns();
  ExpectBitwiseAcrossThreadCounts([&] {
    std::vector<Matrix> states(patterns.size(), features);
    set.ApplyStep(patterns, &states);
    set.ApplyStep(patterns, &states);  // K = 2 propagation
    return ConcatCols(states);
  });
}

}  // namespace
}  // namespace adpa
