#!/usr/bin/env python3
"""Fixture-driven tests for tools/analyze.py (the internal frontend).

Runs the analyzer against tests/analyze_fixtures/ (a miniature repo tree
exercising every rule and every waiver placement) and asserts that each
rule fires where expected — including the edge cases the lexer frontend
must get right: templated hot functions, lambda bodies attributed to their
enclosing function, manual Lock()/Unlock() spans, and predicate-loop
CondVar waits — and that the real tree stays clean.
"""

import os
import re
import subprocess
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_ROOT = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")
ANALYZE = os.path.join(REPO_ROOT, "tools", "analyze.py")

FINDING_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\] (?P<msg>.*)$")


def run_analyze(root=FIXTURE_ROOT, files=None):
    """Returns (exit_code, list of (path, line, rule, message), stdout)."""
    cmd = [sys.executable, ANALYZE, "--root", root]
    if files is not None:
        cmd += ["--files"] + files
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        match = FINDING_RE.match(line)
        if match:
            findings.append((match.group("path").replace(os.sep, "/"),
                             int(match.group("line")), match.group("rule"),
                             match.group("msg")))
    return proc.returncode, findings, proc.stdout


def hits_for(findings, path):
    return [(line, rule, msg) for p, line, rule, msg in findings
            if p == path]


class AnalyzeRuleTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.exit_code, cls.findings, cls.stdout = run_analyze()

    def test_violations_fail_the_run(self):
        self.assertEqual(self.exit_code, 1)

    def test_hot_alloc_fires_on_direct_allocations(self):
        hits = hits_for(self.findings, "src/serve/hot_alloc.cc")
        self.assertEqual({rule for _, rule, _ in hits}, {"hot-alloc"})
        # push_back and operator new each fire once.
        self.assertEqual(len(hits), 2)
        self.assertTrue(all("HotDirect" in msg for _, _, msg in hits))

    def test_hot_alloc_fires_transitively_with_call_chain(self):
        hits = hits_for(self.findings, "src/serve/hot_transitive.cc")
        self.assertEqual([rule for _, rule, _ in hits], ["hot-alloc"])
        # The finding anchors to the resize() inside Helper, and the message
        # names the path back to the hot root.
        self.assertIn("Helper <- HotCaller", hits[0][2])
        self.assertIn("HotCaller()", hits[0][2])

    def test_all_waiver_placements_suppress(self):
        # Site waiver, call-site waiver, and decl-level leaf waiver each
        # silence their allocation.
        self.assertEqual(hits_for(self.findings, "src/serve/hot_waived.cc"),
                         [])

    def test_templated_hot_function_is_a_root(self):
        hits = hits_for(self.findings, "src/tensor/hot_template.cc")
        self.assertEqual([rule for _, rule, _ in hits], ["hot-alloc"])
        self.assertIn("HotTemplate", hits[0][2])

    def test_lambda_body_attributed_to_enclosing_function(self):
        hits = hits_for(self.findings, "src/tensor/hot_lambda.cc")
        self.assertEqual([rule for _, rule, _ in hits], ["hot-alloc"])
        self.assertIn("HotLambda", hits[0][2])

    def test_blocking_under_lock_variants(self):
        hits = hits_for(self.findings, "src/core/block_under_lock.cc")
        self.assertEqual({rule for _, rule, _ in hits},
                         {"blocking-under-lock"})
        # IO under MutexLock, Wait outside a loop, IO inside a manual
        # Lock()/Unlock() span, and IO inside a lambda under the lock.
        flagged = {fn for _, _, msg in hits
                   for fn in ("BlockedRead", "WaitNoLoop", "ManualLockSpan",
                              "LambdaUnderLock") if fn in msg}
        self.assertEqual(flagged, {"BlockedRead", "WaitNoLoop",
                                   "ManualLockSpan", "LambdaUnderLock"})
        self.assertEqual(len(hits), 4)
        # Predicate-loop waits and post-Unlock IO stay legal.
        all_msgs = " ".join(msg for _, _, msg in hits)
        self.assertNotIn("WaitInLoop", all_msgs)
        self.assertNotIn("WaitInBracedLoop", all_msgs)

    def test_guard_coverage_fires_on_the_one_unguarded_member(self):
        hits = hits_for(self.findings, "src/core/unguarded.h")
        self.assertEqual([rule for _, rule, _ in hits], ["guard-coverage"])
        self.assertIn("'errors_'", hits[0][2])
        # Guarded, const, atomic, waived, and sync-primitive members — and
        # the mutex-free class — all stay clean.
        for name in ("requests_", "capacity_", "peak_", "waived_", "cv_",
                     "free_counter_"):
            self.assertNotIn(name, hits[0][2])

    def test_clean_hot_path_has_no_findings(self):
        self.assertEqual(hits_for(self.findings, "src/models/clean.cc"), [])

    # --- untrusted-size -----------------------------------------------------

    def test_taint_bomb_multiply_and_both_sinks_fire(self):
        # The PR 4 propagation-cache shape: a product-only bound check is
        # itself a finding, and it bounds neither factor, so both resizes
        # fire too.
        hits = hits_for(self.findings, "src/io/taint_bomb.cc")
        self.assertEqual({rule for _, rule, _ in hits}, {"untrusted-size"})
        self.assertEqual(len(hits), 3)
        multiply = [msg for _, _, msg in hits if "multiplies" in msg]
        self.assertEqual(len(multiply), 1)
        self.assertIn("steps * per_step", multiply[0])
        sinks = [msg for _, _, msg in hits if "reaches resize()" in msg]
        self.assertEqual(len(sinks), 2)
        self.assertTrue(any("'steps'" in msg for msg in sinks))
        self.assertTrue(any("'per_step'" in msg for msg in sinks))

    def test_taint_flows_through_call_argument(self):
        # Taint read in the caller reaches the sink inside the callee via
        # the interprocedural parameter entry.
        hits = hits_for(self.findings, "src/io/taint_flows.cc")
        self.assertEqual({rule for _, rule, _ in hits}, {"untrusted-size"})
        param = [msg for _, _, msg in hits if "SinkParam" in msg]
        self.assertEqual(len(param), 1)
        self.assertIn("binary Read*", param[0])

    def test_taint_flows_through_return_and_local_copy(self):
        hits = hits_for(self.findings, "src/io/taint_flows.cc")
        ret = [msg for _, _, msg in hits
               if "FlowThroughReturnAndLocal" in msg]
        self.assertEqual(len(ret), 1)
        # The reported path is the local copy, the origin the wire read
        # inside the callee the value returned from.
        self.assertIn("'copy'", ret[0])
        self.assertIn("reaches reserve()", ret[0])

    def test_taint_flows_through_struct_member(self):
        hits = hits_for(self.findings, "src/io/taint_flows.cc")
        member = [msg for _, _, msg in hits if "FlowThroughMember" in msg]
        self.assertEqual(len(member), 1)
        self.assertIn("'header.count'", member[0])

    def test_stream_extraction_is_a_source(self):
        hits = hits_for(self.findings, "src/io/taint_flows.cc")
        stream = [msg for _, _, msg in hits if "FlowFromStream" in msg]
        self.assertEqual(len(stream), 1)
        self.assertIn("stream >>", stream[0])

    def test_array_new_is_a_sink(self):
        hits = hits_for(self.findings, "src/io/taint_flows.cc")
        arr = [msg for _, _, msg in hits if "FlowIntoArrayNew" in msg]
        self.assertEqual(len(arr), 1)
        self.assertIn("new[]", arr[0])

    def test_sanitized_flows_are_silent(self):
        # Comparison against a named limit, CHECK macro, consumed Validate
        # call, equality pin, min-clamp at the sink, and the
        # divide-the-limit product guard each bound their count.
        self.assertEqual(
            hits_for(self.findings, "src/io/taint_sanitized.cc"), [])

    def test_taint_waiver_placements_suppress(self):
        # Site, call-site, and definition-header waivers all silence the
        # report.
        self.assertEqual(
            hits_for(self.findings, "src/io/taint_waived.cc"), [])

    # --- unchecked-status ---------------------------------------------------

    def test_bare_and_void_cast_discards_fire(self):
        hits = hits_for(self.findings, "src/serve/unchecked_status.cc")
        self.assertEqual({rule for _, rule, _ in hits},
                         {"unchecked-status"})
        self.assertEqual(len(hits), 2)
        flagged = {fn for _, _, msg in hits
                   for fn in ("Flush", "CountRows") if fn + "()" in msg}
        self.assertEqual(flagged, {"Flush", "CountRows"})
        self.assertTrue(all("BareDiscards" in msg for _, _, msg in hits))

    def test_status_consumption_forms_and_waivers_are_silent(self):
        # Assignment, return, branch, macro operands, member chaining, the
        # declaration waiver, and the site waiver all consume or excuse the
        # value — only the two BareDiscards lines fire in this file.
        hits = hits_for(self.findings, "src/serve/unchecked_status.cc")
        all_msgs = " ".join(msg for _, _, msg in hits)
        for silent_fn in ("ProperConsumption", "DeclWaivedDiscard",
                          "SiteWaivedDiscard"):
            self.assertNotIn(silent_fn, all_msgs)


class AnalyzeInvocationTest(unittest.TestCase):
    def test_explicit_file_list_restricts_the_run(self):
        code, findings, _ = run_analyze(files=["src/models/clean.cc"])
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])

    def test_explicit_bad_file_fails(self):
        code, findings, _ = run_analyze(files=["src/serve/hot_alloc.cc"])
        self.assertEqual(code, 1)
        self.assertEqual({rule for _, _, rule, _ in findings}, {"hot-alloc"})

    def test_real_tree_walk_is_clean_and_skips_fixtures(self):
        # The actual repository must analyze clean — every hot path is
        # allocation-free or explicitly waived — and the deliberately broken
        # fixtures must not be picked up.
        code, findings, stdout = run_analyze(root=REPO_ROOT)
        self.assertEqual(code, 0, msg=stdout)
        self.assertEqual(findings, [])
        self.assertNotIn("analyze_fixtures", stdout)
        self.assertIn("analyze: OK", stdout)


if __name__ == "__main__":
    unittest.main()
