// Fuzz target: the per-connection line framing layer on attacker-controlled
// byte streams.
//
// Invariants under test:
//  * LineFramer never aborts or trips ASan/UBSan on any byte stream —
//    partial lines, oversized floods, interleaved CRLF/LF, NUL bytes;
//  * no extracted line contains its terminator ('\n', or the '\r' of a
//    CRLF), and no line exceeds the configured cap;
//  * the sequence of lines (and the oversized verdict, and the final
//    remainder) is a pure function of the byte stream: replaying the same
//    input whole and byte-at-a-time must produce identical results —
//    chunk boundaries carry no meaning;
//  * once oversized, the framer stays oversized (the latch never resets)
//    and buffered memory stays bounded by the cap plus one append.
//
// The cap is small so the fuzzer reaches the oversized latch with tiny
// inputs instead of megabyte lines.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/net/framing.h"

namespace {

using adpa::net::LineFramer;

struct Replay {
  std::vector<std::string> lines;
  bool oversized = false;
  bool has_remainder = false;
  std::string remainder;
};

constexpr size_t kCap = 32;

void CheckLine(const std::string& line) {
  if (line.size() > kCap) __builtin_trap();
  for (const char c : line) {
    if (c == '\n') __builtin_trap();
  }
  // Note a trailing '\r' IS legal payload: only the single '\r' directly
  // before the terminator (or the end of stream) is part of the framing,
  // so "a\r\r\n" frames as the line "a\r" — corpus seed bare_crs pins the
  // shape, and the chunked-replay equality below pins that CR stripping
  // is applied identically whatever the chunk boundaries.
}

Replay Run(const uint8_t* data, size_t size, size_t chunk) {
  LineFramer framer(kCap);
  Replay out;
  std::string line;
  for (size_t offset = 0; offset < size; offset += chunk) {
    const size_t take = std::min(chunk, size - offset);
    framer.Append(reinterpret_cast<const char*>(data) + offset, take);
    while (true) {
      const LineFramer::Next next = framer.NextLine(&line);
      if (next == LineFramer::Next::kLine) {
        CheckLine(line);
        out.lines.push_back(line);
        continue;
      }
      if (next == LineFramer::Next::kOversized) {
        if (!framer.oversized()) __builtin_trap();
        out.oversized = true;
      }
      break;
    }
    // The buffer must stay bounded: cap + one append's worth of slack.
    if (framer.buffered_bytes() > kCap + chunk + 1) __builtin_trap();
  }
  out.has_remainder = framer.TakeRemainder(&out.remainder);
  if (out.has_remainder) {
    CheckLine(out.remainder);
    if (out.oversized) __builtin_trap();  // latched streams yield nothing
    if (out.remainder.empty()) __builtin_trap();
  }
  // The latch never resets: after oversized, more input changes nothing.
  if (out.oversized) {
    framer.Append("ok\n", 3);
    if (framer.NextLine(&line) != LineFramer::Next::kOversized) {
      __builtin_trap();
    }
  }
  return out;
}

bool Same(const Replay& a, const Replay& b) {
  return a.lines == b.lines && a.oversized == b.oversized &&
         a.has_remainder == b.has_remainder && a.remainder == b.remainder;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const Replay whole = Run(data, size, size == 0 ? 1 : size);
  const Replay bytewise = Run(data, size, 1);
  if (!Same(whole, bytewise)) __builtin_trap();
  // A mid-sized chunking as a third witness (7 is coprime with typical
  // line lengths, so chunk boundaries land everywhere).
  if (!Same(whole, Run(data, size, 7))) __builtin_trap();
  return 0;
}
