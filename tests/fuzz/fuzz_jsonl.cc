// Fuzz target: the JSON-lines serving protocol on attacker-controlled bytes.
//
// Invariants under test:
//  * ParseRequestLine never aborts or trips ASan/UBSan — hostile input comes
//    back as a non-OK Status, and the `max_nodes` ceiling bounds the node
//    array before it is built;
//  * any request the parser accepts has in-contract fields (non-negative
//    deadline, nodes within the limit);
//  * every reply formatter emits a parseable single line for any accepted
//    request: no raw control characters, no unescaped quotes, no embedded
//    newline (which would desynchronize the JSONL framing);
//  * EscapeJsonString is idempotent on its own output modulo backslash
//    doubling — concretely, escaping never produces raw control bytes.
//
// The limit is tight so the fuzzer explores the ceiling check with small
// inputs instead of growing megabyte node arrays.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/serve/jsonl.h"

namespace {

using adpa::Result;
using adpa::serve::ServeRequest;

// A JSONL reply line must contain no raw control characters (escaping is
// the formatter's job) and in particular no newline.
void CheckReplyLine(const std::string& reply) {
  if (reply.empty() || reply.front() != '{' || reply.back() != '}') {
    __builtin_trap();
  }
  for (const char c : reply) {
    if (static_cast<unsigned char>(c) < 0x20) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  constexpr uint64_t kMaxNodes = 64;
  const std::string line(reinterpret_cast<const char*>(data), size);

  Result<ServeRequest> request = adpa::serve::ParseRequestLine(line, kMaxNodes);
  if (request.ok()) {
    if (request->deadline_ms < 0) __builtin_trap();
    if (request->nodes.size() > kMaxNodes) __builtin_trap();
    CheckReplyLine(
        adpa::serve::FormatClassesReply(request->id, request->nodes));
    // The read-side reply grammar accepts exactly the formatter output:
    // a classes reply built from any accepted request must round-trip.
    if (!adpa::serve::ParseReplyLine(
             adpa::serve::FormatClassesReply(request->id, request->nodes))
             .ok()) {
      __builtin_trap();
    }
  } else {
    // The rejection message itself flows into a reply: it must stay framed.
    CheckReplyLine(
        adpa::serve::FormatErrorReply(7, request.status().message()));
  }

  // The raw input doubles as a hostile error/detail string.
  CheckReplyLine(adpa::serve::FormatErrorReply(-1, line));
  CheckReplyLine(adpa::serve::FormatOverloadedReply(1, line));

  // Raw hostile bytes must reject-not-crash in the reply parser, and an
  // error reply carrying them must round-trip (below the parser's 64 KiB
  // message cap; escaping inflates at most 6x).
  (void)adpa::serve::ParseReplyLine(line);
  if (line.size() < (1u << 13) &&
      !adpa::serve::ParseReplyLine(adpa::serve::FormatErrorReply(-1, line))
           .ok()) {
    __builtin_trap();
  }

  // Escaping must remove every raw control byte and be stable: escaping an
  // already-escaped string introduces nothing but doubled backslashes, so a
  // second pass over the output still yields a control-free string.
  const std::string escaped = adpa::serve::EscapeJsonString(line);
  for (const char c : escaped) {
    if (static_cast<unsigned char>(c) < 0x20) __builtin_trap();
  }
  const std::string twice = adpa::serve::EscapeJsonString(escaped);
  for (const char c : twice) {
    if (static_cast<unsigned char>(c) < 0x20) __builtin_trap();
  }
  return 0;
}
