// Fuzz target: SparseMatrix::TryFromCsr on attacker-controlled CSR arrays.
//
// Invariants under test:
//  * TryFromCsr never aborts, crashes, or trips ASan/UBSan on any input —
//    every malformed structure comes back as a non-OK Status;
//  * a matrix that validates is safe to run through the dense kernels
//    (Multiply / MultiplyTransposed / Transposed / At).
//
// Two input modes keep both sides of the validator hot: mode 0 feeds raw
// untempered arrays (almost always rejected, exercising every error path),
// mode 1 derives structurally plausible arrays (sorted in-range columns,
// monotone row_ptr) so the accept path and the kernels get real coverage.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/sparse_matrix.h"
#include "src/tensor/matrix.h"
#include "tests/fuzz/fuzz_util.h"

using adpa::Matrix;
using adpa::Result;
using adpa::SparseMatrix;

namespace {

constexpr int64_t kMaxDim = 32;
constexpr size_t kMaxNnz = 256;

void ExerciseKernels(const SparseMatrix& m) {
  const Matrix x(m.cols(), 3, 0.5f);
  const Matrix y = m.Multiply(x);
  const Matrix xt(m.rows(), 2, -1.0f);
  const Matrix yt = m.MultiplyTransposed(xt);
  const SparseMatrix t = m.Transposed();
  double checksum = 0.0;
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols() && c < 4; ++c) {
      checksum += m.At(r, c);
    }
  }
  // Keep the results alive so the calls cannot be optimized out.
  if (y.rows() + yt.rows() + t.rows() < 0 && checksum > 1e300) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  adpa::fuzz::Input in(data, size);
  const bool plausible = (in.TakeByte() & 1) != 0;
  const int64_t rows = in.TakeInRange(0, kMaxDim);
  const int64_t cols = in.TakeInRange(0, kMaxDim);
  const size_t nnz = static_cast<size_t>(in.TakeInRange(0, kMaxNnz));

  std::vector<int64_t> row_ptr;
  std::vector<int32_t> col_idx;
  std::vector<float> values;
  if (plausible && rows > 0 && cols > 0) {
    // Monotone row_ptr over nnz entries; strictly increasing columns per
    // row. Still not guaranteed valid (column overflow when a row wants
    // more entries than cols), which is exactly the boundary worth fuzzing.
    row_ptr.push_back(0);
    for (int64_t r = 0; r < rows; ++r) {
      const int64_t take = in.TakeInRange(0, 4);
      row_ptr.push_back(row_ptr.back() + take);
    }
    for (int64_t r = 0; r < rows; ++r) {
      int32_t col = static_cast<int32_t>(in.TakeInRange(0, cols - 1));
      for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        col_idx.push_back(col);
        values.push_back(in.TakeFloat());
        col += static_cast<int32_t>(in.TakeInRange(1, 3));
      }
    }
  } else {
    const size_t ptr_len = static_cast<size_t>(in.TakeInRange(0, kMaxDim + 2));
    for (size_t i = 0; i < ptr_len; ++i) row_ptr.push_back(in.TakeInt64());
    for (size_t i = 0; i < nnz && !in.empty(); ++i) {
      col_idx.push_back(static_cast<int32_t>(in.TakeU32()));
      values.push_back(in.TakeFloat());
    }
  }

  Result<SparseMatrix> result = SparseMatrix::TryFromCsr(
      rows, cols, std::move(row_ptr), std::move(col_idx), std::move(values));
  if (result.ok()) ExerciseKernels(result.value());
  return 0;
}
