// Standalone driver linked into the fuzz targets when the toolchain has no
// libFuzzer runtime (`-fsanitize=fuzzer` is a clang feature; the default
// gcc build still needs to replay corpora and shake the targets in CI and
// ctest). It implements the slice of the libFuzzer CLI the build uses:
//
//   fuzz_foo [-runs=N] [-max_total_time=S] <corpus file or dir>...
//
// Every corpus file is replayed through LLVMFuzzerTestOneInput, then each
// seed is mutated deterministically (xorshift PRNG, fixed seed) for N
// rounds or until the time budget runs out. This is a corpus *replayer*
// with light mutation, not a coverage-guided fuzzer — real fuzzing runs
// use the clang+libFuzzer build (see .github/workflows/ci.yml).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Mutate(std::vector<uint8_t>* data, uint64_t* state) {
  switch (XorShift(state) % 4) {
    case 0:  // flip a byte
      if (!data->empty()) {
        (*data)[XorShift(state) % data->size()] ^=
            static_cast<uint8_t>(XorShift(state));
      }
      break;
    case 1:  // truncate
      if (!data->empty()) data->resize(XorShift(state) % data->size());
      break;
    case 2:  // append noise
      for (int i = 0; i < 8; ++i) {
        data->push_back(static_cast<uint8_t>(XorShift(state)));
      }
      break;
    case 3:  // splice: duplicate a prefix
      if (!data->empty()) {
        const size_t cut = XorShift(state) % data->size();
        data->insert(data->end(), data->begin(),
                     data->begin() + static_cast<ptrdiff_t>(cut));
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 256;
  long long max_seconds = 0;  // 0 = no time budget
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore other libFuzzer flags so invocations stay interchangeable.
    } else {
      inputs.push_back(arg);
    }
  }

  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) corpus.push_back(ReadFile(entry.path()));
      }
    } else if (std::filesystem::is_regular_file(input, ec)) {
      corpus.push_back(ReadFile(input));
    } else {
      std::fprintf(stderr, "warning: skipping missing input %s\n",
                   input.string().c_str());
    }
  }
  if (corpus.empty()) corpus.push_back({});  // always probe the empty input

  long long executed = 0;
  for (const auto& seed : corpus) {
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++executed;
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_seconds);
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (long long round = 0; round < runs; ++round) {
    for (const auto& seed : corpus) {
      if (max_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
        std::printf("Done: %lld runs (time budget)\n", executed);
        return 0;
      }
      std::vector<uint8_t> mutated = seed;
      // A couple of stacked mutations per round reaches deeper variants.
      Mutate(&mutated, &state);
      if (XorShift(&state) % 2 == 0) Mutate(&mutated, &state);
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
      ++executed;
    }
  }
  std::printf("Done: %lld runs\n", executed);
  return 0;
}
