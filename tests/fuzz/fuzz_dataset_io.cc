// Fuzz target: LoadDatasetFromStream on attacker-controlled text.
//
// Invariants under test:
//  * the loader never aborts, over-allocates past DatasetLimits, or trips
//    ASan/UBSan — malformed or hostile input is always a non-OK Status;
//  * any dataset the loader accepts survives a save/reload round trip
//    (accepted implies well-formed implies serializable).
//
// Limits are tight so the fuzzer explores the ceiling checks with small
// inputs instead of wasting its budget growing megabyte corpora.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "src/data/io.h"

using adpa::Dataset;
using adpa::DatasetLimits;
using adpa::LoadDatasetFromStream;
using adpa::Result;
using adpa::SaveDatasetToStream;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DatasetLimits limits;
  limits.max_nodes = 64;
  limits.max_edges = 512;
  limits.max_features = 16;
  limits.max_feature_entries = 1024;

  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  Result<Dataset> loaded = LoadDatasetFromStream(in, limits);
  if (!loaded.ok()) return 0;

  std::ostringstream out;
  if (!SaveDatasetToStream(loaded.value(), out).ok()) __builtin_trap();
  std::istringstream again(out.str());
  Result<Dataset> reloaded = LoadDatasetFromStream(again, limits);
  if (!reloaded.ok()) __builtin_trap();
  if (reloaded->num_nodes() != loaded->num_nodes() ||
      reloaded->num_edges() != loaded->num_edges() ||
      reloaded->labels != loaded->labels) {
    __builtin_trap();
  }
  return 0;
}
