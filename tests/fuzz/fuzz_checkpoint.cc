// Fuzz target: checkpoint/cache containers on attacker-controlled bytes.
//
// Invariants under test:
//  * TryLoadCheckpointFromStream / TryLoadPropagationCacheFromStream never
//    abort, over-allocate past CheckpointLimits, or trip ASan/UBSan —
//    truncation, bad magic, version skew, CRC corruption, and hostile size
//    fields all come back as a non-OK Status;
//  * any container a loader accepts survives a save/reload round trip
//    bitwise (accepted implies well-formed implies serializable).
//
// Both loaders run on every input: the magics differ, so at most one gets
// past the header, and a checkpoint corpus doubles as a bad-magic corpus
// for the cache loader (and vice versa).
//
// Limits are tight so the fuzzer explores the ceiling checks with small
// inputs instead of wasting its budget growing megabyte corpora.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "src/io/checkpoint.h"

namespace {

using adpa::Checkpoint;
using adpa::CheckpointLimits;
using adpa::Matrix;
using adpa::PropagationCache;
using adpa::Result;

CheckpointLimits TightLimits() {
  CheckpointLimits limits;
  limits.max_payload_bytes = 4096;
  limits.max_name_bytes = 64;
  limits.max_tensors = 8;
  limits.max_tensor_entries = 256;
  limits.max_patterns = 4;
  limits.max_pattern_length = 4;
  limits.max_cache_blocks = 8;
  return limits;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), sizeof(float) * a.size()) == 0;
}

void CheckCheckpointRoundTrip(const Checkpoint& loaded,
                              const CheckpointLimits& limits) {
  std::ostringstream out;
  if (!SaveCheckpointToStream(loaded, out).ok()) __builtin_trap();
  std::istringstream again(out.str());
  Result<Checkpoint> reloaded = TryLoadCheckpointFromStream(again, limits);
  if (!reloaded.ok()) __builtin_trap();
  if (reloaded->model_name != loaded.model_name ||
      reloaded->dataset_name != loaded.dataset_name ||
      reloaded->dataset_hash != loaded.dataset_hash ||
      reloaded->patterns != loaded.patterns ||
      reloaded->tensors.size() != loaded.tensors.size()) {
    __builtin_trap();
  }
  for (size_t i = 0; i < loaded.tensors.size(); ++i) {
    if (reloaded->tensors[i].name != loaded.tensors[i].name ||
        !BitwiseEqual(reloaded->tensors[i].value, loaded.tensors[i].value)) {
      __builtin_trap();
    }
  }
}

void CheckCacheRoundTrip(const PropagationCache& loaded,
                         const CheckpointLimits& limits) {
  std::ostringstream out;
  if (!SavePropagationCacheToStream(loaded, out).ok()) __builtin_trap();
  std::istringstream again(out.str());
  Result<PropagationCache> reloaded =
      TryLoadPropagationCacheFromStream(again, limits);
  if (!reloaded.ok()) __builtin_trap();
  if (!(reloaded->key == loaded.key) ||
      reloaded->blocks.size() != loaded.blocks.size()) {
    __builtin_trap();
  }
  for (size_t l = 0; l < loaded.blocks.size(); ++l) {
    if (reloaded->blocks[l].size() != loaded.blocks[l].size()) {
      __builtin_trap();
    }
    for (size_t g = 0; g < loaded.blocks[l].size(); ++g) {
      if (!BitwiseEqual(reloaded->blocks[l][g], loaded.blocks[l][g])) {
        __builtin_trap();
      }
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const CheckpointLimits limits = TightLimits();
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream in(bytes);
    Result<Checkpoint> loaded = adpa::TryLoadCheckpointFromStream(in, limits);
    if (loaded.ok()) CheckCheckpointRoundTrip(loaded.value(), limits);
  }
  {
    std::istringstream in(bytes);
    Result<PropagationCache> loaded =
        adpa::TryLoadPropagationCacheFromStream(in, limits);
    if (loaded.ok()) CheckCacheRoundTrip(loaded.value(), limits);
  }
  return 0;
}
