// Fuzz target: PatternSet construction and application on arbitrary small
// digraphs.
//
// Invariants under test:
//  * PatternSet construction (degree normalization with conv_r exponents,
//    optional self loops) is total over every valid adjacency, including
//    isolated nodes, empty graphs, self-edges, and single-node graphs;
//  * Apply/ApplyHop/Reachability never crash or trip ASan/UBSan, and
//    Reachability honors its row fill-in cap.
//
// The adjacency is built from fuzz-derived edges reduced mod n, deduped
// via FromTriplets' coalescing, so every byte string maps to a valid graph
// — the structure space (not the validator) is what's being explored here.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/graph/patterns.h"
#include "src/graph/sparse_matrix.h"
#include "src/tensor/matrix.h"
#include "tests/fuzz/fuzz_util.h"

using adpa::DirectedPattern;
using adpa::Hop;
using adpa::Matrix;
using adpa::PatternSet;
using adpa::SparseMatrix;
using adpa::Triplet;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  adpa::fuzz::Input in(data, size);
  const int64_t n = in.TakeInRange(1, 24);
  const int64_t num_edges = in.TakeInRange(0, 64);
  const double conv_r = static_cast<double>(in.TakeInRange(0, 4)) / 4.0;
  const bool self_loops = (in.TakeByte() & 1) != 0;

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(num_edges));
  for (int64_t i = 0; i < num_edges; ++i) {
    const int64_t src = in.TakeInRange(0, n - 1);
    const int64_t dst = in.TakeInRange(0, n - 1);
    triplets.push_back({src, dst, 1.0f});
  }
  const SparseMatrix adjacency = SparseMatrix::FromTriplets(n, n, triplets);
  const PatternSet patterns(adjacency, conv_r, self_loops);

  const Matrix x(n, 2, 0.25f);
  double checksum = 0.0;
  for (const DirectedPattern& pattern : adpa::EnumeratePatterns(2)) {
    const Matrix propagated = patterns.Apply(pattern, x);
    checksum += propagated.At(0, 0);
    const SparseMatrix reach =
        patterns.Reachability(pattern, /*max_row_nnz=*/8);
    const std::vector<int64_t>& reach_ptr = reach.row_ptr();
    for (int64_t r = 0; r < reach.rows(); ++r) {
      if (reach_ptr[r + 1] - reach_ptr[r] > 8) {
        __builtin_trap();  // fill-in cap violated
      }
    }
  }
  const Matrix out_hop = patterns.ApplyHop(Hop::kOut, x);
  const Matrix in_hop = patterns.ApplyHop(Hop::kIn, x);
  checksum += out_hop.At(n - 1, 0) + in_hop.At(n - 1, 1);
  if (checksum > 1e300) __builtin_trap();  // keep the pipeline observable
  return 0;
}
