// Fuzz target: the ADPA_CHAOS spec parser and schedule builder on
// attacker-controlled bytes.
//
// Invariants under test:
//  * ParseChaosSpec never aborts or trips ASan/UBSan — a hostile spec
//    comes back as a non-OK Status (the env path turns that Status into
//    _exit(41); the parser itself must never terminate anything);
//  * any spec the parser accepts is in contract: intensity in (0, 1],
//    every prefix non-empty and matching at least one catalog name;
//  * BuildChaosSchedule is deterministic — building twice from the same
//    accepted spec yields bitwise-identical Describe() output (this is
//    the whole replay-from-seed story);
//  * every armed point is an eligible catalog name under the prefix
//    filter, its spec parses under the standard failpoint grammar
//    (checked structurally: action then @1inN, N >= 2), and chaos never
//    arms the crash action.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/chaos.h"
#include "src/core/failpoint.h"

namespace {

using adpa::Result;
using adpa::failpoint::ChaosSchedule;
using adpa::failpoint::ChaosSpec;

bool MatchesSomePrefix(const std::string& name, const ChaosSpec& spec) {
  if (spec.prefixes.empty()) return true;
  for (const auto& prefix : spec.prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const Result<ChaosSpec> spec = adpa::failpoint::ParseChaosSpec(text);
  if (!spec.ok()) return 0;

  if (!(spec->intensity > 0.0) || spec->intensity > 1.0) __builtin_trap();
  const auto catalog = adpa::failpoint::Catalog();
  for (const auto& prefix : spec->prefixes) {
    if (prefix.empty()) __builtin_trap();
    bool matched = false;
    for (const auto& entry : catalog) {
      if (entry.first.rfind(prefix, 0) == 0) matched = true;
    }
    if (!matched) __builtin_trap();
  }

  const Result<ChaosSchedule> first =
      adpa::failpoint::BuildChaosSchedule(*spec);
  const Result<ChaosSchedule> second =
      adpa::failpoint::BuildChaosSchedule(*spec);
  // An accepted spec always builds (the builder re-validates the same
  // invariants the parser enforced).
  if (!first.ok() || !second.ok()) __builtin_trap();
  if (first->Describe() != second->Describe()) __builtin_trap();
  if (first->points.size() > first->eligible) __builtin_trap();
  if (first->eligible > catalog.size()) __builtin_trap();

  for (const auto& point : first->points) {
    bool in_catalog = false;
    for (const auto& entry : catalog) {
      if (entry.first == point.name) in_catalog = true;
    }
    if (!in_catalog) __builtin_trap();
    if (!MatchesSomePrefix(point.name, *spec)) __builtin_trap();
    if (point.spec.find("crash") != std::string::npos) __builtin_trap();
    const size_t trigger = point.spec.find("@1in");
    if (trigger == std::string::npos) __builtin_trap();
    const unsigned long long one_in =
        std::strtoull(point.spec.c_str() + trigger + 4, nullptr, 10);
    if (one_in < 2) __builtin_trap();
  }
  return 0;
}
