#pragma once
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

// Shared byte-consumption helper for the fuzz targets. Deliberately tiny:
// every Take* is total (exhausted input yields zeros) so a target never
// branches on "ran out of bytes" — short inputs just exercise the
// zero/empty corners of the parser under test.

namespace adpa {
namespace fuzz {

class Input {
 public:
  Input(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint32_t TakeU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | TakeByte();
    return v;
  }

  int64_t TakeInt64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | TakeByte();
    return static_cast<int64_t>(v);
  }

  /// Uniform-ish value in [lo, hi] (inclusive); requires lo <= hi.
  int64_t TakeInRange(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(TakeU32() % span);
  }

  /// Finite float in roughly [-8, 8]; fuzzed bytes never produce NaN/Inf
  /// here so targets can separately decide to test non-finite handling.
  float TakeFloat() {
    const uint32_t raw = TakeU32();
    return (static_cast<float>(raw % 65536) - 32768.0f) / 4096.0f;
  }

  /// Everything not yet consumed, as text.
  std::string TakeRemainder() {
    std::string out(reinterpret_cast<const char*>(data_ + pos_),
                    size_ - pos_);
    pos_ = size_;
    return out;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fuzz
}  // namespace adpa
