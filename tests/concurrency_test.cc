// Concurrency regression tests for the annotated locking primitives
// (src/core/mutex.h) and the serving-path counters. These are the tests the
// tsan preset exists for: every assertion also doubles as a data-race probe
// — ThreadSanitizer sees the raw interleavings, and on Clang builds the
// thread-safety annotations prove the lock discipline at compile time.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mutex.h"
#include "src/serve/batcher.h"
#include "src/serve/metrics.h"

namespace adpa {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  mu.Lock();
  std::atomic<bool> contended_try{true};
  std::thread other([&] { contended_try = mu.TryLock(); });
  other.join();
  EXPECT_FALSE(contended_try.load());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockSerializesIncrements) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Mutex mu;
  int64_t counter = 0;  // guarded by mu (locally scoped, so no annotation)
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, int64_t{kThreads} * kPerThread);
}

TEST(CondVarTest, PredicateLoopSurvivesNotifyAllWithManyWaiters) {
  constexpr int kWaiters = 6;
  Mutex mu;
  CondVar cv;
  int generation = 0;
  int observed = 0;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (generation == 0) cv.Wait(&mu);
      ++observed;
    });
  }
  {
    MutexLock lock(&mu);
    generation = 1;
  }
  cv.NotifyAll();
  for (auto& w : waiters) w.join();
  MutexLock lock(&mu);
  EXPECT_EQ(observed, kWaiters);
}

// Satellite regression for the unguarded-counter audit: hammer every
// ServeMetrics recorder from concurrent threads while a reader snapshots
// mid-flight, then check the totals are exact. An unguarded counter read or
// write shows up here as a TSan race and (on Clang) as a -Wthread-safety
// error before the test even runs.
TEST(ServeMetricsConcurrencyTest, CountersStayExactUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  serve::ServeMetrics metrics;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      serve::MetricsSnapshot snap = metrics.Snapshot();
      // Monotone sanity while racing the writers.
      EXPECT_LE(snap.errors, snap.requests);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&metrics, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const bool ok = (i % 4) != 0;
        metrics.RecordRequest(/*latency_ms=*/1.0 + i % 7,
                              /*nodes_answered=*/3, ok);
        metrics.RecordBatch(/*coalesced_requests=*/2);
        metrics.RecordQueueDepth(/*depth=*/t * kPerThread + i);
        if (i % 5 == 0) metrics.RecordRejected();
        if (i % 6 == 0) metrics.RecordShed();
      }
    });
  }
  for (auto& w : writers) w.join();
  stop = true;
  reader.join();

  const serve::MetricsSnapshot snap = metrics.Snapshot();
  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.requests, total);
  EXPECT_EQ(snap.errors, total / 4);
  EXPECT_EQ(snap.nodes, 3 * total);
  EXPECT_EQ(snap.batches, total);
  EXPECT_EQ(snap.rejected, kThreads * ((kPerThread + 4) / 5));
  EXPECT_EQ(snap.shed, kThreads * ((kPerThread + 5) / 6));
  EXPECT_EQ(snap.max_queue_depth, int64_t{kThreads} * kPerThread - 1);
  EXPECT_EQ(snap.mean_batch_requests, 2.0);
  EXPECT_GT(snap.mean_latency_ms, 0.0);
}

// Overload-path concurrency: with a zero-depth queue every Submit resolves
// immediately with kUnavailable, so the batcher's mutex, cond var, and the
// shared metrics run hot under contention without needing a model session.
TEST(MicroBatcherConcurrencyTest, RejectionPathIsThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  serve::ServeMetrics metrics;
  serve::MicroBatcher::Options options;
  options.max_queue_depth = 0;
  serve::MicroBatcher batcher(/*session=*/nullptr, &metrics, options);

  std::atomic<bool> stop{false};
  std::thread depth_poller([&] {
    while (!stop.load()) EXPECT_EQ(batcher.queue_depth(), 0);
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&batcher] {
      for (int i = 0; i < kPerThread; ++i) {
        serve::MicroBatcher::Ticket ticket = batcher.Submit({1, 2, 3});
        auto result = ticket.Wait();
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      }
    });
  }
  for (auto& c : clients) c.join();
  stop = true;
  depth_poller.join();

  const serve::MetricsSnapshot snap = metrics.Snapshot();
  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(snap.rejected, total);
  EXPECT_EQ(snap.requests, total);
  EXPECT_EQ(snap.errors, total);
}

// After Shutdown, concurrent Submits must resolve (FailedPrecondition), not
// deadlock — the shutdown flag and the queue share one mutex.
TEST(MicroBatcherConcurrencyTest, SubmitAfterShutdownResolves) {
  serve::ServeMetrics metrics;
  serve::MicroBatcher batcher(/*session=*/nullptr, &metrics);
  batcher.Shutdown();
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&batcher] {
      for (int i = 0; i < 100; ++i) {
        auto result = batcher.Submit({7}).Wait();
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      }
    });
  }
  for (auto& c : clients) c.join();
}

}  // namespace
}  // namespace adpa
