// Dispatch-parity suite for the runtime SIMD kernel levels (DESIGN.md §12).
//
// The determinism contract under test, for every level the host CPU
// supports:
//   1. per-level bitwise thread-count invariance — the same level produces
//      identical bits at 1, 2, and 8 threads for the dense MatMul family,
//      SpMM, and the fused per-hop chain;
//   2. cross-level agreement to relative error — AVX2/AVX-512 differ from
//      portable only by FMA contraction / lane-split rounding, which must
//      stay within tight bounds;
//   3. fused == unfused — MultiplyAxpbyInto is bitwise identical to the
//      Multiply + ScaleInPlace + AddScaledInPlace sequence at every level;
//   4. elementwise kernels (independent one-op-per-element loops) are
//      bitwise identical across ALL levels;
//   5. the full InferenceSession forward obeys 1 and 2 end to end.
//
// Plus behavioral tests for the simd:: API surface and the serve-path
// Workspace slot pool.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/graph/sparse_matrix.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/serve/engine.h"
#include "src/tensor/matrix.h"
#include "src/tensor/simd.h"
#include "src/tensor/workspace.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

/// Restores the dispatch level and thread count on scope exit so parity
/// tests cannot leak a pinned level into unrelated tests.
class DispatchGuard {
 public:
  DispatchGuard() : level_(simd::ActiveLevel()), threads_(GetNumThreads()) {}
  ~DispatchGuard() {
    simd::SetLevel(level_);
    SetNumThreads(threads_);
  }
  DispatchGuard(const DispatchGuard&) = delete;
  DispatchGuard& operator=(const DispatchGuard&) = delete;

 private:
  simd::Level level_;
  int threads_;
};

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      static_cast<size_t>(a.size()) * sizeof(float)) == 0);
}

/// Largest elementwise |a-b| / max(1, |a|, |b|) — the cross-level agreement
/// metric (absolute for small magnitudes, relative for large ones).
double MaxRelError(const Matrix& a, const Matrix& b) {
  EXPECT_TRUE(a.SameShape(b));
  double worst = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    const double x = a.data()[i];
    const double y = b.data()[i];
    const double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    worst = std::max(worst, std::fabs(x - y) / scale);
  }
  return worst;
}

/// Odd shapes on purpose: rows hit the 4-row (portable/AVX2) and 6-row
/// (AVX-512) GEMM tile tails, columns hit the 32-column slab tail and the
/// 8/16-lane vector tails.
constexpr int64_t kN = 67;
constexpr int64_t kK = 45;
constexpr int64_t kM = 53;

SparseMatrix RandomSparse(int64_t rows, int64_t cols, double density,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.Uniform() < density) {
        triplets.push_back({r, c, static_cast<float>(rng.Normal())});
      }
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(SimdTest, LevelNamesRoundTrip) {
  for (simd::Level level : {simd::Level::kPortable, simd::Level::kAvx2,
                            simd::Level::kAvx512}) {
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevel(simd::LevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  simd::Level parsed = simd::Level::kAvx2;
  EXPECT_FALSE(simd::ParseLevel("bogus", &parsed));
  EXPECT_EQ(parsed, simd::Level::kAvx2);  // left untouched on failure
  EXPECT_FALSE(simd::ParseLevel("", &parsed));
}

TEST(SimdTest, SupportedLevelsStartAtPortableAndAscend) {
  const std::vector<simd::Level> levels = simd::SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kPortable);
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(static_cast<int>(levels[i - 1]), static_cast<int>(levels[i]));
    EXPECT_TRUE(simd::LevelSupported(levels[i]));
  }
}

TEST(SimdTest, KernelsMatchesActiveLevelTable) {
  DispatchGuard guard;
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    EXPECT_EQ(simd::ActiveLevel(), level);
    EXPECT_EQ(&simd::Kernels(), &simd::KernelsFor(level));
  }
}

TEST(SimdTest, DenseMatMulFamilyIsThreadCountInvariantPerLevel) {
  DispatchGuard guard;
  Rng rng(11);
  const Matrix a = Matrix::RandomNormal(kN, kK, &rng);
  const Matrix b = Matrix::RandomNormal(kK, kM, &rng);
  const Matrix at = Matrix::RandomNormal(kK, kN, &rng);
  const Matrix bt = Matrix::RandomNormal(kM, kK, &rng);
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    SetNumThreads(1);
    const Matrix mm1 = MatMul(a, b);
    const Matrix sa1 = MatMulSparseA(a, b);
    const Matrix ta1 = MatMulTransposeA(at, b);
    const Matrix tb1 = MatMulTransposeB(a, bt);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      EXPECT_TRUE(BitwiseEqual(MatMul(a, b), mm1))
          << simd::LevelName(level) << " MatMul @" << threads << "T";
      EXPECT_TRUE(BitwiseEqual(MatMulSparseA(a, b), sa1))
          << simd::LevelName(level) << " MatMulSparseA @" << threads << "T";
      EXPECT_TRUE(BitwiseEqual(MatMulTransposeA(at, b), ta1))
          << simd::LevelName(level) << " MatMulTransposeA @" << threads << "T";
      EXPECT_TRUE(BitwiseEqual(MatMulTransposeB(a, bt), tb1))
          << simd::LevelName(level) << " MatMulTransposeB @" << threads << "T";
    }
  }
}

TEST(SimdTest, DenseMatMulFamilyAgreesAcrossLevels) {
  DispatchGuard guard;
  Rng rng(12);
  const Matrix a = Matrix::RandomNormal(kN, kK, &rng);
  const Matrix b = Matrix::RandomNormal(kK, kM, &rng);
  const Matrix at = Matrix::RandomNormal(kK, kN, &rng);
  const Matrix bt = Matrix::RandomNormal(kM, kK, &rng);
  simd::SetLevel(simd::Level::kPortable);
  const Matrix mm_ref = MatMul(a, b);
  const Matrix sa_ref = MatMulSparseA(a, b);
  const Matrix ta_ref = MatMulTransposeA(at, b);
  const Matrix tb_ref = MatMulTransposeB(a, bt);
  for (simd::Level level : simd::SupportedLevels()) {
    if (level == simd::Level::kPortable) continue;
    simd::SetLevel(level);
    // MatMul's AVX-512 level accumulates fixed 128-step float runs into
    // double accumulators (simd.h), so its divergence from portable is a
    // few float ulps — bounded by the run length, not by k.
    EXPECT_LT(MaxRelError(MatMul(a, b), mm_ref), 1e-5)
        << simd::LevelName(level);
    // The transpose/sparse variants accumulate in double at every level, so
    // the only divergence is the final double->float rounding of sums whose
    // contraction order differs: half-ulp-scale wiggle, not 1e-3 drift.
    EXPECT_LT(MaxRelError(MatMulSparseA(a, b), sa_ref), 1e-6)
        << simd::LevelName(level);
    EXPECT_LT(MaxRelError(MatMulTransposeA(at, b), ta_ref), 1e-6)
        << simd::LevelName(level);
    EXPECT_LT(MaxRelError(MatMulTransposeB(a, bt), tb_ref), 1e-6)
        << simd::LevelName(level);
  }
}

TEST(SimdTest, SpmmAndFusedChainAreThreadCountInvariantPerLevel) {
  DispatchGuard guard;
  Rng rng(13);
  const SparseMatrix op = RandomSparse(kN, kN, 0.08, 21);
  const Matrix x = Matrix::RandomNormal(kN, kM, &rng);
  const Matrix residual = Matrix::RandomNormal(kN, kM, &rng);
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    SetNumThreads(1);
    const Matrix spmm1 = op.Multiply(x);
    Matrix fused1;
    op.MultiplyAxpbyInto(x, residual, 0.3f, 0.7f, &fused1);
    const Matrix scatter1 = op.MultiplyTransposed(x);
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      EXPECT_TRUE(BitwiseEqual(op.Multiply(x), spmm1))
          << simd::LevelName(level) << " SpMM @" << threads << "T";
      Matrix fused;
      op.MultiplyAxpbyInto(x, residual, 0.3f, 0.7f, &fused);
      EXPECT_TRUE(BitwiseEqual(fused, fused1))
          << simd::LevelName(level) << " fused chain @" << threads << "T";
      EXPECT_TRUE(BitwiseEqual(op.MultiplyTransposed(x), scatter1))
          << simd::LevelName(level) << " SpMM^T @" << threads << "T";
    }
  }
}

TEST(SimdTest, FusedChainMatchesUnfusedSequenceBitwisePerLevel) {
  DispatchGuard guard;
  Rng rng(14);
  const SparseMatrix op = RandomSparse(kN, kN, 0.08, 22);
  const Matrix x = Matrix::RandomNormal(kN, kM, &rng);
  const float alpha = 0.15f;
  const float beta = 1.0f - alpha;
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    Matrix unfused = op.Multiply(x);
    unfused.ScaleInPlace(beta);
    unfused.AddScaledInPlace(x, alpha);  // residual aliases the input
    Matrix fused;
    op.MultiplyAxpbyInto(x, x, alpha, beta, &fused);
    EXPECT_TRUE(BitwiseEqual(fused, unfused)) << simd::LevelName(level);
  }
}

TEST(SimdTest, SpmmAgreesAcrossLevels) {
  DispatchGuard guard;
  Rng rng(15);
  const SparseMatrix op = RandomSparse(kN, kN, 0.08, 23);
  const Matrix x = Matrix::RandomNormal(kN, kM, &rng);
  simd::SetLevel(simd::Level::kPortable);
  const Matrix ref = op.Multiply(x);
  Matrix fused_ref;
  op.MultiplyAxpbyInto(x, x, 0.2f, 0.8f, &fused_ref);
  for (simd::Level level : simd::SupportedLevels()) {
    if (level == simd::Level::kPortable) continue;
    simd::SetLevel(level);
    // SpMM accumulates in float32 (CSR order) at every level; FMA
    // contraction gives a slightly looser bound than the double-GEMM family.
    EXPECT_LT(MaxRelError(op.Multiply(x), ref), 1e-5) << simd::LevelName(level);
    Matrix fused;
    op.MultiplyAxpbyInto(x, x, 0.2f, 0.8f, &fused);
    EXPECT_LT(MaxRelError(fused, fused_ref), 1e-5) << simd::LevelName(level);
  }
}

TEST(SimdTest, ElementwiseKernelsAreBitwiseIdenticalAcrossLevels) {
  DispatchGuard guard;
  Rng rng(16);
  const Matrix a0 = Matrix::RandomNormal(37, 41, &rng);
  const Matrix b0 = Matrix::RandomNormal(37, 41, &rng);
  std::vector<Matrix> per_level;
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    Matrix a = a0;
    a.AddInPlace(b0);
    a.MulInPlace(b0);
    a.SubInPlace(b0);
    a.ScaleInPlace(1.7f);
    a.AddScaledInPlace(b0, -0.3f);
    per_level.push_back(std::move(a));
  }
  for (size_t i = 1; i < per_level.size(); ++i) {
    // One independent op per element at every level — no contraction-order
    // freedom, so the levels must agree bit for bit.
    EXPECT_TRUE(BitwiseEqual(per_level[i], per_level[0]))
        << simd::LevelName(simd::SupportedLevels()[i]);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the full serve-path forward per level.

Dataset TinyDataset(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 60;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

TEST(SimdTest, InferenceSessionForwardObeysDispatchContract) {
  DispatchGuard guard;
  const Dataset dataset = TinyDataset();
  ModelConfig config;
  config.hidden = 16;
  Rng rng(21);
  ModelPtr model = std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  const Checkpoint checkpoint =
      MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());

  Matrix portable_logits;
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    // Create per level so the Eq. 9 precompute runs at the level under test.
    serve::InferenceSession session =
        std::move(serve::InferenceSession::Create(checkpoint, dataset).value());
    SetNumThreads(1);
    const Matrix logits1 = session.ForwardAll();
    for (int threads : {2, 8}) {
      SetNumThreads(threads);
      EXPECT_TRUE(BitwiseEqual(session.ForwardAll(), logits1))
          << simd::LevelName(level) << " ForwardAll @" << threads << "T";
    }
    // Subset forwards must match the full forward bit for bit at every
    // level (row-decomposability survives the fused kernels).
    const std::vector<int64_t> nodes = {0, 7, 31, 59};
    const Matrix subset = std::move(session.ForwardRows(nodes).value());
    for (size_t i = 0; i < nodes.size(); ++i) {
      EXPECT_EQ(std::memcmp(subset.Row(static_cast<int64_t>(i)),
                            logits1.Row(nodes[i]),
                            static_cast<size_t>(logits1.cols()) *
                                sizeof(float)),
                0)
          << simd::LevelName(level) << " ForwardRows row " << i;
    }
    if (level == simd::Level::kPortable) {
      portable_logits = logits1;
    } else {
      EXPECT_LT(MaxRelError(logits1, portable_logits), 1e-4)
          << simd::LevelName(level) << " diverged from portable";
    }
  }
}

// ---------------------------------------------------------------------------
// Workspace slot pool (src/tensor/workspace.h) — the serve hot path relies
// on these invariants for its allocation-free forward.

TEST(WorkspaceTest, AcquireReturnsZeroedSlotOfRequestedShape) {
  Workspace ws;
  Matrix* slot = ws.Acquire(3, 4);
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->rows(), 3);
  EXPECT_EQ(slot->cols(), 4);
  for (int64_t i = 0; i < slot->size(); ++i) EXPECT_EQ(slot->data()[i], 0.0f);
}

TEST(WorkspaceTest, ResetReusesSlotsWithStableAddressesAndZeroedContents) {
  Workspace ws;
  Matrix* first = ws.Acquire(5, 7);
  Matrix* second = ws.Acquire(2, 2);
  first->Row(0)[0] = 42.0f;
  EXPECT_EQ(ws.slots(), 2);

  ws.Reset();
  Matrix* reused = ws.Acquire(5, 7);
  EXPECT_EQ(reused, first);  // slot identity is stable across Reset
  EXPECT_EQ(reused->Row(0)[0], 0.0f);  // re-acquire re-zeroes
  EXPECT_EQ(ws.Acquire(2, 2), second);
  EXPECT_EQ(ws.slots(), 2);  // no new slots were created

  // A different shape on re-acquire is fine: the slot resizes in place.
  ws.Reset();
  Matrix* reshaped = ws.Acquire(1, 9);
  EXPECT_EQ(reshaped, first);
  EXPECT_EQ(reshaped->rows(), 1);
  EXPECT_EQ(reshaped->cols(), 9);
}

TEST(WorkspaceTest, MatrixResizeReshapesAndZeroes) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.Resize(3, 2);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  for (int64_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0f);
}

}  // namespace
}  // namespace adpa
