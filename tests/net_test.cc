// Network serving subsystem tests: length-capped line framing must be a
// pure function of the byte stream (chunk boundaries never matter), the
// epoll server must answer JSONL requests in order per connection across
// pipelining, interleaved clients, EOF edge cases, and injected socket
// faults, and the hot checkpoint swap must be atomic — replies are bitwise
// identical to the old session right up to the swap and to the new session
// right after, with failed reloads leaving the live session serving.

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/failpoint.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/net/framing.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/serve/batcher.h"
#include "src/serve/engine.h"
#include "src/serve/hot_swap.h"
#include "src/serve/jsonl.h"
#include "src/serve/metrics.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

// ---------------------------------------------------------------------------
// Line framing

std::vector<std::string> DrainLines(net::LineFramer* framer) {
  std::vector<std::string> lines;
  std::string line;
  while (framer->NextLine(&line) == net::LineFramer::Next::kLine) {
    lines.push_back(line);
  }
  return lines;
}

TEST(LineFramerTest, SplitsLfAndCrlfLines) {
  net::LineFramer framer;
  const std::string input = "alpha\nbeta\r\ngamma\n";
  framer.Append(input.data(), input.size());
  EXPECT_EQ(DrainLines(&framer),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));
  std::string line;
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kNeedMore);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramerTest, PartialLinesSpanAppends) {
  net::LineFramer framer;
  std::string line;
  framer.Append("hel", 3);
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kNeedMore);
  framer.Append("lo\nwo", 5);
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kLine);
  EXPECT_EQ(line, "hello");
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kNeedMore);
  framer.Append("rld\n", 4);
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kLine);
  EXPECT_EQ(line, "world");
}

TEST(LineFramerTest, ByteAtATimeMatchesWholeBuffer) {
  const std::string input =
      "first\nsecond line with spaces\r\n\n\r\nlast without newline";
  net::LineFramer whole;
  whole.Append(input.data(), input.size());
  std::vector<std::string> whole_lines = DrainLines(&whole);

  net::LineFramer bytewise;
  std::vector<std::string> byte_lines;
  std::string line;
  for (char c : input) {
    bytewise.Append(&c, 1);
    while (bytewise.NextLine(&line) == net::LineFramer::Next::kLine) {
      byte_lines.push_back(line);
    }
  }
  EXPECT_EQ(whole_lines, byte_lines);
  std::string rest_whole, rest_bytes;
  EXPECT_TRUE(whole.TakeRemainder(&rest_whole));
  EXPECT_TRUE(bytewise.TakeRemainder(&rest_bytes));
  EXPECT_EQ(rest_whole, rest_bytes);
  EXPECT_EQ(rest_whole, "last without newline");
}

TEST(LineFramerTest, OversizedLatchesPermanently) {
  net::LineFramer framer(/*max_line_bytes=*/8);
  const std::string input = "0123456789abcdef";  // no newline, over the cap
  framer.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kOversized);
  EXPECT_TRUE(framer.oversized());
  // A newline after the fact must NOT resynchronize: the stream is broken.
  framer.Append("\nok\n", 4);
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kOversized);
  EXPECT_FALSE(framer.TakeRemainder(&line));
}

TEST(LineFramerTest, CompleteLineAheadOfOversizedStillDelivered) {
  net::LineFramer framer(/*max_line_bytes=*/8);
  const std::string input = "short\n0123456789abcdef";
  framer.Append(input.data(), input.size());
  std::string line;
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kLine);
  EXPECT_EQ(line, "short");
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kOversized);
}

TEST(LineFramerTest, CapSizedCrlfLineIsNotOversizedAtAnyChunking) {
  // A line of exactly max_line_bytes terminated by "\r\n": the '\r' will be
  // stripped, so buffering it while the '\n' is still in flight must not
  // trip the oversized latch. Regression for a chunk-boundary divergence
  // found by fuzz_framing (whole-buffer delivery yielded the line, but
  // byte-at-a-time latched oversized on the cap+1st buffered byte '\r').
  const std::string payload(8, 'x');
  const std::string input = payload + "\r\n";
  for (size_t chunk = 1; chunk <= input.size(); ++chunk) {
    net::LineFramer framer(/*max_line_bytes=*/8);
    std::string line;
    std::vector<std::string> lines;
    for (size_t off = 0; off < input.size(); off += chunk) {
      framer.Append(input.data() + off, std::min(chunk, input.size() - off));
      while (framer.NextLine(&line) == net::LineFramer::Next::kLine) {
        lines.push_back(line);
      }
    }
    EXPECT_FALSE(framer.oversized()) << "chunk=" << chunk;
    EXPECT_EQ(lines, std::vector<std::string>{payload}) << "chunk=" << chunk;
  }
  // One byte past the cap still latches, with or without the CR excuse.
  net::LineFramer framer(/*max_line_bytes=*/8);
  const std::string over = payload + "y\r";
  framer.Append(over.data(), over.size());
  std::string line;
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kOversized);
}

TEST(LineFramerTest, TakeRemainderHandlesCrAndEmptiness) {
  net::LineFramer framer;
  std::string line;
  EXPECT_FALSE(framer.TakeRemainder(&line));  // nothing buffered
  framer.Append("done\ntail", 9);
  EXPECT_EQ(framer.NextLine(&line), net::LineFramer::Next::kLine);
  EXPECT_TRUE(framer.TakeRemainder(&line));
  EXPECT_EQ(line, "tail");
  EXPECT_FALSE(framer.TakeRemainder(&line));  // consumed
}

// ---------------------------------------------------------------------------
// host:port parsing

TEST(ParseHostPortTest, AcceptsHostColonPort) {
  Result<net::HostPort> spec = net::ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->host, "127.0.0.1");
  EXPECT_EQ(spec->port, 8080);

  spec = net::ParseHostPort(":0");  // empty host = INADDR_ANY, ephemeral
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->host, "");
  EXPECT_EQ(spec->port, 0);
}

TEST(ParseHostPortTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(net::ParseHostPort("nohost").ok());
  EXPECT_FALSE(net::ParseHostPort("host:").ok());
  EXPECT_FALSE(net::ParseHostPort("host:port").ok());
  EXPECT_FALSE(net::ParseHostPort("host:70000").ok());
  EXPECT_FALSE(net::ParseHostPort("host:-1").ok());
}

// ---------------------------------------------------------------------------
// Reload request grammar

TEST(JsonlReloadTest, ParsesAdminShape) {
  Result<serve::ServeRequest> request =
      serve::ParseRequestLine(R"({"id": 7, "reload": "/models/new.ckpt"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_TRUE(request->is_reload);
  EXPECT_EQ(request->id, 7);
  EXPECT_EQ(request->reload_path, "/models/new.ckpt");

  request = serve::ParseRequestLine(R"({"reload": "m.ckpt"})");
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(request->is_reload);
  EXPECT_EQ(request->id, 0);  // id is optional for the admin shape
}

TEST(JsonlReloadTest, RejectsMixedAndHostileShapes) {
  EXPECT_FALSE(
      serve::ParseRequestLine(R"({"reload": "m", "nodes": [1]})").ok());
  EXPECT_FALSE(
      serve::ParseRequestLine(R"({"reload": "m", "deadline_ms": 5})").ok());
  EXPECT_FALSE(serve::ParseRequestLine(R"({"reload": ""})").ok());
  EXPECT_FALSE(serve::ParseRequestLine(R"({"reload": "a\\b"})").ok());
  EXPECT_FALSE(serve::ParseRequestLine("{\"reload\": \"a\tb\"}").ok());
  EXPECT_FALSE(serve::ParseRequestLine(R"({"reload": "unterminated)").ok());
  EXPECT_FALSE(
      serve::ParseRequestLine(R"({"reload": "a", "reload": "b"})").ok());
  // Overlong path: the 4096-byte cap fires before the string is built.
  const std::string long_path(5000, 'x');
  EXPECT_FALSE(
      serve::ParseRequestLine("{\"reload\": \"" + long_path + "\"}").ok());
}

TEST(JsonlReloadTest, FormatsReloadReply) {
  EXPECT_EQ(serve::FormatReloadReply(7, "/m.ckpt", 3),
            R"({"id":7,"reloaded":"/m.ckpt","generation":3})");
}

// ---------------------------------------------------------------------------
// Fixtures: a tiny dataset plus two checkpoints with different weights

Dataset Tiny(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 60;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

std::string UniquePath(const std::string& stem) {
  // ctest runs each test case as its own process in parallel; the pid keeps
  // concurrently running cases from clobbering each other's files.
  static std::atomic<int> counter{0};
  return testing::TempDir() + "/net_test_" + std::to_string(::getpid()) +
         "_" + stem + "_" + std::to_string(counter.fetch_add(1)) + ".ckpt";
}

ModelConfig SmallConfig() {
  ModelConfig config;
  config.hidden = 16;
  return config;
}

/// One dataset, two saved checkpoints whose (untrained, differently seeded)
/// weights classify differently — the raw material for swap tests.
struct SwapFixture {
  Dataset dataset = Tiny();
  ModelConfig config = SmallConfig();
  std::string path_a = UniquePath("a");
  std::string path_b = UniquePath("b");

  SwapFixture() {
    SaveModel(21, path_a);
    SaveModel(99, path_b);
  }

  void SaveModel(uint64_t seed, const std::string& path) {
    Rng rng(seed);
    ModelPtr model =
        std::move(CreateModel("ADPA", dataset, config, &rng)).value();
    const Checkpoint checkpoint =
        MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());
    ASSERT_TRUE(SaveCheckpoint(checkpoint, path).ok());
  }

  /// The reply an in-process session over `checkpoint_path` would give —
  /// the bitwise reference for replies served over TCP.
  std::string ExpectedReply(const std::string& checkpoint_path, int64_t id,
                            const std::vector<int64_t>& nodes) {
    Checkpoint checkpoint =
        std::move(TryLoadCheckpoint(checkpoint_path)).value();
    serve::InferenceSession session = std::move(
        serve::InferenceSession::Create(checkpoint, dataset, {})).value();
    return serve::FormatClassesReply(id,
                                     std::move(session.Classify(nodes)).value());
  }
};

// ---------------------------------------------------------------------------
// SessionRegistry

TEST(SessionRegistryTest, EmptyUntilFirstLoadAndQueriesGetStructuredError) {
  SwapFixture fixture;
  serve::SessionRegistry registry(&fixture.dataset, serve::EngineOptions{});
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.generation(), 0);
  EXPECT_EQ(registry.current_path(), "");
  EXPECT_FALSE(registry.ReloadCurrent().ok());  // nothing to re-read yet

  // A batcher pumping against an empty registry rejects, not crashes.
  serve::MicroBatcher batcher(registry, nullptr,
                              serve::MicroBatcher::Options{});
  serve::MicroBatcher::Ticket ticket = batcher.Submit({0, 1});
  ASSERT_TRUE(batcher.PumpOnce());
  const Result<std::vector<int64_t>> reply = ticket.Wait();
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SessionRegistryTest, ReloadSwapsSessionAndBumpsGeneration) {
  SwapFixture fixture;
  serve::SessionRegistry registry(&fixture.dataset, serve::EngineOptions{});

  Result<serve::SessionRegistry::ReloadInfo> info =
      registry.Reload(fixture.path_a);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->generation, 1);
  EXPECT_EQ(info->model_name, "ADPA");
  EXPECT_EQ(registry.current_path(), fixture.path_a);
  const std::shared_ptr<const serve::InferenceSession> first =
      registry.Current();
  ASSERT_NE(first, nullptr);

  info = registry.Reload(fixture.path_b);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->generation, 2);
  EXPECT_EQ(registry.current_path(), fixture.path_b);
  const std::shared_ptr<const serve::InferenceSession> second =
      registry.Current();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first.get(), second.get());

  // The pinned old session keeps answering even though the registry moved
  // on — this is what keeps in-flight batches safe across a swap.
  EXPECT_TRUE(first->Classify({0, 1, 2}).ok());
}

TEST(SessionRegistryTest, FailedReloadKeepsOldSessionServing) {
  SwapFixture fixture;
  serve::SessionRegistry registry(&fixture.dataset, serve::EngineOptions{});
  ASSERT_TRUE(registry.Reload(fixture.path_a).ok());
  const std::shared_ptr<const serve::InferenceSession> before =
      registry.Current();

  // Corrupt checkpoint: flip bytes in the middle of a copy of A.
  const std::string corrupt_path = UniquePath("corrupt");
  {
    std::ifstream in(fixture.path_a, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 128u);
    for (size_t i = bytes.size() / 2; i < bytes.size() / 2 + 16; ++i) {
      bytes[i] = static_cast<char>(~bytes[i]);
    }
    std::ofstream out(corrupt_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(registry.Reload(corrupt_path).ok());

  // Truncated checkpoint: same story.
  const std::string truncated_path = UniquePath("truncated");
  {
    std::ifstream in(fixture.path_a, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_FALSE(registry.Reload(truncated_path).ok());
  EXPECT_FALSE(registry.Reload(UniquePath("missing")).ok());

  // Through every failure the registry never flipped.
  EXPECT_EQ(registry.Current().get(), before.get());
  EXPECT_EQ(registry.generation(), 1);
  EXPECT_EQ(registry.current_path(), fixture.path_a);
  EXPECT_TRUE(registry.Current()->Classify({0}).ok());
}

// ---------------------------------------------------------------------------
// End-to-end server over loopback

/// Blocking line-oriented client over a real socket, with a receive
/// timeout so a server bug fails the test instead of hanging it.
class TestClient {
 public:
  explicit TestClient(uint16_t port)
      : fd_(std::move(net::ConnectTcp("127.0.0.1", port)).value()) {
    timeval timeout{};
    timeout.tv_sec = 10;
    setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
               sizeof(timeout));
  }

  void Send(const std::string& text) {
    size_t offset = 0;
    while (offset < text.size()) {
      const ssize_t wrote = ::send(fd_.get(), text.data() + offset,
                                   text.size() - offset, MSG_NOSIGNAL);
      if (wrote <= 0) {
        ADD_FAILURE() << "send failed: " << std::strerror(errno);
        return;
      }
      offset += static_cast<size_t>(wrote);
    }
  }

  /// Next reply line without its terminator; "" on EOF/timeout.
  std::string RecvLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        const std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t got = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
      if (got <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(got));
    }
  }

  /// True once the server closed its end (reads EOF).
  bool AtEof() {
    char chunk[64];
    const ssize_t got = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (got > 0) buffer_.append(chunk, static_cast<size_t>(got));
    return got == 0;
  }

  /// True when the server terminated the connection — a clean EOF, or the
  /// RST the kernel sends when a socket is closed with unread data still
  /// queued (how a dropped-mid-request connection looks from outside).
  bool Dropped() {
    char chunk[64];
    const ssize_t got = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (got > 0) buffer_.append(chunk, static_cast<size_t>(got));
    return got == 0 || (got < 0 && errno == ECONNRESET);
  }

  void ShutdownWrite() { ::shutdown(fd_.get(), SHUT_WR); }

  /// Best-effort single-byte send for trickle tests: false once the server
  /// dropped us (EPIPE/ECONNRESET), never a test failure.
  bool TrySendByte(char byte) {
    return ::send(fd_.get(), &byte, 1, MSG_NOSIGNAL) == 1;
  }

 private:
  net::FdOwner fd_;
  std::string buffer_;
};

/// A live server on an ephemeral loopback port, its event loop on a test
/// thread (tests may use std::thread; src/ may not).
class ServerHarness {
 public:
  explicit ServerHarness(SwapFixture* fixture,
                         net::ServerOptions options = {},
                         bool load_initial = true)
      : fixture_(fixture),
        registry_(&fixture->dataset, serve::EngineOptions{}) {
    if (load_initial) {
      const Result<serve::SessionRegistry::ReloadInfo> initial =
          registry_.Reload(fixture->path_a);
      EXPECT_TRUE(initial.ok()) << initial.status().ToString();
    }
    options.host = "127.0.0.1";
    options.port = 0;
    server_ =
        std::move(net::Server::Create(options, &registry_, &metrics_))
            .value();
    loop_ = std::thread([this] { serve_status_ = server_->Serve(); });
  }

  ~ServerHarness() { Stop(); }

  void Stop() {
    if (!loop_.joinable()) return;
    server_->RequestStop();
    loop_.join();
    EXPECT_TRUE(serve_status_.ok()) << serve_status_.ToString();
  }

  uint16_t port() const { return server_->port(); }
  net::Server& server() { return *server_; }
  serve::SessionRegistry& registry() { return registry_; }
  SwapFixture& fixture() { return *fixture_; }

 private:
  SwapFixture* fixture_;
  serve::SessionRegistry registry_;
  serve::ServeMetrics metrics_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  Status serve_status_;
};

std::string Query(int64_t id, const std::string& nodes) {
  return "{\"id\": " + std::to_string(id) + ", \"nodes\": [" + nodes +
         "]}\n";
}

TEST(NetServerTest, AnswersPipelinedRequestsInOrder) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient client(harness.port());

  client.Send(Query(1, "0, 5, 9") + Query(2, "1") + Query(3, "2, 3"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1,
                                                     {0, 5, 9}));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 2,
                                                     {1}));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 3,
                                                     {2, 3}));
}

TEST(NetServerTest, InterleavedConnectionsKeepTheirOwnOrder) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient first(harness.port());
  TestClient second(harness.port());

  first.Send(Query(10, "0"));
  second.Send(Query(20, "1"));
  first.Send(Query(11, "2"));
  second.Send(Query(21, "3"));

  EXPECT_EQ(first.RecvLine(), fixture.ExpectedReply(fixture.path_a, 10, {0}));
  EXPECT_EQ(first.RecvLine(), fixture.ExpectedReply(fixture.path_a, 11, {2}));
  EXPECT_EQ(second.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 20, {1}));
  EXPECT_EQ(second.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 21, {3}));
}

TEST(NetServerTest, ParseErrorsAndBlankLinesMatchStdinMode) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient client(harness.port());

  client.Send("not json\n\n\r\n" + Query(4, "0"));
  const std::string error = client.RecvLine();
  EXPECT_EQ(error.rfind("{\"id\":-1,\"error\":\"malformed request:", 0), 0u)
      << error;
  // Blank lines produce no replies at all (same as the stdin server).
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 4, {0}));
}

TEST(NetServerTest, FinalLineWithoutNewlineIsServedAtEof) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient client(harness.port());

  std::string query = Query(8, "7");
  query.pop_back();  // strip the newline
  client.Send(query);
  client.ShutdownWrite();
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 8, {7}));
  EXPECT_TRUE(client.AtEof());  // server closes once the reply is flushed
}

TEST(NetServerTest, OversizedLineGetsFramingErrorThenClose) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.max_line_bytes = 64;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  client.Send(std::string(256, 'x'));
  const std::string error = client.RecvLine();
  EXPECT_NE(error.find("exceeds 64 bytes"), std::string::npos) << error;
  EXPECT_TRUE(client.AtEof());
}

TEST(NetServerTest, QueueFullRejectsWithOverloadedShape) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.batcher.max_queue_depth = 1;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  // One pipelined burst lands in a single read: only the first Submit fits
  // the queue, the rest come back as the structured overloaded shape.
  client.Send(Query(1, "0") + Query(2, "1") + Query(3, "2"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));
  for (const int64_t id : {2, 3}) {
    const std::string reply = client.RecvLine();
    EXPECT_EQ(reply.rfind("{\"id\":" + std::to_string(id) +
                              ",\"error\":\"overloaded\"",
                          0),
              0u)
        << reply;
  }
}

TEST(NetServerTest, EmptyRegistryAnswersWithStructuredError) {
  SwapFixture fixture;
  ServerHarness harness(&fixture, {}, /*load_initial=*/false);
  TestClient client(harness.port());

  client.Send(Query(5, "0"));
  const std::string reply = client.RecvLine();
  EXPECT_NE(reply.find("no model is loaded yet"), std::string::npos)
      << reply;

  // A reload over the wire brings the server to life without a restart.
  client.Send("{\"id\": 6, \"reload\": \"" + fixture.path_a + "\"}\n");
  EXPECT_EQ(client.RecvLine(),
            serve::FormatReloadReply(6, fixture.path_a, 1));
  client.Send(Query(7, "0"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 7, {0}));
}

TEST(NetServerTest, ReloadCanBeDisabled) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.allow_reload = false;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  client.Send("{\"id\": 1, \"reload\": \"" + fixture.path_b + "\"}\n");
  const std::string reply = client.RecvLine();
  EXPECT_NE(reply.find("reload is disabled"), std::string::npos) << reply;
  EXPECT_EQ(harness.registry().generation(), 1);  // nothing swapped
}

TEST(NetServerTest, HotSwapIsBitwiseExactOnBothSides) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  const std::vector<int64_t> nodes{0, 3, 7, 11, 19, 23, 31, 42, 55, 59};
  const std::string expected_a =
      fixture.ExpectedReply(fixture.path_a, 1, nodes);
  const std::string expected_b =
      fixture.ExpectedReply(fixture.path_b, 1, nodes);
  ASSERT_NE(expected_a, expected_b)
      << "fixture checkpoints must classify differently";
  const std::string query = Query(1, "0, 3, 7, 11, 19, 23, 31, 42, 55, 59");

  TestClient hammer(harness.port());
  TestClient admin(harness.port());

  // Every reply before the swap is bitwise the old session's.
  for (int i = 0; i < 5; ++i) {
    hammer.Send(query);
    EXPECT_EQ(hammer.RecvLine(), expected_a);
  }
  admin.Send("{\"id\": 99, \"reload\": \"" + fixture.path_b + "\"}\n");
  EXPECT_EQ(admin.RecvLine(),
            serve::FormatReloadReply(99, fixture.path_b, 2));
  // Every reply after the acked swap is bitwise the new session's.
  for (int i = 0; i < 5; ++i) {
    hammer.Send(query);
    EXPECT_EQ(hammer.RecvLine(), expected_b);
  }
}

TEST(NetServerTest, SwapUnderConcurrentLoadNeverTearsAReply) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  const std::vector<int64_t> nodes{0, 3, 7, 11, 19, 23, 31, 42, 55, 59};
  const std::string expected_a =
      fixture.ExpectedReply(fixture.path_a, 1, nodes);
  const std::string expected_b =
      fixture.ExpectedReply(fixture.path_b, 1, nodes);
  ASSERT_NE(expected_a, expected_b);
  const std::string query = Query(1, "0, 3, 7, 11, 19, 23, 31, 42, 55, 59");

  std::vector<std::string> replies;
  std::thread hammer([&] {
    TestClient client(harness.port());
    for (int i = 0; i < 200; ++i) {
      client.Send(query);
      replies.push_back(client.RecvLine());
    }
  });

  TestClient admin(harness.port());
  admin.Send("{\"id\": 99, \"reload\": \"" + fixture.path_b + "\"}\n");
  EXPECT_EQ(admin.RecvLine(),
            serve::FormatReloadReply(99, fixture.path_b, 2));
  hammer.join();

  // Every reply is bitwise one of the two sessions — never torn, never an
  // error — and the sequence switches from A to B exactly once.
  bool swapped = false;
  for (const std::string& reply : replies) {
    if (reply == expected_b) {
      swapped = true;
    } else {
      EXPECT_EQ(reply, expected_a);
      EXPECT_FALSE(swapped) << "old-session reply after a new-session one";
    }
  }
}

TEST(NetServerTest, CorruptReloadKeepsLiveSessionAnswering) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  const std::string truncated_path = UniquePath("net_truncated");
  {
    std::ifstream in(fixture.path_a, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(truncated_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  TestClient client(harness.port());
  client.Send("{\"id\": 1, \"reload\": \"" + truncated_path + "\"}\n");
  const std::string reply = client.RecvLine();
  EXPECT_EQ(reply.rfind("{\"id\":1,\"error\":\"", 0), 0u) << reply;

  // The live session never stopped answering, and the registry held.
  client.Send(Query(2, "0, 1"));
  EXPECT_EQ(client.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 2, {0, 1}));
  EXPECT_EQ(harness.registry().generation(), 1);
  EXPECT_EQ(harness.registry().current_path(), fixture.path_a);
}

TEST(NetServerTest, ConcurrentAdminReloadsSerialize) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  constexpr int kReloadsPerClient = 8;

  auto reload_loop = [&](const std::string& path) {
    TestClient client(harness.port());
    for (int i = 0; i < kReloadsPerClient; ++i) {
      client.Send("{\"id\": 1, \"reload\": \"" + path + "\"}\n");
      const std::string reply = client.RecvLine();
      EXPECT_EQ(reply.rfind("{\"id\":1,\"reloaded\":", 0), 0u) << reply;
    }
  };
  std::thread first(reload_loop, fixture.path_a);
  std::thread second(reload_loop, fixture.path_b);
  first.join();
  second.join();

  // Single-threaded event loop: every reload ran to completion in arrival
  // order, so the generation counter accounts for each one exactly once.
  EXPECT_EQ(harness.registry().generation(), 1 + 2 * kReloadsPerClient);
  ASSERT_NE(harness.registry().Current(), nullptr);
  EXPECT_TRUE(harness.registry().Current()->Classify({0}).ok());
}

TEST(NetServerTest, StopDrainsOutstandingRepliesAndCloses) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient client(harness.port());

  client.Send(Query(1, "0") + Query(2, "1") + Query(3, "2"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 2, {1}));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 3, {2}));

  harness.Stop();  // asserts Serve() returned OK
  EXPECT_TRUE(client.AtEof());
  EXPECT_GE(harness.server().stats().accepted, 1u);
}

TEST(NetServerTest, RequestReloadReReadsCurrentPath) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  const std::vector<int64_t> nodes{0, 3, 7, 11, 19, 23, 31, 42, 55, 59};
  const std::string expected_b =
      fixture.ExpectedReply(fixture.path_b, 1, nodes);

  // Replace the file behind the current path — the SIGHUP scenario ("the
  // checkpoint was rewritten on disk; pick it up").
  {
    std::ifstream in(fixture.path_b, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(fixture.path_a, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  harness.server().RequestReload();
  // The wake is asynchronous; the generation bump marks completion.
  for (int i = 0; i < 500 && harness.registry().generation() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(harness.registry().generation(), 2);

  TestClient client(harness.port());
  client.Send(Query(1, "0, 3, 7, 11, 19, 23, 31, 42, 55, 59"));
  EXPECT_EQ(client.RecvLine(), expected_b);
}

// ---------------------------------------------------------------------------
// Reply-line grammar (the soak harness's parse invariant)

TEST(ParseReplyLineTest, RoundTripsEveryFormatterShape) {
  Result<serve::ServeReply> reply =
      serve::ParseReplyLine(serve::FormatClassesReply(7, {0, 2, 1}));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->kind, serve::ServeReply::Kind::kClasses);
  EXPECT_EQ(reply->id, 7);
  EXPECT_EQ(reply->classes, (std::vector<int64_t>{0, 2, 1}));

  reply = serve::ParseReplyLine(serve::FormatClassesReply(1, {}));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->classes.empty());

  reply = serve::ParseReplyLine(
      serve::FormatErrorReply(-1, "malformed request: \"x\"\ttab"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->kind, serve::ServeReply::Kind::kError);
  EXPECT_EQ(reply->id, -1);
  EXPECT_EQ(reply->message, "malformed request: \"x\"\ttab");

  reply = serve::ParseReplyLine(
      serve::FormatOverloadedReply(9, "queue depth 128 exceeded"));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->kind, serve::ServeReply::Kind::kOverloaded);
  EXPECT_EQ(reply->message, "queue depth 128 exceeded");

  reply = serve::ParseReplyLine(serve::FormatReloadReply(3, "/m.ckpt", 12));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->kind, serve::ServeReply::Kind::kReloaded);
  EXPECT_EQ(reply->reloaded_path, "/m.ckpt");
  EXPECT_EQ(reply->generation, 12);
}

TEST(ParseReplyLineTest, RejectsEverythingTheFormattersNeverEmit) {
  // The grammar accepts exactly the formatter output: any whitespace,
  // reordered key, or foreign escape means the reply stream is corrupt.
  const char* bad[] = {
      "",
      "{}",
      "{\"id\": 7,\"classes\":[1]}",      // space after the colon
      "{\"id\":7,\"classes\":[1] }",      // trailing space
      "{\"id\":7,\"classes\":[1]}x",      // trailing garbage
      "{\"id\":7,\"classes\":[1,]}",      // dangling comma
      "{\"id\":7,\"classes\":[01]}",      // leading zero
      "{\"classes\":[1],\"id\":7}",       // reordered keys
      "{\"id\":7}",                       // no payload key
      "{\"id\":99999999999999999999,\"classes\":[1]}",  // id overflow
      "{\"id\":7,\"error\":\"\\x41\"}",   // escape the formatter never emits
      "{\"id\":7,\"error\":\"\\u0041\"}", // \u is reserved for controls
      "{\"id\":7,\"error\":\"raw\tcontrol\"}",
      "{\"id\":7,\"error\":\"unterminated}",
      "{\"id\":7,\"reloaded\":\"m\"}",    // reloaded without generation
      "{\"id\":7,\"reloaded\":\"m\",\"generation\":-1}",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(serve::ParseReplyLine(line).ok())
        << "accepted corrupt reply: " << line;
  }
  // The class-count cap guards against allocation bombs.
  EXPECT_FALSE(
      serve::ParseReplyLine("{\"id\":1,\"classes\":[1,2,3]}", 2).ok());
}

TEST(ParseReplyLineTest, ControlEscapesRoundTrip) {
  const std::string message = std::string("nul\x01 up\x1f down") + "\r\n";
  Result<serve::ServeReply> reply =
      serve::ParseReplyLine(serve::FormatErrorReply(5, message));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->message, message);
}

// ---------------------------------------------------------------------------
// Connection hygiene: idle timeouts, slow-loris stalls, fd exhaustion

TEST(ConnectionHygieneTest, IdleConnectionIsClosedCleanly) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.idle_timeout_ms = 150;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  // A live request-reply exchange works normally first: idle means "no
  // bytes and nothing owed", not "slow".
  client.Send(Query(1, "0"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));

  // Then the client goes quiet and the server reclaims the slot with a
  // clean FIN (EOF from the client's side, not a reset).
  EXPECT_TRUE(client.AtEof());
  EXPECT_GE(harness.server().stats().idle_closed, 1u);
}

TEST(ConnectionHygieneTest, StallTimeoutDropsAnUnfinishedLine) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.stall_timeout_ms = 150;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  client.Send("{\"id\": 1, \"nodes\": [0");  // never finishes the line
  EXPECT_TRUE(client.Dropped());
  EXPECT_GE(harness.server().stats().stall_dropped, 1u);
}

TEST(ConnectionHygieneTest, TricklingBytesDoesNotResetTheStallClock) {
  SwapFixture fixture;
  net::ServerOptions options;
  options.stall_timeout_ms = 250;
  ServerHarness harness(&fixture, options);
  TestClient client(harness.port());

  // Completed lines keep the connection healthy.
  client.Send(Query(1, "0"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));

  // The classic slow-loris: one byte of an unfinished line every 50 ms —
  // steady traffic, never a complete request. The stall clock runs from
  // the oldest unconsumed byte, so growth must not keep the slot alive.
  bool dropped = false;
  for (int i = 0; i < 40 && !dropped; ++i) {
    if (!client.TrySendByte('{')) dropped = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(dropped || client.Dropped());
  EXPECT_GE(harness.server().stats().stall_dropped, 1u);
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ADPA_NET_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ADPA_NET_TEST_SANITIZED 1
#endif
#endif

TEST(ConnectionHygieneTest, RealFdExhaustionShedsAndRecovers) {
#ifdef ADPA_NET_TEST_SANITIZED
  GTEST_SKIP() << "sanitizer runtimes need spare fds of their own";
#endif
  // Genuine EMFILE from the kernel, not a failpoint: lower RLIMIT_NOFILE
  // (this test is its own process under ctest, so the change is private),
  // hoard every remaining descriptor, and watch the reserve-fd drain shed
  // the connection instead of busy-looping on a hot listener.
  SwapFixture fixture;
  ServerHarness harness(&fixture);

  rlimit original{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit lowered = original;
  lowered.rlim_cur = 64;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);

  std::vector<int> hoard;
  for (int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC); fd >= 0;
       fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC)) {
    hoard.push_back(fd);
  }
  ASSERT_EQ(errno, EMFILE);
  ASSERT_FALSE(hoard.empty());

  // Free exactly one slot for the client's own socket: the connect lands
  // in the backlog, and the server's accept is what hits EMFILE.
  ::close(hoard.back());
  hoard.pop_back();
  TestClient starved(harness.port());
  EXPECT_TRUE(starved.Dropped());
  EXPECT_GE(harness.server().stats().fd_exhausted, 1u);
  EXPECT_GE(harness.server().stats().over_capacity, 1u);

  // Release the pressure: the very next connection is served normally —
  // the listener, epoll set, and reserve descriptor all survived.
  for (const int fd : hoard) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &original), 0);
  TestClient recovered(harness.port());
  recovered.Send(Query(2, "1"));
  EXPECT_EQ(recovered.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 2, {1}));
}

// ---------------------------------------------------------------------------
// Signal races: SIGHUP and SIGTERM arrive via the same self-pipe the soak
// harness exercises; these pin the orderings chaos runs keep hitting.

TEST(NetServerTest, ReloadSignalDuringStopDrainStaysClean) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  TestClient client(harness.port());

  client.Send(Query(1, "0") + Query(2, "1"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));

  // SIGTERM starts the drain; a SIGHUP lands in the middle of it. The
  // reload must neither wedge the drain nor tear the in-flight reply.
  harness.server().RequestStop();
  harness.server().RequestReload();
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 2, {1}));
  EXPECT_TRUE(client.AtEof());
  harness.Stop();  // asserts Serve() returned OK
  ASSERT_NE(harness.registry().Current(), nullptr);
  EXPECT_TRUE(harness.registry().Current()->Classify({0}).ok());
}

TEST(NetServerTest, BackToBackReloadSignalsWithQueriesInFlight) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  const std::vector<int64_t> nodes{0, 3, 7, 11, 19, 23, 31, 42, 55, 59};
  const std::string expected =
      fixture.ExpectedReply(fixture.path_a, 1, nodes);
  const std::string query = Query(1, "0, 3, 7, 11, 19, 23, 31, 42, 55, 59");

  TestClient client(harness.port());
  std::thread hammer([&] {
    for (int i = 0; i < 50; ++i) {
      client.Send(query);
      EXPECT_EQ(client.RecvLine(), expected);
    }
  });
  // Two SIGHUPs back to back while the hammer keeps a batch in flight.
  // ReloadCurrent re-reads the same path, so every reply stays bitwise
  // identical through both swaps.
  harness.server().RequestReload();
  harness.server().RequestReload();
  hammer.join();

  // Each wake byte ran exactly one reload to completion.
  for (int i = 0; i < 500 && harness.registry().generation() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(harness.registry().generation(), 3);
  EXPECT_EQ(harness.server().stats().reloads, 2u);
}

// ---------------------------------------------------------------------------
// Failpoint recovery (compiled in under the `recovery` preset)

class NetFailpointTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out; build with "
                      "-DADPA_FAILPOINTS=ON";
    }
    failpoint::ClearAll();
  }
  void TearDown() override {
    if (failpoint::CompiledIn()) failpoint::ClearAll();
  }
};

TEST_F(NetFailpointTest, AcceptErrorIsCountedAndSurvived) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  ASSERT_TRUE(failpoint::Configure("net.accept", "error@1").ok());

  // The first accept attempt fails; level-triggered epoll retries and the
  // connection still lands. The server never goes down.
  TestClient client(harness.port());
  client.Send(Query(1, "0"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1, {0}));
  EXPECT_GE(harness.server().stats().io_errors, 1u);
}

TEST_F(NetFailpointTest, ReadErrorDropsOnlyThatConnection) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  ASSERT_TRUE(failpoint::Configure("net.read", "error@1").ok());

  TestClient victim(harness.port());
  victim.Send(Query(1, "0"));
  EXPECT_TRUE(victim.Dropped());  // injected read failure drops the victim

  failpoint::ClearAll();
  TestClient survivor(harness.port());  // the server itself kept serving
  survivor.Send(Query(2, "1"));
  EXPECT_EQ(survivor.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 2, {1}));
}

TEST_F(NetFailpointTest, ByteAtATimeIoStaysByteCorrect) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  // Every read and write transfers one byte: the framing and flush paths
  // run at maximum fragmentation and the replies must not change.
  ASSERT_TRUE(failpoint::Configure("net.read.short", "error").ok());
  ASSERT_TRUE(failpoint::Configure("net.write.short", "error").ok());

  TestClient client(harness.port());
  client.Send(Query(1, "0, 5, 9") + Query(2, "1"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 1,
                                                     {0, 5, 9}));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 2,
                                                     {1}));
}

TEST_F(NetFailpointTest, WriteErrorDropsOnlyThatConnection) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  ASSERT_TRUE(failpoint::Configure("net.write", "error@1").ok());

  // The injected send failure lands while flushing the victim's reply;
  // only that connection is torn down.
  TestClient victim(harness.port());
  victim.Send(Query(1, "0"));
  EXPECT_TRUE(victim.Dropped());

  failpoint::ClearAll();
  TestClient survivor(harness.port());
  survivor.Send(Query(2, "1"));
  EXPECT_EQ(survivor.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 2, {1}));
}

TEST_F(NetFailpointTest, EmfileOnAcceptShedsViaReserveFdAndRecovers) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  // Simulated fd exhaustion: the first accept reports EMFILE, so the
  // server must burn its reserve descriptor to pull one connection off
  // the backlog and shed it — never busy-loop on a hot listener.
  ASSERT_TRUE(failpoint::Configure("net.accept.emfile", "error@1").ok());

  TestClient shed(harness.port());
  EXPECT_TRUE(shed.Dropped());
  EXPECT_GE(harness.server().stats().fd_exhausted, 1u);
  EXPECT_GE(harness.server().stats().over_capacity, 1u);

  // The reserve was reopened, so normal service resumes immediately.
  failpoint::ClearAll();
  TestClient survivor(harness.port());
  survivor.Send(Query(2, "1"));
  EXPECT_EQ(survivor.RecvLine(),
            fixture.ExpectedReply(fixture.path_a, 2, {1}));
}

TEST_F(NetFailpointTest, ReloadLoadFailureKeepsOldSessionServing) {
  SwapFixture fixture;
  ServerHarness harness(&fixture);
  ASSERT_TRUE(failpoint::Configure("net.reload.load", "error").ok());

  TestClient client(harness.port());
  client.Send("{\"id\": 1, \"reload\": \"" + fixture.path_b + "\"}\n");
  const std::string reply = client.RecvLine();
  EXPECT_NE(reply.find("injected failure"), std::string::npos) << reply;

  failpoint::ClearAll();
  client.Send(Query(2, "0"));
  EXPECT_EQ(client.RecvLine(), fixture.ExpectedReply(fixture.path_a, 2, {0}));
  EXPECT_EQ(harness.registry().generation(), 1);
  EXPECT_EQ(harness.registry().current_path(), fixture.path_a);
}

}  // namespace
}  // namespace adpa
