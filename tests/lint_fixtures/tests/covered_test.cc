// Mentions "covered.point" the way a real failpoint test would, so the
// failpoint-coverage rule counts the catalog entry as exercised.
#include <string>

void ExerciseCoveredPoint() {
  const std::string armed = "covered.point";
  (void)armed;
}
