#ifndef ADPA_TESTS_LINT_FIXTURES_BAD_HEADER_H_
#define ADPA_TESTS_LINT_FIXTURES_BAD_HEADER_H_

// Fixture: include-guard-style header (missing the required pragma).
inline int Answer() { return 42; }

#endif  // ADPA_TESTS_LINT_FIXTURES_BAD_HEADER_H_
