// Fixture: raw standard-library locking types outside src/core/mutex.h
// must trip the mutex-annotations rule; the lint:allow escape hatch and
// the annotated wrappers stay legal.
#include <mutex>                // finding: raw <mutex> include
#include <condition_variable>   // finding: raw <condition_variable> include

namespace fixture {

struct Queue {
  std::mutex mu;                // finding: raw mutex member
  std::condition_variable cv;   // finding: raw condition variable member
  // lint:allow(mutex-annotations) — fixture: escape hatch must suppress
  std::mutex waived;
  int depth = 0;

  void Push() {
    std::lock_guard<std::mutex> lock(mu);  // finding: raw scoped lock
    ++depth;
  }
};

}  // namespace fixture
