// Fixture: non-deterministic / wall-clock randomness outside
// src/core/random.*.
#include <chrono>
#include <random>

unsigned NondeterministicSeed() {
  std::random_device device;
  return device();
}

int LibcRand() { return rand() % 7; }

long WallClockSeed() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
