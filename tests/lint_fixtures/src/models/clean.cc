// Fixture: idiomatic code that must produce zero findings — double
// accumulators, map iteration over an *ordered* container, fprintf to
// stderr, and a mention of std::thread inside a comment only.
#include <cstdio>
#include <map>

double SumAll(const float* values, long count) {
  double total = 0.0;
  for (long i = 0; i < count; ++i) total += values[i];
  return total;
}

double SumOrdered(const std::map<int, double>& by_key) {
  double total = 0.0;
  for (const auto& entry : by_key) total += entry.second;
  return total;
}

void Warn() { std::fprintf(stderr, "recoverable\n"); }
