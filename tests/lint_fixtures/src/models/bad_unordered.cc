// Fixture: iteration over an unordered container in a result-affecting
// path (hash order is implementation-defined).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

double SumScores(const std::unordered_map<int64_t, double>& by_node) {
  std::unordered_map<int64_t, double> scores = by_node;
  double total = 0.0;
  for (const auto& entry : scores) total += entry.second;
  return total;
}

int64_t CountDistinct(const std::unordered_set<int64_t> ids) {
  // Membership tests and size() are fine; only iteration is order-sensitive.
  return static_cast<int64_t>(ids.size());
}
