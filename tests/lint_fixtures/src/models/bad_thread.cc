// Fixture: raw threading primitives outside src/core/parallel.*.
#include <thread>

void SpawnWorker() {
  std::thread worker([] {});
  worker.join();
}
