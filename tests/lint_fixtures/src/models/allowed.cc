// Fixture: every violation here carries a lint:allow escape hatch, so the
// file must produce zero findings.
#include <thread>  // lint:allow(parallel-primitives)
#include <iostream>

void SpawnBlessed() {
  // lint:allow(parallel-primitives)
  std::thread worker([] {});
  worker.join();  // plain code after an allowed line stays unflagged
}

void PrintBlessed() {
  std::cout << "sanctioned\n";  // lint:allow(no-direct-io)
}

float BlessedSum(const float* values, long count) {
  float sum = 0.0f;  // lint:allow(float-accumulator)
  for (long i = 0; i < count; ++i) sum += values[i];
  return sum;
}
