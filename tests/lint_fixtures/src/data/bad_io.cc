// Fixture: direct stdout writes outside src/core/logging.* and the CLI.
#include <cstdio>
#include <iostream>

void PrintProgress(int epoch) {
  std::cout << "epoch " << epoch << "\n";
  printf("epoch %d\n", epoch);
}

// These must NOT be flagged: stderr and bounded formatting are allowed.
void Diagnostics(char* buffer, unsigned long size) {
  std::fprintf(stderr, "warning\n");
  std::snprintf(buffer, size, "%d", 42);
}
