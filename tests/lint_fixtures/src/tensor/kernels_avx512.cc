// Fixture: the dispatch kernel files are the one place raw intrinsics are
// allowed — simd-isolation must produce no findings here.
#include <immintrin.h>

namespace adpa::simd::detail {

void FixtureAxpy(float* dst, const float* src) {
  __m512 a = _mm512_loadu_ps(src);
  __m512 b = _mm512_loadu_ps(dst);
  _mm512_storeu_ps(dst, _mm512_add_ps(a, b));
}

}  // namespace adpa::simd::detail
