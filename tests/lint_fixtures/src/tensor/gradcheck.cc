// Fixture registry for the gradcheck-registry rule: registers the Add op
// but deliberately omits the other op declared by the neighboring
// autograd.h (mentioning that name here, even in a comment, would count as
// registration — the rule scans for quoted strings anywhere in this file).

namespace adpa::ag {

void OpGradcheckRegistry() {
  const char* registered = "Add";
  (void)registered;
}

}  // namespace adpa::ag
