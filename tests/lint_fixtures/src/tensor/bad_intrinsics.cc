// Fixture: simd-isolation must fire on the intrinsics header include and
// on every raw _mm*/_mm256_*/_mm512_* call outside the dispatch kernel
// files (src/tensor/kernels_*.cc), and the lint:allow escape hatch must
// suppress it.
#include <immintrin.h>

namespace adpa {

void BadWiden(float* dst, const float* src) {
  __m256 v = _mm256_loadu_ps(src);
  _mm256_storeu_ps(dst, v);
}

void BadZero(double* dst) {
  __m512d w = _mm512_setzero_pd();
  _mm512_storeu_pd(dst, w);
}

void SanctionedFence() {
  // lint:allow(simd-isolation)
  _mm_sfence();
}

}  // namespace adpa
