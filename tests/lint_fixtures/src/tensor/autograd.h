#pragma once
// Fixture for the gradcheck-registry rule: `Frobnicate` has no entry in the
// fixture gradcheck.cc, so the rule must fire on its declaration line (and
// only there — Add is registered, Backward returns void, and MakeMask
// returns Matrix so neither is an op the rule covers).

namespace adpa::ag {

class Variable;
class Matrix;

Variable Add(const Variable& a, const Variable& b);
Variable Frobnicate(const Variable& a);
Matrix MakeMask(const Variable& a);
void Backward(const Variable& root);

}  // namespace adpa::ag
