// Fixture: scalar float accumulator in kernel code.
float SumAll(const float* values, long count) {
  float sum = 0.0f;
  for (long i = 0; i < count; ++i) sum += values[i];
  return sum;
}

float Dot(const float* a, const float* b, long count) {
  float dot_acc{};
  for (long i = 0; i < count; ++i) dot_acc += a[i] * b[i];
  return dot_acc;
}
