// Fixture: raw C stdio in the serving layer. src/io/ and src/serve/ must
// do all file access through the checked stream APIs (BinaryReader /
// BinaryWriter over std::fstream) so every failure is a Status.
#include <cstdio>

bool SlurpCheckpoint(const char* path, char* buffer, unsigned long size) {
  FILE* file = std::fopen(path, "rb");
  if (file == nullptr) return false;
  unsigned long got = std::fread(buffer, 1, size, file);
  std::fclose(file);
  return got == size;
}

// Must NOT be flagged: bounded formatting into a buffer is not file I/O
// (the JSON-lines formatter uses it for \uXXXX escapes).
void FormatEscape(char* buffer, unsigned long size, unsigned value) {
  std::snprintf(buffer, size, "\\u%04x", value);
}
