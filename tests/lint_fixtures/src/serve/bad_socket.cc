// Fixture: raw socket syscalls outside src/net/ must trip socket-isolation.
#include <sys/socket.h>

#include <cstdint>

namespace adpa {

int OpenRawListener(uint16_t port) {
  (void)port;
  int fd = socket(2 /*AF_INET*/, 1 /*SOCK_STREAM*/, 0);
  if (fd < 0) return -1;
  if (::listen(fd, 16) != 0) return -1;
  // Suppressed: the escape hatch must silence the rule.
  (void)shutdown(fd, 2);  // lint:allow(socket-isolation)
  // Not findings: member calls and qualified names are not raw syscalls.
  // connector.connect(fd) / std::bind-style uses stay legal.
  return fd;
}

}  // namespace adpa
