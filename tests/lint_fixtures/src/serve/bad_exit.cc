// Fixture: no-bare-exit must fire on every process-terminating call in
// library code — exit(), std::abort(), _exit() — and the lint:allow escape
// hatch must suppress it.
#include <cstdlib>

#include <unistd.h>

namespace adpa::serve {

void GiveUp(bool badly) {
  if (badly) exit(2);
  std::abort();
}

void GiveUpHarder() { _exit(3); }

void SanctionedShutdown() {
  // lint:allow(no-bare-exit)
  exit(0);
}

}  // namespace adpa::serve
