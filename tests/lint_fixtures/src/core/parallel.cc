// Fixture: src/core/parallel.cc is the one place raw threads are legal —
// the parallel-primitives rule must not fire here.
#include <thread>

void PoolWorker() {
  std::thread worker([] {});
  worker.join();
}
