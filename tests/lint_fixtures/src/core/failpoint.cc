// Miniature failpoint catalog for the failpoint-coverage rule:
// covered.point is mentioned by tests/covered_test.cc, uncovered.point is
// mentioned nowhere (the rule must fire on it), and waived.point carries
// the escape hatch.
#include <string>
#include <utility>
#include <vector>

std::vector<std::pair<std::string, std::string>> Catalog() {
  return {
      {"covered.point", "a seam exercised by covered_test.cc"},
      {"uncovered.point", "a seam no test exercises"},
      // lint:allow(failpoint-coverage)
      {"waived.point", "a seam whose coverage debt is acknowledged"},
  };
}
