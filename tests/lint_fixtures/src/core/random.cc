// Fixture: src/core/random.cc is the one place entropy sources are legal —
// the deterministic-randomness rule must not fire here.
#include <random>

unsigned HardwareEntropy() {
  std::random_device device;
  return device();
}
