// Fault-injection framework tests (src/core/failpoint.h): the catalog, the
// spec grammar, deterministic @N / @1inN triggers, and error injection
// through the BinaryWriter/BinaryReader seams. Action tests are skipped
// when the build compiled failpoints out (plain Release); the compiled-out
// contract — Configure refuses loudly — is tested either way.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/failpoint.h"
#include "src/data/io.h"
#include "src/io/binary.h"
#include "src/io/checkpoint.h"

namespace adpa {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out; build with "
                      "-DADPA_FAILPOINTS=ON (the `recovery` preset)";
    }
    failpoint::ClearAll();
  }
  void TearDown() override { failpoint::ClearAll(); }
};

TEST(FailpointCatalogTest, CatalogIsAvailableInEveryBuild) {
  const auto catalog = failpoint::Catalog();
  ASSERT_FALSE(catalog.empty());
  bool has_checkpoint_save = false;
  for (const auto& [name, seam] : catalog) {
    EXPECT_FALSE(name.empty());
    EXPECT_FALSE(seam.empty()) << name << " has no seam description";
    if (name == "checkpoint.save") has_checkpoint_save = true;
  }
  EXPECT_TRUE(has_checkpoint_save);
}

TEST(FailpointCompiledOutTest, ConfigureRefusesLoudlyWhenCompiledOut) {
  if (failpoint::CompiledIn()) {
    GTEST_SKIP() << "this build has failpoints compiled in";
  }
  const Status status = failpoint::Configure("checkpoint.save", "error");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("compiled out"), std::string::npos);
}

TEST_F(FailpointTest, EveryCatalogNameIsConfigurable) {
  for (const auto& [name, seam] : failpoint::Catalog()) {
    EXPECT_TRUE(failpoint::Configure(name, "error").ok())
        << name << " (" << seam << ") rejected a plain error spec";
  }
}

TEST_F(FailpointTest, UnknownNamesAndBadSpecsAreRejected) {
  EXPECT_FALSE(failpoint::Configure("no.such.point", "error").ok());
  const char* bad_specs[] = {
      "",        "explode",     "error@",     "error@0",  "error@1in0",
      "error@x", "delay",       "delay()",    "delay(x)", "delay(-1)",
      "crash(x)", "error@1in",  "error@-3",
  };
  for (const char* spec : bad_specs) {
    EXPECT_FALSE(failpoint::Configure("checkpoint.save", spec).ok())
        << "accepted bad spec: " << spec;
  }
}

TEST_F(FailpointTest, ErrorActionInjectsStatusAndCountsHits) {
  ASSERT_TRUE(failpoint::Configure("checkpoint.save", "error(boom)").ok());
  const Status first = failpoint::Hit("checkpoint.save");
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_NE(first.message().find("checkpoint.save"), std::string::npos);
  EXPECT_NE(first.message().find("boom"), std::string::npos);
  EXPECT_FALSE(failpoint::Hit("checkpoint.save").ok());
  EXPECT_EQ(failpoint::HitCount("checkpoint.save"), 2u);
  // A dormant point neither fails nor counts.
  EXPECT_TRUE(failpoint::Hit("checkpoint.load").ok());
  EXPECT_EQ(failpoint::HitCount("checkpoint.load"), 0u);
}

TEST_F(FailpointTest, NthHitTriggerFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Configure("trainer.epoch", "error@3").ok());
  EXPECT_TRUE(failpoint::Hit("trainer.epoch").ok());   // hit 1
  EXPECT_TRUE(failpoint::Hit("trainer.epoch").ok());   // hit 2
  EXPECT_FALSE(failpoint::Hit("trainer.epoch").ok());  // hit 3 fires
  EXPECT_TRUE(failpoint::Hit("trainer.epoch").ok());   // hit 4
  EXPECT_TRUE(failpoint::Hit("trainer.epoch").ok());   // hit 5
  EXPECT_EQ(failpoint::HitCount("trainer.epoch"), 5u);
}

TEST_F(FailpointTest, OneInNTriggerFiresPeriodically) {
  ASSERT_TRUE(failpoint::Configure("cache.load", "error@1in2").ok());
  int failures = 0;
  for (int i = 0; i < 6; ++i) {
    if (!failpoint::Hit("cache.load").ok()) ++failures;
  }
  EXPECT_EQ(failures, 3) << "1in2 must fire on hits 2, 4, 6";
}

TEST_F(FailpointTest, ConfigureFromStringActivatesMultiplePoints) {
  ASSERT_TRUE(failpoint::ConfigureFromString(
                  "checkpoint.save=error;;cache.load=error@2;")
                  .ok());
  EXPECT_FALSE(failpoint::Hit("checkpoint.save").ok());
  EXPECT_TRUE(failpoint::Hit("cache.load").ok());
  EXPECT_FALSE(failpoint::Hit("cache.load").ok());
  EXPECT_FALSE(failpoint::ConfigureFromString("no-equals-sign").ok());
  EXPECT_FALSE(failpoint::ConfigureFromString("bogus.name=error").ok());
}

TEST_F(FailpointTest, OffSpecDeactivatesAPoint) {
  ASSERT_TRUE(failpoint::Configure("checkpoint.save", "error").ok());
  ASSERT_FALSE(failpoint::Hit("checkpoint.save").ok());
  ASSERT_TRUE(failpoint::Configure("checkpoint.save", "off").ok());
  EXPECT_TRUE(failpoint::Hit("checkpoint.save").ok());
}

TEST_F(FailpointTest, DelayActionProceedsAfterSleeping) {
  ASSERT_TRUE(failpoint::Configure("serve.cache.load", "delay(1)").ok());
  EXPECT_TRUE(failpoint::Hit("serve.cache.load").ok())
      << "delay must pause, not fail";
}

TEST_F(FailpointTest, WriterSeamLatchesInjectedFailure) {
  ASSERT_TRUE(failpoint::Configure("binary.write", "error@2").ok());
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU32(1);  // first write is clean
  EXPECT_TRUE(writer.status().ok());
  writer.WriteU32(2);  // injected failure latches
  writer.WriteU32(3);
  EXPECT_FALSE(writer.status().ok());
  EXPECT_NE(writer.status().message().find("binary.write"),
            std::string::npos);
}

TEST_F(FailpointTest, ReaderSeamSurfacesInjectedFailure) {
  ASSERT_TRUE(failpoint::Configure("binary.read", "error").ok());
  std::istringstream in(std::string(16, '\0'));
  BinaryReader reader(&in);
  uint32_t value = 0;
  const Status status = reader.ReadU32(&value);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("binary.read"), std::string::npos);
}

TEST_F(FailpointTest, DatasetLoadSeamSurfacesInjectedFailure) {
  ASSERT_TRUE(failpoint::Configure("dataset.load", "error").ok());
  std::istringstream in("would-be dataset bytes");
  const Result<Dataset> loaded = LoadDatasetFromStream(in);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("dataset.load"),
            std::string::npos);
}

TEST_F(FailpointTest, CacheSaveSeamSurfacesInjectedFailure) {
  ASSERT_TRUE(failpoint::Configure("cache.save", "error").ok());
  const PropagationCache cache;  // seam fires before serialization
  std::ostringstream out;
  const Status status = SavePropagationCacheToStream(cache, out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cache.save"), std::string::npos);
  EXPECT_TRUE(out.str().empty()) << "nothing may be written after the seam";
}

TEST_F(FailpointTest, ClearAllResetsActionsAndCounters) {
  ASSERT_TRUE(failpoint::Configure("checkpoint.save", "error").ok());
  ASSERT_FALSE(failpoint::Hit("checkpoint.save").ok());
  failpoint::ClearAll();
  EXPECT_TRUE(failpoint::Hit("checkpoint.save").ok());
  EXPECT_EQ(failpoint::HitCount("checkpoint.save"), 0u)
      << "ClearAll must reset hit counters, not just actions";
}

}  // namespace
}  // namespace adpa
