// Crash-recovery tests (DESIGN.md §10): atomic file replacement keeps an
// old-or-new-complete artifact through a crash at every stage of Commit;
// training snapshots round-trip the full TrainState; a resumed run reaches
// bitwise-identical final weights; and a corrupt propagation cache degrades
// serving startup to recompute-and-rewrite instead of an outage.
//
// Crash-injection cases run child processes via gtest death tests and are
// skipped when failpoints are compiled out (use the `recovery` preset).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/core/failpoint.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/io/atomic_file.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/serve/engine.h"
#include "src/tensor/optimizer.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset Tiny(uint64_t seed = 5) {
  DsbmConfig config;
  config.num_nodes = 60;
  config.num_classes = 3;
  config.avg_out_degree = 4.0;
  config.class_transition = HomophilousTransition(3, 0.7);
  config.feature_dim = 6;
  config.seed = seed;
  Dataset ds = std::move(GenerateDsbm(config)).value();
  Rng rng(seed);
  Split split =
      std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
  ds.train_idx = split.train;
  ds.val_idx = split.val;
  ds.test_idx = split.test;
  return ds;
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.SameShape(b) &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(),
                      static_cast<size_t>(a.size()) * sizeof(float)) == 0);
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Atomic file replacement.
// ---------------------------------------------------------------------------

TEST(AtomicFileTest, ReplacesExistingFileAtomically) {
  const std::string path = testing::TempDir() + "/atomic_replace.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "old contents").ok());
  ASSERT_TRUE(WriteFileAtomically(path, "new contents").ok());
  EXPECT_EQ(ReadFileOrEmpty(path), "new contents");
  EXPECT_EQ(ReadFileOrEmpty(path + ".tmp"), "") << "temp must not linger";
  std::remove(path.c_str());
}

TEST(AtomicFileTest, CommitIsSingleShot) {
  const std::string path = testing::TempDir() + "/atomic_single.bin";
  AtomicFileWriter writer(path);
  writer.stream() << "payload";
  ASSERT_TRUE(writer.Commit().ok());
  const Status second = writer.Commit();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, UnwritableDirectoryIsAStatusNotACrash) {
  const Status status =
      WriteFileAtomically("/nonexistent/dir/never/file.bin", "x");
  ASSERT_FALSE(status.ok());
}

class AtomicCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out; build with "
                      "-DADPA_FAILPOINTS=ON (the `recovery` preset)";
    }
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    failpoint::ClearAll();
  }
  void TearDown() override {
    if (failpoint::CompiledIn()) failpoint::ClearAll();
  }
};

// Crash the child mid-Commit at `point`; the parent then asserts the
// destination still holds exactly the previous contents (crash before the
// rename) or exactly the new contents (crash after) — never a torn file.
void CrashDuringCommit(const std::string& path, const char* point) {
  EXPECT_EXIT(
      {
        const Status armed = failpoint::Configure(point, "crash");
        if (!armed.ok()) _exit(7);
        (void)WriteFileAtomically(path, "NEW-PAYLOAD-NEW-PAYLOAD");
        _exit(0);  // crash action must have fired before this
      },
      ::testing::ExitedWithCode(42), "");
}

TEST_F(AtomicCrashTest, CrashBeforeTempWriteKeepsOldFile) {
  const std::string path = testing::TempDir() + "/crash_open.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "OLD").ok());
  CrashDuringCommit(path, "atomic_file.open");
  EXPECT_EQ(ReadFileOrEmpty(path), "OLD");
  std::remove(path.c_str());
}

TEST_F(AtomicCrashTest, CrashMidTempWriteKeepsOldFile) {
  const std::string path = testing::TempDir() + "/crash_partial.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "OLD").ok());
  CrashDuringCommit(path, "atomic_file.write.partial");
  EXPECT_EQ(ReadFileOrEmpty(path), "OLD")
      << "a half-written temp must never reach the destination";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(AtomicCrashTest, CrashJustBeforeRenameKeepsOldFile) {
  const std::string path = testing::TempDir() + "/crash_before_rename.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "OLD").ok());
  CrashDuringCommit(path, "atomic_file.before_rename");
  EXPECT_EQ(ReadFileOrEmpty(path), "OLD");
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

TEST_F(AtomicCrashTest, CrashAfterRenameLeavesNewCompleteFile) {
  const std::string path = testing::TempDir() + "/crash_after_rename.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "OLD").ok());
  CrashDuringCommit(path, "atomic_file.after_rename");
  EXPECT_EQ(ReadFileOrEmpty(path), "NEW-PAYLOAD-NEW-PAYLOAD")
      << "once the rename lands the new file must be complete";
  std::remove(path.c_str());
}

TEST_F(AtomicCrashTest, LeftoverTempFromACrashIsIgnoredAndHealed) {
  const std::string path = testing::TempDir() + "/crash_leftover.bin";
  ASSERT_TRUE(WriteFileAtomically(path, "OLD").ok());
  CrashDuringCommit(path, "atomic_file.before_rename");
  // The crashed writer may leave <path>.tmp behind; the next full Commit
  // against the same path must simply overwrite it.
  ASSERT_TRUE(WriteFileAtomically(path, "HEALED").ok());
  EXPECT_EQ(ReadFileOrEmpty(path), "HEALED");
  EXPECT_EQ(ReadFileOrEmpty(path + ".tmp"), "");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// TrainState persistence (checkpoint container v2).
// ---------------------------------------------------------------------------

TEST(TrainStateTest, SnapshotRoundTripsTheFullTrainingCursor) {
  Dataset dataset = Tiny(7);
  ModelConfig config;
  config.hidden = 16;
  Rng rng(7);
  ModelPtr model =
      std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  Checkpoint snapshot =
      MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());

  TrainState state;
  state.next_epoch = 12;
  state.epochs_since_best = 3;
  state.best_epoch = 8;
  state.best_val_accuracy = 0.625;
  state.test_accuracy = 0.5;
  state.rng = rng.SaveState();
  state.optimizer_step_count = 12;
  Adam optimizer(model->Parameters(), 0.01f, 5e-4f);
  AdamState adam = optimizer.ExportState();
  state.adam_first_moment = adam.first_moment;
  state.adam_second_moment = adam.second_moment;
  state.val_curve = {0.1, 0.5, 0.625};
  state.train_loss_curve = {1.0, 0.7, 0.6};
  snapshot.train_state = state;

  std::ostringstream out;
  ASSERT_TRUE(SaveCheckpointToStream(snapshot, out).ok());
  std::istringstream in(out.str());
  Result<Checkpoint> loaded = TryLoadCheckpointFromStream(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->train_state.has_value());
  const TrainState& restored = *loaded->train_state;
  EXPECT_EQ(restored.next_epoch, 12);
  EXPECT_EQ(restored.epochs_since_best, 3);
  EXPECT_EQ(restored.best_epoch, 8);
  EXPECT_EQ(restored.best_val_accuracy, 0.625);
  EXPECT_EQ(restored.test_accuracy, 0.5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(restored.rng.words[i], state.rng.words[i]);
  }
  EXPECT_EQ(restored.rng.has_cached_normal, state.rng.has_cached_normal);
  EXPECT_EQ(restored.optimizer_step_count, 12);
  ASSERT_EQ(restored.adam_first_moment.size(), state.adam_first_moment.size());
  for (size_t i = 0; i < restored.adam_first_moment.size(); ++i) {
    EXPECT_TRUE(BitwiseEqual(restored.adam_first_moment[i],
                             state.adam_first_moment[i]));
    EXPECT_TRUE(BitwiseEqual(restored.adam_second_moment[i],
                             state.adam_second_moment[i]));
  }
  EXPECT_EQ(restored.val_curve, state.val_curve);
  EXPECT_EQ(restored.train_loss_curve, state.train_loss_curve);
}

TEST(TrainStateTest, FinalCheckpointsCarryNoTrainState) {
  Dataset dataset = Tiny(7);
  ModelConfig config;
  config.hidden = 16;
  Rng rng(7);
  ModelPtr model =
      std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  const Checkpoint final_checkpoint =
      MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());
  std::ostringstream out;
  ASSERT_TRUE(SaveCheckpointToStream(final_checkpoint, out).ok());
  std::istringstream in(out.str());
  Result<Checkpoint> loaded = TryLoadCheckpointFromStream(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->train_state.has_value());
}

// ---------------------------------------------------------------------------
// Resumable training.
// ---------------------------------------------------------------------------

struct RunArtifacts {
  TrainResult result;
  std::vector<Matrix> weights;
};

RunArtifacts WeightsAfter(Model* model, const TrainResult& result) {
  RunArtifacts artifacts;
  artifacts.result = result;
  for (const ag::Variable& p : model->Parameters()) {
    artifacts.weights.push_back(p.value());
  }
  return artifacts;
}

TEST(ResumableTrainingTest, ResumeReachesBitwiseIdenticalFinalWeights) {
  const std::string snapshot_path =
      testing::TempDir() + "/resume_snapshot.ckpt";
  std::remove(snapshot_path.c_str());
  const Dataset dataset = Tiny(11);
  ModelConfig config;
  config.hidden = 16;
  config.dropout = 0.3f;  // dropout draws make the RNG restore load-bearing
  constexpr int kEpochs = 14;
  constexpr int kSnapshotEvery = 6;  // snapshot lands mid-run at epoch 6, 12

  // Reference: one uninterrupted run.
  Rng ref_rng(31);
  ModelPtr reference =
      std::move(CreateModel("ADPA", dataset, config, &ref_rng)).value();
  TrainConfig plain;
  plain.max_epochs = kEpochs;
  plain.patience = 0;  // fixed-length run keeps the comparison exact
  const RunArtifacts uninterrupted = WeightsAfter(
      reference.get(), TrainModel(reference.get(), dataset, plain, &ref_rng));

  // Interrupted run: train with periodic snapshots, stop after epoch 12
  // (as if the process had died), then resume from the snapshot.
  Rng first_rng(31);
  ModelPtr first =
      std::move(CreateModel("ADPA", dataset, config, &first_rng)).value();
  TrainConfig with_snapshots = plain;
  with_snapshots.max_epochs = 12;  // "crash" after the epoch-12 snapshot
  with_snapshots.checkpoint_every = kSnapshotEvery;
  with_snapshots.checkpoint_path = snapshot_path;
  SnapshotContext context;
  context.model_name = "ADPA";
  context.model_config = config;
  Result<TrainResult> interrupted = TrainModelResumable(
      first.get(), dataset, with_snapshots, &first_rng, &context);
  ASSERT_TRUE(interrupted.ok()) << interrupted.status().ToString();

  // Resume in a fresh "process": a differently-seeded model whose weights,
  // optimizer, and RNG all come from the snapshot.
  Result<Checkpoint> snapshot = TryLoadCheckpoint(snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->train_state.has_value());
  EXPECT_EQ(snapshot->train_state->next_epoch, 12);
  Rng resumed_rng(999);
  ModelPtr resumed = std::move(CreateModelWithPatterns(
                                   "ADPA", dataset, snapshot->model_config,
                                   snapshot->patterns, &resumed_rng))
                         .value();
  TrainConfig resume_config = plain;
  resume_config.resume_from = snapshot_path;
  Result<TrainResult> finished = TrainModelResumable(
      resumed.get(), dataset, resume_config, &resumed_rng, &context);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  EXPECT_EQ(finished->resumed_from_epoch, 12);
  EXPECT_EQ(finished->epochs_run, kEpochs);

  const RunArtifacts recovered = WeightsAfter(resumed.get(), *finished);
  ASSERT_EQ(recovered.weights.size(), uninterrupted.weights.size());
  for (size_t i = 0; i < recovered.weights.size(); ++i) {
    EXPECT_TRUE(
        BitwiseEqual(recovered.weights[i], uninterrupted.weights[i]))
        << "parameter " << i << " diverged after resume";
  }
  EXPECT_EQ(recovered.result.best_val_accuracy,
            uninterrupted.result.best_val_accuracy);
  EXPECT_EQ(recovered.result.test_accuracy,
            uninterrupted.result.test_accuracy);
  EXPECT_EQ(recovered.result.best_epoch, uninterrupted.result.best_epoch);
  std::remove(snapshot_path.c_str());
}

TEST(ResumableTrainingTest, FinalCheckpointIsByteIdenticalAfterResume) {
  // The artifact a downstream consumer sees must not betray whether the
  // producing run was ever interrupted.
  const std::string snapshot_path =
      testing::TempDir() + "/resume_bytes.ckpt";
  std::remove(snapshot_path.c_str());
  const Dataset dataset = Tiny(13);
  ModelConfig config;
  config.hidden = 16;
  TrainConfig plain;
  plain.max_epochs = 8;
  plain.patience = 0;

  Rng ref_rng(5);
  ModelPtr reference =
      std::move(CreateModel("ADPA", dataset, config, &ref_rng)).value();
  TrainModel(reference.get(), dataset, plain, &ref_rng);
  std::ostringstream reference_bytes;
  ASSERT_TRUE(SaveCheckpointToStream(
                  MakeCheckpoint(*reference, "ADPA", dataset, config, plain),
                  reference_bytes)
                  .ok());

  Rng first_rng(5);
  ModelPtr first =
      std::move(CreateModel("ADPA", dataset, config, &first_rng)).value();
  TrainConfig half = plain;
  half.max_epochs = 4;
  half.checkpoint_every = 4;
  half.checkpoint_path = snapshot_path;
  SnapshotContext context;
  context.model_name = "ADPA";
  context.model_config = config;
  ASSERT_TRUE(TrainModelResumable(first.get(), dataset, half, &first_rng,
                                  &context)
                  .ok());

  Result<Checkpoint> snapshot = TryLoadCheckpoint(snapshot_path);
  ASSERT_TRUE(snapshot.ok());
  Rng resumed_rng(1234);
  ModelPtr resumed = std::move(CreateModelWithPatterns(
                                   "ADPA", dataset, snapshot->model_config,
                                   snapshot->patterns, &resumed_rng))
                         .value();
  TrainConfig resume_config = plain;
  resume_config.resume_from = snapshot_path;
  ASSERT_TRUE(TrainModelResumable(resumed.get(), dataset, resume_config,
                                  &resumed_rng, &context)
                  .ok());
  std::ostringstream resumed_bytes;
  // Serialize with the *plain* train config, as an uninterrupted run would:
  // resume mechanics are not hyperparameters and are never serialized.
  ASSERT_TRUE(SaveCheckpointToStream(
                  MakeCheckpoint(*resumed, "ADPA", dataset, config, plain),
                  resumed_bytes)
                  .ok());
  EXPECT_EQ(resumed_bytes.str(), reference_bytes.str());
  std::remove(snapshot_path.c_str());
}

TEST(ResumableTrainingTest, ResumingAFinalCheckpointIsRefused) {
  const std::string path = testing::TempDir() + "/final_only.ckpt";
  const Dataset dataset = Tiny(17);
  ModelConfig config;
  config.hidden = 16;
  Rng rng(3);
  ModelPtr model =
      std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  ASSERT_TRUE(
      SaveCheckpoint(MakeCheckpoint(*model, "ADPA", dataset, config,
                                    TrainConfig()),
                     path)
          .ok());
  TrainConfig resume_config;
  resume_config.max_epochs = 2;
  resume_config.resume_from = path;
  Result<TrainResult> result =
      TrainModelResumable(model.get(), dataset, resume_config, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("without training state"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ResumableTrainingTest, SnapshotWriteFailureWarnsButTrainingFinishes) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoint::ClearAll();
  ASSERT_TRUE(failpoint::Configure("trainer.snapshot", "error").ok());
  const std::string path = testing::TempDir() + "/doomed_snapshot.ckpt";
  std::remove(path.c_str());
  const Dataset dataset = Tiny(19);
  ModelConfig config;
  config.hidden = 16;
  Rng rng(3);
  ModelPtr model =
      std::move(CreateModel("ADPA", dataset, config, &rng)).value();
  TrainConfig train_config;
  train_config.max_epochs = 4;
  train_config.patience = 0;
  train_config.checkpoint_every = 2;
  train_config.checkpoint_path = path;
  Result<TrainResult> result =
      TrainModelResumable(model.get(), dataset, train_config, &rng);
  ASSERT_TRUE(result.ok())
      << "a failed snapshot write must not abort training: "
      << result.status().ToString();
  EXPECT_EQ(result->epochs_run, 4);
  EXPECT_EQ(ReadFileOrEmpty(path), "") << "every snapshot write was failed";
  failpoint::ClearAll();
}

// Crash mid-epoch in a child process, then resume in the parent: the
// snapshot on disk must be loadable (old-or-new-complete) and carry the
// cursor of the last completed snapshot interval.
TEST_F(AtomicCrashTest, CrashMidTrainingLeavesAResumableSnapshot) {
  const std::string snapshot_path =
      testing::TempDir() + "/crash_training.ckpt";
  std::remove(snapshot_path.c_str());
  const Dataset dataset = Tiny(23);
  ModelConfig config;
  config.hidden = 16;

  EXPECT_EXIT(
      {
        // Crash at the top of epoch 6 (hit 6 of trainer.epoch): snapshots
        // for epochs 1..4 (every 2) are on disk, the epoch-6 one is not.
        const Status armed = failpoint::Configure("trainer.epoch", "crash@6");
        if (!armed.ok()) _exit(7);
        Rng rng(29);
        ModelPtr model =
            std::move(CreateModel("ADPA", dataset, config, &rng)).value();
        TrainConfig train_config;
        train_config.max_epochs = 10;
        train_config.patience = 0;
        train_config.checkpoint_every = 2;
        train_config.checkpoint_path = snapshot_path;
        SnapshotContext context;
        context.model_name = "ADPA";
        context.model_config = config;
        (void)TrainModelResumable(model.get(), dataset, train_config, &rng,
                                  &context);
        _exit(0);
      },
      ::testing::ExitedWithCode(42), "");

  Result<Checkpoint> snapshot = TryLoadCheckpoint(snapshot_path);
  ASSERT_TRUE(snapshot.ok())
      << "snapshot on disk must never be torn: "
      << snapshot.status().ToString();
  ASSERT_TRUE(snapshot->train_state.has_value());
  EXPECT_EQ(snapshot->train_state->next_epoch, 4)
      << "the last completed snapshot covers epochs 0..3";

  // And the snapshot actually resumes.
  Rng rng(999);
  ModelPtr resumed = std::move(CreateModelWithPatterns(
                                   "ADPA", dataset, snapshot->model_config,
                                   snapshot->patterns, &rng))
                         .value();
  TrainConfig resume_config;
  resume_config.max_epochs = 10;
  resume_config.patience = 0;
  resume_config.resume_from = snapshot_path;
  Result<TrainResult> finished =
      TrainModelResumable(resumed.get(), dataset, resume_config, &rng);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  EXPECT_EQ(finished->resumed_from_epoch, 4);
  EXPECT_EQ(finished->epochs_run, 10);
  std::remove(snapshot_path.c_str());
}

// ---------------------------------------------------------------------------
// Serving degradation on corrupt artifacts.
// ---------------------------------------------------------------------------

struct ServingFixture {
  Dataset dataset = Tiny(21);
  ModelConfig config;
  Checkpoint checkpoint;

  ServingFixture() {
    config.hidden = 16;
    Rng rng(21);
    ModelPtr model =
        std::move(CreateModel("ADPA", dataset, config, &rng)).value();
    checkpoint =
        MakeCheckpoint(*model, "ADPA", dataset, config, TrainConfig());
  }
};

TEST(ServeDegradationTest, CorruptCacheDegradesToRecomputeAndHeals) {
  ServingFixture fixture;
  serve::EngineOptions options;
  options.propagation_cache_path =
      testing::TempDir() + "/degraded_propagation.cache";
  std::remove(options.propagation_cache_path.c_str());

  // Populate a valid cache, then truncate it mid-payload.
  {
    Result<serve::InferenceSession> warmup = serve::InferenceSession::Create(
        fixture.checkpoint, fixture.dataset, options);
    ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
  }
  const std::string cache_bytes =
      ReadFileOrEmpty(options.propagation_cache_path);
  ASSERT_GT(cache_bytes.size(), 32u);
  {
    std::ofstream truncated(options.propagation_cache_path,
                            std::ios::binary | std::ios::trunc);
    truncated << cache_bytes.substr(0, cache_bytes.size() / 2);
  }

  // Startup must survive the corrupt sidecar: degrade, recompute, rewrite.
  Result<serve::InferenceSession> degraded = serve::InferenceSession::Create(
      fixture.checkpoint, fixture.dataset, options);
  ASSERT_TRUE(degraded.ok())
      << "corrupt cache must degrade, not fail startup: "
      << degraded.status().ToString();
  EXPECT_FALSE(degraded->used_propagation_cache());
  EXPECT_TRUE(degraded->cache_degraded());

  // The degraded startup healed the sidecar: next start is a clean hit.
  Result<serve::InferenceSession> healed = serve::InferenceSession::Create(
      fixture.checkpoint, fixture.dataset, options);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed->used_propagation_cache());
  EXPECT_FALSE(healed->cache_degraded());
  std::remove(options.propagation_cache_path.c_str());
}

TEST(ServeDegradationTest, MissingCacheIsAMissNotADegradation) {
  ServingFixture fixture;
  serve::EngineOptions options;
  options.propagation_cache_path =
      testing::TempDir() + "/absent_propagation.cache";
  std::remove(options.propagation_cache_path.c_str());
  Result<serve::InferenceSession> session = serve::InferenceSession::Create(
      fixture.checkpoint, fixture.dataset, options);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->used_propagation_cache());
  EXPECT_FALSE(session->cache_degraded())
      << "a cold cache is an ordinary miss, not a degradation";
  std::remove(options.propagation_cache_path.c_str());
}

TEST(ServeDegradationTest, CacheWriteFailureStillServes) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  failpoint::ClearAll();
  ASSERT_TRUE(failpoint::Configure("serve.cache.write", "error").ok());
  ServingFixture fixture;
  serve::EngineOptions options;
  options.propagation_cache_path =
      testing::TempDir() + "/unwritable_propagation.cache";
  std::remove(options.propagation_cache_path.c_str());
  Result<serve::InferenceSession> session = serve::InferenceSession::Create(
      fixture.checkpoint, fixture.dataset, options);
  ASSERT_TRUE(session.ok())
      << "a failed cache write must not fail startup: "
      << session.status().ToString();
  EXPECT_EQ(ReadFileOrEmpty(options.propagation_cache_path), "");
  failpoint::ClearAll();
}

}  // namespace
}  // namespace adpa
