// Chaos scheduler tests (src/core/chaos.h): the ADPA_CHAOS spec grammar,
// the determinism contracts that make seed-replay work (same spec ->
// bitwise-identical schedule; a point's config depends only on (seed,
// name), never on the prefix filter or catalog growth), and — under the
// recovery preset — that ChaosConfigure actually arms the registry.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/chaos.h"
#include "src/core/failpoint.h"

namespace adpa {
namespace {

using failpoint::BuildChaosSchedule;
using failpoint::ChaosSchedule;
using failpoint::ChaosSpec;
using failpoint::ParseChaosSpec;

TEST(ChaosSpecTest, ParsesSeedIntensityAndPrefixes) {
  Result<ChaosSpec> spec = ParseChaosSpec("7:0.35");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->intensity, 0.35);
  EXPECT_TRUE(spec->prefixes.empty());

  spec = ParseChaosSpec("18446744073709551615:1:net.,checkpoint.");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->seed, 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(spec->intensity, 1.0);
  EXPECT_EQ(spec->prefixes,
            (std::vector<std::string>{"net.", "checkpoint."}));

  // A full catalog name is a valid prefix of itself.
  EXPECT_TRUE(ParseChaosSpec("42:1:dataset.load").ok());
}

TEST(ChaosSpecTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",              // empty
      "7",             // no intensity
      "7:",            // empty intensity
      ":0.5",          // empty seed
      "-1:0.5",        // negative seed
      "1e3:0.5",       // non-decimal seed
      "18446744073709551616:0.5",  // seed overflows uint64
      "7:0",           // intensity must be > 0
      "7:0.0",         //
      "7:1.5",         // intensity must be <= 1
      "7:2",           //
      "7:1e-3",        // no exponents
      "7:0.3.5",       // two dots
      "7:-0.5",        // no signs
      "7:0.5:",        // empty prefix
      "7:0.5:net.,",   // trailing empty prefix
      "7:0.5:NET.",    // uppercase outside [a-z0-9._]
      "7:0.5:bogus.",  // matches no catalog name (typo guard)
      "not-a-spec",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseChaosSpec(text).ok())
        << "accepted malformed chaos spec: " << text;
  }
}

TEST(ChaosScheduleTest, SameSpecBuildsIdenticalSchedules) {
  const ChaosSpec spec = ParseChaosSpec("1234:0.5").value();
  const ChaosSchedule first = BuildChaosSchedule(spec).value();
  const ChaosSchedule second = BuildChaosSchedule(spec).value();
  ASSERT_EQ(first.points.size(), second.points.size());
  for (size_t i = 0; i < first.points.size(); ++i) {
    EXPECT_EQ(first.points[i].name, second.points[i].name);
    EXPECT_EQ(first.points[i].spec, second.points[i].spec);
  }
  EXPECT_EQ(first.Describe(), second.Describe());
  EXPECT_GT(first.eligible, 0u);
}

TEST(ChaosScheduleTest, IntensityOneArmsEveryEligiblePoint) {
  const ChaosSchedule schedule =
      BuildChaosSchedule(ParseChaosSpec("9:1").value()).value();
  EXPECT_EQ(schedule.points.size(), failpoint::Catalog().size());
  EXPECT_EQ(schedule.eligible, failpoint::Catalog().size());
  for (const auto& point : schedule.points) {
    // Every armed spec is feedable to the standard failpoint grammar:
    // action, then a @1inN trigger with the documented floor of 2.
    EXPECT_NE(point.spec.find("@1in"), std::string::npos) << point.spec;
    const std::string n = point.spec.substr(point.spec.find("@1in") + 4);
    EXPECT_GE(std::stoull(n), 2u) << point.name << "=" << point.spec;
  }
}

TEST(ChaosScheduleTest, PrefixFilterRestrictsEligibilityOnly) {
  const ChaosSchedule full =
      BuildChaosSchedule(ParseChaosSpec("77:0.8").value()).value();
  const ChaosSchedule net_only =
      BuildChaosSchedule(ParseChaosSpec("77:0.8:net.").value()).value();

  EXPECT_LT(net_only.eligible, full.eligible);
  std::map<std::string, std::string> full_specs;
  for (const auto& point : full.points) {
    full_specs[point.name] = point.spec;
  }
  ASSERT_FALSE(net_only.points.empty());
  for (const auto& point : net_only.points) {
    EXPECT_EQ(point.name.rfind("net.", 0), 0u) << point.name;
    // The replay contract: narrowing the filter never changes the config
    // of a point that stays eligible — its stream is keyed by (seed,
    // name) alone.
    ASSERT_TRUE(full_specs.count(point.name)) << point.name;
    EXPECT_EQ(full_specs[point.name], point.spec) << point.name;
  }
}

TEST(ChaosScheduleTest, NeverArmsCrashAndShortPointsGetError) {
  // Survey many seeds: chaos certifies fault-tolerance, so `crash` must
  // never appear, and `.short` points (interpreted as one-byte IO caps)
  // must always carry the error action.
  for (uint64_t seed = 0; seed < 64; ++seed) {
    const ChaosSpec spec =
        ParseChaosSpec(std::to_string(seed) + ":1").value();
    const ChaosSchedule schedule = BuildChaosSchedule(spec).value();
    for (const auto& point : schedule.points) {
      EXPECT_EQ(point.spec.find("crash"), std::string::npos)
          << "seed " << seed << " armed " << point.name << "="
          << point.spec;
      if (point.name.size() >= 6 &&
          point.name.compare(point.name.size() - 6, 6, ".short") == 0) {
        EXPECT_EQ(point.spec.rfind("error(chaos)", 0), 0u)
            << "seed " << seed << " armed " << point.name << "="
            << point.spec;
      }
    }
  }
}

TEST(ChaosScheduleTest, DescribeIsGreppableAndComplete) {
  const ChaosSchedule schedule =
      BuildChaosSchedule(ParseChaosSpec("3:0.35:net.").value()).value();
  const std::string text = schedule.Describe();
  EXPECT_EQ(text.rfind("chaos: seed=3 intensity=0.35 armed ", 0), 0u)
      << text;
  for (const auto& point : schedule.points) {
    EXPECT_NE(text.find("chaos: " + point.name + "=" + point.spec + "\n"),
              std::string::npos)
        << text;
  }
}

class ChaosConfigureTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out; build with "
                      "-DADPA_FAILPOINTS=ON (the `recovery` preset)";
    }
    failpoint::ClearAll();
  }
  void TearDown() override {
    if (failpoint::CompiledIn()) failpoint::ClearAll();
  }
};

TEST_F(ChaosConfigureTest, ArmsTheRegistryAccordingToTheSchedule) {
  // dataset.load at intensity 1 is always armed; its trigger is some
  // @1inN with N in [2, 5], so within 5 hits it must fire at least once.
  const ChaosSpec spec = ParseChaosSpec("21:1:dataset.load").value();
  const Result<ChaosSchedule> schedule = failpoint::ChaosConfigure(spec);
  ASSERT_TRUE(schedule.ok()) << schedule.status().ToString();
  ASSERT_EQ(schedule->points.size(), 1u);
  EXPECT_EQ(schedule->points[0].name, "dataset.load");

  bool fired = false;
  for (int i = 0; i < 5; ++i) {
    if (!failpoint::Hit("dataset.load").ok()) fired = true;
  }
  EXPECT_TRUE(fired) << "armed " << schedule->points[0].spec
                     << " never fired within its trigger period";
  EXPECT_EQ(failpoint::HitCount("dataset.load"), 5u);
}

TEST_F(ChaosConfigureTest, UnarmedPointsStayDormant) {
  const ChaosSpec spec = ParseChaosSpec("21:1:dataset.load").value();
  ASSERT_TRUE(failpoint::ChaosConfigure(spec).ok());
  // Points outside the filter never armed: they pass and never count a
  // configured action (HitCount still ticks, actions do not).
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(failpoint::Hit("checkpoint.save").ok());
  }
}

}  // namespace
}  // namespace adpa
