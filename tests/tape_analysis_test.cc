// Tests for the autograd tape analyzer (src/tensor/tape_analysis.h):
// healthy graphs report clean, hand-wired broken nodes produce specific
// violations, cycles are detected, detached parameters are flagged as
// dead, and the trainer surfaces dead parameters via verify_tape.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/tensor/autograd.h"
#include "src/tensor/tape_analysis.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

using ag::AnalyzeTape;
using ag::Node;
using ag::TapeReport;
using ag::Variable;

bool AnyViolationContains(const TapeReport& report, const std::string& text) {
  for (const std::string& violation : report.violations) {
    if (violation.find(text) != std::string::npos) return true;
  }
  return false;
}

Variable SmallMlpLoss(const Variable& x, const Variable& w1,
                      const Variable& b1, const Variable& w2) {
  Variable hidden = ag::Relu(ag::AddBias(ag::MatMul(x, w1), b1));
  Variable logits = ag::MatMul(hidden, w2);
  return ag::MaskedCrossEntropy(logits, {0, 1, 0, 1}, {0, 1, 2, 3});
}

TEST(TapeAnalysisTest, HealthyGraphReportsClean) {
  Rng rng(3);
  Variable x = ag::Constant(Matrix::RandomNormal(4, 5, &rng));
  Variable w1 = ag::Parameter(Matrix::RandomNormal(5, 6, &rng));
  Variable b1 = ag::Parameter(Matrix::RandomNormal(1, 6, &rng));
  Variable w2 = ag::Parameter(Matrix::RandomNormal(6, 2, &rng));
  Variable loss = SmallMlpLoss(x, w1, b1, w2);

  const TapeReport report = AnalyzeTape(loss, {w1, b1, w2});
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.dead_params.empty()) << report.Summary();
  // x, w1, b1, w2 are the leaves; MatMul/AddBias/Relu/MatMul/MCE the ops.
  EXPECT_EQ(report.num_leaves, 4);
  EXPECT_EQ(report.num_nodes, 9);
  EXPECT_GE(report.num_edges, 8);
}

TEST(TapeAnalysisTest, AnalysisIsReadOnlyForBackward) {
  // Running the analyzer must not disturb the tape: Backward afterwards
  // still produces gradients.
  Rng rng(4);
  Variable w = ag::Parameter(Matrix::RandomNormal(3, 3, &rng));
  Variable loss = ag::SumAll(ag::Mul(w, w));
  const TapeReport report = AnalyzeTape(loss, {w});
  ASSERT_TRUE(report.ok()) << report.Summary();
  ag::Backward(loss);
  ASSERT_FALSE(w.grad().empty());
  EXPECT_TRUE(AllClose(w.grad(), Scale(w.value(), 2.0f), 1e-6f));
}

TEST(TapeAnalysisTest, FlagsDetachedParameter) {
  // The acceptance scenario: a parameter constructed but never wired into
  // the loss must be reported dead (it would silently never train).
  Rng rng(5);
  Variable x = ag::Constant(Matrix::RandomNormal(4, 5, &rng));
  Variable used = ag::Parameter(Matrix::RandomNormal(5, 2, &rng));
  Variable detached = ag::Parameter(Matrix::RandomNormal(5, 2, &rng));
  Variable loss = ag::SumAll(ag::MatMul(x, used));

  const TapeReport report = AnalyzeTape(loss, {used, detached});
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_EQ(report.dead_params.size(), 1u) << report.Summary();
  EXPECT_EQ(report.dead_params[0], 1);
  EXPECT_NE(report.Summary().find("dead parameter: index 1"),
            std::string::npos);
}

TEST(TapeAnalysisTest, UndefinedParameterIsDead) {
  Rng rng(6);
  Variable w = ag::Parameter(Matrix::RandomNormal(2, 2, &rng));
  Variable loss = ag::SumAll(w);
  const TapeReport report = AnalyzeTape(loss, {w, Variable()});
  ASSERT_EQ(report.dead_params.size(), 1u) << report.Summary();
  EXPECT_EQ(report.dead_params[0], 1);
}

TEST(TapeAnalysisTest, MissingBackwardClosureIsAViolation) {
  // Hand-wire the exact corruption the analyzer exists to catch: an op
  // node that says requires_grad but has no backward closure. Backward
  // would silently drop every gradient flowing through it.
  Variable parent = ag::Parameter(Matrix(2, 2));
  auto broken = std::make_shared<Node>();
  broken->value = Matrix(2, 2);
  broken->op = "Add";
  broken->parents = {parent.node(), parent.node()};
  broken->requires_grad = true;  // but no backward closure

  const TapeReport report = AnalyzeTape(Variable(broken));
  EXPECT_FALSE(report.ok()) << report.Summary();
  EXPECT_TRUE(
      AnyViolationContains(report, "requires_grad set but backward is empty"))
      << report.Summary();
}

TEST(TapeAnalysisTest, OpShapeRuleCatchesMismatchedOperands) {
  // An "Add" whose operands disagree with its output shape.
  Variable a = ag::Constant(Matrix(2, 3));
  Variable b = ag::Constant(Matrix(2, 2));
  auto broken = std::make_shared<Node>();
  broken->value = Matrix(2, 3);
  broken->op = "Add";
  broken->parents = {a.node(), b.node()};

  const TapeReport report = AnalyzeTape(Variable(broken));
  EXPECT_FALSE(report.ok()) << report.Summary();
  EXPECT_TRUE(AnyViolationContains(report, "differs from output"))
      << report.Summary();
}

TEST(TapeAnalysisTest, StaleGradShapeIsAViolation) {
  Variable parent = ag::Parameter(Matrix(3, 3));
  auto broken = std::make_shared<Node>();
  broken->value = Matrix(3, 3);
  broken->grad = Matrix(2, 2);  // stale shape from a reused node
  broken->op = "Relu";
  broken->parents = {parent.node()};
  broken->requires_grad = true;
  broken->backward = [](const Matrix&) {};

  const TapeReport report = AnalyzeTape(Variable(broken));
  EXPECT_FALSE(report.ok()) << report.Summary();
  EXPECT_TRUE(AnyViolationContains(report, "accumulated gradient is 2x2"))
      << report.Summary();
}

TEST(TapeAnalysisTest, NullParentIsAViolationNotACrash) {
  auto broken = std::make_shared<Node>();
  broken->value = Matrix(1, 1);
  broken->op = "SumAll";
  broken->parents = {nullptr};

  const TapeReport report = AnalyzeTape(Variable(broken));
  EXPECT_FALSE(report.ok()) << report.Summary();
  EXPECT_TRUE(AnyViolationContains(report, "null parent pointer"))
      << report.Summary();
}

TEST(TapeAnalysisTest, ParentCycleIsDetected) {
  // Impossible through the public op constructors, but a future in-place
  // op could wire one; Backward's DFS would never terminate on it.
  auto a = std::make_shared<Node>();
  auto b = std::make_shared<Node>();
  a->value = Matrix(1, 1);
  b->value = Matrix(1, 1);
  a->op = "Scale";
  b->op = "Scale";
  a->parents = {b};
  b->parents = {a};

  const TapeReport report = AnalyzeTape(Variable(a));
  EXPECT_TRUE(AnyViolationContains(report, "parent cycle detected"))
      << report.Summary();

  // The hand-built cycle is also a shared_ptr reference cycle; break it so
  // the nodes free and LeakSanitizer stays quiet.
  a->parents.clear();
  b->parents.clear();
}

TEST(TapeAnalysisTest, UnknownOpTagOnlyNeedsParents) {
  // Forward-compat: an op added after the analyzer was written must not
  // hard-fail the audit as long as it is structurally sound.
  Variable parent = ag::Constant(Matrix(2, 2));
  auto future = std::make_shared<Node>();
  future->value = Matrix(5, 7);  // arbitrary shape change
  future->op = "SomeFutureOp";
  future->parents = {parent.node()};

  const TapeReport report = AnalyzeTape(Variable(future));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// Minimal model with a deliberately detached parameter, for the trainer
// integration below.
class LeakyLinearModel : public Model {
 public:
  LeakyLinearModel(const Dataset& dataset, Rng* rng)
      : features_(ag::Constant(dataset.features)),
        weight_(ag::Parameter(Matrix::RandomNormal(
            dataset.feature_dim(), dataset.num_classes, rng, 0.0f, 0.3f))),
        forgotten_(ag::Parameter(Matrix::RandomNormal(4, 4, rng))) {}

  ag::Variable Forward(bool /*training*/, Rng* /*rng*/) override {
    return ag::MatMul(features_, weight_);  // forgotten_ never contributes
  }
  std::vector<ag::Variable> Parameters() const override {
    return {weight_, forgotten_};
  }
  std::string name() const override { return "leaky-linear"; }

 private:
  ag::Variable features_;
  ag::Variable weight_;
  ag::Variable forgotten_;
};

TEST(TapeAnalysisTest, TrainerVerifyTapeReportsDeadParameters) {
  DsbmConfig config;
  config.num_nodes = 30;
  config.num_classes = 3;
  config.class_transition = HomophilousTransition(3, 0.8);
  config.feature_dim = 5;
  config.seed = 31;
  Result<Dataset> generated = GenerateDsbm(config);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  Dataset dataset = std::move(generated).value();
  Rng split_rng(32);
  Result<Split> split = SplitFractions(dataset.labels, dataset.num_classes,
                                       0.5, 0.25, &split_rng);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  dataset.train_idx = split->train;
  dataset.val_idx = split->val;
  dataset.test_idx = split->test;

  Rng rng(33);
  LeakyLinearModel model(dataset, &rng);
  TrainConfig train_config;
  train_config.max_epochs = 3;
  train_config.patience = 0;
  train_config.verify_tape = true;
  const TrainResult result = TrainModel(&model, dataset, train_config, &rng);
  EXPECT_EQ(result.dead_parameters, 1);
  EXPECT_EQ(result.epochs_run, 3);
}

}  // namespace
}  // namespace adpa
