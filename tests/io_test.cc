// Tests for the plain-text dataset (de)serialization.

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/io.h"
#include "src/data/splits.h"
#include "src/io/binary.h"

namespace adpa {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/adpa_io_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Dataset MakeDataset(uint64_t seed = 3) {
    DsbmConfig config;
    config.num_nodes = 60;
    config.num_classes = 3;
    config.avg_out_degree = 4.0;
    config.class_transition = HomophilousTransition(3, 0.7);
    config.feature_dim = 5;
    config.seed = seed;
    Dataset ds = std::move(GenerateDsbm(config)).value();
    ds.name = "io-test";
    Rng rng(seed);
    Split split =
        std::move(SplitFractions(ds.labels, 3, 0.5, 0.25, &rng)).value();
    ds.train_idx = split.train;
    ds.val_idx = split.val;
    ds.test_idx = split.test;
    return ds;
  }

  std::string path_;
};

TEST_F(IoTest, RoundTripPreservesEverything) {
  Dataset original = MakeDataset();
  ASSERT_TRUE(SaveDataset(original, path_).ok());
  Result<Dataset> loaded = LoadDataset(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->num_classes, original.num_classes);
  EXPECT_EQ(loaded->graph.edges(), original.graph.edges());
  EXPECT_EQ(loaded->labels, original.labels);
  EXPECT_EQ(loaded->train_idx, original.train_idx);
  EXPECT_EQ(loaded->val_idx, original.val_idx);
  EXPECT_EQ(loaded->test_idx, original.test_idx);
  // Floats round-trip at %.6g: tight but not bit-exact.
  EXPECT_TRUE(AllClose(loaded->features, original.features, 1e-4f));
}

TEST_F(IoTest, LoadRejectsMissingFile) {
  Result<Dataset> r = LoadDataset("/nonexistent/definitely/not/here.txt");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, LoadRejectsBadMagic) {
  std::ofstream out(path_);
  out << "not-a-dataset 1\n";
  out.close();
  EXPECT_FALSE(LoadDataset(path_).ok());
}

TEST_F(IoTest, LoadRejectsTruncatedEdges) {
  Dataset ds = MakeDataset();
  ASSERT_TRUE(SaveDataset(ds, path_).ok());
  // Truncate the file in the middle of the edge list.
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_);
  out << contents.substr(0, contents.size() / 3);
  out.close();
  EXPECT_FALSE(LoadDataset(path_).ok());
}

TEST_F(IoTest, SaveRejectsInvalidDataset) {
  Dataset ds = MakeDataset();
  ds.labels[0] = 99;  // out of range
  EXPECT_FALSE(SaveDataset(ds, path_).ok());
}

TEST_F(IoTest, LoadValidatesSemantics) {
  // Well-formed syntax but overlapping splits must be rejected.
  std::ofstream out(path_);
  out << "adpa-dataset 1\n"
      << "name bad\n"
      << "nodes 3 classes 2 features 1\n"
      << "edges 1\n0 1\n"
      << "labels\n0 1 0\n"
      << "features\n0.5\n0.5\n0.5\n"
      << "train 1 0\nval 1 0\ntest 1 2\n";  // node 0 in train AND val
  out.close();
  EXPECT_FALSE(LoadDataset(path_).ok());
}

TEST_F(IoTest, StreamRoundTripMatchesFileRoundTrip) {
  const Dataset original = MakeDataset();
  std::ostringstream out;
  ASSERT_TRUE(SaveDatasetToStream(original, out).ok());
  std::istringstream in(out.str());
  Result<Dataset> loaded = LoadDatasetFromStream(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  EXPECT_EQ(loaded->labels, original.labels);
}

TEST_F(IoTest, HostileHeaderDimensionsAreRejectedBeforeAllocation) {
  // A hostile header claiming astronomically many nodes/features must be
  // rejected by the DatasetLimits ceilings, not by an OOM inside Matrix.
  const auto load_with_header = [](const std::string& header,
                                   const DatasetLimits& limits) {
    std::istringstream in("adpa-dataset 1\nname evil\n" + header +
                          "\nedges 0\n");
    return LoadDatasetFromStream(in, limits);
  };
  DatasetLimits tight;
  tight.max_nodes = 1000;
  tight.max_edges = 10000;
  tight.max_features = 100;
  tight.max_feature_entries = 10000;

  Result<Dataset> r =
      load_with_header("nodes 999999999999 classes 2 features 1", tight);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("node count exceeds limit"),
            std::string::npos);

  r = load_with_header("nodes 10 classes 2 features 999999", tight);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("feature dim exceeds limit"),
            std::string::npos);

  // Individually-legal dims whose product overflows the entry ceiling.
  r = load_with_header("nodes 1000 classes 2 features 100", tight);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("exceeds entry limit"),
            std::string::npos);

  std::istringstream edges_in(
      "adpa-dataset 1\nname evil\nnodes 4 classes 2 features 1\n"
      "edges 99999999\n");
  r = LoadDatasetFromStream(edges_in, tight);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("edge count exceeds limit"),
            std::string::npos);
}

// Truncation sweep over the checked binary primitives (src/io/binary.h):
// every Read* must turn every possible short read — each byte boundary of
// its encoding, including zero bytes — into a non-OK Status, never a crash
// or a silently partial value. These primitives are the only file-access
// surface of src/io/ and src/serve/, so this sweep is the bedrock of the
// corrupt-artifact degradation guarantees.
TEST(BinaryTruncationSweepTest, EveryPrimitiveRejectsEveryShortRead) {
  struct Primitive {
    const char* name;
    size_t encoded_size;
    std::function<Status(BinaryReader*)> read;
  };
  const std::string text = "abcdef";
  std::ostringstream matrix_stream;
  {
    BinaryWriter writer(&matrix_stream);
    Matrix m(2, 3);
    for (int64_t r = 0; r < 2; ++r) {
      for (int64_t c = 0; c < 3; ++c) m.At(r, c) = static_cast<float>(r + c);
    }
    writer.WriteMatrix(m);
    ASSERT_TRUE(writer.status().ok());
  }
  const std::vector<Primitive> primitives = {
      {"ReadU8", 1,
       [](BinaryReader* r) {
         uint8_t v;
         return r->ReadU8(&v);
       }},
      {"ReadU32", 4,
       [](BinaryReader* r) {
         uint32_t v;
         return r->ReadU32(&v);
       }},
      {"ReadU64", 8,
       [](BinaryReader* r) {
         uint64_t v;
         return r->ReadU64(&v);
       }},
      {"ReadI32", 4,
       [](BinaryReader* r) {
         int32_t v;
         return r->ReadI32(&v);
       }},
      {"ReadI64", 8,
       [](BinaryReader* r) {
         int64_t v;
         return r->ReadI64(&v);
       }},
      {"ReadF32", 4,
       [](BinaryReader* r) {
         float v;
         return r->ReadF32(&v);
       }},
      {"ReadF64", 8,
       [](BinaryReader* r) {
         double v;
         return r->ReadF64(&v);
       }},
      {"ReadBytes", 6,
       [](BinaryReader* r) {
         char buffer[6];
         return r->ReadBytes(buffer, sizeof(buffer));
       }},
      {"ReadString", 4 + text.size(),
       [](BinaryReader* r) {
         std::string v;
         return r->ReadString(&v, 1024);
       }},
      {"ReadMatrix", matrix_stream.str().size(),
       [](BinaryReader* r) {
         Matrix v;
         return r->ReadMatrix(&v, 1024);
       }},
  };

  for (const Primitive& primitive : primitives) {
    // A well-formed encoding of exactly this primitive.
    std::ostringstream out;
    BinaryWriter writer(&out);
    if (std::string(primitive.name) == "ReadString") {
      writer.WriteString(text);
    } else if (std::string(primitive.name) == "ReadMatrix") {
      out << matrix_stream.str();
    } else if (std::string(primitive.name) == "ReadBytes") {
      writer.WriteBytes(text.data(), 6);
    } else if (primitive.encoded_size == 1) {
      writer.WriteU8(0xAB);
    } else if (primitive.encoded_size == 4) {
      writer.WriteU32(0xDEADBEEF);
    } else {
      writer.WriteU64(0xDEADBEEFCAFEF00Dull);
    }
    ASSERT_TRUE(writer.status().ok());
    const std::string bytes = out.str();
    ASSERT_EQ(bytes.size(), primitive.encoded_size) << primitive.name;

    // The full encoding reads back OK...
    {
      std::istringstream in(bytes);
      BinaryReader reader(&in);
      EXPECT_TRUE(primitive.read(&reader).ok()) << primitive.name;
    }
    // ...and every strict prefix is a checked error.
    for (size_t len = 0; len < bytes.size(); ++len) {
      std::istringstream in(bytes.substr(0, len));
      BinaryReader reader(&in);
      const Status status = primitive.read(&reader);
      EXPECT_FALSE(status.ok())
          << primitive.name << " accepted a " << len << "-byte prefix of its "
          << bytes.size() << "-byte encoding";
    }
  }
}

TEST_F(IoTest, HandWrittenFileLoads) {
  std::ofstream out(path_);
  out << "adpa-dataset 1\n"
      << "name tiny\n"
      << "nodes 4 classes 2 features 2\n"
      << "edges 3\n0 1\n1 2\n2 3\n"
      << "labels\n0 0 1 1\n"
      << "features\n1 0\n1 0\n0 1\n0 1\n"
      << "train 2 0 2\nval 1 1\ntest 1 3\n";
  out.close();
  Result<Dataset> ds = LoadDataset(path_);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->num_nodes(), 4);
  EXPECT_EQ(ds->num_edges(), 3);
  EXPECT_FLOAT_EQ(ds->features.At(2, 1), 1.0f);
}

}  // namespace
}  // namespace adpa
