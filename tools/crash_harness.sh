#!/bin/sh
# Crash-recovery harness (DESIGN.md §10): drives the real binaries through
# the failure paths the unit tests can only simulate in-process.
#
#  1. Kill training mid-run with a deterministic failpoint crash
#     (ADPA_FAILPOINTS='trainer.epoch=crash@8' — simulated power cut at the
#     top of the 8th epoch), then assert the periodic snapshot on disk is
#     loadable and that resuming from it reproduces, byte for byte, the
#     final checkpoint of an uninterrupted run.
#  2. Corrupt the snapshot and assert the resume path refuses it with a
#     checked error (exit code, not a crash).
#  3. SIGTERM adpa_serve mid-stream and assert it drains: the already
#     accepted request is answered, the drain notice hits stderr, and the
#     process exits 0.
#  4. Same drain contract over TCP: SIGTERM adpa_serve --listen while a
#     client connection is open, and assert the served reply arrived, the
#     connection is closed (client sees EOF, not a reset mid-reply), the
#     drain notice hits stderr, and the process exits 0. Skipped with a
#     notice when python3 (the test client) is unavailable.
#
# Needs binaries built with -DADPA_FAILPOINTS=ON (the `recovery` preset);
# exits 77 (the autotools/ctest SKIP convention) otherwise.
#
# usage: tools/crash_harness.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-recovery}"
CLI="$BUILD_DIR/tools/adpa_cli"
SERVE="$BUILD_DIR/tools/adpa_serve"

for bin in "$CLI" "$SERVE"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "crash_harness: FAIL — $1" >&2
  exit 1
}

"$CLI" generate --name=Texas --seed=7 --out="$WORK/texas.txt" > /dev/null

# An invalid failpoint spec must abort loudly (exit 41) at the first hooked
# seam (`analyze` hits dataset.load), not run with no faults armed; this
# doubles as the compiled-in probe for the skip below.
rc=0
ADPA_FAILPOINTS='not-a-spec' "$CLI" analyze --in="$WORK/texas.txt" \
  > /dev/null 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "crash_harness: SKIP — failpoints compiled out (need the recovery" \
    "preset: cmake --preset recovery)" >&2
  exit 77
fi
[ "$rc" -eq 41 ] || fail "malformed ADPA_FAILPOINTS spec exited $rc, want 41"

TRAIN_FLAGS="--in=$WORK/texas.txt --model=ADPA --seed=42 --epochs=30
  --patience=0"

# Reference: one uninterrupted run.
# shellcheck disable=SC2086  # TRAIN_FLAGS is a deliberate word list
"$CLI" train $TRAIN_FLAGS --save_checkpoint="$WORK/reference.ckpt" \
  > /dev/null

# --- 1. crash at epoch 8, snapshot every 5 epochs, resume, compare -------
rc=0
# shellcheck disable=SC2086
ADPA_FAILPOINTS='trainer.epoch=crash@8' \
  "$CLI" train $TRAIN_FLAGS --checkpoint_every=5 \
  --checkpoint_path="$WORK/snapshot.ckpt" > /dev/null 2>&1 || rc=$?
[ "$rc" -eq 42 ] || fail "failpoint crash exited $rc, want 42"
[ -s "$WORK/snapshot.ckpt" ] || fail "no snapshot survived the crash"

"$CLI" train --in="$WORK/texas.txt" --seed=42 \
  --resume_from="$WORK/snapshot.ckpt" \
  --save_checkpoint="$WORK/resumed.ckpt" > "$WORK/resume.log" \
  || fail "resume from the crash snapshot failed"
grep -q 'resumed ADPA .* at epoch 5' "$WORK/resume.log" \
  || fail "resume did not report the epoch-5 cursor: $(cat "$WORK/resume.log")"
cmp -s "$WORK/reference.ckpt" "$WORK/resumed.ckpt" \
  || fail "resumed final checkpoint differs from the uninterrupted run"

# --- 2. a corrupt snapshot is refused, not crashed on --------------------
head -c 64 "$WORK/snapshot.ckpt" > "$WORK/torn.ckpt"
rc=0
"$CLI" train --in="$WORK/texas.txt" --seed=42 \
  --resume_from="$WORK/torn.ckpt" > /dev/null 2>"$WORK/torn.log" || rc=$?
[ "$rc" -eq 1 ] || fail "corrupt snapshot exited $rc, want the checked 1"

# --- 3. SIGTERM drains adpa_serve ----------------------------------------
mkfifo "$WORK/requests"
"$SERVE" --checkpoint="$WORK/reference.ckpt" --in="$WORK/texas.txt" \
  < "$WORK/requests" > "$WORK/replies.jsonl" 2> "$WORK/serve.log" &
SERVE_PID=$!
exec 3> "$WORK/requests"
printf '{"id": 1, "nodes": [0, 1, 2]}\n' >&3
# Wait until the reply lands so the SIGTERM races only the idle read.
tries=0
while [ ! -s "$WORK/replies.jsonl" ]; do
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || fail "no reply from adpa_serve within 10s"
  sleep 0.1
done
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
exec 3>&-
[ "$rc" -eq 0 ] || fail "adpa_serve exited $rc after SIGTERM, want drain + 0"
grep -q '"id":1,"classes"' "$WORK/replies.jsonl" \
  || fail "accepted request was not answered before shutdown"
grep -q 'draining: received signal' "$WORK/serve.log" \
  || fail "no drain notice on stderr: $(cat "$WORK/serve.log")"

# --- 4. SIGTERM drains adpa_serve --listen (TCP) --------------------------
TCP_CASE="skipped (no python3)"
if command -v python3 > /dev/null 2>&1; then
  "$SERVE" --checkpoint="$WORK/reference.ckpt" --in="$WORK/texas.txt" \
    --listen=127.0.0.1:0 2> "$WORK/tcp_serve.log" &
  TCP_PID=$!
  tries=0
  until grep -q '^listening on 127\.0\.0\.1:' "$WORK/tcp_serve.log"; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || fail "adpa_serve --listen did not come up in 10s"
    sleep 0.1
  done
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/tcp_serve.log" | head -n 1)"
  [ -n "$PORT" ] || fail "could not parse the listen port"

  # The client sends one request, records the reply, then holds the
  # connection open until the draining server closes it (EOF, exit 0).
  python3 - "$PORT" "$WORK/tcp_reply.jsonl" <<'PYEOF' &
import socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
sock.settimeout(10)
sock.sendall(b'{"id": 1, "nodes": [0, 1, 2]}\n')
buf = b""
while b"\n" not in buf:
    chunk = sock.recv(4096)
    if not chunk:
        sys.exit(2)  # closed before the reply
    buf += chunk
line, _, rest = buf.partition(b"\n")
with open(sys.argv[2], "wb") as out:
    out.write(line + b"\n")
while True:  # wait for the drain to close the connection
    chunk = sock.recv(4096)
    if not chunk:
        sys.exit(0)
    rest += chunk
PYEOF
  CLIENT_PID=$!
  tries=0
  while [ ! -s "$WORK/tcp_reply.jsonl" ]; do
    tries=$((tries + 1))
    [ "$tries" -lt 100 ] || fail "no TCP reply from adpa_serve within 10s"
    sleep 0.1
  done
  kill -TERM "$TCP_PID"
  rc=0
  wait "$TCP_PID" || rc=$?
  [ "$rc" -eq 0 ] || fail "adpa_serve --listen exited $rc after SIGTERM"
  rc=0
  wait "$CLIENT_PID" || rc=$?
  [ "$rc" -eq 0 ] || fail "TCP client exited $rc (connection not drained?)"
  grep -q '"id":1,"classes"' "$WORK/tcp_reply.jsonl" \
    || fail "TCP request was not answered before shutdown"
  grep -q 'draining: received signal' "$WORK/tcp_serve.log" \
    || fail "no TCP drain notice on stderr: $(cat "$WORK/tcp_serve.log")"
  TCP_CASE="TCP drained"
fi

echo "crash_harness: OK (crash@8 resumed bitwise, torn snapshot refused," \
  "SIGTERM drained, $TCP_CASE)"
