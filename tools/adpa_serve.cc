// adpa_serve — JSON-lines inference server over a trained checkpoint.
//
//   adpa_cli train --in=g.txt --save_checkpoint=m.ckpt
//   adpa_serve --checkpoint=m.ckpt --in=g.txt < queries.jsonl > replies.jsonl
//
// Protocol: one request object per stdin line, one reply per stdout line,
// in request order. Requests are {"id": 7, "nodes": [0, 12, 3]} with an
// optional "deadline_ms"; replies are {"id":7,"classes":[1,0,2]},
// {"id":7,"error":"..."}, or — when the request was rejected at a full
// queue or shed past its deadline — the structured retry shape
// {"id":7,"error":"overloaded","detail":"..."}. The process exits at EOF
// and prints a metrics summary (latency percentiles, QPS, batching and
// shedding counters) to stderr, keeping stdout byte-stable for golden
// comparisons.
//
// Shutdown: SIGTERM/SIGINT switch the server to draining — it stops
// reading stdin, answers every request already submitted, flushes stdout,
// and exits 0. SIGPIPE is ignored so a vanished reader surfaces as a
// write error instead of killing the process.
//
// TCP mode (--listen host:port): an epoll event loop (src/net/server.h)
// serves the same JSONL protocol to many concurrent connections, replies
// in order per connection, and additionally accepts the admin request
// {"reload": "/path/to/model.ckpt"} which hot-swaps the serving checkpoint
// without dropping a request (SIGHUP re-reads the current checkpoint
// path). Port 0 binds an ephemeral port; the actual address is announced
// on stderr as "listening on HOST:PORT". SIGTERM/SIGINT drain exactly as
// in stdin mode: stop accepting, answer everything received, flush, exit 0.
//
// Flags:
//   --listen=HOST:PORT    serve over TCP instead of stdin/stdout
//   --no_reload           refuse {"reload": ...} admin requests (TCP mode)
//   --idle_timeout_ms=N   close connections idle for N ms (TCP mode;
//                         0 = never, the default)
//   --stall_timeout_ms=N  drop connections whose request line has been
//                         incomplete for N ms (slow-loris defense; 0 =
//                         never, the default)
//   --checkpoint=F        trained model (required)
//   --in=F                the dataset the model was trained on (required)
//   --undirect            mirror the training run's --undirect
//   --cache=F             sidecar file for the Eq. 9 propagation precompute
//   --batch_lines=N       stdin lines submitted before pumping (default 1;
//                         raise to coalesce pipelined queries per forward)
//   --max_batch_nodes=N   node cap per coalesced forward (default 4096)
//   --max_queue_depth=N   pending-request ceiling before Submit is rejected
//                         with "overloaded" (default 4096)
//   --threads=N           kernel thread count (0 = auto)
//   --simd_level=<portable|avx2|avx512>
//                         pin the kernel dispatch level (default: fastest
//                         level the CPU supports)

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "src/core/flags.h"
#include "src/core/parallel.h"
#include "src/data/io.h"
#include "src/io/checkpoint.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/serve/batcher.h"
#include "src/serve/engine.h"
#include "src/serve/hot_swap.h"
#include "src/serve/jsonl.h"
#include "src/serve/metrics.h"
#include "src/tensor/simd.h"

namespace adpa {
namespace {

volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void HandleShutdownSignal(int signal_number) {
  g_shutdown_signal = signal_number;
}

/// TCP mode: signals wake the event loop through its self-pipe. Both the
/// flag store and the single-byte write are async-signal-safe.
volatile std::sig_atomic_t g_server_wake_fd = -1;

extern "C" void HandleServerSignal(int signal_number) {
  if (signal_number != SIGHUP) g_shutdown_signal = signal_number;
  const int fd = g_server_wake_fd;
  if (fd < 0) return;
  const char command = signal_number == SIGHUP ? 'H' : 'T';
  const ssize_t wrote = ::write(fd, &command, 1);
  (void)wrote;  // a full wake pipe already has a wakeup queued
}

/// Line reader over fd 0 built on raw ::read. std::getline can't be used
/// here: libstdc++ retries read() on EINTR inside the stream buffer, so a
/// SIGTERM delivered while blocked on stdin would never interrupt the wait
/// and the drain path would only run at the next newline.
class StdinLineReader {
 public:
  enum class ReadResult { kLine, kEof, kInterrupted };

  ReadResult Next(std::string* line) {
    while (true) {
      const size_t newline = buffer_.find('\n', scan_from_);
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        scan_from_ = 0;
        return ReadResult::kLine;
      }
      scan_from_ = buffer_.size();
      char chunk[4096];
      const ssize_t got = ::read(STDIN_FILENO, chunk, sizeof(chunk));
      if (got > 0) {
        buffer_.append(chunk, static_cast<size_t>(got));
        continue;
      }
      if (got == 0) {
        if (buffer_.empty()) return ReadResult::kEof;
        line->swap(buffer_);  // final unterminated line
        buffer_.clear();
        scan_from_ = 0;
        return ReadResult::kLine;
      }
      if (errno == EINTR) {
        if (g_shutdown_signal != 0) return ReadResult::kInterrupted;
        continue;
      }
      return ReadResult::kEof;  // unreadable stdin ends the serve loop
    }
  }

 private:
  std::string buffer_;
  size_t scan_from_ = 0;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintMetricsSummary(const serve::ServeMetrics& metrics,
                         double elapsed_s) {
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  std::fprintf(stderr,
               "served %llu requests (%llu errors, %llu nodes) in %llu "
               "batches; mean batch %.2f req; latency ms p50 %.3f p99 %.3f "
               "mean %.3f; %.1f req/s; max queue depth %lld; rejected %llu; "
               "shed %llu\n",
               static_cast<unsigned long long>(snapshot.requests),
               static_cast<unsigned long long>(snapshot.errors),
               static_cast<unsigned long long>(snapshot.nodes),
               static_cast<unsigned long long>(snapshot.batches),
               snapshot.mean_batch_requests, snapshot.p50_latency_ms,
               snapshot.p99_latency_ms, snapshot.mean_latency_ms,
               elapsed_s > 0.0 ? static_cast<double>(snapshot.requests) /
                                     elapsed_s
                               : 0.0,
               static_cast<long long>(snapshot.max_queue_depth),
               static_cast<unsigned long long>(snapshot.rejected),
               static_cast<unsigned long long>(snapshot.shed));
}

/// --listen mode: epoll event loop over TCP with hot checkpoint swap.
int ServeTcp(const std::string& listen_spec, const Flags& flags,
             const Dataset& input, const std::string& checkpoint_path) {
  Result<net::HostPort> listen = net::ParseHostPort(listen_spec);
  if (!listen.ok()) return Fail(listen.status());

  serve::EngineOptions engine_options;
  engine_options.propagation_cache_path = flags.GetString("cache", "");
  serve::SessionRegistry registry(&input, engine_options);
  const Result<serve::SessionRegistry::ReloadInfo> initial =
      registry.Reload(checkpoint_path);
  if (!initial.ok()) return Fail(initial.status());
  const std::shared_ptr<const serve::InferenceSession> session =
      registry.Current();
  std::fprintf(stderr,
               "serving %s on %s: %lld nodes, %lld classes, propagation %s\n",
               initial->model_name.c_str(), input.name.c_str(),
               static_cast<long long>(session->num_nodes()),
               static_cast<long long>(session->num_classes()),
               initial->used_propagation_cache ? "cache hit" : "computed");

  serve::ServeMetrics metrics;
  net::ServerOptions options;
  options.host = listen->host;
  options.port = listen->port;
  options.batcher.max_batch_nodes = flags.GetInt("max_batch_nodes", 4096);
  options.batcher.max_queue_depth = flags.GetInt("max_queue_depth", 4096);
  options.allow_reload = !flags.Has("no_reload");
  options.idle_timeout_ms = flags.GetInt("idle_timeout_ms", 0);
  options.stall_timeout_ms = flags.GetInt("stall_timeout_ms", 0);
  Result<std::unique_ptr<net::Server>> server =
      net::Server::Create(options, &registry, &metrics);
  if (!server.ok()) return Fail(server.status());
  std::fprintf(stderr, "listening on %s:%u\n",
               options.host.empty() || options.host == "*"
                   ? "0.0.0.0"
                   : options.host.c_str(),
               static_cast<unsigned>((*server)->port()));
  std::fflush(stderr);  // harnesses grep the announced port immediately

  g_server_wake_fd = (*server)->wake_fd();
  struct sigaction wake_action {};
  wake_action.sa_handler = HandleServerSignal;
  sigemptyset(&wake_action.sa_mask);
  wake_action.sa_flags = 0;  // no SA_RESTART: epoll_wait must wake
  sigaction(SIGTERM, &wake_action, nullptr);
  sigaction(SIGINT, &wake_action, nullptr);
  sigaction(SIGHUP, &wake_action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  const auto serve_start = std::chrono::steady_clock::now();
  const Status status = (*server)->Serve();
  g_server_wake_fd = -1;
  if (!status.ok()) return Fail(status);
  if (g_shutdown_signal != 0) {
    std::fprintf(stderr,
                 "draining: received signal %d; in-flight requests "
                 "answered, exiting cleanly\n",
                 static_cast<int>(g_shutdown_signal));
  }

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  const net::ServerStats& stats = (*server)->stats();
  std::fprintf(stderr,
               "connections: %llu accepted, %llu closed by peer, %llu "
               "dropped, %llu io errors, %llu over capacity, %llu idle "
               "closed, %llu stall dropped, %llu fd exhausted; reloads: "
               "%llu ok, %llu failed (generation %lld)\n",
               static_cast<unsigned long long>(stats.accepted),
               static_cast<unsigned long long>(stats.closed_by_peer),
               static_cast<unsigned long long>(stats.dropped),
               static_cast<unsigned long long>(stats.io_errors),
               static_cast<unsigned long long>(stats.over_capacity),
               static_cast<unsigned long long>(stats.idle_closed),
               static_cast<unsigned long long>(stats.stall_dropped),
               static_cast<unsigned long long>(stats.fd_exhausted),
               static_cast<unsigned long long>(stats.reloads),
               static_cast<unsigned long long>(stats.reload_failures),
               static_cast<long long>(registry.generation()));
  PrintMetricsSummary(metrics, elapsed_s);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: adpa_serve --checkpoint=F --in=F [--undirect]\n"
               "                  [--listen=HOST:PORT --no_reload\n"
               "                  --idle_timeout_ms=N --stall_timeout_ms=N]\n"
               "                  [--cache=F --batch_lines=N "
               "--max_batch_nodes=N\n"
               "                  --max_queue_depth=N --threads=N\n"
               "                  --simd_level=<portable|avx2|avx512>]\n"
               "reads JSON-lines requests from stdin, writes replies to "
               "stdout;\n"
               "with --listen, serves the same protocol over TCP (port 0 =\n"
               "ephemeral; the bound address is printed to stderr) and\n"
               "accepts {\"reload\": \"path\"} hot-swap requests (SIGHUP\n"
               "re-reads the current checkpoint);\n"
               "SIGTERM/SIGINT drain in-flight requests and exit 0\n");
  return 2;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return Usage();
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const std::string dataset_path = flags.GetString("in", "");
  if (checkpoint_path.empty() || dataset_path.empty()) return Usage();
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  // Resolve the dispatch level eagerly so a bad ADPA_SIMD_LEVEL aborts at
  // startup instead of on the first kernel call.
  simd::ActiveLevel();
  if (flags.Has("simd_level")) {
    const std::string level_name = flags.GetString("simd_level", "");
    simd::Level level;
    if (!simd::ParseLevel(level_name, &level)) {
      std::fprintf(stderr, "error: unknown --simd_level=%s\n",
                   level_name.c_str());
      return Usage();
    }
    if (!simd::LevelSupported(level)) {
      std::fprintf(stderr, "error: --simd_level=%s not supported by this CPU\n",
                   level_name.c_str());
      return 1;
    }
    simd::SetLevel(level);
  }

  // No SA_RESTART: a signal must interrupt the blocking stdin read so the
  // drain path runs immediately rather than at the next request line.
  struct sigaction drain_action {};
  drain_action.sa_handler = HandleShutdownSignal;
  sigemptyset(&drain_action.sa_mask);
  drain_action.sa_flags = 0;
  sigaction(SIGTERM, &drain_action, nullptr);
  sigaction(SIGINT, &drain_action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  Result<Dataset> dataset = LoadDataset(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset input = flags.GetBool("undirect", false)
                      ? dataset->WithUndirectedGraph()
                      : std::move(*dataset);

  if (flags.Has("listen")) {
    return ServeTcp(flags.GetString("listen", ""), flags, input,
                    checkpoint_path);
  }

  Result<Checkpoint> checkpoint = TryLoadCheckpoint(checkpoint_path);
  if (!checkpoint.ok()) return Fail(checkpoint.status());

  serve::EngineOptions engine_options;
  engine_options.propagation_cache_path = flags.GetString("cache", "");
  Result<serve::InferenceSession> session =
      serve::InferenceSession::Create(*checkpoint, input, engine_options);
  if (!session.ok()) return Fail(session.status());
  std::fprintf(stderr,
               "serving %s on %s: %lld nodes, %lld classes, propagation %s\n",
               checkpoint->model_name.c_str(), input.name.c_str(),
               static_cast<long long>(session->num_nodes()),
               static_cast<long long>(session->num_classes()),
               session->used_propagation_cache() ? "cache hit" : "computed");

  serve::ServeMetrics metrics;
  serve::MicroBatcher::Options batcher_options;
  batcher_options.max_batch_nodes = flags.GetInt("max_batch_nodes", 4096);
  batcher_options.max_queue_depth = flags.GetInt("max_queue_depth", 4096);
  serve::MicroBatcher batcher(&*session, &metrics, batcher_options);
  const int64_t batch_lines = std::max<int64_t>(1, flags.GetInt("batch_lines", 1));

  const auto serve_start = std::chrono::steady_clock::now();
  // One in-order reply slot per request: either an already-formatted error
  // (parse failures) or a ticket awaiting the pump.
  struct Slot {
    std::string error_reply;
    int64_t id = 0;
    bool has_ticket = false;
    serve::MicroBatcher::Ticket ticket;
  };
  StdinLineReader reader;
  std::string line;
  bool at_eof = false;
  while (!at_eof) {
    std::vector<Slot> slots;
    while (static_cast<int64_t>(slots.size()) < batch_lines) {
      if (g_shutdown_signal != 0) {
        at_eof = true;
        break;
      }
      const StdinLineReader::ReadResult read = reader.Next(&line);
      if (read != StdinLineReader::ReadResult::kLine) {
        at_eof = true;
        break;
      }
      if (line.empty()) continue;
      Slot slot;
      Result<serve::ServeRequest> request = serve::ParseRequestLine(line);
      if (!request.ok()) {
        slot.error_reply =
            serve::FormatErrorReply(-1, request.status().message());
      } else if (request->is_reload) {
        slot.error_reply = serve::FormatErrorReply(
            request->id, "reload requires --listen mode");
      } else {
        slot.id = request->id;
        slot.has_ticket = true;
        slot.ticket =
            batcher.Submit(std::move(request->nodes), request->deadline_ms);
      }
      slots.push_back(std::move(slot));
    }
    while (batcher.queue_depth() > 0) batcher.PumpOnce();
    for (Slot& slot : slots) {
      std::string reply;
      if (!slot.has_ticket) {
        reply = std::move(slot.error_reply);
      } else {
        Result<std::vector<int64_t>> classes = slot.ticket.Wait();
        if (classes.ok()) {
          reply = serve::FormatClassesReply(slot.id, *classes);
        } else if (classes.status().code() == StatusCode::kUnavailable) {
          reply = serve::FormatOverloadedReply(slot.id,
                                               classes.status().message());
        } else {
          reply =
              serve::FormatErrorReply(slot.id, classes.status().message());
        }
      }
      std::fputs(reply.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
  }
  batcher.Shutdown();
  if (g_shutdown_signal != 0) {
    std::fprintf(stderr,
                 "draining: received signal %d; in-flight requests "
                 "answered, exiting cleanly\n",
                 static_cast<int>(g_shutdown_signal));
  }

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  PrintMetricsSummary(metrics, elapsed_s);
  return 0;
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
