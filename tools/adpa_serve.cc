// adpa_serve — JSON-lines inference server over a trained checkpoint.
//
//   adpa_cli train --in=g.txt --save_checkpoint=m.ckpt
//   adpa_serve --checkpoint=m.ckpt --in=g.txt < queries.jsonl > replies.jsonl
//
// Protocol: one request object per stdin line, one reply per stdout line,
// in request order. Requests are {"id": 7, "nodes": [0, 12, 3]}; replies
// are {"id":7,"classes":[1,0,2]} or {"id":7,"error":"..."}. The process
// exits at EOF and prints a metrics summary (latency percentiles, QPS,
// batching counters) to stderr, keeping stdout byte-stable for golden
// comparisons.
//
// Flags:
//   --checkpoint=F        trained model (required)
//   --in=F                the dataset the model was trained on (required)
//   --undirect            mirror the training run's --undirect
//   --cache=F             sidecar file for the Eq. 9 propagation precompute
//   --batch_lines=N       stdin lines submitted before pumping (default 1;
//                         raise to coalesce pipelined queries per forward)
//   --max_batch_nodes=N   node cap per coalesced forward (default 4096)
//   --threads=N           kernel thread count (0 = auto)

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/flags.h"
#include "src/core/parallel.h"
#include "src/data/io.h"
#include "src/io/checkpoint.h"
#include "src/serve/batcher.h"
#include "src/serve/engine.h"
#include "src/serve/jsonl.h"
#include "src/serve/metrics.h"

namespace adpa {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: adpa_serve --checkpoint=F --in=F [--undirect]\n"
               "                  [--cache=F --batch_lines=N "
               "--max_batch_nodes=N --threads=N]\n"
               "reads JSON-lines requests from stdin, writes replies to "
               "stdout\n");
  return 2;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return Usage();
  const std::string checkpoint_path = flags.GetString("checkpoint", "");
  const std::string dataset_path = flags.GetString("in", "");
  if (checkpoint_path.empty() || dataset_path.empty()) return Usage();
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }

  Result<Dataset> dataset = LoadDataset(dataset_path);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset input = flags.GetBool("undirect", false)
                      ? dataset->WithUndirectedGraph()
                      : std::move(*dataset);

  Result<Checkpoint> checkpoint = TryLoadCheckpoint(checkpoint_path);
  if (!checkpoint.ok()) return Fail(checkpoint.status());

  serve::EngineOptions engine_options;
  engine_options.propagation_cache_path = flags.GetString("cache", "");
  Result<serve::InferenceSession> session =
      serve::InferenceSession::Create(*checkpoint, input, engine_options);
  if (!session.ok()) return Fail(session.status());
  std::fprintf(stderr,
               "serving %s on %s: %lld nodes, %lld classes, propagation %s\n",
               checkpoint->model_name.c_str(), input.name.c_str(),
               static_cast<long long>(session->num_nodes()),
               static_cast<long long>(session->num_classes()),
               session->used_propagation_cache() ? "cache hit" : "computed");

  serve::ServeMetrics metrics;
  serve::MicroBatcher::Options batcher_options;
  batcher_options.max_batch_nodes = flags.GetInt("max_batch_nodes", 4096);
  serve::MicroBatcher batcher(&*session, &metrics, batcher_options);
  const int64_t batch_lines = std::max<int64_t>(1, flags.GetInt("batch_lines", 1));

  const auto serve_start = std::chrono::steady_clock::now();
  // One in-order reply slot per request: either an already-formatted error
  // (parse failures) or a ticket awaiting the pump.
  struct Slot {
    std::string error_reply;
    int64_t id = 0;
    bool has_ticket = false;
    serve::MicroBatcher::Ticket ticket;
  };
  std::string line;
  bool at_eof = false;
  while (!at_eof) {
    std::vector<Slot> slots;
    while (static_cast<int64_t>(slots.size()) < batch_lines) {
      if (!std::getline(std::cin, line)) {
        at_eof = true;
        break;
      }
      if (line.empty()) continue;
      Slot slot;
      Result<serve::ServeRequest> request = serve::ParseRequestLine(line);
      if (!request.ok()) {
        slot.error_reply =
            serve::FormatErrorReply(-1, request.status().message());
      } else {
        slot.id = request->id;
        slot.has_ticket = true;
        slot.ticket = batcher.Submit(std::move(request->nodes));
      }
      slots.push_back(std::move(slot));
    }
    while (batcher.queue_depth() > 0) batcher.PumpOnce();
    for (Slot& slot : slots) {
      std::string reply;
      if (!slot.has_ticket) {
        reply = std::move(slot.error_reply);
      } else {
        Result<std::vector<int64_t>> classes = slot.ticket.Wait();
        reply = classes.ok()
                    ? serve::FormatClassesReply(slot.id, *classes)
                    : serve::FormatErrorReply(slot.id,
                                              classes.status().message());
      }
      std::fputs(reply.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
  }
  batcher.Shutdown();

  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  std::fprintf(stderr,
               "served %llu requests (%llu errors, %llu nodes) in %llu "
               "batches; mean batch %.2f req; latency ms p50 %.3f p99 %.3f "
               "mean %.3f; %.1f req/s; max queue depth %lld\n",
               static_cast<unsigned long long>(snapshot.requests),
               static_cast<unsigned long long>(snapshot.errors),
               static_cast<unsigned long long>(snapshot.nodes),
               static_cast<unsigned long long>(snapshot.batches),
               snapshot.mean_batch_requests, snapshot.p50_latency_ms,
               snapshot.p99_latency_ms, snapshot.mean_latency_ms,
               elapsed_s > 0.0 ? static_cast<double>(snapshot.requests) /
                                     elapsed_s
                               : 0.0,
               static_cast<long long>(snapshot.max_queue_depth));
  return 0;
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
