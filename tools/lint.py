#!/usr/bin/env python3
"""adpa repo lint: project invariants the compiler cannot enforce.

The parallel runtime (PR 1) stakes a bitwise thread-count-invariance
contract on three confinement rules — all threading goes through
src/core/parallel.*, all randomness through src/core/random.*, and all
reductions accumulate in double. This linter machine-checks those rules
plus a few hygiene invariants, so a future PR cannot silently break
determinism by spawning a raw std::thread or seeding from the wall clock.

Rules (ids used by the `// lint:allow(<rule>)` escape hatch):

  parallel-primitives      std::thread / std::jthread / std::async / OpenMP
                           are forbidden in src/ outside src/core/parallel.*;
                           build on ParallelFor instead.
  mutex-annotations        raw std::mutex / std::condition_variable /
                           std::lock_guard / std::unique_lock / ... are
                           forbidden in src/; lock through the annotated
                           adpa::Mutex / MutexLock / CondVar wrappers
                           (src/core/mutex.h) so Clang Thread Safety
                           Analysis sees every acquire/release. The wrapper
                           header itself carries per-line lint:allow
                           waivers; std::call_once/once_flag stay legal.
  deterministic-randomness std::random_device, rand()/srand(), <random>
                           engines, wall-clock reads (*_clock::now, time())
                           are forbidden in src/ outside src/core/random.*;
                           draw from an explicitly seeded adpa::Rng.
  float-accumulator        scalar `float` accumulators (names containing
                           acc/sum/total/dot) in kernel code (src/tensor,
                           src/graph, src/metrics, src/models); accumulate in
                           double with a single final round to float32.
  no-direct-io             std::cout / printf in src/ outside
                           src/core/logging.*; route output through
                           TablePrinter / Status / the CLI binary.
                           Additionally, in src/io/, src/serve/, and
                           src/net/ raw C stdio (fopen/fread/FILE* ...) is
                           forbidden:
                           persistence and serving do all file access
                           through the checked stream APIs
                           (BinaryReader/BinaryWriter over std::fstream),
                           so every failure surfaces as a Status instead
                           of a silently ignored return value.
  no-unordered-iteration   range-for over a std::unordered_{map,set} in
                           result-affecting paths (src/models, src/train);
                           hash iteration order is implementation-defined and
                           breaks run-to-run reproducibility.
  simd-isolation           raw SIMD intrinsics (<immintrin.h>, _mm*/_mm256*/
                           _mm512* calls) are forbidden in src/ outside the
                           dispatch kernel files src/tensor/kernels_*.cc;
                           everything else calls simd::Kernels() so the
                           portable level stays complete and runtime dispatch
                           cannot be bypassed.
  socket-isolation         raw socket/epoll/poll syscalls (socket, bind,
                           listen, accept, epoll_wait, ...) and their headers
                           are forbidden in src/ outside src/net/; everything
                           else uses the FdOwner/ListenTcp/ReadSome/WriteSome
                           wrappers and the Server event loop so EINTR
                           handling, non-blocking semantics, and failpoint
                           seams stay in one place.
  no-bare-exit             exit()/abort()/_exit()/quick_exit() in src/
                           outside the failpoint and logging machinery;
                           library code reports failure as a Status (or an
                           ADPA_CHECK with a message) so callers — and the
                           crash-recovery tests — decide process fate.
  pragma-once              every header in src/, tests/, bench/, tools/ must
                           use #pragma once.
  gradcheck-registry       every Variable-returning op declared in
                           src/tensor/autograd.h must appear (as a quoted
                           string) in the gradcheck registry in
                           src/tensor/gradcheck.cc, so a new autograd op
                           cannot ship without finite-difference coverage.
  failpoint-coverage       every name in the failpoint catalog
                           (src/core/failpoint.cc) must appear as a quoted
                           string in at least one test under tests/, so a
                           new fault-injection seam cannot ship without a
                           test that arms it — an untested failpoint gives
                           false confidence precisely where confidence is
                           the product.

A finding on line N is suppressed by `// lint:allow(<rule>)` on line N or
line N-1. Shell scripts under tools/ are additionally run through shellcheck
when it is installed (skipped with a notice otherwise).

Usage:
  tools/lint.py --root REPO_ROOT            # lint the tree (ctest `lint`)
  tools/lint.py --root R --files f1 f2 ...  # lint specific files (tests)
Exit status is 1 iff at least one finding survives suppression.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)")

# Directories never linted: build trees, VCS metadata, and the rule-violation
# fixtures exercised by tests/lint_test.py and tests/analyze_test.py.
EXCLUDED_PARTS = {".git", "lint_fixtures", "analyze_fixtures"}


def is_excluded(rel_path):
    parts = rel_path.split(os.sep)
    if any(part in EXCLUDED_PARTS for part in parts):
        return True
    return any(part.startswith("build") for part in parts)


class Rule:
    """A regex rule with a path scope and optional per-file exemptions."""

    def __init__(self, rule_id, message, patterns, scopes, exempt=()):
        self.rule_id = rule_id
        self.message = message
        self.patterns = [re.compile(p) for p in patterns]
        self.scopes = scopes
        self.exempt = exempt

    def applies_to(self, rel_path):
        norm = rel_path.replace(os.sep, "/")
        if norm in self.exempt:
            return False
        return any(norm.startswith(scope) for scope in self.scopes)

    def check(self, rel_path, lines):
        for lineno, line in enumerate(lines, start=1):
            code = strip_line_comment(line)
            for pattern in self.patterns:
                if pattern.search(code):
                    yield Finding(rel_path, lineno, self.rule_id, self.message)
                    break


class Finding:
    def __init__(self, rel_path, lineno, rule_id, message):
        self.rel_path = rel_path
        self.lineno = lineno
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.rel_path, self.lineno, self.rule_id, self.message)


def strip_line_comment(line):
    """Drops a trailing // comment (naive: ignores // inside strings, which
    is fine for flag-this-token rules and keeps commented-out code unflagged,
    matching the escape hatch's spirit)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


CXX_SOURCE_SCOPES = ("src/",)

RULES = [
    Rule(
        "parallel-primitives",
        "raw threading primitive outside src/core/parallel.*; use ParallelFor "
        "(its determinism contract is what keeps results thread-count "
        "invariant)",
        [
            r"\bstd::(thread|jthread|async)\b",
            r"#\s*include\s*<(thread|omp\.h|execution)>",
            r"#\s*pragma\s+omp\b",
        ],
        scopes=CXX_SOURCE_SCOPES,
        exempt=("src/core/parallel.h", "src/core/parallel.cc"),
    ),
    Rule(
        "mutex-annotations",
        "raw standard-library locking type in src/; use the annotated "
        "adpa::Mutex / MutexLock / CondVar (src/core/mutex.h) so Clang "
        "Thread Safety Analysis can prove every guarded access holds the "
        "lock",
        [
            r"\bstd::(?:mutex|recursive_mutex|timed_mutex|"
            r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
            r"condition_variable(?:_any)?|lock_guard|unique_lock|"
            r"scoped_lock|shared_lock)\b",
            r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>",
        ],
        scopes=CXX_SOURCE_SCOPES,
    ),
    Rule(
        "deterministic-randomness",
        "non-deterministic or wall-clock-derived randomness outside "
        "src/core/random.*; every stochastic draw must come from an "
        "explicitly seeded adpa::Rng",
        [
            r"\bstd::random_device\b",
            r"\bstd::(mt19937(_64)?|minstd_rand0?|default_random_engine)\b",
            r"(?<!\w)s?rand\s*\(",
            r"\bstd::time\s*\(",
            r"(?<!\w)time\s*\(\s*(NULL|nullptr|0)\s*\)",
            r"_clock::now\s*\(",
        ],
        scopes=CXX_SOURCE_SCOPES,
        exempt=("src/core/random.h", "src/core/random.cc"),
    ),
    Rule(
        "float-accumulator",
        "scalar float accumulator in kernel code; accumulate in double and "
        "round to float32 once (the dense/sparse kernels' precision "
        "contract)",
        [r"\bfloat\s+\w*(acc|sum|total|dot)\w*\s*(=|\{|;)"],
        scopes=("src/tensor/", "src/graph/", "src/metrics/", "src/models/"),
    ),
    Rule(
        "no-direct-io",
        "direct stdout write outside src/core/logging.* and the CLI; use "
        "TablePrinter, Status, or return data to the caller",
        [r"\bstd::cout\b", r"(?<!\w)printf\s*\("],
        scopes=CXX_SOURCE_SCOPES,
        exempt=("src/core/logging.h", "src/core/logging.cc"),
    ),
    Rule(
        "no-direct-io",
        "raw C stdio in the persistence/serving layers; all file access "
        "goes through the checked stream APIs (BinaryReader/BinaryWriter "
        "over std::fstream) so every I/O failure is a Status, never an "
        "unchecked return value",
        [
            r"\b(fopen|fdopen|freopen|fclose|fread|fwrite|fflush|"
            r"fseeko?|ftello?|rewind|fgets|fgetc|fputs|fputc|fscanf|"
            r"fprintf|setvbuf|tmpfile)\s*\(",
            r"\bFILE\s*\*",
        ],
        scopes=("src/io/", "src/serve/", "src/net/"),
    ),
    Rule(
        "no-bare-exit",
        "bare process-exit call in library code; return a Status (or use "
        "ADPA_CHECK for invariant violations) so the caller decides process "
        "fate — only the failpoint crash action and the CHECK machinery may "
        "terminate",
        [r"(?<![\w.])(?:std::|::)?(_exit|_Exit|quick_exit|abort|exit)\s*\("],
        scopes=CXX_SOURCE_SCOPES,
        exempt=(
            "src/core/failpoint.h",
            "src/core/failpoint.cc",
            "src/core/logging.h",
            "src/core/logging.cc",
        ),
    ),
    Rule(
        "simd-isolation",
        "raw SIMD intrinsics outside the dispatch kernel files "
        "(src/tensor/kernels_*.cc); go through simd::Kernels() so the "
        "portable level stays complete and ADPA_SIMD_LEVEL dispatch cannot "
        "be bypassed",
        [
            r"#\s*include\s*<[xei]mmintrin\.h>",
            r"#\s*include\s*<immintrin\.h>",
            r"\b_mm(?:256|512)?_\w+\s*\(",
        ],
        scopes=CXX_SOURCE_SCOPES,
        exempt=(
            "src/tensor/kernels_portable.cc",
            "src/tensor/kernels_avx2.cc",
            "src/tensor/kernels_avx512.cc",
        ),
    ),
    Rule(
        "socket-isolation",
        "raw socket/epoll/poll syscalls outside src/net/; go through the "
        "FdOwner/ListenTcp/ReadSome/WriteSome wrappers (src/net/socket.h) "
        "and the Server event loop so EINTR handling, non-blocking "
        "semantics, and failpoint seams stay in one place",
        [
            r"#\s*include\s*<(?:sys/socket\.h|sys/epoll\.h|netinet/in\.h|"
            r"netinet/tcp\.h|arpa/inet\.h|poll\.h|sys/select\.h|netdb\.h)>",
            r"(?<![\w:.])(?:::)?(?:socket|bind|listen|accept4?|connect|recv|"
            r"recvfrom|recvmsg|send|sendto|sendmsg|setsockopt|getsockopt|"
            r"getsockname|getpeername|shutdown|epoll_create1?|epoll_ctl|"
            r"epoll_wait|epoll_pwait|ppoll|inet_pton|inet_ntop|getaddrinfo|"
            r"freeaddrinfo)\s*\(",
        ],
        scopes=CXX_SOURCE_SCOPES,
        exempt=(
            "src/net/socket.h",
            "src/net/socket.cc",
            "src/net/framing.h",
            "src/net/framing.cc",
            "src/net/server.h",
            "src/net/server.cc",
        ),
    ),
    Rule(
        "no-unordered-iteration",
        "iteration over an unordered container in a result-affecting path; "
        "hash order is implementation-defined — use a sorted container or "
        "sort before iterating",
        [],  # handled by check_unordered_iteration (needs two passes)
        scopes=("src/models/", "src/train/"),
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{()]*>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*&?\*?(\w+)\s*\)")


def check_unordered_iteration(rule, rel_path, lines):
    declared = set()
    for line in lines:
        code = strip_line_comment(line)
        for match in UNORDERED_DECL_RE.finditer(code):
            declared.add(match.group(1))
    if not declared:
        return
    for lineno, line in enumerate(lines, start=1):
        code = strip_line_comment(line)
        match = RANGE_FOR_RE.search(code)
        if match and match.group(1) in declared:
            yield Finding(rel_path, lineno, rule.rule_id, rule.message)


HEADER_SCOPES = ("src/", "tests/", "bench/", "tools/")


PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")


def check_pragma_once(rel_path, lines):
    if not any(PRAGMA_ONCE_RE.match(line) for line in lines):
        yield Finding(
            rel_path, 1, "pragma-once",
            "header is missing #pragma once (include-guard style is not "
            "used in this repo)")


GRADCHECK_HEADER = "src/tensor/autograd.h"
GRADCHECK_SOURCE = "src/tensor/gradcheck.cc"
# Namespace-level op declarations returning Variable. Ops returning plain
# Matrix (e.g. DropoutMask) are helpers, not tape ops, and are exempt by
# construction.
VARIABLE_OP_RE = re.compile(r"^Variable\s+(\w+)\s*\(")
QUOTED_NAME_RE = re.compile(r'"(\w+)"')


def check_gradcheck_registry(root):
    """Cross-file rule: autograd ops without a gradcheck registry entry.

    Scans src/tensor/autograd.h for `Variable <Name>(...)` declarations and
    requires each name to occur as a quoted string in src/tensor/gradcheck.cc
    (where OpGradcheckRegistry() registers its cases). The string match is an
    over-approximation — any mention counts — but a missing mention is
    always a genuinely unregistered op.
    """
    header_path = os.path.join(root, GRADCHECK_HEADER)
    if not os.path.exists(header_path):
        return []
    with open(header_path, encoding="utf-8", errors="replace") as f:
        header_lines = f.read().splitlines()
    registered = set()
    source_path = os.path.join(root, GRADCHECK_SOURCE)
    if os.path.exists(source_path):
        with open(source_path, encoding="utf-8", errors="replace") as f:
            registered = set(QUOTED_NAME_RE.findall(f.read()))
    findings = []
    for lineno, line in enumerate(header_lines, start=1):
        match = VARIABLE_OP_RE.match(strip_line_comment(line))
        if match and match.group(1) not in registered:
            findings.append(Finding(
                GRADCHECK_HEADER, lineno, "gradcheck-registry",
                "op %s has no case in OpGradcheckRegistry() (%s); every "
                "autograd op must be finite-difference checked" % (
                    match.group(1), GRADCHECK_SOURCE)))
    return [f for f in findings if not suppressed(f, header_lines)]


FAILPOINT_SOURCE = "src/core/failpoint.cc"
# A catalog entry opens `{"dotted.name",` — every real point name has at
# least one dot, which keeps brace-initialized strings elsewhere in the
# file from matching.
FAILPOINT_NAME_RE = re.compile(r'\{"([a-z0-9_]+(?:\.[a-z0-9_]+)+)",')
QUOTED_DOTTED_RE = re.compile(r'"([a-z0-9_]+(?:\.[a-z0-9_]+)+)"')


def check_failpoint_coverage(root):
    """Cross-file rule: failpoint catalog names no test ever mentions.

    Scans the catalog entries in src/core/failpoint.cc and requires each
    name to occur as a quoted string in some test file under tests/
    (fixtures excluded). Any mention counts — arming it, asserting on its
    Status message, a soak-script grep target listed in a test — but a
    missing mention is always a seam that can silently rot.
    """
    source_path = os.path.join(root, FAILPOINT_SOURCE)
    if not os.path.exists(source_path):
        return []
    with open(source_path, encoding="utf-8", errors="replace") as f:
        source_lines = f.read().splitlines()

    mentioned = set()
    tests_dir = os.path.join(root, "tests")
    for dirpath, dirnames, filenames in os.walk(tests_dir):
        dirnames[:] = [
            d for d in dirnames
            if not is_excluded(os.path.relpath(os.path.join(dirpath, d),
                                               root))]
        for name in filenames:
            if not name.endswith((".cc", ".h", ".py", ".sh")):
                continue
            path = os.path.join(dirpath, name)
            with open(path, encoding="utf-8", errors="replace") as f:
                mentioned.update(QUOTED_DOTTED_RE.findall(f.read()))

    findings = []
    for lineno, line in enumerate(source_lines, start=1):
        for match in FAILPOINT_NAME_RE.finditer(strip_line_comment(line)):
            if match.group(1) not in mentioned:
                findings.append(Finding(
                    FAILPOINT_SOURCE, lineno, "failpoint-coverage",
                    "failpoint %s is exercised by no test under tests/; "
                    "add one that arms it (or observes its injected "
                    "failure) before shipping the seam" % match.group(1)))
    return [f for f in findings if not suppressed(f, source_lines)]


def suppressed(finding, lines):
    """True if `// lint:allow(<rule>)` covers the finding's line."""
    for lineno in (finding.lineno, finding.lineno - 1):
        if 1 <= lineno <= len(lines):
            for match in ALLOW_RE.finditer(lines[lineno - 1]):
                if match.group(1) == finding.rule_id:
                    return True
    return False


def lint_file(root, rel_path):
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as err:
        return [Finding(rel_path, 1, "io-error", str(err))]
    findings = []
    norm = rel_path.replace(os.sep, "/")
    if norm.endswith((".cc", ".h")):
        for rule in RULES:
            if not rule.applies_to(rel_path):
                continue
            if rule.rule_id == "no-unordered-iteration":
                findings.extend(check_unordered_iteration(rule, rel_path, lines))
            else:
                findings.extend(rule.check(rel_path, lines))
    if norm.endswith(".h") and norm.startswith(HEADER_SCOPES):
        findings.extend(check_pragma_once(rel_path, lines))
    return [f for f in findings if not suppressed(f, lines)]


def run_shellcheck(root, rel_paths):
    """Shellcheck for tools/*.sh; a missing shellcheck binary is a skipped
    check (the sanitizer/CI jobs install it), not a lint failure."""
    scripts = [p for p in rel_paths if p.replace(os.sep, "/").endswith(".sh")]
    if not scripts:
        return []
    exe = shutil.which("shellcheck")
    if exe is None:
        print("lint: shellcheck not installed; skipping %d shell script(s)"
              % len(scripts))
        return []
    findings = []
    result = subprocess.run(
        [exe, "--format=gcc"] + [os.path.join(root, p) for p in scripts],
        capture_output=True, text=True, check=False)
    for line in result.stdout.splitlines():
        # gcc format: path:line:col: level: message [SCxxxx]
        parts = line.split(":", 3)
        if len(parts) == 4:
            rel = os.path.relpath(parts[0], root)
            findings.append(Finding(rel, int(parts[1]), "shellcheck",
                                    parts[3].strip()))
    return findings


def collect_files(root):
    rel_paths = []
    for scope in ("src", "tests", "bench", "tools", "examples"):
        scope_dir = os.path.join(root, scope)
        for dirpath, dirnames, filenames in os.walk(scope_dir):
            dirnames[:] = [
                d for d in dirnames
                if not is_excluded(os.path.relpath(os.path.join(dirpath, d),
                                                   root))]
            for name in sorted(filenames):
                if name.endswith((".cc", ".h", ".sh")):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    if not is_excluded(rel):
                        rel_paths.append(rel)
    return rel_paths


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint only these paths (relative to --root); "
                             "exclusion filters are bypassed")
    parser.add_argument("--no-shellcheck", action="store_true")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if args.files is not None:
        rel_paths = [os.path.relpath(os.path.abspath(p), root)
                     if os.path.isabs(p) else p for p in args.files]
    else:
        rel_paths = collect_files(root)

    findings = []
    for rel_path in rel_paths:
        findings.extend(lint_file(root, rel_path))
    norm_paths = {p.replace(os.sep, "/") for p in rel_paths}
    if args.files is None or GRADCHECK_HEADER in norm_paths:
        findings.extend(check_gradcheck_registry(root))
    if args.files is None or FAILPOINT_SOURCE in norm_paths:
        findings.extend(check_failpoint_coverage(root))
    if not args.no_shellcheck:
        findings.extend(run_shellcheck(root, rel_paths))

    for finding in findings:
        print(finding)
    if findings:
        print("lint: %d finding(s) in %d file(s)" % (
            len(findings), len({f.rel_path for f in findings})))
        return 1
    print("lint: OK (%d files)" % len(rel_paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
