#!/bin/sh
# End-to-end serving smoke test: generate a registry benchmark, train a
# small ADPA model, persist it (src/io/checkpoint.h), serve 100 JSON-lines
# queries through adpa_serve's micro-batching path, and byte-diff the
# replies against the checked-in golden file. The query set includes one
# malformed line and one out-of-range node, so the parse-error and
# per-request-error paths are covered too.
#
# The golden stores integer class ids only (argmax of the logits), so it is
# stable across build modes; it was verified identical between the
# -march=native and portable (ADPA_NATIVE_ARCH=OFF) builds.
#
# The SIMD dispatch level is pinned to portable: the golden encodes a full
# 30-epoch training trajectory, which is chaotic in the kernel level (AVX2/
# AVX-512 GEMMs agree with portable only to rel-error, and 30 epochs amplify
# that). Pinning makes the replies byte-stable on every host CPU; the
# per-level kernels themselves are covered by tests/simd_test.
#
# usage: tools/serve_smoke.sh [build-dir]
set -eu

ADPA_SIMD_LEVEL=portable
export ADPA_SIMD_LEVEL

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="$BUILD_DIR/tools/adpa_cli"
SERVE="$BUILD_DIR/tools/adpa_serve"
QUERIES="$ROOT/tests/golden/serve_smoke_queries.jsonl"
GOLDEN="$ROOT/tests/golden/serve_smoke_replies.jsonl"

for bin in "$CLI" "$SERVE"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --name=Texas --seed=7 --out="$WORK/texas.txt" > /dev/null
"$CLI" train --in="$WORK/texas.txt" --model=ADPA --seed=42 --epochs=30 \
  --save_checkpoint="$WORK/model.ckpt" > /dev/null
"$SERVE" --checkpoint="$WORK/model.ckpt" --in="$WORK/texas.txt" \
  --batch_lines=8 < "$QUERIES" > "$WORK/replies.jsonl" 2> "$WORK/serve.log"

if ! diff -u "$GOLDEN" "$WORK/replies.jsonl"; then
  echo "serve_smoke: FAIL — replies diverge from $GOLDEN" >&2
  echo "serve_smoke: server log follows" >&2
  cat "$WORK/serve.log" >&2
  exit 1
fi

echo "serve_smoke: OK ($(wc -l < "$GOLDEN") replies match golden)"
