// chaos_proxy — deterministic byzantine TCP proxy (DESIGN.md §15).
//
// Sits between a client and an upstream server and injects transport-level
// misbehavior a real network produces but loopback tests never see:
//
//   split    a chunk is forwarded in several small writes (segmentation)
//   trickle  the first bytes of a chunk arrive one byte at a time
//   delay    the chunk is forwarded after a few milliseconds
//   garbage  a line of garbage bytes is injected ahead of the client's
//            real bytes (client→server only — replies must stay parseable)
//   rst      half the chunk is forwarded, then the client connection is
//            aborted with an RST (SO_LINGER{1,0} close) mid-line
//
// Every decision comes from a splitmix64 stream seeded by
// --seed ^ connection-index, so a run is a pure function of (--seed,
// connection arrival order): tools/soak.sh replays failures from the seed.
// The server→client direction only reorders time (split/trickle/delay),
// never bytes — corruption there would break the soak invariant that every
// reply line parses, which is exactly the property under test.
//
// Usage:
//   chaos_proxy --upstream=HOST:PORT [--listen=HOST:PORT] [--seed=N]
//               [--intensity=P]
//
// Port 0 (default) binds an ephemeral port announced on stderr as
// "proxy listening on HOST:PORT". Runs until killed.

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "src/core/flags.h"
#include "src/net/socket.h"

namespace adpa {
namespace {

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitDraw(uint64_t* state) {
  return static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
}

void SleepMs(int64_t ms) {
  timespec duration;
  duration.tv_sec = static_cast<time_t>(ms / 1000);
  duration.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000;
  nanosleep(&duration, nullptr);
}

/// Blocking send of the whole buffer. False on a vanished peer.
bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t wrote = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(wrote);
  }
  return true;
}

enum class Fault { kNone, kSplit, kTrickle, kDelay, kGarbage, kRst };

/// One proxied connection, pumped by one thread: poll on both sockets,
/// forward each readable chunk through the fault policy. Single-threaded
/// per connection so the RST abort can close both fds without races.
class ConnectionPump {
 public:
  ConnectionPump(net::FdOwner client, net::FdOwner upstream, uint64_t seed,
                 double intensity)
      : client_(std::move(client)),
        upstream_(std::move(upstream)),
        state_(seed),
        intensity_(intensity) {}

  void Run() {
    (void)SplitMix64Next(&state_);  // decorrelate adjacent connection seeds
    pollfd fds[2];
    fds[0] = {client_.get(), POLLIN, 0};
    fds[1] = {upstream_.get(), POLLIN, 0};
    while (true) {
      fds[0].revents = fds[1].revents = 0;
      const int ready = ::poll(fds, 2, -1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return;
      }
      for (int i = 0; i < 2; ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const bool from_client = i == 0;
        if (!ForwardChunk(from_client)) return;
      }
    }
  }

 private:
  Fault DrawFault(bool hostile) {
    if (UnitDraw(&state_) >= intensity_) return Fault::kNone;
    // Hostile (client→server) direction gets the full menu; the reply
    // direction only bends time, never bytes.
    const uint64_t n = SplitMix64Next(&state_) % (hostile ? 5 : 3);
    switch (n) {
      case 0: return Fault::kSplit;
      case 1: return Fault::kTrickle;
      case 2: return Fault::kDelay;
      case 3: return Fault::kGarbage;
      default: return Fault::kRst;
    }
  }

  /// Reads one chunk from one side and forwards it through the fault
  /// policy. False ends the connection (EOF, error, or injected RST).
  bool ForwardChunk(bool from_client) {
    char chunk[4096];
    const int from = from_client ? client_.get() : upstream_.get();
    const int to = from_client ? upstream_.get() : client_.get();
    ssize_t got;
    do {
      got = ::recv(from, chunk, sizeof(chunk), 0);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) return false;  // EOF or error: FdOwners close both (FIN)
    const size_t size = static_cast<size_t>(got);

    switch (DrawFault(from_client)) {
      case Fault::kNone:
        return SendAll(to, chunk, size);
      case Fault::kSplit: {
        size_t offset = 0;
        while (offset < size) {
          const size_t piece = std::min(
              size - offset,
              static_cast<size_t>(1 + SplitMix64Next(&state_) % 7));
          if (!SendAll(to, chunk + offset, piece)) return false;
          offset += piece;
        }
        return true;
      }
      case Fault::kTrickle: {
        // One byte at a time with a small gap for the first bytes: long
        // enough to land as separate segments, short enough that a sane
        // stall timeout (hundreds of ms) never fires on honest traffic.
        const size_t trickled = std::min<size_t>(size, 16);
        for (size_t i = 0; i < trickled; ++i) {
          if (!SendAll(to, chunk + i, 1)) return false;
          SleepMs(1);
        }
        return SendAll(to, chunk + trickled, size - trickled);
      }
      case Fault::kDelay:
        SleepMs(static_cast<int64_t>(1 + SplitMix64Next(&state_) % 10));
        return SendAll(to, chunk, size);
      case Fault::kGarbage: {
        // A line the restricted grammar must reject, injected ahead of the
        // real bytes. If it lands mid-line it corrupts that request too —
        // the server answers id -1 errors either way and stays up.
        const std::string garbage = "~chaos-garbage \x7f{]!~\n";
        if (!SendAll(to, garbage.data(), garbage.size())) return false;
        return SendAll(to, chunk, size);
      }
      case Fault::kRst: {
        // Forward half the chunk so the cut lands mid-line, then abort the
        // client side: SO_LINGER{on, 0} makes close() send RST, the
        // harshest client-visible failure a TCP server must survive.
        (void)SendAll(to, chunk, size / 2);
        linger abort{};
        abort.l_onoff = 1;
        abort.l_linger = 0;
        ::setsockopt(client_.get(), SOL_SOCKET, SO_LINGER, &abort,
                     sizeof(abort));
        return false;
      }
    }
    return false;
  }

  net::FdOwner client_;
  net::FdOwner upstream_;
  uint64_t state_;
  const double intensity_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv) || !flags.Has("upstream")) {
    std::fprintf(stderr,
                 "usage: chaos_proxy --upstream=HOST:PORT "
                 "[--listen=HOST:PORT] [--seed=N] [--intensity=P]\n");
    return 2;
  }
  const Result<net::HostPort> upstream =
      net::ParseHostPort(flags.GetString("upstream", ""));
  if (!upstream.ok()) return Fail(upstream.status());
  const Result<net::HostPort> listen =
      net::ParseHostPort(flags.GetString("listen", "127.0.0.1:0"));
  if (!listen.ok()) return Fail(listen.status());
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const double intensity = flags.GetDouble("intensity", 0.25);

  std::signal(SIGPIPE, SIG_IGN);

  Result<net::ListenSocket> listener =
      net::ListenTcp(listen->host, listen->port);
  if (!listener.ok()) return Fail(listener.status());
  // ListenTcp hands back a non-blocking listener for epoll servers; this
  // proxy is thread-per-connection and wants blocking accept.
  const int listen_flags = ::fcntl(listener->fd.get(), F_GETFL, 0);
  ::fcntl(listener->fd.get(), F_SETFL, listen_flags & ~O_NONBLOCK);

  std::fprintf(stderr,
               "proxy listening on %s:%u upstream %s:%u seed %llu "
               "intensity %g\n",
               listen->host.c_str(), static_cast<unsigned>(listener->port),
               upstream->host.c_str(), static_cast<unsigned>(upstream->port),
               static_cast<unsigned long long>(seed), intensity);
  std::fflush(stderr);

  uint64_t connection_index = 0;
  while (true) {
    const int fd = ::accept(listener->fd.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Fail(Status::Internal(std::string("accept: ") +
                                   std::strerror(errno)));
    }
    net::FdOwner client(fd);
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    Result<net::FdOwner> server_side =
        net::ConnectTcp(upstream->host, upstream->port);
    if (!server_side.ok()) {
      std::fprintf(stderr, "proxy: upstream connect failed: %s\n",
                   server_side.status().message().c_str());
      continue;  // drop the client (FdOwner closes it) and keep listening
    }
    const uint64_t conn_seed = seed ^ (connection_index * 2 + 1);
    ++connection_index;
    std::thread([client = std::move(client),
                 upstream_fd = std::move(*server_side), conn_seed,
                 intensity]() mutable {
      ConnectionPump(std::move(client), std::move(upstream_fd), conn_seed,
                     intensity)
          .Run();
    }).detach();
  }
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
