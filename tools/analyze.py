#!/usr/bin/env python3
"""adpa static concurrency & hot-path analyzer (DESIGN.md §13).

Repo-specific whole-program checks that neither the compiler nor lint.py's
line-regex rules can express — they need function bodies, a call graph, and
lock scopes. Three rules (ids used by the `// analyze:allow(<id>)` escape
hatch):

  hot-alloc           Functions tagged ADPA_HOT (the serving ForwardRows /
                      Classify path, the MicroBatcher pump, every
                      kernels_*.cc entry point) must not *transitively*
                      reach an allocation site — operator new, push_back/
                      emplace_back/emplace, resize/reserve/insert/assign/
                      append, make_unique/make_shared, std::to_string —
                      without an `// analyze:allow(alloc)` waiver. This is
                      what keeps the allocation-free-serving property (PR 6)
                      structural instead of benchmark-luck.
  blocking-under-lock No blocking while holding an adpa::Mutex: file IO
                      (std::*fstream, getline, C stdio), sleeps (nanosleep,
                      sleep_for, usleep), failpoint hits (ADPA_FAILPOINT*),
                      or stream writes (std::cout/cerr) inside a MutexLock
                      scope or a Lock()/Unlock() span. CondVar::Wait under
                      the lock is legal only as the body of a while/for
                      predicate loop (CondVar deliberately has no lambda
                      predicate overload — see src/core/mutex.h).
  guard-coverage      In any class that owns an adpa::Mutex, every mutable
                      data member must be ADPA_GUARDED_BY / ADPA_PT_GUARDED_BY
                      one of the class's mutexes, or be exempt by construction
                      (const, static/constexpr, std::atomic, Mutex/CondVar/
                      once_flag), or carry an `// analyze:allow(guard)`
                      waiver explaining the protocol.

Waiver placement (`// analyze:allow(<id>)[: reason]`):
  * on the flagged line or the line directly above it — suppresses that
    site (hot-alloc: the allocation; guard-coverage: the member);
  * hot-alloc only, on a *call* line (or the line above) — the analyzer
    does not traverse into that callee from this site;
  * hot-alloc only, on a function *declaration* — the whole callee is
    treated as an allocation-free leaf everywhere it is called.

Frontends (`--frontend`):
  internal (default)  A dependency-free C++ lexer: comments/strings/
                      preprocessor lines are blanked, braces are matched
                      into a scope tree, function definitions and their
                      calls / allocation tokens / lock scopes are extracted
                      textually. Name-based call-graph edges (last `::`
                      component) make the reachability an over-approximation
                      — by design: a false edge is a waiver, a missed one
                      would be a hole.
  libclang            The same model built from a real AST via the clang
                      python bindings, using compile_commands.json for
                      flags. Opt-in because libclang is not part of the
                      base toolchain; CI runs the internal frontend.

The TU list comes from --compdb (compile_commands.json, exported by CMake)
when present, falling back to walking src/; headers under src/ are always
included. Fixture trees (tests/analyze_fixtures/) are excluded from tree
runs exactly like lint_fixtures.

Usage:
  tools/analyze.py --root REPO_ROOT [--compdb build/compile_commands.json]
  tools/analyze.py --root R --files f1 f2 ...   # analyze specific files
Exit status is 1 iff at least one finding survives suppression.
"""

import argparse
import json
import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*analyze:allow\((alloc|blocking|guard)\)")

EXCLUDED_PARTS = {".git", "analyze_fixtures", "lint_fixtures"}

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "throw", "new", "delete", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "defined", "case",
    "do", "else", "goto", "co_await", "co_return", "co_yield", "void",
    "int", "bool", "float", "double", "char", "auto", "assert",
    "static_assert", "noexcept", "alignas", "typeid", "requires",
}

ALLOC_TOKEN_RE = re.compile(
    r"(?:[.\->]\s*(push_back|emplace_back|emplace|resize|reserve|insert|"
    r"assign|append)\s*\()"
    r"|(\bnew\b)"
    r"|\b(make_unique|make_shared)\s*<"
    r"|\b(to_string)\s*\(")

BLOCKING_TOKEN_RE = re.compile(
    r"\bstd::(?:i|o)?fstream\b|\bstd::c(?:out|err)\b"
    r"|\b(?:fopen|fread|fwrite|fflush|fsync|getline|nanosleep|usleep)\s*\("
    r"|\bsleep_for\s*\(|\bADPA_FAILPOINT\w*\s*\(")

CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
MUTEX_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")
MANUAL_LOCK_RE = re.compile(r"[.\->]\s*Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"[.\->]\s*Unlock\s*\(\s*\)")
CV_WAIT_RE = re.compile(r"[.\->]\s*Wait\s*\(")

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:ADPA_\w+\s*(?:\([^()]*\))?\s*)*([\w:]+)")
GUARDED_RE = re.compile(r"\bADPA_(?:PT_)?GUARDED_BY\s*\(")
MEMBER_EXEMPT_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|\bstatic\b|\bstd::atomic\b"
    r"|(?<!std::)\bMutex\b|\bCondVar\b|\bonce_flag\b|\bfriend\b"
    r"|\busing\b|\btypedef\b")
HAS_MUTEX_MEMBER_RE = re.compile(r"(?:^|[^:\w])Mutex\s+\w+")
ADPA_MACRO_CALL_RE = re.compile(r"\bADPA_\w+\s*\([^()]*\)")


class Finding:
    def __init__(self, rel_path, lineno, rule_id, message):
        self.rel_path = rel_path
        self.lineno = lineno
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.rel_path, self.lineno, self.rule_id, self.message)


class FunctionDef:
    """One textual function definition: its calls, allocation sites, and
    blocking-under-lock findings (computed during the scan, since lock
    scopes are lexical)."""

    def __init__(self, name, rel_path, lineno, hot, leaf_waived):
        self.name = name
        self.rel_path = rel_path
        self.lineno = lineno
        self.hot = hot
        self.leaf_waived = leaf_waived
        self.calls = []       # (callee_name, lineno, waived)
        self.allocs = []      # (token, lineno, waived)
        self.blocking = []    # Finding


class SourceModel:
    """Whole-tree model shared by both frontends."""

    def __init__(self):
        self.functions = {}   # name -> [FunctionDef]
        self.hot_names = set()
        self.leaf_names = set()   # decl-level alloc waivers
        self.findings = []        # guard/blocking findings

    def add_function(self, fn):
        self.functions.setdefault(fn.name, []).append(fn)
        if fn.hot:
            self.hot_names.add(fn.name)
        if fn.leaf_waived:
            self.leaf_names.add(fn.name)


def blank_code(text):
    """Blanks comments, string/char literals, and preprocessor directives,
    preserving every character position (newlines stay put) so line numbers
    and brace offsets survive."""
    out = []
    i, n = 0, len(text)
    state = "code"
    line_start = True
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if line_start and c == "#":
                state = "preproc"
                out.append(" ")
            elif c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 1
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 1
            elif c == '"':
                state = "string"
                out.append('"')
            elif c == "'":
                state = "char"
                out.append("'")
            else:
                out.append(c)
        elif state == "preproc":
            if c == "\n":
                # A trailing backslash continues the directive.
                j = len(out) - 1
                while j >= 0 and out[j] in " \t":
                    j -= 1
                out.append("\n")
                if not (text[i - 1] == "\\" or
                        (i >= 2 and text[i - 2] == "\\" and
                         text[i - 1] == "\r")):
                    state = "code"
                i += 1
                line_start = True
                continue
            out.append(" ")
        elif state == "line_comment":
            if c == "\n":
                out.append("\n")
                state = "code"
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 1
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 1
            elif c == '"':
                out.append('"')
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 1
            elif c == "'":
                out.append("'")
                state = "code"
            else:
                out.append(" ")
        if c == "\n":
            line_start = True
        elif c not in " \t":
            line_start = False
        i += 1
    return "".join(out)


def waiver_at(raw_lines, lineno, waiver_id):
    """True if `// analyze:allow(<id>)` covers `lineno` (that line or the
    one directly above)."""
    for cand in (lineno, lineno - 1):
        if 1 <= cand <= len(raw_lines):
            for m in ALLOW_RE.finditer(raw_lines[cand - 1]):
                if m.group(1) == waiver_id:
                    return True
    return False


def paren_depth_zero_eq(header):
    """True if the header contains a top-level `=` (so the brace opens an
    initializer list, not a body). `operator==`-style names are masked
    first."""
    header = re.sub(r"operator\s*\S{1,3}", "OP", header)
    depth = 0
    for c in header:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            return True
    return False


class Scope:
    def __init__(self, kind, header, lineno, name=None):
        self.kind = kind          # function|class|namespace|block|other
        self.header = header
        self.lineno = lineno
        self.name = name
        self.fn = None            # FunctionDef for kind == function
        self.locked = False       # blocking-under-lock state
        self.members = []         # (text, lineno) for kind == class


def classify_header(header, in_function):
    """Returns (kind, name) for the scope a `{` opens."""
    stripped = header.strip()
    if in_function:
        return ("block", None)
    m = CLASS_HEAD_RE.search(stripped)
    if m and not paren_depth_zero_eq(stripped):
        return ("class", m.group(1).split("::")[-1])
    if re.search(r"\bnamespace\b", stripped):
        return ("namespace", None)
    if re.search(r"\b(?:enum|union)\b", stripped):
        return ("other", None)
    if paren_depth_zero_eq(stripped):
        return ("other", None)
    m = CALL_RE.search(stripped)
    if m and m.group(1) not in CXX_KEYWORDS:
        return ("function", m.group(1).split("::")[-1])
    return ("other", None)


def header_is_hot(header):
    return "ADPA_HOT" in header


def scan_declarations(model, rel_path, code_lines, raw_lines):
    """Collects ADPA_HOT roots and decl-level alloc waivers from
    declarations (statements ending in `;`, so they never open a scope and
    the definition walk cannot see them)."""
    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        is_hot_decl = "ADPA_HOT" in line
        is_leaf_decl = waiver_at(raw_lines, lineno, "alloc") and \
            line.strip().endswith(";")
        if not (is_hot_decl or is_leaf_decl):
            continue
        m = CALL_RE.search(line)
        if not m or m.group(1) in CXX_KEYWORDS:
            continue
        name = m.group(1).split("::")[-1]
        if is_hot_decl:
            model.hot_names.add(name)
        if is_leaf_decl and line.strip().endswith(";"):
            model.leaf_names.add(name)


def check_member(model, rel_path, raw_lines, class_name, text, lineno):
    """guard-coverage for one member declaration of a mutex-owning class.

    `lineno` is the first line of the statement, which may open with blanked
    comment lines; the waiver may sit on any spanned line or directly above,
    and the finding anchors to the last code line (the declaration itself).
    """
    span_lines = text.split("\n")
    code_offsets = [k for k, part in enumerate(span_lines) if part.strip()]
    decl_line = lineno + (code_offsets[-1] if code_offsets else 0)
    if any(waiver_at(raw_lines, lineno + k, "guard")
           for k in range(len(span_lines))):
        return
    text = re.sub(r"\b(?:public|private|protected)\s*:", " ", text)
    stripped = text.strip()
    if not stripped:
        return
    without_macros = ADPA_MACRO_CALL_RE.sub(" ", stripped)
    if "(" in without_macros:       # method / ctor declaration
        return
    if "=" in without_macros.split("ADPA_")[0] and \
            not re.search(r"\w\s+\w", without_macros.split("=")[0].strip()):
        return                      # enum-style constant, not a member
    if not re.search(r"[\w>&*\]]\s+[A-Za-z_]\w*\s*(?:=.*)?$",
                     without_macros.rstrip(";").rstrip()):
        return                      # not `type name [= init]`
    if GUARDED_RE.search(stripped):
        return
    if MEMBER_EXEMPT_RE.search(without_macros):
        return
    member = re.search(r"([A-Za-z_]\w*)\s*(?:=[^=].*)?$",
                       without_macros.rstrip(";").rstrip())
    member_name = member.group(1) if member else "?"
    model.findings.append(Finding(
        rel_path, decl_line, "guard-coverage",
        "member '%s' of mutex-owning class %s has no ADPA_GUARDED_BY and is "
        "not const/atomic; annotate it, or waive with analyze:allow(guard) "
        "stating the protocol" % (member_name, class_name)))


def scan_file_internal(model, root, rel_path):
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as err:
        model.findings.append(Finding(rel_path, 1, "io-error", str(err)))
        return
    raw_lines = text.splitlines()
    code = blank_code(text)
    code_lines = code.splitlines()
    scan_declarations(model, rel_path, code_lines, raw_lines)

    stack = []
    paren_depth = 0
    boundary = 0          # start of the current statement/header
    lineno = 1
    i, n = 0, len(code)

    def innermost_function():
        for scope in reversed(stack):
            if scope.kind == "function":
                return scope
        return None

    def in_locked_region():
        for scope in reversed(stack):
            if scope.locked:
                return True
            if scope.kind == "function":
                break
        return False

    def wait_in_loop(stmt_prefix):
        if re.search(r"\b(?:while|for)\s*\(", stmt_prefix):
            return True
        for scope in reversed(stack):
            if scope.kind == "function":
                break
            if scope.kind == "block" and \
                    re.search(r"\b(?:while|for)\s*\(", scope.header):
                return True
        return False

    def flush_statement(end):
        """Handles one completed statement inside a function or class."""
        stmt = code[boundary:end]
        if not stmt.strip():
            return
        stmt_line = lineno - stmt.count("\n")
        fn = innermost_function()
        if fn is not None:
            scan_statement(fn, stmt, stmt_line)
        elif stack and stack[-1].kind == "class":
            stack[-1].members.append((stmt, stmt_line))

    def scan_statement(fn_scope, stmt, stmt_line):
        fn = fn_scope.fn
        for off_line, part in enumerate(stmt.split("\n")):
            at = stmt_line + off_line
            for m in ALLOC_TOKEN_RE.finditer(part):
                token = next(g for g in m.groups() if g)
                fn.allocs.append((token, at, waiver_at(raw_lines, at,
                                                      "alloc")))
            for m in CALL_RE.finditer(part):
                name = m.group(1)
                if name in CXX_KEYWORDS or name.startswith("ADPA_"):
                    continue
                fn.calls.append((name.split("::")[-1], at,
                                 waiver_at(raw_lines, at, "alloc")))
            if MUTEX_LOCK_RE.search(part) or MANUAL_LOCK_RE.search(part):
                for scope in reversed(stack):
                    scope.locked = True
                    break
            if MANUAL_UNLOCK_RE.search(part):
                for scope in reversed(stack):
                    if scope.locked:
                        scope.locked = False
                        break
                    if scope.kind == "function":
                        break
            if in_locked_region():
                bm = BLOCKING_TOKEN_RE.search(part)
                if bm and not waiver_at(raw_lines, at, "blocking"):
                    fn.blocking.append(Finding(
                        rel_path, at, "blocking-under-lock",
                        "'%s' while holding an adpa::Mutex in %s(); move it "
                        "outside the lock scope or waive with "
                        "analyze:allow(blocking)" % (
                            bm.group(0).strip(), fn.name)))
                wm = CV_WAIT_RE.search(part)
                if wm and not wait_in_loop(part[:wm.start()]) and \
                        not waiver_at(raw_lines, at, "blocking"):
                    fn.blocking.append(Finding(
                        rel_path, at, "blocking-under-lock",
                        "CondVar Wait() in %s() is not the body of a "
                        "while/for predicate loop; spurious wakeups will "
                        "break the invariant" % fn.name))

    while i < n:
        c = code[i]
        if c == "\n":
            lineno += 1
        elif c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == ";" and paren_depth == 0:
            flush_statement(i)
            boundary = i + 1
        elif c == "{" and paren_depth == 0:
            header = code[boundary:i]
            header_line = lineno - header.count("\n")
            fn_scope = innermost_function()
            kind, name = classify_header(header, fn_scope is not None)
            scope = Scope(kind, header, header_line, name)
            if kind == "function":
                fn = FunctionDef(
                    name, rel_path, header_line, header_is_hot(header),
                    any(waiver_at(raw_lines, header_line + k, "alloc")
                        for k in range(header.count("\n") + 1)))
                scope.fn = fn
                model.add_function(fn)
            elif kind == "block" and fn_scope is not None:
                # The block header (e.g. `while (...) cond` prefix) may
                # itself contain calls/allocs — attribute them now.
                scan_statement(fn_scope, header, header_line)
                scope.fn = fn_scope.fn
            stack.append(scope)
            boundary = i + 1
        elif c == "}" and paren_depth == 0:
            flush_statement(i)
            if stack:
                closing = stack.pop()
                if closing.kind == "class" and closing.name:
                    members_text = " ".join(t for t, _ in closing.members)
                    if HAS_MUTEX_MEMBER_RE.search(members_text):
                        for text_, line_ in closing.members:
                            check_member(model, rel_path, raw_lines,
                                         closing.name, text_, line_)
            boundary = i + 1
        i += 1


def scan_tree_libclang(model, root, rel_paths, compdb):
    """AST frontend over the clang python bindings (opt-in)."""
    try:
        from clang import cindex  # noqa: deferred, optional dependency
    except ImportError:
        sys.exit("analyze: --frontend=libclang requires the clang python "
                 "bindings (python3-clang + libclang); the base toolchain "
                 "does not ship them — use --frontend=internal")
    index = cindex.Index.create()
    args_by_file = {}
    if compdb and os.path.exists(compdb):
        with open(compdb, encoding="utf-8") as f:
            for entry in json.load(f):
                rel = os.path.relpath(
                    os.path.join(entry["directory"], entry["file"]), root)
                flags = [a for a in entry.get("command", "").split()[1:]
                         if not a.endswith(".o") and a not in ("-c", "-o")]
                args_by_file[rel.replace(os.sep, "/")] = flags
    for rel_path in rel_paths:
        if not rel_path.endswith(".cc"):
            continue
        raw_lines = open(os.path.join(root, rel_path), encoding="utf-8",
                         errors="replace").read().splitlines()
        tu = index.parse(
            os.path.join(root, rel_path),
            args=args_by_file.get(rel_path.replace(os.sep, "/"),
                                  ["-std=c++17", "-I", root]))
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (cindex.CursorKind.FUNCTION_DECL,
                                   cindex.CursorKind.CXX_METHOD):
                continue
            if not cursor.is_definition():
                continue
            hot = any(ch.kind == cindex.CursorKind.ANNOTATE_ATTR and
                      ch.spelling == "adpa_hot"
                      for ch in cursor.get_children())
            fn = FunctionDef(cursor.spelling, rel_path,
                             cursor.location.line, hot, False)
            for node in cursor.walk_preorder():
                line = node.location.line
                if node.kind == cindex.CursorKind.CXX_NEW_EXPR:
                    fn.allocs.append(("new", line,
                                      waiver_at(raw_lines, line, "alloc")))
                elif node.kind == cindex.CursorKind.CALL_EXPR:
                    callee = node.spelling or ""
                    if ALLOC_TOKEN_RE.search("." + callee + "("):
                        fn.allocs.append(
                            (callee, line,
                             waiver_at(raw_lines, line, "alloc")))
                    elif callee:
                        fn.calls.append(
                            (callee, line,
                             waiver_at(raw_lines, line, "alloc")))
            model.add_function(fn)


def report_hot_alloc(model):
    """BFS from every ADPA_HOT root over name-matched call edges."""
    findings = []
    visited = set()
    parent = {}
    queue = sorted(model.hot_names)
    for name in queue:
        visited.add(name)
    while queue:
        name = queue.pop(0)
        for fn in model.functions.get(name, []):
            for token, lineno, waived in fn.allocs:
                if waived:
                    continue
                chain = [name]
                while chain[-1] in parent:
                    chain.append(parent[chain[-1]])
                findings.append(Finding(
                    fn.rel_path, lineno, "hot-alloc",
                    "allocation '%s' reachable from hot entry point %s() "
                    "(via %s); reuse capacity or waive with "
                    "analyze:allow(alloc)" % (
                        token, chain[-1], " <- ".join(chain))))
            for callee, _, call_waived in fn.calls:
                if call_waived or callee in model.leaf_names:
                    continue
                if callee in visited or callee not in model.functions:
                    continue
                visited.add(callee)
                parent[callee] = name
                queue.append(callee)
    return findings


def collect_findings(model):
    findings = list(model.findings)
    for defs in model.functions.values():
        for fn in defs:
            findings.extend(fn.blocking)
    findings.extend(report_hot_alloc(model))
    return findings


def is_excluded(rel_path):
    parts = rel_path.split(os.sep)
    if any(part in EXCLUDED_PARTS for part in parts):
        return True
    return any(part.startswith("build") for part in parts)


def collect_files(root, compdb):
    """TU list from compile_commands.json when available, plus every header
    (and, as fallback, every source) under src/."""
    rel_paths = set()
    if compdb and os.path.exists(compdb):
        try:
            with open(compdb, encoding="utf-8") as f:
                for entry in json.load(f):
                    path = os.path.join(entry["directory"], entry["file"])
                    rel = os.path.relpath(os.path.abspath(path), root)
                    norm = rel.replace(os.sep, "/")
                    if norm.startswith("src/") and not is_excluded(rel):
                        rel_paths.add(rel)
        except (OSError, ValueError, KeyError) as err:
            print("analyze: ignoring unreadable compdb %s (%s)"
                  % (compdb, err))
    # Headers are always scanned (inline bodies, annotations, ADPA_HOT
    # declarations live there); sources come from the compdb when it listed
    # any, otherwise from the walk — so a stale or empty export can only
    # widen coverage, never silently shrink it.
    have_compdb_tus = any(p.endswith(".cc") for p in rel_paths)
    src_dir = os.path.join(root, "src")
    for dirpath, dirnames, filenames in os.walk(src_dir):
        dirnames[:] = [d for d in dirnames if not is_excluded(
            os.path.relpath(os.path.join(dirpath, d), root))]
        for fname in sorted(filenames):
            if fname.endswith(".h") or (fname.endswith(".cc")
                                        and not have_compdb_tus):
                rel = os.path.relpath(os.path.join(dirpath, fname), root)
                if not is_excluded(rel):
                    rel_paths.add(rel)
    return sorted(rel_paths)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for the TU list "
                             "(and libclang flags)")
    parser.add_argument("--frontend", choices=("internal", "libclang"),
                        default="internal")
    parser.add_argument("--files", nargs="*", default=None,
                        help="analyze only these paths (relative to --root); "
                             "exclusion filters are bypassed")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if args.files is not None:
        rel_paths = [os.path.relpath(os.path.abspath(p), root)
                     if os.path.isabs(p) else p for p in args.files]
    else:
        rel_paths = collect_files(root, args.compdb)

    model = SourceModel()
    if args.frontend == "libclang":
        scan_tree_libclang(model, root, rel_paths, args.compdb)
    else:
        for rel_path in rel_paths:
            scan_file_internal(model, root, rel_path)

    findings = collect_findings(model)
    for finding in findings:
        print(finding)
    if findings:
        print("analyze: %d finding(s) in %d file(s)" % (
            len(findings), len({f.rel_path for f in findings})))
        return 1
    print("analyze: OK (%d files, %d functions, %d hot roots)" % (
        len(rel_paths), sum(len(d) for d in model.functions.values()),
        len(model.hot_names)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
