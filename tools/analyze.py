#!/usr/bin/env python3
"""adpa static concurrency, hot-path & hostile-input analyzer (DESIGN.md §13).

Repo-specific whole-program checks that neither the compiler nor lint.py's
line-regex rules can express — they need function bodies, a call graph, and
lock scopes. Five rules (ids used by the `// analyze:allow(<id>)` escape
hatch):

  hot-alloc           Functions tagged ADPA_HOT (the serving ForwardRows /
                      Classify path, the MicroBatcher pump, every
                      kernels_*.cc entry point) must not *transitively*
                      reach an allocation site — operator new, push_back/
                      emplace_back/emplace, resize/reserve/insert/assign/
                      append, make_unique/make_shared, std::to_string —
                      without an `// analyze:allow(alloc)` waiver. This is
                      what keeps the allocation-free-serving property (PR 6)
                      structural instead of benchmark-luck.
  blocking-under-lock No blocking while holding an adpa::Mutex: file IO
                      (std::*fstream, getline, C stdio), sleeps (nanosleep,
                      sleep_for, usleep), failpoint hits (ADPA_FAILPOINT*),
                      or stream writes (std::cout/cerr) inside a MutexLock
                      scope or a Lock()/Unlock() span. CondVar::Wait under
                      the lock is legal only as the body of a while/for
                      predicate loop (CondVar deliberately has no lambda
                      predicate overload — see src/core/mutex.h).
  guard-coverage      In any class that owns an adpa::Mutex, every mutable
                      data member must be ADPA_GUARDED_BY / ADPA_PT_GUARDED_BY
                      one of the class's mutexes, or be exempt by construction
                      (const, static/constexpr, std::atomic, Mutex/CondVar/
                      once_flag), or carry an `// analyze:allow(guard)`
                      waiver explaining the protocol.
  untrusted-size      Interprocedural taint dataflow for hostile-input sizes
                      (DESIGN.md §13.4). Sources: integers produced by
                      BinaryReader::Read{U8..U64,I8..I64}, jsonl ParseInt,
                      and `stream >> x` extraction. Sinks: the count argument
                      of resize/reserve/assign, `new T[n]`, Matrix and
                      vector count constructors. A tainted value must pass a
                      sanitizer before reaching a sink: a dominating
                      if-comparison against a named bound (`x > limits.max`,
                      `n > kMax`), an ADPA_CHECK_LE/LT, a consumed
                      Validate*/Check*/Verify*/ *ShapedLike call, an
                      equality test against a trusted value, or a std::min
                      clamp at the sink. Multiplying two tainted values
                      before any bound check is its own finding — overflow
                      can forge the bound (the per_step=0 cache-bomb shape).
                      Taint flows through locals, struct members, call
                      arguments, out-parameters, and return values along the
                      same name-matched call graph hot-alloc uses.
  unchecked-status    Every call to a Status- or Result<T>-returning function
                      must consume the value: assign it, return it, branch
                      on it, or feed it to an ADPA_*-style macro
                      (ADPA_RETURN_IF_ERROR / ADPA_CHECK_OK). A bare
                      `Foo();` — or a `(void)Foo();` cast — silently
                      swallows the error path hostile input is designed to
                      hit. Backed by ADPA_NODISCARD ([[nodiscard]]) on
                      Status/Result in src/core/status.h; this rule audits
                      what the compiler warning enforces, and also fires on
                      (void)-suppressions the warning would miss.

Waiver placement (`// analyze:allow(<id>)[: reason]`):
  * on the flagged line or the line directly above it — suppresses that
    site (hot-alloc: the allocation; guard-coverage: the member;
    untrusted-size: the sink or multiply; unchecked-status: the call);
  * hot-alloc / untrusted-size, on a *call* line (or the line above) — the
    analyzer does not traverse into / import taint from that callee at
    this site;
  * on a function *declaration* — hot-alloc: the whole callee is treated
    as an allocation-free leaf everywhere it is called; untrusted-size:
    the callee's outputs are trusted (no taint imported from it);
    unchecked-status: the callee's result may be discarded anywhere
    (fire-and-forget by contract).

Frontends (`--frontend`):
  internal (default)  A dependency-free C++ lexer: comments/strings/
                      preprocessor lines are blanked, braces are matched
                      into a scope tree, function definitions and their
                      calls / allocation tokens / lock scopes are extracted
                      textually. Name-based call-graph edges (last `::`
                      component) make the reachability an over-approximation
                      — by design: a false edge is a waiver, a missed one
                      would be a hole.
  libclang            The same model built from a real AST via the clang
                      python bindings, using compile_commands.json for
                      flags, and used for the hot-alloc reachability BFS in
                      place of the lexical call graph. The statement-level
                      rules (blocking-under-lock, guard-coverage,
                      untrusted-size, unchecked-status) always run on the
                      internal frontend — they need lexical statement and
                      lock-scope structure the AST walk does not model.
                      Opt-in because libclang is not part of the base
                      toolchain; CI runs it as a second pass where the
                      static-analysis job installs the bindings.

The TU list comes from --compdb (compile_commands.json, exported by CMake)
when present, falling back to walking src/; headers under src/ are always
included. Fixture trees (tests/analyze_fixtures/) are excluded from tree
runs exactly like lint_fixtures.

Usage:
  tools/analyze.py --root REPO_ROOT [--compdb build/compile_commands.json]
  tools/analyze.py --root R --files f1 f2 ...   # analyze specific files
Exit status is 1 iff at least one finding survives suppression.
"""

import argparse
import json
import os
import re
import sys

ALLOW_RE = re.compile(
    r"//\s*analyze:allow\((alloc|blocking|guard|untrusted-size|"
    r"unchecked-status)\)")

EXCLUDED_PARTS = {".git", "analyze_fixtures", "lint_fixtures"}

CXX_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "decltype", "catch", "throw", "new", "delete", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "defined", "case",
    "do", "else", "goto", "co_await", "co_return", "co_yield", "void",
    "int", "bool", "float", "double", "char", "auto", "assert",
    "static_assert", "noexcept", "alignas", "typeid", "requires",
}

ALLOC_TOKEN_RE = re.compile(
    r"(?:[.\->]\s*(push_back|emplace_back|emplace|resize|reserve|insert|"
    r"assign|append)\s*\()"
    r"|(\bnew\b)"
    r"|\b(make_unique|make_shared)\s*<"
    r"|\b(to_string)\s*\(")

BLOCKING_TOKEN_RE = re.compile(
    r"\bstd::(?:i|o)?fstream\b|\bstd::c(?:out|err)\b"
    r"|\b(?:fopen|fread|fwrite|fflush|fsync|getline|nanosleep|usleep)\s*\("
    r"|\bsleep_for\s*\(|\bADPA_FAILPOINT\w*\s*\(")

CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
MUTEX_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")
MANUAL_LOCK_RE = re.compile(r"[.\->]\s*Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"[.\->]\s*Unlock\s*\(\s*\)")
CV_WAIT_RE = re.compile(r"[.\->]\s*Wait\s*\(")

CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:ADPA_\w+\s*(?:\([^()]*\))?\s*)*([\w:]+)")
GUARDED_RE = re.compile(r"\bADPA_(?:PT_)?GUARDED_BY\s*\(")
MEMBER_EXEMPT_RE = re.compile(
    r"\bconst\b|\bconstexpr\b|\bstatic\b|\bstd::atomic\b"
    r"|(?<!std::)\bMutex\b|\bCondVar\b|\bonce_flag\b|\bfriend\b"
    r"|\busing\b|\btypedef\b")
HAS_MUTEX_MEMBER_RE = re.compile(r"(?:^|[^:\w])Mutex\s+\w+")
ADPA_MACRO_CALL_RE = re.compile(r"\bADPA_\w+\s*\([^()]*\)")


class Finding:
    def __init__(self, rel_path, lineno, rule_id, message):
        self.rel_path = rel_path
        self.lineno = lineno
        self.rule_id = rule_id
        self.message = message

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.rel_path, self.lineno, self.rule_id, self.message)


class FunctionDef:
    """One textual function definition: its calls, allocation sites, and
    blocking-under-lock findings (computed during the scan, since lock
    scopes are lexical)."""

    def __init__(self, name, rel_path, lineno, hot, leaf_waived, params=None):
        self.name = name
        self.rel_path = rel_path
        self.lineno = lineno
        self.hot = hot
        self.leaf_waived = leaf_waived
        self.params = params or []   # positional parameter names
        self.calls = []       # (callee_name, lineno, waived)
        self.allocs = []      # (token, lineno, waived)
        self.blocking = []    # Finding
        self.statements = []  # (text, first_lineno) in body order
        self.taint_trusted = False   # decl/def-level untrusted-size waiver


class SourceModel:
    """Whole-tree model shared by both frontends."""

    def __init__(self):
        self.functions = {}   # name -> [FunctionDef]
        self.hot_names = set()
        self.leaf_names = set()   # decl-level alloc waivers
        self.findings = []        # guard/blocking findings
        self.raw_lines = {}       # rel_path -> raw source lines (waivers)
        self.status_fns = set()   # names returning Status / Result<T>
        self.taint_trusted_names = set()   # decl-level untrusted-size waivers
        self.status_discard_ok = set()     # decl-level unchecked-status waivers

    def add_function(self, fn):
        self.functions.setdefault(fn.name, []).append(fn)
        if fn.hot:
            self.hot_names.add(fn.name)
        if fn.leaf_waived:
            self.leaf_names.add(fn.name)


def blank_code(text):
    """Blanks comments, string/char literals, and preprocessor directives,
    preserving every character position (newlines stay put) so line numbers
    and brace offsets survive."""
    out = []
    i, n = 0, len(text)
    state = "code"
    line_start = True
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if line_start and c == "#":
                state = "preproc"
                out.append(" ")
            elif c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 1
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 1
            elif c == '"':
                state = "string"
                out.append('"')
            elif c == "'":
                state = "char"
                out.append("'")
            else:
                out.append(c)
        elif state == "preproc":
            if c == "\n":
                # A trailing backslash continues the directive.
                j = len(out) - 1
                while j >= 0 and out[j] in " \t":
                    j -= 1
                out.append("\n")
                if not (text[i - 1] == "\\" or
                        (i >= 2 and text[i - 2] == "\\" and
                         text[i - 1] == "\r")):
                    state = "code"
                i += 1
                line_start = True
                continue
            out.append(" ")
        elif state == "line_comment":
            if c == "\n":
                out.append("\n")
                state = "code"
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out.append("  ")
                i += 1
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 1
            elif c == '"':
                out.append('"')
                state = "code"
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 1
            elif c == "'":
                out.append("'")
                state = "code"
            else:
                out.append(" ")
        if c == "\n":
            line_start = True
        elif c not in " \t":
            line_start = False
        i += 1
    return "".join(out)


def waiver_at(raw_lines, lineno, waiver_id):
    """True if `// analyze:allow(<id>)` covers `lineno` (that line or the
    one directly above)."""
    for cand in (lineno, lineno - 1):
        if 1 <= cand <= len(raw_lines):
            for m in ALLOW_RE.finditer(raw_lines[cand - 1]):
                if m.group(1) == waiver_id:
                    return True
    return False


def paren_depth_zero_eq(header):
    """True if the header contains a top-level `=` (so the brace opens an
    initializer list, not a body). `operator==`-style names are masked
    first."""
    header = re.sub(r"operator\s*\S{1,3}", "OP", header)
    depth = 0
    for c in header:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            return True
    return False


class Scope:
    def __init__(self, kind, header, lineno, name=None):
        self.kind = kind          # function|class|namespace|block|other
        self.header = header
        self.lineno = lineno
        self.name = name
        self.fn = None            # FunctionDef for kind == function
        self.locked = False       # blocking-under-lock state
        self.members = []         # (text, lineno) for kind == class


def classify_header(header, in_function):
    """Returns (kind, name) for the scope a `{` opens."""
    stripped = header.strip()
    if in_function:
        return ("block", None)
    m = CLASS_HEAD_RE.search(stripped)
    if m and not paren_depth_zero_eq(stripped):
        return ("class", m.group(1).split("::")[-1])
    if re.search(r"\bnamespace\b", stripped):
        return ("namespace", None)
    if re.search(r"\b(?:enum|union)\b", stripped):
        return ("other", None)
    if paren_depth_zero_eq(stripped):
        return ("other", None)
    m = CALL_RE.search(stripped)
    if m and m.group(1) not in CXX_KEYWORDS:
        return ("function", m.group(1).split("::")[-1])
    return ("other", None)


def header_is_hot(header):
    return "ADPA_HOT" in header


def split_top_level(text, sep=","):
    """Splits on `sep` at bracket depth 0 (parens/brackets/braces only —
    angle brackets are ambiguous with comparisons and are ignored, which at
    worst mangles a template-typed parameter's extracted name)."""
    parts, depth, start = [], 0, 0
    for idx, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth = max(0, depth - 1)
        elif c == sep and depth == 0:
            parts.append(text[start:idx])
            start = idx + 1
    parts.append(text[start:])
    return parts


def parse_params(header):
    """Positional parameter names from a function definition header: the
    first call-like paren group's comma-split trailing identifiers."""
    m = CALL_RE.search(re.sub(r"operator\s*\S{1,3}", "OP", header))
    if not m:
        return []
    open_idx = m.end() - 1
    depth, close_idx = 0, -1
    for idx in range(open_idx, len(header)):
        if header[idx] == "(":
            depth += 1
        elif header[idx] == ")":
            depth -= 1
            if depth == 0:
                close_idx = idx
                break
    if close_idx < 0:
        return []
    inner = header[open_idx + 1:close_idx].strip()
    if not inner or inner == "void":
        return []
    params = []
    for part in split_top_level(inner):
        part = part.split("=")[0].rstrip()
        part = re.sub(r"\[\s*\]\s*$", "", part).rstrip()
        nm = re.search(r"([A-Za-z_]\w*)\s*$", part)
        params.append(nm.group(1) if nm else "")
    return params


def scan_declarations(model, rel_path, code_lines, raw_lines, body_lines):
    """Collects ADPA_HOT roots and decl-level waivers (alloc leaf,
    untrusted-size trusted-output, unchecked-status discard-ok) from
    declarations (statements ending in `;`, so they never open a scope and
    the definition walk cannot see them). `body_lines` excludes function
    bodies: a site-waived call statement in a body also ends in `;`, and
    without the exclusion its waiver would leak into the callee's *name*
    and silence every other call site tree-wide."""
    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if lineno in body_lines:
            continue
        is_decl = line.strip().endswith(";")
        is_hot_decl = "ADPA_HOT" in line
        is_leaf_decl = is_decl and waiver_at(raw_lines, lineno, "alloc")
        is_trusted_decl = is_decl and waiver_at(raw_lines, lineno,
                                                "untrusted-size")
        is_discard_decl = is_decl and waiver_at(raw_lines, lineno,
                                                "unchecked-status")
        if not (is_hot_decl or is_leaf_decl or is_trusted_decl or
                is_discard_decl):
            continue
        m = CALL_RE.search(line)
        if not m or m.group(1) in CXX_KEYWORDS:
            continue
        name = m.group(1).split("::")[-1]
        if is_hot_decl:
            model.hot_names.add(name)
        if is_leaf_decl:
            model.leaf_names.add(name)
        if is_trusted_decl:
            model.taint_trusted_names.add(name)
        if is_discard_decl:
            model.status_discard_ok.add(name)


STATUS_DEF_RE = re.compile(r"\bStatus\s+([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(")
RESULT_TOKEN_RE = re.compile(r"\bResult\s*<")
LAMBDA_STATUS_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*\[[^\[\]]*\]\s*\([^()]*\)\s*"
    r"->\s*[\w:]*?(?:Status\b|Result\s*<)")


def register_status_functions(model, code):
    """Records every function name declared (or defined) to return Status or
    Result<T> — the unchecked-status rule's `[[nodiscard]]` set. Name-based
    like the call graph: an overload set where only some overloads return
    Status is treated as all-Status (over-approximation by design)."""
    for m in STATUS_DEF_RE.finditer(code):
        model.status_fns.add(m.group(1).split("::")[-1])
    for m in RESULT_TOKEN_RE.finditer(code):
        # Angle-match the template argument list, then expect `name (`.
        depth, idx = 0, m.end() - 1
        while idx < len(code):
            if code[idx] == "<":
                depth += 1
            elif code[idx] == ">":
                depth -= 1
                if depth == 0:
                    break
            elif code[idx] == ";":
                break
            idx += 1
        tail = code[idx + 1:idx + 200]
        nm = re.match(r"\s+([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*\(", tail)
        if nm:
            model.status_fns.add(nm.group(1).split("::")[-1])
    for m in LAMBDA_STATUS_RE.finditer(code):
        model.status_fns.add(m.group(1))


def check_member(model, rel_path, raw_lines, class_name, text, lineno):
    """guard-coverage for one member declaration of a mutex-owning class.

    `lineno` is the first line of the statement, which may open with blanked
    comment lines; the waiver may sit on any spanned line or directly above,
    and the finding anchors to the last code line (the declaration itself).
    """
    span_lines = text.split("\n")
    code_offsets = [k for k, part in enumerate(span_lines) if part.strip()]
    decl_line = lineno + (code_offsets[-1] if code_offsets else 0)
    if any(waiver_at(raw_lines, lineno + k, "guard")
           for k in range(len(span_lines))):
        return
    text = re.sub(r"\b(?:public|private|protected)\s*:", " ", text)
    stripped = text.strip()
    if not stripped:
        return
    without_macros = ADPA_MACRO_CALL_RE.sub(" ", stripped)
    if "(" in without_macros:       # method / ctor declaration
        return
    if "=" in without_macros.split("ADPA_")[0] and \
            not re.search(r"\w\s+\w", without_macros.split("=")[0].strip()):
        return                      # enum-style constant, not a member
    if not re.search(r"[\w>&*\]]\s+[A-Za-z_]\w*\s*(?:=.*)?$",
                     without_macros.rstrip(";").rstrip()):
        return                      # not `type name [= init]`
    if GUARDED_RE.search(stripped):
        return
    if MEMBER_EXEMPT_RE.search(without_macros):
        return
    member = re.search(r"([A-Za-z_]\w*)\s*(?:=[^=].*)?$",
                       without_macros.rstrip(";").rstrip())
    member_name = member.group(1) if member else "?"
    model.findings.append(Finding(
        rel_path, decl_line, "guard-coverage",
        "member '%s' of mutex-owning class %s has no ADPA_GUARDED_BY and is "
        "not const/atomic; annotate it, or waive with analyze:allow(guard) "
        "stating the protocol" % (member_name, class_name)))


def scan_file_internal(model, root, rel_path):
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as err:
        model.findings.append(Finding(rel_path, 1, "io-error", str(err)))
        return
    raw_lines = text.splitlines()
    code = blank_code(text)
    code_lines = code.splitlines()
    model.raw_lines[rel_path] = raw_lines
    register_status_functions(model, code)

    stack = []
    paren_depth = 0
    boundary = 0          # start of the current statement/header
    lineno = 1
    body_lines = set()    # lines inside function bodies (brace to brace)
    i, n = 0, len(code)

    def innermost_function():
        for scope in reversed(stack):
            if scope.kind == "function":
                return scope
        return None

    def in_locked_region():
        for scope in reversed(stack):
            if scope.locked:
                return True
            if scope.kind == "function":
                break
        return False

    def wait_in_loop(stmt_prefix):
        if re.search(r"\b(?:while|for)\s*\(", stmt_prefix):
            return True
        for scope in reversed(stack):
            if scope.kind == "function":
                break
            if scope.kind == "block" and \
                    re.search(r"\b(?:while|for)\s*\(", scope.header):
                return True
        return False

    def flush_statement(end):
        """Handles one completed statement inside a function or class."""
        stmt = code[boundary:end]
        if not stmt.strip():
            return
        stmt_line = lineno - stmt.count("\n")
        fn = innermost_function()
        if fn is not None:
            scan_statement(fn, stmt, stmt_line)
        elif stack and stack[-1].kind == "class":
            stack[-1].members.append((stmt, stmt_line))

    def scan_statement(fn_scope, stmt, stmt_line):
        fn = fn_scope.fn
        fn.statements.append((stmt, stmt_line))
        for off_line, part in enumerate(stmt.split("\n")):
            at = stmt_line + off_line
            for m in ALLOC_TOKEN_RE.finditer(part):
                token = next(g for g in m.groups() if g)
                fn.allocs.append((token, at, waiver_at(raw_lines, at,
                                                      "alloc")))
            for m in CALL_RE.finditer(part):
                name = m.group(1)
                if name in CXX_KEYWORDS or name.startswith("ADPA_"):
                    continue
                fn.calls.append((name.split("::")[-1], at,
                                 waiver_at(raw_lines, at, "alloc")))
            if MUTEX_LOCK_RE.search(part) or MANUAL_LOCK_RE.search(part):
                for scope in reversed(stack):
                    scope.locked = True
                    break
            if MANUAL_UNLOCK_RE.search(part):
                for scope in reversed(stack):
                    if scope.locked:
                        scope.locked = False
                        break
                    if scope.kind == "function":
                        break
            if in_locked_region():
                bm = BLOCKING_TOKEN_RE.search(part)
                if bm and not waiver_at(raw_lines, at, "blocking"):
                    fn.blocking.append(Finding(
                        rel_path, at, "blocking-under-lock",
                        "'%s' while holding an adpa::Mutex in %s(); move it "
                        "outside the lock scope or waive with "
                        "analyze:allow(blocking)" % (
                            bm.group(0).strip(), fn.name)))
                wm = CV_WAIT_RE.search(part)
                if wm and not wait_in_loop(part[:wm.start()]) and \
                        not waiver_at(raw_lines, at, "blocking"):
                    fn.blocking.append(Finding(
                        rel_path, at, "blocking-under-lock",
                        "CondVar Wait() in %s() is not the body of a "
                        "while/for predicate loop; spurious wakeups will "
                        "break the invariant" % fn.name))

    while i < n:
        c = code[i]
        if c == "\n":
            lineno += 1
        elif c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
        elif c == ";" and paren_depth == 0:
            flush_statement(i)
            boundary = i + 1
        elif c == "{" and paren_depth == 0:
            header = code[boundary:i]
            header_line = lineno - header.count("\n")
            fn_scope = innermost_function()
            kind, name = classify_header(header, fn_scope is not None)
            scope = Scope(kind, header, header_line, name)
            if kind == "function":
                fn = FunctionDef(
                    name, rel_path, header_line, header_is_hot(header),
                    any(waiver_at(raw_lines, header_line + k, "alloc")
                        for k in range(header.count("\n") + 1)),
                    parse_params(header))
                fn.taint_trusted = any(
                    waiver_at(raw_lines, header_line + k, "untrusted-size")
                    for k in range(header.count("\n") + 1))
                scope.fn = fn
                model.add_function(fn)
            elif kind == "block" and fn_scope is not None:
                # The block header (e.g. `while (...) cond` prefix) may
                # itself contain calls/allocs — attribute them now.
                scan_statement(fn_scope, header, header_line)
                scope.fn = fn_scope.fn
            scope.brace_line = lineno
            stack.append(scope)
            boundary = i + 1
        elif c == "}" and paren_depth == 0:
            flush_statement(i)
            if stack:
                closing = stack.pop()
                if closing.kind == "function":
                    body_lines.update(range(closing.brace_line, lineno + 1))
                if closing.kind == "class" and closing.name:
                    members_text = " ".join(t for t, _ in closing.members)
                    if HAS_MUTEX_MEMBER_RE.search(members_text):
                        for text_, line_ in closing.members:
                            check_member(model, rel_path, raw_lines,
                                         closing.name, text_, line_)
            boundary = i + 1
        i += 1
    scan_declarations(model, rel_path, code_lines, raw_lines, body_lines)


def scan_tree_libclang(model, root, rel_paths, compdb):
    """AST frontend over the clang python bindings (opt-in)."""
    try:
        from clang import cindex  # noqa: deferred, optional dependency
    except ImportError:
        sys.exit("analyze: --frontend=libclang requires the clang python "
                 "bindings (python3-clang + libclang); the base toolchain "
                 "does not ship them — use --frontend=internal")
    index = cindex.Index.create()
    args_by_file = {}
    if compdb and os.path.exists(compdb):
        with open(compdb, encoding="utf-8") as f:
            for entry in json.load(f):
                rel = os.path.relpath(
                    os.path.join(entry["directory"], entry["file"]), root)
                flags = [a for a in entry.get("command", "").split()[1:]
                         if not a.endswith(".o") and a not in ("-c", "-o")]
                args_by_file[rel.replace(os.sep, "/")] = flags
    for rel_path in rel_paths:
        if not rel_path.endswith(".cc"):
            continue
        raw_lines = open(os.path.join(root, rel_path), encoding="utf-8",
                         errors="replace").read().splitlines()
        tu = index.parse(
            os.path.join(root, rel_path),
            args=args_by_file.get(rel_path.replace(os.sep, "/"),
                                  ["-std=c++17", "-I", root]))
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in (cindex.CursorKind.FUNCTION_DECL,
                                   cindex.CursorKind.CXX_METHOD):
                continue
            if not cursor.is_definition():
                continue
            hot = any(ch.kind == cindex.CursorKind.ANNOTATE_ATTR and
                      ch.spelling == "adpa_hot"
                      for ch in cursor.get_children())
            fn = FunctionDef(cursor.spelling, rel_path,
                             cursor.location.line, hot, False)
            for node in cursor.walk_preorder():
                line = node.location.line
                if node.kind == cindex.CursorKind.CXX_NEW_EXPR:
                    fn.allocs.append(("new", line,
                                      waiver_at(raw_lines, line, "alloc")))
                elif node.kind == cindex.CursorKind.CALL_EXPR:
                    callee = node.spelling or ""
                    if ALLOC_TOKEN_RE.search("." + callee + "("):
                        fn.allocs.append(
                            (callee, line,
                             waiver_at(raw_lines, line, "alloc")))
                    elif callee:
                        fn.calls.append(
                            (callee, line,
                             waiver_at(raw_lines, line, "alloc")))
            model.add_function(fn)


# --- untrusted-size: interprocedural taint dataflow (DESIGN.md §13.4) ------
#
# Paths are normalized member chains ("cache.key.steps"); `->` is folded to
# `.`. Taint on a base path implies taint on its members; sanitizing a path
# overrides taint inherited from an ancestor (nearest-ancestor decision).
# Each function is analyzed in one forward pass over its statements
# (single-pass per body; a whole-program fixpoint over call summaries makes
# the analysis interprocedural). Summaries are keyed by bare name exactly
# like the hot-alloc call graph — an over-approximation by design.

IDENT_PATH = r"[A-Za-z_]\w*(?:\s*(?:->|\.)\s*[A-Za-z_]\w*)*"
IDENT_PATH_RE = re.compile(IDENT_PATH)

# The member-access prefix is optional: BinaryReader's own methods call the
# narrower readers unqualified (`ReadI64(&rows)`), and those are sources too.
INT_SOURCE_RE = re.compile(
    r"(?:(?:\.|->)\s*)?\bRead(?:U8|U16|U32|U64|I8|I16|I32|I64)\s*"
    r"\(\s*&?\s*(%s)" % IDENT_PATH)
PARSE_INT_SOURCE_RE = re.compile(r"\bParseInt\s*\(\s*&?\s*(%s)" % IDENT_PATH)
# `stream >> x` only when the left operand looks like a stream — plain
# identifiers named like streams — so arithmetic shifts never become sources.
STREAM_EXTRACT_RE = re.compile(
    r"\b(?:in|is|iss|oss|input|stream|body|file|ifs|cin|line_stream)\s*>>")
EXTRACT_TARGET_RE = re.compile(
    r">>\s*(?:\(\s*\*\s*([A-Za-z_]\w*)\s*\)|(%s))" % IDENT_PATH)

SINK_METHOD_RE = re.compile(r"(?:\.|->)\s*(resize|reserve|assign)\s*\(")
NEW_ARRAY_RE = re.compile(r"\bnew\s+[\w:]+(?:\s*<[^\[\]<>;]*>)?\s*\[")
MATRIX_CTOR_RE = re.compile(r"\bMatrix\b\s*(?:[A-Za-z_]\w*\s*)?\(")
VECTOR_CTOR_RE = re.compile(r"\bvector\s*<")

SANITIZING_CALL_RE = re.compile(
    r"\b((?:Validate|Check|Verify)\w*|\w*ShapedLike\w*)\s*\(")
CHECK_MACRO_RE = re.compile(r"\bADPA_D?CHECK_(LE|LT|GE|GT|EQ)\s*\(")
IF_HEAD_RE = re.compile(r"^\s*(?:\}\s*)?(?:else\s+)?if\b")
RELOP_RE = re.compile(r"<=|>=|==|<|>")
MIN_CLAMP_RE = re.compile(r"\bmin\s*(?:<[^<>]*>)?\s*\(")
MULT_PAIR_RE = re.compile(r"(%s)\s*\*\s*(%s)" % (IDENT_PATH, IDENT_PATH))


def norm_path(text):
    return re.sub(r"\s+", "", re.sub(r"\s*->\s*|\s*\.\s*", ".", text))


def match_close(text, open_idx, open_c="(", close_c=")"):
    depth = 0
    for idx in range(open_idx, len(text)):
        if text[idx] == open_c:
            depth += 1
        elif text[idx] == close_c:
            depth -= 1
            if depth == 0:
                return idx
    return -1


def strip_expr(expr):
    """Peels outer parens, casts, std::move, &/* and trailing [index] so a
    wrapped lvalue path compares equal to its bare spelling."""
    expr = expr.strip()
    while expr:
        if expr[0] in "&*":
            expr = expr[1:].lstrip()
            continue
        if expr.startswith("(") and match_close(expr, 0) == len(expr) - 1:
            expr = expr[1:-1].strip()
            continue
        m = re.match(r"(?:static_cast\s*<[^<>]*>|std\s*::\s*move|std\s*::\s*"
                     r"size|int64_t|int32_t|uint32_t|uint64_t|size_t)\s*\(",
                     expr)
        if m and match_close(expr, m.end() - 1) == len(expr) - 1:
            expr = expr[m.end():-1].strip()
            continue
        if expr.endswith("]"):
            open_br = expr.rfind("[")
            if open_br > 0 and match_close(expr, open_br, "[", "]") == \
                    len(expr) - 1:
                expr = expr[:open_br].rstrip()
                continue
        break
    return expr


def lone_path(expr):
    """The normalized path if `expr` is a single (possibly wrapped) lvalue
    chain, else None."""
    s = strip_expr(expr)
    if s and IDENT_PATH_RE.fullmatch(s):
        return norm_path(s)
    return None


class TaintState:
    """Per-function taint facts: path -> origin string, plus the set of
    paths explicitly sanitized (a sanitize overrides ancestor taint)."""

    def __init__(self):
        self.taint = {}
        self.sanitized = set()

    def add(self, path, origin):
        self.sanitized.discard(path)
        if path not in self.taint:
            self.taint[path] = origin

    def sanitize(self, path):
        for p in [p for p in self.taint
                  if p == path or p.startswith(path + ".")]:
            del self.taint[p]
        self.sanitized.add(path)

    def clear(self, path):
        """Strong update: fresh untainted value overwrites the path."""
        for p in [p for p in self.taint
                  if p == path or p.startswith(path + ".")]:
            del self.taint[p]
        self.sanitized.discard(path)

    def lookup(self, path):
        """Origin if tainted, else None — nearest-ancestor decision."""
        probe = path
        while True:
            if probe in self.taint:
                return self.taint[probe]
            if probe in self.sanitized:
                return None
            if "." not in probe:
                return None
            probe = probe.rsplit(".", 1)[0]

    def suffixes_under(self, base):
        """{suffix: origin} for base itself ("" suffix) and its members."""
        out = {}
        direct = self.lookup(base)
        if direct is not None:
            out[""] = direct
        for p, origin in self.taint.items():
            if p.startswith(base + "."):
                suffix = p[len(base) + 1:]
                if self.lookup(p) is not None:
                    out.setdefault(suffix, origin)
        return out


def join_path(base, suffix):
    return base + "." + suffix if suffix else base


def expr_tainted(expr, state):
    """(path, origin) of the first tainted lvalue path in `expr`, skipping
    call results and accessor methods (`x.size()` of a tainted x is bounded
    by materialized memory, not by the hostile header), else None."""
    for m in IDENT_PATH_RE.finditer(expr):
        k = m.end()
        while k < len(expr) and expr[k] in " \t\n":
            k += 1
        if k < len(expr) and expr[k] == "(":
            continue            # call or accessor — not a value read
        path = norm_path(m.group(0))
        origin = state.lookup(path)
        if origin is not None:
            return (path, origin)
    return None


def find_calls_with_args(stmt):
    """[(bare_name, start, open_idx, close_idx, [arg texts])] for every
    complete call expression in the statement."""
    out = []
    for m in CALL_RE.finditer(stmt):
        name = m.group(1)
        if name in CXX_KEYWORDS:
            continue
        open_idx = m.end() - 1
        close_idx = match_close(stmt, open_idx)
        if close_idx < 0:
            continue
        inner = stmt[open_idx + 1:close_idx]
        args = split_top_level(inner) if inner.strip() else []
        out.append((name.split("::")[-1], m.start(), open_idx, close_idx,
                    args))
    return out


def trim_operand_left(text):
    """Suffix of `text` after its last unmatched '(' — the left operand of
    a comparison, cut at the enclosing condition paren."""
    depth = 0
    for idx in range(len(text) - 1, -1, -1):
        c = text[idx]
        if c == ")":
            depth += 1
        elif c == "(":
            if depth == 0:
                return text[idx + 1:]
            depth -= 1
        elif c in ";{}":
            return text[idx + 1:]
    return text


def trim_operand_right(text):
    """Prefix of `text` before its first unmatched ')' (or statement end)."""
    depth = 0
    for idx, c in enumerate(text):
        if c == "(":
            depth += 1
        elif c == ")":
            if depth == 0:
                return text[:idx]
            depth -= 1
        elif c in ";{}?":
            return text[:idx]
    return text


def mask_non_relational(text):
    """Folds `->` and masks shifts and template argument lists so RELOP_RE
    only sees genuine comparisons."""
    text = text.replace("->", " .")
    text = re.sub(r"<<|>>", "  ", text)
    return re.sub(r"<[^<>]*>(?=\s*\()", lambda m: " " * len(m.group(0)),
                  text)


def apply_comparison_sanitizers(stmt, state):
    """Bound checks inside an if-condition. A lone tainted path compared
    (any relop but !=) against a named expression with no unsanitized taint
    on the other side is considered bounded from here on. Divisors on the
    bound side (`steps > limit / per_step`) are sanitized too — that is the
    overflow-free way to bound a product. Loop headers deliberately do NOT
    sanitize: `for (i = 0; i < n; ++i)` says nothing about n's magnitude."""
    if not IF_HEAD_RE.match(stmt):
        return
    for clause in re.split(r"&&|\|\|", stmt):
        masked = mask_non_relational(clause)
        m = RELOP_RE.search(masked)
        if not m:
            continue
        lhs = trim_operand_left(masked[:m.start()])
        rhs = trim_operand_right(masked[m.end():])
        for side, other in ((lhs, rhs), (rhs, lhs)):
            path = lone_path(side)
            if path is None:
                continue
            if not re.search(r"[A-Za-z_]", other):
                continue        # pure literal (`x > 0`) is not a bound
            divisors = {norm_path(d) for d in
                        re.findall(r"/\s*(%s)" % IDENT_PATH, other)}
            hit = expr_tainted(other, state)
            if hit is not None and hit[0] not in divisors:
                continue        # bound side itself unsanitized-tainted
            if state.lookup(path) is not None:
                state.sanitize(path)
            # Divisors bound even when the compared path was already
            # sanitized by an earlier clause (`x > lim || x > lim / y`).
            for d in divisors:
                if state.lookup(d) is not None:
                    state.sanitize(d)


def apply_check_macro_sanitizers(stmt, state):
    for m in CHECK_MACRO_RE.finditer(stmt):
        close = match_close(stmt, stmt.index("(", m.end() - 1))
        if close < 0:
            continue
        args = split_top_level(stmt[stmt.index("(", m.end() - 1) + 1:close])
        op = m.group(1)
        guarded = {"LE": [0], "LT": [0], "GE": [1], "GT": [1],
                   "EQ": [0, 1]}[op]
        for i in guarded:
            if i < len(args):
                path = lone_path(args[i])
                if path is not None:
                    state.sanitize(path)


def apply_call_sanitizers(stmt, state):
    """A Validate*/Check*/Verify*/*ShapedLike call vouches for its receiver
    and its lvalue arguments (the call's error path is audited separately by
    unchecked-status)."""
    for m in SANITIZING_CALL_RE.finditer(stmt):
        open_idx = stmt.index("(", m.end() - 1)
        close_idx = match_close(stmt, open_idx)
        if close_idx < 0:
            continue
        recv = re.search(r"(%s)\s*(?:\.|->)\s*$" % IDENT_PATH,
                         stmt[:m.start()])
        if recv:
            state.sanitize(norm_path(recv.group(1)))
        inner = stmt[open_idx + 1:close_idx]
        if inner.strip():
            for arg in split_top_level(inner):
                path = lone_path(arg)
                if path is not None:
                    state.sanitize(path)


def sink_sites(stmt):
    """[(desc, count_arg_exprs, offset)] for every allocation-count sink in
    the statement."""
    sites = []
    for m in SINK_METHOD_RE.finditer(stmt):
        open_idx = stmt.index("(", m.end() - 1)
        close_idx = match_close(stmt, open_idx)
        if close_idx < 0:
            continue
        args = split_top_level(stmt[open_idx + 1:close_idx])
        if args and args[0].strip():
            sites.append(("%s() count" % m.group(1), [args[0]], m.start()))
    for m in NEW_ARRAY_RE.finditer(stmt):
        close_idx = match_close(stmt, m.end() - 1, "[", "]")
        if close_idx < 0:
            continue
        expr = stmt[m.end():close_idx]
        if expr.strip():
            sites.append(("new[] count", [expr], m.start()))
    for m in MATRIX_CTOR_RE.finditer(stmt):
        open_idx = stmt.index("(", m.end() - 1)
        close_idx = match_close(stmt, open_idx)
        if close_idx < 0:
            continue
        args = split_top_level(stmt[open_idx + 1:close_idx])
        if len(args) >= 2:
            sites.append(("Matrix(rows, cols) shape", args[:2], m.start()))
    for m in VECTOR_CTOR_RE.finditer(stmt):
        close_angle = match_close(stmt, m.end() - 1, "<", ">")
        if close_angle < 0:
            continue
        nm = re.match(r"\s*[A-Za-z_]\w*\s*\(", stmt[close_angle + 1:])
        if not nm:
            continue
        open_idx = close_angle + 1 + nm.end() - 1
        close_idx = match_close(stmt, open_idx)
        if close_idx < 0:
            continue
        args = split_top_level(stmt[open_idx + 1:close_idx])
        if args and args[0].strip():
            sites.append(("vector count constructor", [args[0]], m.start()))
    return sites


def top_level_assign_idx(stmt):
    depth = 0
    for idx, c in enumerate(stmt):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            prev = stmt[idx - 1] if idx else ""
            nxt = stmt[idx + 1] if idx + 1 < len(stmt) else ""
            if prev not in "=!<>+-*/%&|^" and nxt != "=":
                return idx
    return -1


def taint_trusted(model, name):
    if name in model.taint_trusted_names:
        return True
    return any(d.taint_trusted for d in model.functions.get(name, []))


def analyze_function_taint(model, fn, entry, summaries, collect):
    """One forward pass over fn's statements. Returns (findings, exports,
    out_params, ret_taints); `entry` is {param_idx: {suffix: origin}} taint
    arriving from callers, `exports` the symmetric taint this body sends to
    its callees' parameters."""
    state = TaintState()
    findings = []
    exports = {}
    ret_taints = {}
    raw_lines = model.raw_lines.get(fn.rel_path, [])
    for idx, suffix_map in entry.items():
        if idx < len(fn.params) and fn.params[idx]:
            for suffix, origin in suffix_map.items():
                state.add(join_path(fn.params[idx], suffix), origin)

    for stmt, stmt_line in fn.statements:
        def line_at(offset, _stmt=stmt, _line=stmt_line):
            return _line + _stmt[:offset].count("\n")

        # 1. Sources.
        for regex, kind in ((INT_SOURCE_RE, "binary Read*"),
                            (PARSE_INT_SOURCE_RE, "jsonl ParseInt")):
            for m in regex.finditer(stmt):
                path = norm_path(m.group(1))
                state.add(path, "%s at %s:%d"
                          % (kind, fn.rel_path, line_at(m.start())))
        if STREAM_EXTRACT_RE.search(stmt):
            for m in EXTRACT_TARGET_RE.finditer(stmt):
                target = m.group(1) or m.group(2)
                state.add(norm_path(target), "stream >> at %s:%d"
                          % (fn.rel_path, line_at(m.start())))

        # 2. Call effects: export argument taint to callees, import
        #    out-parameter taint from summaries.
        for name, pos, open_idx, close_idx, args in \
                find_calls_with_args(stmt):
            if name.startswith("ADPA_"):
                continue
            call_line = line_at(pos)
            if waiver_at(raw_lines, call_line, "untrusted-size"):
                continue
            if taint_trusted(model, name):
                continue
            if name in model.functions:
                for i, arg in enumerate(args):
                    base = lone_path(arg)
                    if base is not None:
                        suffix_map = state.suffixes_under(base)
                    else:
                        hit = expr_tainted(arg, state)
                        suffix_map = {"": hit[1]} if hit else {}
                    if suffix_map:
                        dst = exports.setdefault(name, {}).setdefault(i, {})
                        for suffix, origin in suffix_map.items():
                            dst.setdefault(suffix, origin)
            summ = summaries.get(name)
            if summ:
                for i, suffix_map in summ["out"].items():
                    if i < len(args):
                        base = lone_path(args[i])
                        if base is not None:
                            for suffix, origin in suffix_map.items():
                                state.add(join_path(base, suffix), origin)

        # 3. Tainted multiply before any bound check — overflow can forge
        #    the subsequent comparison (the per_step=0 cache-bomb shape).
        for m in MULT_PAIR_RE.finditer(stmt):
            a, b = norm_path(m.group(1)), norm_path(m.group(2))
            oa, ob = state.lookup(a), state.lookup(b)
            if oa is None or ob is None:
                continue
            line = line_at(m.start())
            if collect and not waiver_at(raw_lines, line, "untrusted-size"):
                findings.append(Finding(
                    fn.rel_path, line, "untrusted-size",
                    "'%s * %s' multiplies two untrusted sizes (%s; %s) "
                    "before any bound check — the product can overflow and "
                    "forge a later comparison; bound each factor first or "
                    "divide the limit (see the per_step cache-bomb), or "
                    "waive with analyze:allow(untrusted-size)"
                    % (a, b, oa, ob)))

        # 4. Sanitizers (before sinks: a braceless `if (n > max) use(n)` is
        #    treated as bounded; loop headers never sanitize).
        apply_comparison_sanitizers(stmt, state)
        apply_check_macro_sanitizers(stmt, state)
        apply_call_sanitizers(stmt, state)

        # 5. Sinks.
        for desc, count_args, offset in sink_sites(stmt):
            line = line_at(offset)
            if waiver_at(raw_lines, line, "untrusted-size"):
                continue
            for arg in count_args:
                if MIN_CLAMP_RE.search(arg):
                    continue    # explicit clamp at the sink
                hit = expr_tainted(arg, state)
                if hit is not None and collect:
                    findings.append(Finding(
                        fn.rel_path, line, "untrusted-size",
                        "untrusted size '%s' (%s) reaches %s in %s() "
                        "without a dominating bound check; compare it "
                        "against a limit first or waive with "
                        "analyze:allow(untrusted-size)"
                        % (hit[0], hit[1], desc, fn.name)))

        # 6. Assignment propagation (strong updates).
        eq = top_level_assign_idx(stmt)
        if eq >= 0:
            lhs_m = re.search(
                r"(%s)\s*(?:\[[^\[\]]*\]\s*)?$" % IDENT_PATH,
                stmt[:eq].rstrip())
            if lhs_m:
                lhs = norm_path(lhs_m.group(1))
                rhs = stmt[eq + 1:]
                src = lone_path(rhs)
                if src is not None:
                    suffix_map = state.suffixes_under(src)
                    state.clear(lhs)
                    for suffix, origin in suffix_map.items():
                        state.add(join_path(lhs, suffix), origin)
                else:
                    ret_map = {}
                    stripped = strip_expr(rhs)
                    cm = re.match(r"([A-Za-z_][\w:]*)\s*\(", stripped)
                    if cm and not taint_trusted(
                            model, cm.group(1).split("::")[-1]):
                        summ = summaries.get(cm.group(1).split("::")[-1])
                        if summ and match_close(stripped, cm.end() - 1) == \
                                len(stripped) - 1:
                            ret_map = summ["ret"]
                    if ret_map:
                        state.clear(lhs)
                        for suffix, origin in ret_map.items():
                            state.add(join_path(lhs, suffix), origin)
                    else:
                        hit = expr_tainted(rhs, state)
                        if hit is None:
                            for name, _, _, _, _ in \
                                    find_calls_with_args(rhs):
                                summ = summaries.get(name)
                                if summ and summ["ret"] and \
                                        not taint_trusted(model, name):
                                    hit = (name + "()",
                                           next(iter(summ["ret"].values())))
                                    break
                        state.clear(lhs)
                        if hit is not None:
                            state.add(lhs, hit[1])

        # 7. Returned taint.
        rm = re.match(r"\s*return\b(.*)$", stmt, re.S)
        if rm and rm.group(1).strip():
            expr = rm.group(1)
            src = lone_path(expr)
            if src is not None:
                for suffix, origin in state.suffixes_under(src).items():
                    ret_taints.setdefault(suffix, origin)
            else:
                hit = expr_tainted(expr, state)
                if hit is not None:
                    ret_taints.setdefault("", hit[1])

    out_params = {}
    for idx, pname in enumerate(fn.params):
        if not pname:
            continue
        # Only taint the body *introduced* is a summary effect; echoing the
        # caller-provided entry taint back would re-taint call-site arguments
        # after their sanitizers ran (by-value params cannot write back).
        suffix_map = {s: o for s, o in state.suffixes_under(pname).items()
                      if s not in entry.get(idx, {})}
        if suffix_map:
            out_params[idx] = suffix_map
    return findings, exports, out_params, ret_taints


def report_untrusted_size(model):
    """Whole-program fixpoint over per-function taint summaries, then a
    final reporting pass with the converged summaries."""
    entries = {}
    summaries = {}
    relevant = {}
    for name, defs in model.functions.items():
        for fn in defs:
            has_source = any(
                INT_SOURCE_RE.search(s) or PARSE_INT_SOURCE_RE.search(s) or
                STREAM_EXTRACT_RE.search(s) for s, _ in fn.statements)
            relevant[id(fn)] = (has_source,
                               {callee for callee, _, _ in fn.calls})

    def skippable(name, fn):
        if fn.taint_trusted or name in model.taint_trusted_names:
            return True
        has_source, callees = relevant[id(fn)]
        if has_source or entries.get(name):
            return False
        return not any(
            summaries.get(c) and (summaries[c]["out"] or summaries[c]["ret"])
            for c in callees)

    for _ in range(15):
        changed = False
        for name in sorted(model.functions):
            for fn in model.functions[name]:
                if skippable(name, fn):
                    continue
                _, exports, outs, rets = analyze_function_taint(
                    model, fn, entries.get(name, {}), summaries,
                    collect=False)
                summ = summaries.setdefault(name, {"out": {}, "ret": {}})
                for i, suffix_map in outs.items():
                    dst = summ["out"].setdefault(i, {})
                    for suffix, origin in suffix_map.items():
                        if suffix not in dst:
                            dst[suffix] = origin
                            changed = True
                for suffix, origin in rets.items():
                    if suffix not in summ["ret"]:
                        summ["ret"][suffix] = origin
                        changed = True
                for callee, arg_map in exports.items():
                    if taint_trusted(model, callee):
                        continue
                    ent = entries.setdefault(callee, {})
                    for i, suffix_map in arg_map.items():
                        dst = ent.setdefault(i, {})
                        for suffix, origin in suffix_map.items():
                            if suffix not in dst:
                                dst[suffix] = origin
                                changed = True
        if not changed:
            break

    findings = []
    for name in sorted(model.functions):
        for fn in model.functions[name]:
            if skippable(name, fn):
                continue
            fs, _, _, _ = analyze_function_taint(
                model, fn, entries.get(name, {}), summaries, collect=True)
            findings.extend(fs)
    return findings


# --- unchecked-status: mandatory error consumption --------------------------

def report_unchecked_status(model):
    """Every call to a Status/Result-returning function must consume the
    value: nested in another expression (condition, macro argument, callee
    argument), assigned, returned, or member-chained (`.ok()`). A bare
    `Foo();` — including `(void)Foo();`, which is at paren depth 0 once the
    cast closes — is a finding."""
    findings = []
    for defs in model.functions.values():
        for fn in defs:
            raw_lines = model.raw_lines.get(fn.rel_path, [])
            for stmt, stmt_line in fn.statements:
                for name, pos, open_idx, close_idx, _ in \
                        find_calls_with_args(stmt):
                    if name not in model.status_fns or \
                            name in model.status_discard_ok or \
                            name.startswith("ADPA_"):
                        continue
                    prefix = stmt[:pos]
                    if prefix.count("(") - prefix.count(")") > 0:
                        continue    # argument / condition / macro operand
                    if re.search(r"\breturn\b|\bco_return\b", prefix):
                        continue
                    if top_level_assign_idx(prefix) >= 0:
                        continue
                    k = close_idx + 1
                    while k < len(stmt) and stmt[k] in " \t\n":
                        k += 1
                    if stmt[k:k + 1] == "." or stmt[k:k + 2] == "->":
                        continue    # chained consumption (.ok(), .status())
                    line = stmt_line + prefix.count("\n")
                    if waiver_at(raw_lines, line, "unchecked-status"):
                        continue
                    findings.append(Finding(
                        fn.rel_path, line, "unchecked-status",
                        "result of Status/Result-returning %s() is "
                        "discarded in %s(); assign, return, branch on, or "
                        "ADPA_CHECK_OK it — or waive with "
                        "analyze:allow(unchecked-status) if fire-and-forget "
                        "is the contract" % (name, fn.name)))
    return findings


def report_hot_alloc(model):
    """BFS from every ADPA_HOT root over name-matched call edges."""
    findings = []
    visited = set()
    parent = {}
    queue = sorted(model.hot_names)
    for name in queue:
        visited.add(name)
    while queue:
        name = queue.pop(0)
        for fn in model.functions.get(name, []):
            for token, lineno, waived in fn.allocs:
                if waived:
                    continue
                chain = [name]
                while chain[-1] in parent:
                    chain.append(parent[chain[-1]])
                findings.append(Finding(
                    fn.rel_path, lineno, "hot-alloc",
                    "allocation '%s' reachable from hot entry point %s() "
                    "(via %s); reuse capacity or waive with "
                    "analyze:allow(alloc)" % (
                        token, chain[-1], " <- ".join(chain))))
            for callee, _, call_waived in fn.calls:
                if call_waived or callee in model.leaf_names:
                    continue
                if callee in visited or callee not in model.functions:
                    continue
                visited.add(callee)
                parent[callee] = name
                queue.append(callee)
    return findings


def collect_findings(model, hot_model=None):
    """All rules. `hot_model` (when the libclang frontend built one) swaps
    the call-graph model used for hot-alloc reachability; the statement-level
    rules always come from the internal model."""
    findings = list(model.findings)
    for defs in model.functions.values():
        for fn in defs:
            findings.extend(fn.blocking)
    findings.extend(report_hot_alloc(hot_model or model))
    findings.extend(report_unchecked_status(model))
    findings.extend(report_untrusted_size(model))
    seen = set()
    unique = []
    for f in sorted(findings,
                    key=lambda f: (f.rel_path, f.lineno, f.rule_id)):
        key = (f.rel_path, f.lineno, f.rule_id, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def is_excluded(rel_path):
    parts = rel_path.split(os.sep)
    if any(part in EXCLUDED_PARTS for part in parts):
        return True
    return any(part.startswith("build") for part in parts)


def collect_files(root, compdb):
    """TU list from compile_commands.json when available, plus every header
    (and, as fallback, every source) under src/ and tools/ — the CLI and
    serve binaries sit on the same hostile-input paths the taint rules
    audit."""
    rel_paths = set()
    if compdb and os.path.exists(compdb):
        try:
            with open(compdb, encoding="utf-8") as f:
                for entry in json.load(f):
                    path = os.path.join(entry["directory"], entry["file"])
                    rel = os.path.relpath(os.path.abspath(path), root)
                    norm = rel.replace(os.sep, "/")
                    if norm.startswith(("src/", "tools/")) and \
                            not is_excluded(rel):
                        rel_paths.add(rel)
        except (OSError, ValueError, KeyError) as err:
            print("analyze: ignoring unreadable compdb %s (%s)"
                  % (compdb, err))
    # Headers are always scanned (inline bodies, annotations, ADPA_HOT
    # declarations live there); sources come from the compdb when it listed
    # any, otherwise from the walk — so a stale or empty export can only
    # widen coverage, never silently shrink it.
    have_compdb_tus = any(p.endswith(".cc") for p in rel_paths)
    for base in ("src", "tools"):
        for dirpath, dirnames, filenames in os.walk(
                os.path.join(root, base)):
            dirnames[:] = [d for d in dirnames if not is_excluded(
                os.path.relpath(os.path.join(dirpath, d), root))]
            for fname in sorted(filenames):
                if fname.endswith(".h") or (fname.endswith(".cc")
                                            and not have_compdb_tus):
                    rel = os.path.relpath(os.path.join(dirpath, fname),
                                          root)
                    if not is_excluded(rel):
                        rel_paths.add(rel)
    return sorted(rel_paths)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for the TU list "
                             "(and libclang flags)")
    parser.add_argument("--frontend", choices=("internal", "libclang"),
                        default="internal")
    parser.add_argument("--files", nargs="*", default=None,
                        help="analyze only these paths (relative to --root); "
                             "exclusion filters are bypassed")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if args.files is not None:
        rel_paths = [os.path.relpath(os.path.abspath(p), root)
                     if os.path.isabs(p) else p for p in args.files]
    else:
        rel_paths = collect_files(root, args.compdb)

    # The internal lexical scan always runs: the statement-level rules
    # (blocking/guard/untrusted-size/unchecked-status) need its statement
    # stream. --frontend=libclang swaps in an AST-derived call graph for the
    # hot-alloc reachability BFS only.
    model = SourceModel()
    for rel_path in rel_paths:
        scan_file_internal(model, root, rel_path)
    hot_model = None
    if args.frontend == "libclang":
        hot_model = SourceModel()
        scan_tree_libclang(hot_model, root, rel_paths, args.compdb)
        hot_model.leaf_names |= model.leaf_names

    findings = collect_findings(model, hot_model)
    for finding in findings:
        print(finding)
    if findings:
        print("analyze: %d finding(s) in %d file(s)" % (
            len(findings), len({f.rel_path for f in findings})))
        return 1
    print("analyze: OK (%d files, %d functions, %d hot roots)" % (
        len(rel_paths), sum(len(d) for d in model.functions.values()),
        len(model.hot_names)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
