#!/bin/sh
# End-to-end TCP serving smoke test: the same generate → train → serve →
# golden-diff loop as serve_smoke.sh, but over a real loopback socket
# (adpa_serve --listen) instead of stdin/stdout. The TCP reply formatting is
# byte-identical to stdin mode by design, so the SAME golden file is the
# oracle: any divergence means the network layer reordered, dropped, or
# reframed a reply.
#
# A python3 client streams the full query file over one connection (half-
# closing the write side to flush the final unterminated line), collects
# replies until EOF, and the harness then SIGTERMs the server and asserts a
# clean drain (notice on stderr, exit 0). Skips with 77 when python3 is
# unavailable.
#
# The SIMD dispatch level is pinned to portable for the same reason as
# serve_smoke.sh: the golden encodes a 30-epoch training trajectory, which
# is chaotic in the kernel level.
#
# usage: tools/serve_tcp_smoke.sh [build-dir]
set -eu

ADPA_SIMD_LEVEL=portable
export ADPA_SIMD_LEVEL

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="$BUILD_DIR/tools/adpa_cli"
SERVE="$BUILD_DIR/tools/adpa_serve"
QUERIES="$ROOT/tests/golden/serve_smoke_queries.jsonl"
GOLDEN="$ROOT/tests/golden/serve_smoke_replies.jsonl"

if ! command -v python3 > /dev/null 2>&1; then
  echo "serve_tcp_smoke: SKIP — python3 (the TCP test client) not found" >&2
  exit 77
fi

for bin in "$CLI" "$SERVE"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_tcp_smoke: FAIL — $1" >&2
  echo "serve_tcp_smoke: server log follows" >&2
  cat "$WORK/serve.log" >&2
  exit 1
}

"$CLI" generate --name=Texas --seed=7 --out="$WORK/texas.txt" > /dev/null
"$CLI" train --in="$WORK/texas.txt" --model=ADPA --seed=42 --epochs=30 \
  --save_checkpoint="$WORK/model.ckpt" > /dev/null

"$SERVE" --checkpoint="$WORK/model.ckpt" --in="$WORK/texas.txt" \
  --batch_lines=8 --listen=127.0.0.1:0 2> "$WORK/serve.log" &
SERVE_PID=$!

tries=0
until grep -q '^listening on 127\.0\.0\.1:' "$WORK/serve.log"; do
  tries=$((tries + 1))
  [ "$tries" -lt 100 ] || fail "server did not come up within 10s"
  sleep 0.1
done
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$WORK/serve.log" | head -n 1)"
[ -n "$PORT" ] || fail "could not parse the listen port"

# Stream every query over one connection, half-close, read replies to EOF.
python3 - "$PORT" "$QUERIES" > "$WORK/replies.jsonl" <<'PYEOF' \
  || fail "TCP client failed"
import socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=30)
sock.settimeout(30)
with open(sys.argv[2], "rb") as queries:
    sock.sendall(queries.read())
sock.shutdown(socket.SHUT_WR)
while True:
    chunk = sock.recv(65536)
    if not chunk:
        break
    sys.stdout.buffer.write(chunk)
sys.stdout.buffer.flush()
PYEOF

if ! diff -u "$GOLDEN" "$WORK/replies.jsonl"; then
  fail "TCP replies diverge from $GOLDEN"
fi

kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
[ "$rc" -eq 0 ] || fail "server exited $rc after SIGTERM, want drain + 0"
grep -q 'draining: received signal' "$WORK/serve.log" \
  || fail "no drain notice on stderr"

echo "serve_tcp_smoke: OK ($(wc -l < "$GOLDEN") replies match golden" \
  "over TCP, SIGTERM drained)"
