// adpa_cli — command-line front end for the library's data-engineering
// workflow on user-supplied graphs (paper Fig. 1 as a tool):
//
//   adpa_cli generate --name=Chameleon --seed=0 --scale=1.0 --out=g.txt
//       Materialize a registry benchmark into a portable dataset file.
//
//   adpa_cli analyze --in=g.txt
//       Print graph statistics, all homophily measures, and the AMUD
//       guidance (directed vs undirected modeling).
//
//   adpa_cli train --in=g.txt --model=ADPA [--undirect] [--epochs=200]
//                  [--hidden=64] [--steps=2] [--order=2] [--lr=0.01]
//                  [--save_checkpoint=m.ckpt]
//       Train any registered model on the dataset and report accuracy;
//       optionally persist the trained model (src/io/checkpoint.h).
//
//   adpa_cli train --in=g.txt --load_checkpoint=m.ckpt
//       Skip training: restore the model from a checkpoint (hyperparameters
//       come from the checkpoint, not the flags) and report test accuracy.
//
//   adpa_cli train --in=g.txt ... --checkpoint_every=25 --checkpoint_path=s.ckpt
//       Crash-safe training: every N epochs, atomically snapshot the full
//       training state (weights + Adam moments + RNG/epoch cursor).
//
//   adpa_cli train --in=g.txt --resume_from=s.ckpt
//       Continue an interrupted run from its latest snapshot. Model shape,
//       patterns, and training hyperparameters come from the snapshot; at
//       the same thread count the final weights are bitwise identical to an
//       uninterrupted run.

#include <cstdio>
#include <string>

#include "src/amud/amud.h"
#include "src/core/flags.h"
#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/data/io.h"
#include "src/graph/algorithms.h"
#include "src/io/checkpoint.h"
#include "src/metrics/homophily.h"
#include "src/models/factory.h"
#include "src/tensor/simd.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: adpa_cli <generate|analyze|train> [--flags]\n"
               "  generate --name=<benchmark> [--seed=N --scale=F] --out=F\n"
               "  analyze  --in=<file>\n"
               "  train    --in=<file> --model=<name> [--undirect]\n"
               "           [--epochs=N --hidden=N --steps=N --order=N "
               "--lr=F --seed=N --check_finite]\n"
               "           [--save_checkpoint=F | --load_checkpoint=F]\n"
               "           [--checkpoint_every=N --checkpoint_path=F]\n"
               "           [--resume_from=F]\n"
               "  any command also accepts --threads=N (0 = auto); results\n"
               "  are independent of the thread count\n"
               "  --simd_level=<portable|avx2|avx512> pins the kernel\n"
               "  dispatch level (default: fastest the CPU supports)\n");
  return 2;
}

int Generate(const Flags& flags) {
  const std::string name = flags.GetString("name", "");
  const std::string out = flags.GetString("out", "");
  if (name.empty() || out.empty()) return Usage();
  Result<Dataset> dataset = BuildBenchmarkByName(
      name, static_cast<uint64_t>(flags.GetInt("seed", 0)),
      flags.GetDouble("scale", 1.0));
  if (!dataset.ok()) return Fail(dataset.status());
  const Status saved = SaveDataset(*dataset, out);
  if (!saved.ok()) return Fail(saved);
  std::printf("wrote %s: %lld nodes, %lld edges, %lld classes\n",
              out.c_str(), static_cast<long long>(dataset->num_nodes()),
              static_cast<long long>(dataset->num_edges()),
              static_cast<long long>(dataset->num_classes));
  return 0;
}

int Analyze(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Usage();
  Result<Dataset> dataset = LoadDataset(in);
  if (!dataset.ok()) return Fail(dataset.status());

  const DegreeStats degrees = ComputeDegreeStats(dataset->graph);
  const ComponentLabeling wcc = WeaklyConnectedComponents(dataset->graph);
  const ComponentLabeling scc = StronglyConnectedComponents(dataset->graph);
  std::printf("dataset %s: %lld nodes, %lld edges, %lld classes, %lld "
              "features\n",
              dataset->name.c_str(),
              static_cast<long long>(dataset->num_nodes()),
              static_cast<long long>(dataset->num_edges()),
              static_cast<long long>(dataset->num_classes),
              static_cast<long long>(dataset->feature_dim()));
  std::printf("degrees: mean out %.2f (max %.0f), mean in %.2f (max %.0f), "
              "%lld sources, %lld sinks\n",
              degrees.mean_out, degrees.max_out, degrees.mean_in,
              degrees.max_in, static_cast<long long>(degrees.sources),
              static_cast<long long>(degrees.sinks));
  std::printf("components: %lld weak, %lld strong; reciprocity %.3f\n",
              static_cast<long long>(wcc.num_components),
              static_cast<long long>(scc.num_components),
              dataset->graph.ReciprocityRatio());

  const HomophilyReport homophily = ComputeHomophilyReport(
      dataset->graph, dataset->labels, dataset->num_classes);
  std::printf(
      "homophily: node %.3f edge %.3f class %.3f adjusted %.3f LI %.3f\n",
      homophily.node, homophily.edge, homophily.cls, homophily.adjusted,
      homophily.li);

  Result<AmudReport> amud =
      ComputeAmud(dataset->graph, dataset->labels, dataset->num_classes);
  if (!amud.ok()) return Fail(amud.status());
  std::printf("%s", amud->ToString().c_str());
  return 0;
}

int Train(const Flags& flags) {
  const std::string in = flags.GetString("in", "");
  const std::string model_name = flags.GetString("model", "ADPA");
  if (in.empty()) return Usage();
  Result<Dataset> dataset = LoadDataset(in);
  if (!dataset.ok()) return Fail(dataset.status());
  Dataset input = flags.GetBool("undirect", false)
                      ? dataset->WithUndirectedGraph()
                      : std::move(*dataset);

  const std::string load_path = flags.GetString("load_checkpoint", "");
  if (!load_path.empty()) {
    Result<Checkpoint> checkpoint = TryLoadCheckpoint(load_path);
    if (!checkpoint.ok()) return Fail(checkpoint.status());
    if (checkpoint->dataset_hash != 0 &&
        checkpoint->dataset_hash != DatasetContentHash(input)) {
      return Fail(Status::FailedPrecondition(
          "dataset content does not match the checkpoint (was it trained "
          "with/without --undirect, or on different data?)"));
    }
    Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    // Propagate with the checkpoint's recorded DP pattern set: the content
    // hash above does not cover the train split, and a correlation-selected
    // subset re-derived from a different split would silently bind the
    // restored weights to the wrong patterns.
    Result<ModelPtr> model = CreateModelWithPatterns(
        checkpoint->model_name, input, checkpoint->model_config,
        checkpoint->patterns, &rng);
    if (!model.ok()) return Fail(model.status());
    const Status loaded = LoadCheckpointIntoModel(*checkpoint, model->get());
    if (!loaded.ok()) return Fail(loaded);
    const Matrix logits = (*model)->Forward(/*training=*/false, &rng).value();
    std::printf("%s restored from %s: train %.1f%%, val %.1f%%, test %.1f%%\n",
                checkpoint->model_name.c_str(), load_path.c_str(),
                Accuracy(logits, input.labels, input.train_idx) * 100.0,
                Accuracy(logits, input.labels, input.val_idx) * 100.0,
                Accuracy(logits, input.labels, input.test_idx) * 100.0);
    return 0;
  }

  const std::string resume_path = flags.GetString("resume_from", "");
  ModelConfig config;
  TrainConfig train_config;
  std::string resolved_model_name = model_name;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
  Result<ModelPtr> model = Status::Internal("model not constructed");
  if (!resume_path.empty()) {
    // Resume: everything that shaped the original run — model name, config,
    // pattern set, training hyperparameters — comes from the snapshot, not
    // the flags, so the resumed trajectory is the original one.
    Result<Checkpoint> snapshot = TryLoadCheckpoint(resume_path);
    if (!snapshot.ok()) return Fail(snapshot.status());
    if (!snapshot->train_state.has_value()) {
      return Fail(Status::InvalidArgument(
          resume_path + " is a final checkpoint without training state; "
          "only periodic snapshots (--checkpoint_every) can be resumed"));
    }
    if (snapshot->dataset_hash != 0 &&
        snapshot->dataset_hash != DatasetContentHash(input)) {
      return Fail(Status::FailedPrecondition(
          "dataset content does not match the snapshot (was it trained "
          "with/without --undirect, or on different data?)"));
    }
    resolved_model_name = snapshot->model_name;
    config = snapshot->model_config;
    model = CreateModelWithPatterns(resolved_model_name, input, config,
                                    snapshot->patterns, &rng);
    train_config = snapshot->train_config;
    train_config.check_finite = flags.GetBool("check_finite", false);
    train_config.resume_from = resume_path;
    // Keep snapshotting into the same file by default: a run that survived
    // one interruption should stay crash-safe without re-plumbing flags.
    train_config.checkpoint_every =
        static_cast<int>(flags.GetInt("checkpoint_every", 0));
    train_config.checkpoint_path =
        flags.GetString("checkpoint_path", resume_path);
  } else {
    config.hidden = flags.GetInt("hidden", 64);
    config.propagation_steps = static_cast<int>(flags.GetInt("steps", 2));
    config.pattern_order = static_cast<int>(flags.GetInt("order", 2));
    config.dropout = static_cast<float>(flags.GetDouble("dropout", 0.5));
    model = CreateModel(resolved_model_name, input, config, &rng);
    train_config.max_epochs = static_cast<int>(flags.GetInt("epochs", 200));
    train_config.patience = static_cast<int>(flags.GetInt("patience", 30));
    train_config.learning_rate =
        static_cast<float>(flags.GetDouble("lr", 0.01));
    train_config.check_finite = flags.GetBool("check_finite", false);
    train_config.checkpoint_every =
        static_cast<int>(flags.GetInt("checkpoint_every", 0));
    train_config.checkpoint_path = flags.GetString("checkpoint_path", "");
  }
  if (!model.ok()) return Fail(model.status());
  if (train_config.checkpoint_every > 0 &&
      train_config.checkpoint_path.empty()) {
    return Fail(Status::InvalidArgument(
        "--checkpoint_every requires --checkpoint_path"));
  }

  SnapshotContext context;
  context.model_name = resolved_model_name;
  context.model_config = config;
  const Result<TrainResult> trained =
      TrainModelResumable(model->get(), input, train_config, &rng, &context);
  if (!trained.ok()) return Fail(trained.status());
  const TrainResult& result = *trained;
  if (result.resumed_from_epoch >= 0) {
    std::printf("resumed %s from %s at epoch %d\n",
                resolved_model_name.c_str(), resume_path.c_str(),
                result.resumed_from_epoch);
  }
  std::printf("%s on %s: val %.1f%% (epoch %d), test %.1f%% after %d "
              "epochs\n",
              resolved_model_name.c_str(), input.name.c_str(),
              result.best_val_accuracy * 100.0, result.best_epoch,
              result.test_accuracy * 100.0, result.epochs_run);

  const std::string save_path = flags.GetString("save_checkpoint", "");
  if (!save_path.empty()) {
    const Checkpoint checkpoint = MakeCheckpoint(
        *model->get(), resolved_model_name, input, config, train_config);
    const Status saved = SaveCheckpoint(checkpoint, save_path);
    if (!saved.ok()) return Fail(saved);
    std::printf("checkpoint written to %s (%lld tensors)\n",
                save_path.c_str(),
                static_cast<long long>(checkpoint.tensors.size()));
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  if (!flags.Parse(argc - 1, argv + 1)) return Usage();
  // 0 = auto (ADPA_NUM_THREADS env var, then hardware concurrency).
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  // Resolve the dispatch level eagerly so a bad ADPA_SIMD_LEVEL aborts at
  // startup instead of on the first kernel call (which some commands never
  // reach).
  simd::ActiveLevel();
  if (flags.Has("simd_level")) {
    const std::string level_name = flags.GetString("simd_level", "");
    simd::Level level;
    if (!simd::ParseLevel(level_name, &level)) {
      std::fprintf(stderr, "error: unknown --simd_level=%s\n",
                   level_name.c_str());
      return Usage();
    }
    if (!simd::LevelSupported(level)) {
      std::fprintf(stderr, "error: --simd_level=%s not supported by this CPU\n",
                   level_name.c_str());
      return 1;
    }
    simd::SetLevel(level);
  }
  if (command == "generate") return Generate(flags);
  if (command == "analyze") return Analyze(flags);
  if (command == "train") return Train(flags);
  return Usage();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
