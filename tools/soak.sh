#!/bin/sh
# Chaos soak harness (DESIGN.md §15): certifies that the serving stack
# survives *combinations* of faults under sustained mixed traffic.
#
#   train checkpoint ── adpa_serve (ADPA_CHAOS=seed:intensity:net.)
#                          ▲
#            chaos_proxy ──┘  (split/trickle/delay/garbage/RST, seeded)
#                          ▲
#            soak_harness ─┘  (queries + reloads, K connections)
#
# Invariants asserted per seed:
#   0. the server process never crashes (SIGTERM at the end drains, exit 0)
#   1. every reply line parses under the restricted JSONL grammar
#   2. reply ids stay strictly increasing per connection
#   3. every classes reply is bitwise-identical to the fault-free golden
#   4. peak RSS (VmHWM) stays under SOAK_MAX_RSS_MB
# plus, once per run:
#   - a malformed ADPA_CHAOS value exits 41 (like malformed ADPA_FAILPOINTS)
#   - a deliberately-failing seed replays deterministically: same schedule
#     log, same failure, from ADPA_CHAOS alone
#   - the realized schedule is process-independent (adpa_cli and adpa_serve
#     print identical `chaos:` lines for the same spec)
#
# Environment knobs (CI sets these; local ctest uses the defaults):
#   SOAK_SECONDS      seconds of soak per seed          (default 5)
#   SOAK_SEEDS        space-separated seed list         (default "3 17 29")
#   SOAK_INTENSITY    chaos arming probability          (default 0.35)
#   SOAK_PROXY_RATE   proxy per-chunk fault probability (default 0.25)
#   SOAK_MAX_RSS_MB   server VmHWM ceiling              (default 1024)
#   SOAK_LOG_DIR      where serve/proxy/soak logs land  (default: temp dir)
#
# Needs binaries built with -DADPA_FAILPOINTS=ON (the `recovery` preset);
# exits 77 (the ctest SKIP convention) otherwise.
#
# usage: tools/soak.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-recovery}"
CLI="$BUILD_DIR/tools/adpa_cli"
SERVE="$BUILD_DIR/tools/adpa_serve"
PROXY="$BUILD_DIR/tools/chaos_proxy"
SOAK="$BUILD_DIR/bench/soak_harness"

for bin in "$CLI" "$SERVE" "$PROXY" "$SOAK"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

SOAK_SECONDS="${SOAK_SECONDS:-5}"
SOAK_SEEDS="${SOAK_SEEDS:-3 17 29}"
SOAK_INTENSITY="${SOAK_INTENSITY:-0.35}"
SOAK_PROXY_RATE="${SOAK_PROXY_RATE:-0.25}"
SOAK_MAX_RSS_MB="${SOAK_MAX_RSS_MB:-1024}"

WORK="$(mktemp -d)"
LOG_DIR="${SOAK_LOG_DIR:-$WORK}"
mkdir -p "$LOG_DIR"
SERVE_PID=""
PROXY_PID=""
HUP_PID=""
cleanup() {
  for pid in $SERVE_PID $PROXY_PID $HUP_PID; do
    kill "$pid" 2> /dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "soak: FAIL — $1" >&2
  exit 1
}

# Polls a log file for a pattern; dies after 10 s.
wait_for() {
  _tries=0
  until grep -q "$1" "$2" 2> /dev/null; do
    _tries=$((_tries + 1))
    [ "$_tries" -lt 100 ] || fail "timed out waiting for '$1' in $2"
    sleep 0.1
  done
}

"$CLI" generate --name=Texas --seed=7 --out="$WORK/texas.txt" > /dev/null

# --- compiled-in probe + malformed-spec contract --------------------------
# A malformed ADPA_CHAOS must abort with 41 at the first hooked seam
# (`analyze` hits dataset.load), exactly like a malformed ADPA_FAILPOINTS.
rc=0
ADPA_CHAOS='not-a-spec' "$CLI" analyze --in="$WORK/texas.txt" \
  > /dev/null 2>&1 || rc=$?
if [ "$rc" -eq 0 ]; then
  echo "soak: SKIP — failpoints compiled out (need the recovery preset:" \
    "cmake --preset recovery)" >&2
  exit 77
fi
[ "$rc" -eq 41 ] || fail "malformed ADPA_CHAOS exited $rc, want 41"

# --- replay determinism: a failing seed fails identically, twice ----------
# Intensity 1 restricted to trainer.epoch arms error@1inN with N in [2,5];
# 30 epochs guarantee it fires, so the run fails — and must fail the same
# way, with the same schedule log, from the env value alone.
for attempt in 1 2; do
  rc=0
  ADPA_CHAOS='13:1:trainer.epoch' "$CLI" train --in="$WORK/texas.txt" \
    --model=ADPA --seed=42 --epochs=30 --patience=0 \
    > /dev/null 2> "$WORK/replay_$attempt.log" || rc=$?
  [ "$rc" -ne 0 ] || fail "replay seed 13 did not fail (attempt $attempt)"
  grep -q '^chaos: trainer\.epoch=' "$WORK/replay_$attempt.log" \
    || fail "no realized schedule in the replay log (attempt $attempt)"
  grep '^chaos:' "$WORK/replay_$attempt.log" \
    > "$WORK/replay_schedule_$attempt.txt"
  grep '^error:' "$WORK/replay_$attempt.log" \
    > "$WORK/replay_error_$attempt.txt" || true
done
cmp -s "$WORK/replay_schedule_1.txt" "$WORK/replay_schedule_2.txt" \
  || fail "replay runs realized different schedules from the same seed"
cmp -s "$WORK/replay_error_1.txt" "$WORK/replay_error_2.txt" \
  || fail "replay runs failed differently from the same seed"

# --- golden phase: fault-free server, record every query pattern ----------
"$CLI" train --in="$WORK/texas.txt" --model=ADPA --seed=42 --epochs=30 \
  --patience=0 --save_checkpoint="$WORK/model.ckpt" > /dev/null

"$SERVE" --checkpoint="$WORK/model.ckpt" --in="$WORK/texas.txt" \
  --listen=127.0.0.1:0 2> "$LOG_DIR/serve_golden.log" &
SERVE_PID=$!
wait_for '^listening on 127\.0\.0\.1:' "$LOG_DIR/serve_golden.log"
PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$LOG_DIR/serve_golden.log" | head -n 1)"
"$SOAK" --connect=127.0.0.1:"$PORT" --golden="$WORK/golden.tsv" \
  --record_golden 2> "$LOG_DIR/soak_golden.log" \
  || fail "golden recording failed: $(cat "$LOG_DIR/soak_golden.log")"
kill -TERM "$SERVE_PID"
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=""
[ "$rc" -eq 0 ] || fail "fault-free server exited $rc after SIGTERM"

# --- soak loop: one chaos schedule + byzantine proxy per seed -------------
for seed in $SOAK_SEEDS; do
  echo "soak: seed $seed (${SOAK_SECONDS}s, chaos $SOAK_INTENSITY on net.," \
    "proxy rate $SOAK_PROXY_RATE)"

  ADPA_CHAOS="$seed:$SOAK_INTENSITY:net." \
    "$SERVE" --checkpoint="$WORK/model.ckpt" --in="$WORK/texas.txt" \
    --listen=127.0.0.1:0 --idle_timeout_ms=2000 --stall_timeout_ms=1500 \
    2> "$LOG_DIR/serve_$seed.log" &
  SERVE_PID=$!
  wait_for '^listening on 127\.0\.0\.1:' "$LOG_DIR/serve_$seed.log"
  SPORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$LOG_DIR/serve_$seed.log" | head -n 1)"

  # The realized schedule must be in the log (that is the replay contract)
  # and must be process-independent: adpa_cli prints the identical lines
  # for the same env value.
  grep -q '^chaos: seed=' "$LOG_DIR/serve_$seed.log" \
    || fail "no realized chaos schedule in serve_$seed.log"
  rc=0
  ADPA_CHAOS="$seed:$SOAK_INTENSITY:net." "$CLI" analyze \
    --in="$WORK/texas.txt" > /dev/null 2> "$WORK/cli_chaos.log" || rc=$?
  [ "$rc" -eq 0 ] || fail "analyze under a net.-scoped schedule exited $rc"
  grep '^chaos:' "$LOG_DIR/serve_$seed.log" > "$WORK/schedule_serve.txt"
  grep '^chaos:' "$WORK/cli_chaos.log" > "$WORK/schedule_cli.txt"
  cmp -s "$WORK/schedule_serve.txt" "$WORK/schedule_cli.txt" \
    || fail "seed $seed schedule differs between adpa_serve and adpa_cli"

  "$PROXY" --upstream=127.0.0.1:"$SPORT" --listen=127.0.0.1:0 \
    --seed="$seed" --intensity="$SOAK_PROXY_RATE" \
    2> "$LOG_DIR/proxy_$seed.log" &
  PROXY_PID=$!
  wait_for '^proxy listening on 127\.0\.0\.1:' "$LOG_DIR/proxy_$seed.log"
  PPORT="$(sed -n 's/^proxy listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$LOG_DIR/proxy_$seed.log" | head -n 1)"

  # SIGHUP pinger: hot-reload signals race the mixed workload throughout.
  (
    i=0
    while [ "$i" -lt $((SOAK_SECONDS * 2)) ]; do
      sleep 0.5
      kill -HUP "$SERVE_PID" 2> /dev/null || exit 0
      i=$((i + 1))
    done
  ) &
  HUP_PID=$!

  rc=0
  "$SOAK" --connect=127.0.0.1:"$PPORT" --golden="$WORK/golden.tsv" \
    --seconds="$SOAK_SECONDS" --seed="$seed" --connections=4 \
    --reload_path="$WORK/model.ckpt" --reload_every=32 \
    2> "$LOG_DIR/soak_$seed.log" || rc=$?
  [ "$rc" -eq 0 ] || {
    cat "$LOG_DIR/soak_$seed.log" >&2
    fail "seed $seed violated a soak invariant (soak_harness exited $rc)"
  }

  # Invariant 0: still alive after the storm. Invariant 4: bounded RSS.
  kill -0 "$SERVE_PID" 2> /dev/null \
    || fail "seed $seed: server died during the soak"
  rss_kb="$(awk '/^VmHWM:/ {print $2}' "/proc/$SERVE_PID/status" \
    2> /dev/null || echo 0)"
  [ "${rss_kb:-0}" -gt 0 ] || fail "seed $seed: could not read VmHWM"
  [ "$rss_kb" -le $((SOAK_MAX_RSS_MB * 1024)) ] \
    || fail "seed $seed: VmHWM ${rss_kb}kB exceeds ${SOAK_MAX_RSS_MB}MB"

  kill "$HUP_PID" 2> /dev/null || true
  wait "$HUP_PID" 2> /dev/null || true
  HUP_PID=""

  kill -TERM "$SERVE_PID"
  rc=0
  wait "$SERVE_PID" || rc=$?
  SERVE_PID=""
  [ "$rc" -eq 0 ] || fail "seed $seed: server exited $rc after SIGTERM"
  grep -q 'draining: received signal' "$LOG_DIR/serve_$seed.log" \
    || fail "seed $seed: no drain notice on stderr"

  kill -TERM "$PROXY_PID" 2> /dev/null || true
  wait "$PROXY_PID" 2> /dev/null || true
  PROXY_PID=""

  ok_line="$(grep '^soak: sent' "$LOG_DIR/soak_$seed.log" || true)"
  echo "soak: seed $seed OK — ${ok_line#soak: } (VmHWM ${rss_kb}kB)"
done

echo "soak: OK ($(echo "$SOAK_SEEDS" | wc -w) seeds x ${SOAK_SECONDS}s," \
  "malformed spec exits 41, failing seed 13 replays bitwise)"
