#!/bin/sh
# Runs the kernel micro-bench suite and records its JSON report so the perf
# trajectory is tracked in-repo across PRs (see BENCH_kernels.json).
#
# usage: tools/bench_to_json.sh [build-dir] [out-file]
set -eu

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_kernels.json}"
BENCH_BIN="$BUILD_DIR/bench/bench_kernels"

if [ ! -x "$BENCH_BIN" ]; then
  echo "error: $BENCH_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BENCH_BIN" \
  --benchmark_filter='BM_(MatMulSeedKernel512|MatMulBlocked512|SpMM|DenseMatMul|DpPropagation)' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$OUT_FILE"

echo "wrote $OUT_FILE"
