#!/bin/sh
# Runs the kernel micro-bench suite and the serving bench, recording their
# JSON reports so the perf trajectory is tracked in-repo across PRs (see
# BENCH_kernels.json and BENCH_serve.json).
#
# usage: tools/bench_to_json.sh [build-dir] [out-file] [serve-out-file]
set -eu

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_kernels.json}"
SERVE_OUT_FILE="${3:-BENCH_serve.json}"
BENCH_BIN="$BUILD_DIR/bench/bench_kernels"
SERVE_BIN="$BUILD_DIR/bench/serve_bench"

if [ ! -x "$BENCH_BIN" ]; then
  echo "error: $BENCH_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BENCH_BIN" \
  --benchmark_filter='BM_(MatMulSeedKernel512|MatMulBlocked512|SpMM|DenseMatMul|DpPropagation)' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$OUT_FILE"

echo "wrote $OUT_FILE"

if [ ! -x "$SERVE_BIN" ]; then
  echo "error: $SERVE_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$SERVE_BIN" > "$SERVE_OUT_FILE"

echo "wrote $SERVE_OUT_FILE"
