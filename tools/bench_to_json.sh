#!/bin/sh
# Runs the kernel micro-bench suite and the serving benches, recording their
# JSON reports so the perf trajectory is tracked in-repo across PRs (see
# BENCH_kernels.json and BENCH_serve.json). BENCH_serve.json holds a
# `reports` array with one entry per transport: the in-process
# batcher-direct rows (serve_bench, `"transport": "in_process"`) and the
# TCP sustained-load rows (load_bench, `"transport": "tcp"` with the
# headline `sustained_qps_at_slo` under `slo_p99_ms`).
#
# Provenance guard: both binaries self-report whether THIS code was compiled
# with NDEBUG ("adpa_build_type" in the google-benchmark context,
# "build_type" in serve_bench's report). Numbers from a debug or sanitizer
# build are refused — they would silently poison the tracked trajectory —
# unless --allow-debug is given (for local experiments only; never commit
# such files). The stock "library_build_type" key is NOT consulted: it only
# describes the installed google-benchmark library.
#
# usage: tools/bench_to_json.sh [--allow-debug] [build-dir] [out-file] [serve-out-file]
set -eu

ALLOW_DEBUG=0
if [ "${1:-}" = "--allow-debug" ]; then
  ALLOW_DEBUG=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_kernels.json}"
SERVE_OUT_FILE="${3:-BENCH_serve.json}"
BENCH_BIN="$BUILD_DIR/bench/bench_kernels"
SERVE_BIN="$BUILD_DIR/bench/serve_bench"
LOAD_BIN="$BUILD_DIR/bench/load_bench"

# check_release <file> <json-key>: refuse a report whose self-declared build
# type is not "release" (unless --allow-debug).
check_release() {
  if grep -q "\"$2\": \"release\"" "$1"; then
    return 0
  fi
  if [ "$ALLOW_DEBUG" = 1 ]; then
    echo "warning: $1 comes from a non-release build (kept: --allow-debug)" >&2
    return 0
  fi
  echo "error: $1 comes from a non-release build ($2 != \"release\");" >&2
  echo "       rebuild with the default Release preset, or pass --allow-debug" >&2
  echo "       to keep the numbers for local comparison (never commit them)" >&2
  rm -f "$1"
  exit 1
}

if [ ! -x "$BENCH_BIN" ]; then
  echo "error: $BENCH_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BENCH_BIN" \
  --benchmark_filter='BM_(MatMulSeedKernel512|MatMulBlocked512|MatMulDispatch512|SpMM|DenseMatMul|DpPropagation|HopChainUnfused|HopChainFused)' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$OUT_FILE"

check_release "$OUT_FILE" "adpa_build_type"
echo "wrote $OUT_FILE"

for bin in "$SERVE_BIN" "$LOAD_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$SERVE_BIN" > "$WORK/in_process.json"
check_release "$WORK/in_process.json" "build_type"
grep -q '"transport": "in_process"' "$WORK/in_process.json" || {
  echo "error: serve_bench report lacks the transport key" >&2
  exit 1
}

"$LOAD_BIN" > "$WORK/tcp.json"
check_release "$WORK/tcp.json" "build_type"
for key in '"transport": "tcp"' '"slo_p99_ms"' '"sustained_qps_at_slo"'; do
  grep -q "$key" "$WORK/tcp.json" || {
    echo "error: load_bench report lacks the $key key" >&2
    exit 1
  }
done

{
  echo '{'
  echo '"reports": ['
  cat "$WORK/in_process.json"
  echo ','
  cat "$WORK/tcp.json"
  echo ']'
  echo '}'
} > "$SERVE_OUT_FILE"
echo "wrote $SERVE_OUT_FILE"
