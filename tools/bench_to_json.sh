#!/bin/sh
# Runs the kernel micro-bench suite and the serving bench, recording their
# JSON reports so the perf trajectory is tracked in-repo across PRs (see
# BENCH_kernels.json and BENCH_serve.json).
#
# Provenance guard: both binaries self-report whether THIS code was compiled
# with NDEBUG ("adpa_build_type" in the google-benchmark context,
# "build_type" in serve_bench's report). Numbers from a debug or sanitizer
# build are refused — they would silently poison the tracked trajectory —
# unless --allow-debug is given (for local experiments only; never commit
# such files). The stock "library_build_type" key is NOT consulted: it only
# describes the installed google-benchmark library.
#
# usage: tools/bench_to_json.sh [--allow-debug] [build-dir] [out-file] [serve-out-file]
set -eu

ALLOW_DEBUG=0
if [ "${1:-}" = "--allow-debug" ]; then
  ALLOW_DEBUG=1
  shift
fi

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_kernels.json}"
SERVE_OUT_FILE="${3:-BENCH_serve.json}"
BENCH_BIN="$BUILD_DIR/bench/bench_kernels"
SERVE_BIN="$BUILD_DIR/bench/serve_bench"

# check_release <file> <json-key>: refuse a report whose self-declared build
# type is not "release" (unless --allow-debug).
check_release() {
  if grep -q "\"$2\": \"release\"" "$1"; then
    return 0
  fi
  if [ "$ALLOW_DEBUG" = 1 ]; then
    echo "warning: $1 comes from a non-release build (kept: --allow-debug)" >&2
    return 0
  fi
  echo "error: $1 comes from a non-release build ($2 != \"release\");" >&2
  echo "       rebuild with the default Release preset, or pass --allow-debug" >&2
  echo "       to keep the numbers for local comparison (never commit them)" >&2
  rm -f "$1"
  exit 1
}

if [ ! -x "$BENCH_BIN" ]; then
  echo "error: $BENCH_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$BENCH_BIN" \
  --benchmark_filter='BM_(MatMulSeedKernel512|MatMulBlocked512|MatMulDispatch512|SpMM|DenseMatMul|DpPropagation|HopChainUnfused|HopChainFused)' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$OUT_FILE"

check_release "$OUT_FILE" "adpa_build_type"
echo "wrote $OUT_FILE"

if [ ! -x "$SERVE_BIN" ]; then
  echo "error: $SERVE_BIN not built (run: cmake --build $BUILD_DIR)" >&2
  exit 1
fi

"$SERVE_BIN" > "$SERVE_OUT_FILE"

check_release "$SERVE_OUT_FILE" "build_type"
echo "wrote $SERVE_OUT_FILE"
