// Fig. 6: accuracy under different propagation step counts K for SGC,
// GPRGNN, NSTE, DIMPA, and ADPA — three AMUndirected datasets (CoraML,
// CiteSeer, Actor) and three AMDirected ones (Cornell, Chameleon,
// Squirrel).
//
// Paper shape to reproduce: most models improve up to K ≈ 3 then decay
// (over-smoothing); ADPA's node-wise hop attention keeps it flat-or-best
// as K grows.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 1, .epochs = 40, .patience = 10, .scale = 0.3});
  std::printf(
      "Fig. 6: accuracy vs propagation steps K (repeats=%d epochs=%d "
      "scale=%.2f)\n",
      options.repeats, options.epochs, options.scale);
  const char* models[] = {"SGC", "GPRGNN", "NSTE", "DIMPA", "ADPA"};
  for (const char* ds_name : {"CoraML", "CiteSeer", "Actor", "Cornell",
                              "Chameleon", "Squirrel"}) {
    const BenchmarkSpec spec = std::move(FindBenchmark(ds_name)).value();
    std::printf("\n%s (%s):\n", ds_name,
                spec.expect_directed ? "AMDirected" : "AMUndirected");
    TablePrinter table({"Model", "K=1", "K=2", "K=3", "K=4", "K=5"});
    for (const char* model : models) {
      std::vector<std::string> row = {model};
      for (int steps = 1; steps <= 5; ++steps) {
        ModelConfig config;
        config.propagation_steps = steps;
        // NSTE's receptive field grows with its layer count rather than a
        // decoupled step parameter; sweep depth for it (min 2 layers).
        if (model == std::string("NSTE")) {
          config.num_layers = std::max(2, steps);
        }
        const bool undirect = model == std::string("ADPA")
                                  ? !spec.expect_directed
                                  : ShouldUndirectInput(model);
        Result<RepeatedResult> cell = RunRepeated(
            model,
            [&spec, &options](uint64_t seed) {
              return BuildBenchmark(spec, seed, options.scale);
            },
            config, bench::MakeTrainConfig(options), options.repeats,
            undirect);
        ADPA_CHECK(cell.ok()) << cell.status().ToString();
        row.push_back(FormatDouble(cell->mean, 1));
        std::fprintf(stderr, ".");
      }
      table.AddRow(row);
    }
    table.Print();
  }
  std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
