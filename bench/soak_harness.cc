// soak_harness — invariant-checking mixed-workload client (DESIGN.md §15).
//
// Drives adpa_serve (usually through tools/chaos_proxy) with concurrent
// connections sending a mix of queries and {"reload": ...} admin requests,
// and checks the serving invariants that ADPA's decoupled precompute/serve
// split makes strong enough to assert bitwise:
//
//   1. every complete reply line parses under the restricted JSONL grammar
//      (serve::ParseReplyLine — the read-side mirror of the formatters);
//   2. reply ids are strictly increasing per connection (in-order replies);
//   3. every classes reply is byte-identical to the fault-free golden for
//      its query pattern (the forward is stateless per batch, so faults
//      may *drop* or *error* a request but never change an answer);
//   4. structured degradation only: errors and overloaded replies are
//      tolerated and counted, crashes and garbage are not.
//
// (Invariant 0 — the server process never dies — and invariant 5 — peak
// RSS stays bounded — are checked by tools/soak.sh, which owns the server
// process.)
//
// Two modes:
//   --record_golden   connect directly to a fault-free server, evaluate
//                     every query pattern once, write --golden=FILE;
//   (default)         soak for --seconds against --connect, checking every
//                     classes reply against the recorded golden.
//
// Queries are drawn from a fixed pattern pool derived only from the
// pattern index (never from --seed), so goldens recorded once are valid
// for every chaos seed. Exit code 0 iff all invariants held and at least
// --min_ok classes replies were observed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>

#include <chrono>

#include "src/core/flags.h"
#include "src/core/status.h"
#include "src/net/framing.h"
#include "src/net/socket.h"
#include "src/serve/jsonl.h"

namespace adpa {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Query pool: pattern -> node list, a pure function of the pattern index
/// so record and soak phases agree across seeds and processes.
std::vector<int64_t> PatternNodes(int64_t pattern, int64_t num_nodes,
                                  int64_t max_query_nodes) {
  uint64_t state = 0xADBA5EEDULL * static_cast<uint64_t>(pattern + 1);
  (void)SplitMix64Next(&state);
  const int64_t count =
      1 + static_cast<int64_t>(SplitMix64Next(&state) %
                               static_cast<uint64_t>(max_query_nodes));
  std::vector<int64_t> nodes;
  nodes.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    nodes.push_back(static_cast<int64_t>(
        SplitMix64Next(&state) % static_cast<uint64_t>(num_nodes)));
  }
  return nodes;
}

std::string FormatQuery(int64_t id, const std::vector<int64_t>& nodes) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) line += ',';
    line += std::to_string(nodes[i]);
  }
  line += "]}\n";
  return line;
}

/// Blocking JSONL client with a receive timeout: a soak must never hang on
/// a connection the proxy wedged, so recv gives up after 5 s and the
/// worker abandons the connection.
class SoakClient {
 public:
  bool Connect(const std::string& host, uint16_t port) {
    Result<net::FdOwner> fd = net::ConnectTcp(host, port);
    if (!fd.ok()) return false;
    fd_ = std::move(*fd);
    timeval timeout{5, 0};
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));
    framer_ = std::make_unique<net::LineFramer>(
        net::LineFramer::kDefaultMaxLineBytes);
    return true;
  }

  bool connected() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  bool Send(const std::string& line) {
    size_t sent = 0;
    while (sent < line.size()) {
      const ssize_t wrote = ::send(fd_.get(), line.data() + sent,
                                   line.size() - sent, MSG_NOSIGNAL);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(wrote);
    }
    return true;
  }

  enum class Recv { kLine, kClosed, kTimeout };

  /// Blocks for the next complete reply line. kClosed covers EOF, RST and
  /// any other socket error; a trailing unterminated fragment at close is
  /// NOT a line (it was never a complete reply) and is discarded.
  Recv RecvLine(std::string* line) {
    char buffer[16384];
    while (true) {
      if (framer_->NextLine(line) == net::LineFramer::Next::kLine) {
        return Recv::kLine;
      }
      ssize_t got;
      do {
        got = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
      } while (got < 0 && errno == EINTR);
      if (got == 0) return Recv::kClosed;
      if (got < 0) {
        return errno == EAGAIN || errno == EWOULDBLOCK ? Recv::kTimeout
                                                       : Recv::kClosed;
      }
      framer_->Append(buffer, static_cast<size_t>(got));
    }
  }

 private:
  net::FdOwner fd_;
  std::unique_ptr<net::LineFramer> framer_;
};

/// Per-worker tallies, merged after join (no shared mutable state).
struct WorkerStats {
  uint64_t sent_queries = 0;
  uint64_t sent_reloads = 0;
  uint64_t ok_replies = 0;
  uint64_t error_replies = 0;
  uint64_t overloaded_replies = 0;
  uint64_t reload_acks = 0;
  uint64_t garbage_error_replies = 0;  ///< id -1 (injected garbage lines)
  uint64_t corrupted_requests = 0;     ///< request line eaten by garbage
  uint64_t dropped_connections = 0;
  uint64_t recv_timeouts = 0;
  uint64_t lost_replies = 0;  ///< outstanding when the connection died
  // Invariant violations — any non-zero value fails the soak.
  uint64_t parse_failures = 0;
  uint64_t order_violations = 0;
  uint64_t golden_mismatches = 0;
  uint64_t reply_shape_errors = 0;  ///< e.g. reload ack for a query

  bool Violated() const {
    return parse_failures != 0 || order_violations != 0 ||
           golden_mismatches != 0 || reply_shape_errors != 0;
  }
};

struct SoakConfig {
  std::string host;
  uint16_t port = 0;
  int64_t seconds = 5;
  uint64_t seed = 1;
  int64_t connections = 4;
  int64_t patterns = 32;
  int64_t num_nodes = 183;
  int64_t max_query_nodes = 8;
  std::string reload_path;
  int64_t reload_every = 64;
  const std::vector<std::string>* golden = nullptr;  // pattern -> classes CSV
};

struct Outstanding {
  int64_t id = 0;
  int64_t pattern = 0;
  bool is_reload = false;
};

void RunWorker(const SoakConfig& config, int64_t worker_index,
               WorkerStats* stats) {
  uint64_t state = config.seed ^ (0x517cc1b727220a95ULL *
                                  static_cast<uint64_t>(worker_index + 1));
  (void)SplitMix64Next(&state);
  const auto deadline = Clock::now() + std::chrono::seconds(config.seconds);
  // Worker-unique, strictly increasing ids: the per-connection order
  // invariant rides on these.
  int64_t next_id = (worker_index + 1) * 100'000'000;

  SoakClient client;
  std::vector<Outstanding> outstanding;  // FIFO of unanswered requests
  int64_t last_reply_id = -1;            // per connection

  const auto drop_connection = [&] {
    client.Close();
    stats->lost_replies += outstanding.size();
    outstanding.clear();
    last_reply_id = -1;
    ++stats->dropped_connections;
  };

  while (Clock::now() < deadline) {
    if (!client.connected()) {
      if (!client.Connect(config.host, config.port)) {
        // Proxy or server momentarily out of descriptors/backlog: retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      outstanding.clear();
      last_reply_id = -1;
    }

    // One burst: a few pipelined requests, occasionally a reload.
    const uint64_t burst = 1 + SplitMix64Next(&state) % 4;
    bool send_failed = false;
    for (uint64_t b = 0; b < burst && !send_failed; ++b) {
      const int64_t id = next_id++;
      Outstanding entry;
      entry.id = id;
      const bool reload =
          !config.reload_path.empty() &&
          SplitMix64Next(&state) % static_cast<uint64_t>(config.reload_every) ==
              0;
      std::string line;
      if (reload) {
        entry.is_reload = true;
        line = "{\"id\":" + std::to_string(id) + ",\"reload\":\"" +
               config.reload_path + "\"}\n";
        ++stats->sent_reloads;
      } else {
        entry.pattern = static_cast<int64_t>(
            SplitMix64Next(&state) % static_cast<uint64_t>(config.patterns));
        line = FormatQuery(
            id, PatternNodes(entry.pattern, config.num_nodes,
                             config.max_query_nodes));
        ++stats->sent_queries;
      }
      if (!client.Send(line)) {
        send_failed = true;
        break;
      }
      outstanding.push_back(entry);
    }
    if (send_failed) {
      drop_connection();
      continue;
    }

    // Collect replies until the burst is answered or the connection dies.
    while (!outstanding.empty()) {
      std::string line;
      const SoakClient::Recv got = client.RecvLine(&line);
      if (got == SoakClient::Recv::kClosed) {
        drop_connection();
        break;
      }
      if (got == SoakClient::Recv::kTimeout) {
        ++stats->recv_timeouts;
        drop_connection();
        break;
      }
      // Invariant 1: every complete line the server emits parses.
      const Result<serve::ServeReply> reply = serve::ParseReplyLine(line);
      if (!reply.ok()) {
        ++stats->parse_failures;
        std::fprintf(stderr, "soak: UNPARSEABLE reply %s: %s\n",
                     line.c_str(), reply.status().message().c_str());
        continue;
      }
      if (reply->id < 0) {
        // The server's answer to an injected garbage line; not ours.
        ++stats->garbage_error_replies;
        continue;
      }
      // Invariant 2: ids strictly increase per connection.
      if (reply->id <= last_reply_id) {
        ++stats->order_violations;
        std::fprintf(stderr, "soak: OUT-OF-ORDER reply id %lld after %lld\n",
                     static_cast<long long>(reply->id),
                     static_cast<long long>(last_reply_id));
        continue;
      }
      last_reply_id = reply->id;
      // A request whose line was corrupted by injected garbage gets an
      // id -1 error instead of its own reply: skip past such entries.
      while (!outstanding.empty() && outstanding.front().id < reply->id) {
        outstanding.erase(outstanding.begin());
        ++stats->corrupted_requests;
      }
      if (outstanding.empty() || outstanding.front().id != reply->id) {
        ++stats->order_violations;
        std::fprintf(stderr, "soak: UNEXPECTED reply id %lld\n",
                     static_cast<long long>(reply->id));
        continue;
      }
      const Outstanding entry = outstanding.front();
      outstanding.erase(outstanding.begin());
      switch (reply->kind) {
        case serve::ServeReply::Kind::kClasses: {
          if (entry.is_reload) {
            ++stats->reply_shape_errors;
            break;
          }
          // Invariant 3: bitwise-identical to the fault-free golden.
          const std::string& golden_csv =
              (*config.golden)[static_cast<size_t>(entry.pattern)];
          const std::string want = "{\"id\":" + std::to_string(reply->id) +
                                   ",\"classes\":[" + golden_csv + "]}";
          if (line != want) {
            ++stats->golden_mismatches;
            std::fprintf(stderr,
                         "soak: GOLDEN MISMATCH pattern %lld\n  got  %s\n"
                         "  want %s\n",
                         static_cast<long long>(entry.pattern), line.c_str(),
                         want.c_str());
          } else {
            ++stats->ok_replies;
          }
          break;
        }
        case serve::ServeReply::Kind::kError:
          // Structured degradation (an injected fault surfaced): fine.
          ++stats->error_replies;
          break;
        case serve::ServeReply::Kind::kOverloaded:
          ++stats->overloaded_replies;
          break;
        case serve::ServeReply::Kind::kReloaded:
          if (!entry.is_reload || reply->generation <= 0) {
            ++stats->reply_shape_errors;
          } else {
            ++stats->reload_acks;
          }
          break;
      }
    }
  }
}

int RecordGolden(const SoakConfig& config, const std::string& path) {
  SoakClient client;
  if (!client.Connect(config.host, config.port)) {
    std::fprintf(stderr, "soak: cannot connect to %s:%u\n",
                 config.host.c_str(), static_cast<unsigned>(config.port));
    return 1;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "soak: cannot write %s\n", path.c_str());
    return 1;
  }
  for (int64_t pattern = 0; pattern < config.patterns; ++pattern) {
    const std::string query = FormatQuery(
        pattern, PatternNodes(pattern, config.num_nodes,
                              config.max_query_nodes));
    if (!client.Send(query)) {
      std::fprintf(stderr, "soak: send failed while recording golden\n");
      return 1;
    }
    std::string line;
    if (client.RecvLine(&line) != SoakClient::Recv::kLine) {
      std::fprintf(stderr, "soak: no reply while recording golden\n");
      return 1;
    }
    const Result<serve::ServeReply> reply = serve::ParseReplyLine(line);
    if (!reply.ok() || reply->kind != serve::ServeReply::Kind::kClasses ||
        reply->id != pattern) {
      std::fprintf(stderr, "soak: bad golden reply for pattern %lld: %s\n",
                   static_cast<long long>(pattern), line.c_str());
      return 1;
    }
    std::string csv;
    for (size_t i = 0; i < reply->classes.size(); ++i) {
      if (i > 0) csv += ',';
      csv += std::to_string(reply->classes[i]);
    }
    out << pattern << '\t' << csv << '\n';
  }
  out.flush();
  std::fprintf(stderr, "soak: recorded %lld golden patterns to %s\n",
               static_cast<long long>(config.patterns), path.c_str());
  return out ? 0 : 1;
}

bool LoadGolden(const std::string& path, int64_t patterns,
                std::vector<std::string>* golden) {
  std::ifstream in(path);
  if (!in) return false;
  golden->assign(static_cast<size_t>(patterns), "");
  std::vector<bool> seen(static_cast<size_t>(patterns), false);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    int64_t pattern = -1;
    std::string csv;
    fields >> pattern;
    fields.ignore(1, '\t');
    std::getline(fields, csv);
    if (pattern < 0 || pattern >= patterns) return false;
    (*golden)[static_cast<size_t>(pattern)] = csv;
    seen[static_cast<size_t>(pattern)] = true;
  }
  for (const bool s : seen) {
    if (!s) return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv) || !flags.Has("connect") ||
      !flags.Has("golden")) {
    std::fprintf(
        stderr,
        "usage: soak_harness --connect=HOST:PORT --golden=FILE\n"
        "         [--record_golden] [--seconds=N] [--seed=N]\n"
        "         [--connections=K] [--patterns=P] [--num_nodes=N]\n"
        "         [--max_query_nodes=N] [--reload_path=F "
        "--reload_every=N]\n"
        "         [--min_ok=N]\n");
    return 2;
  }
  const Result<net::HostPort> connect =
      net::ParseHostPort(flags.GetString("connect", ""));
  if (!connect.ok()) {
    std::fprintf(stderr, "soak: %s\n", connect.status().message().c_str());
    return 2;
  }
  SoakConfig config;
  config.host = connect->host;
  config.port = connect->port;
  config.seconds = flags.GetInt("seconds", 5);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.connections = flags.GetInt("connections", 4);
  config.patterns = flags.GetInt("patterns", 32);
  config.num_nodes = flags.GetInt("num_nodes", 183);
  config.max_query_nodes = flags.GetInt("max_query_nodes", 8);
  config.reload_path = flags.GetString("reload_path", "");
  config.reload_every = std::max<int64_t>(1, flags.GetInt("reload_every", 64));
  const std::string golden_path = flags.GetString("golden", "");

  if (flags.GetBool("record_golden", false)) {
    return RecordGolden(config, golden_path);
  }

  std::vector<std::string> golden;
  if (!LoadGolden(golden_path, config.patterns, &golden)) {
    std::fprintf(stderr, "soak: cannot load golden %s (run --record_golden "
                 "against a fault-free server first)\n",
                 golden_path.c_str());
    return 1;
  }
  config.golden = &golden;

  std::vector<WorkerStats> stats(static_cast<size_t>(config.connections));
  std::vector<std::thread> workers;
  workers.reserve(stats.size());
  for (int64_t w = 0; w < config.connections; ++w) {
    workers.emplace_back(RunWorker, std::cref(config), w,
                         &stats[static_cast<size_t>(w)]);
  }
  for (std::thread& worker : workers) worker.join();

  WorkerStats total;
  for (const WorkerStats& s : stats) {
    total.sent_queries += s.sent_queries;
    total.sent_reloads += s.sent_reloads;
    total.ok_replies += s.ok_replies;
    total.error_replies += s.error_replies;
    total.overloaded_replies += s.overloaded_replies;
    total.reload_acks += s.reload_acks;
    total.garbage_error_replies += s.garbage_error_replies;
    total.corrupted_requests += s.corrupted_requests;
    total.dropped_connections += s.dropped_connections;
    total.recv_timeouts += s.recv_timeouts;
    total.lost_replies += s.lost_replies;
    total.parse_failures += s.parse_failures;
    total.order_violations += s.order_violations;
    total.golden_mismatches += s.golden_mismatches;
    total.reply_shape_errors += s.reply_shape_errors;
  }

  std::fprintf(
      stderr,
      "soak: sent %llu queries + %llu reloads; %llu ok (bitwise golden), "
      "%llu errors, %llu overloaded, %llu reload acks; %llu garbage "
      "replies, %llu corrupted requests, %llu dropped connections, %llu "
      "recv timeouts, %llu lost replies\n",
      static_cast<unsigned long long>(total.sent_queries),
      static_cast<unsigned long long>(total.sent_reloads),
      static_cast<unsigned long long>(total.ok_replies),
      static_cast<unsigned long long>(total.error_replies),
      static_cast<unsigned long long>(total.overloaded_replies),
      static_cast<unsigned long long>(total.reload_acks),
      static_cast<unsigned long long>(total.garbage_error_replies),
      static_cast<unsigned long long>(total.corrupted_requests),
      static_cast<unsigned long long>(total.dropped_connections),
      static_cast<unsigned long long>(total.recv_timeouts),
      static_cast<unsigned long long>(total.lost_replies));

  const int64_t min_ok = flags.GetInt("min_ok", 1);
  bool failed = false;
  if (total.Violated()) {
    std::fprintf(stderr,
                 "soak: FAIL — %llu parse failures, %llu order violations, "
                 "%llu golden mismatches, %llu reply shape errors\n",
                 static_cast<unsigned long long>(total.parse_failures),
                 static_cast<unsigned long long>(total.order_violations),
                 static_cast<unsigned long long>(total.golden_mismatches),
                 static_cast<unsigned long long>(total.reply_shape_errors));
    failed = true;
  }
  if (total.ok_replies < static_cast<uint64_t>(min_ok)) {
    std::fprintf(stderr,
                 "soak: FAIL — only %llu ok replies (need >= %lld); the "
                 "harness made no meaningful progress\n",
                 static_cast<unsigned long long>(total.ok_replies),
                 static_cast<long long>(min_ok));
    failed = true;
  }
  if (!failed) std::fprintf(stderr, "soak: PASS\n");
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
