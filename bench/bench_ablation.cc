// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's own Table VII:
//   * correlation-guided DP selection (Sec. IV-B's "select G_d with a
//     higher r(G_d, N)") vs. the full k-order enumeration,
//   * initial residual X^(0) in the propagated block (Eq. 9),
//   * self loops in the propagation operators,
//   * the Eq. (1) normalization exponent r,
// plus the extension baselines (H2GCN / APPNP / GraphSAGE) and parameter-
// free label propagation for context.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/random.h"
#include "src/models/extended.h"
#include "src/models/label_propagation.h"

namespace adpa {
namespace {

RepeatedResult RunAdpaVariant(const BenchmarkSpec& spec,
                              const bench::BenchOptions& options,
                              ModelConfig config) {
  Result<RepeatedResult> cell = RunRepeated(
      "ADPA",
      [&spec, &options](uint64_t seed) {
        return BuildBenchmark(spec, seed, options.scale);
      },
      config, bench::MakeTrainConfig(options), options.repeats,
      /*undirect_input=*/!spec.expect_directed);
  ADPA_CHECK(cell.ok()) << cell.status().ToString();
  return *cell;
}

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 1, .epochs = 50, .patience = 15, .scale = 0.4});
  const char* datasets[] = {"CoraML", "Chameleon", "Squirrel"};
  std::printf(
      "Ablations of ADPA design choices (repeats=%d epochs=%d scale=%.2f)\n\n",
      options.repeats, options.epochs, options.scale);

  {
    TablePrinter table({"Variant", "CoraML", "Chameleon", "Squirrel"});
    struct Row {
      const char* label;
      void (*apply)(ModelConfig*);
    };
    const Row rows[] = {
        {"ADPA (default)", [](ModelConfig*) {}},
        {"DP selection top-4",
         [](ModelConfig* c) { c->select_patterns = 4; }},
        {"DP selection top-2",
         [](ModelConfig* c) { c->select_patterns = 2; }},
        {"w/o initial residual",
         [](ModelConfig* c) { c->initial_residual = false; }},
        {"propagation self-loops",
         [](ModelConfig* c) { c->propagation_self_loops = true; }},
        {"row-stochastic ops (r=0)",
         [](ModelConfig* c) { c->conv_r = 0.0; }},
        {"reverse-transition ops (r=1)",
         [](ModelConfig* c) { c->conv_r = 1.0; }},
    };
    for (const Row& row : rows) {
      std::vector<std::string> cells = {row.label};
      for (const char* ds : datasets) {
        const BenchmarkSpec spec = std::move(FindBenchmark(ds)).value();
        ModelConfig config = bench::TunedConfig("ADPA", spec);
        row.apply(&config);
        cells.push_back(RunAdpaVariant(spec, options, config).ToString());
        std::fprintf(stderr, ".");
      }
      table.AddRow(cells);
    }
    table.Print();
  }

  std::printf("\nExtension baselines + label propagation (context):\n\n");
  {
    TablePrinter table({"Model", "CoraML", "Chameleon", "Squirrel"});
    for (const std::string& model : ExtendedModelNames()) {
      std::vector<std::string> cells = {model};
      for (const char* ds : datasets) {
        const BenchmarkSpec spec = std::move(FindBenchmark(ds)).value();
        cells.push_back(bench::RunCell(model, spec, options, 1).ToString());
        std::fprintf(stderr, ".");
      }
      table.AddRow(cells);
    }
    // Parameter-free label propagation (undirected input, 10 rounds).
    std::vector<std::string> lp_cells = {"LabelProp"};
    for (const char* ds : datasets) {
      const BenchmarkSpec spec = std::move(FindBenchmark(ds)).value();
      std::vector<double> accs;
      for (int run = 0; run < options.repeats; ++run) {
        Dataset dataset = std::move(
            BuildBenchmark(spec, run, options.scale)).value();
        accs.push_back(
            LabelPropagationAccuracy(dataset.WithUndirectedGraph()));
      }
      lp_cells.push_back(Aggregate(accs).ToString());
    }
    table.AddRow(lp_cells);
    table.Print();
  }
  std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
