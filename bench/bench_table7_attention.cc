// Table VII: ablation of the two hierarchical node-wise attention
// mechanisms — removing DP attention, swapping its variant
// (Original/Gate/Recursive/JK), and removing hop attention — on CoraML,
// CiteSeer (AMUndirected) and Chameleon, Squirrel (AMDirected).
//
// Paper shape to reproduce: both "w/o" rows lose several points; the
// Original variant is best on the homophilous pair while Recursive/JK lead
// on the heterophilous pair.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

struct VariantSpec {
  const char* label;
  bool use_dp;
  bool use_hop;
  DpAttention variant;
};

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 2, .epochs = 50, .patience = 15, .scale = 0.45});
  std::printf(
      "Table VII: ablation on the two node-wise attention mechanisms\n"
      "(repeats=%d epochs=%d scale=%.2f)\n\n",
      options.repeats, options.epochs, options.scale);
  const VariantSpec variants[] = {
      {"w/o DP Attention", false, true, DpAttention::kOriginal},
      {"ADPA-DP-Original", true, true, DpAttention::kOriginal},
      {"ADPA-DP-Gate", true, true, DpAttention::kGate},
      {"ADPA-DP-Recursive", true, true, DpAttention::kRecursive},
      {"ADPA-DP-JK", true, true, DpAttention::kJk},
      {"w/o Hop Attention", true, false, DpAttention::kOriginal},
  };
  TablePrinter table({"Model", "CoraML", "CiteSeer", "Chameleon",
                      "Squirrel"});
  for (const VariantSpec& variant : variants) {
    std::vector<std::string> row = {variant.label};
    for (const char* ds_name :
         {"CoraML", "CiteSeer", "Chameleon", "Squirrel"}) {
      const BenchmarkSpec spec = std::move(FindBenchmark(ds_name)).value();
      ModelConfig config = bench::TunedConfig("ADPA", spec);
      config.use_dp_attention = variant.use_dp;
      config.use_hop_attention = variant.use_hop;
      config.dp_attention = variant.variant;
      Result<RepeatedResult> cell = RunRepeated(
          "ADPA",
          [&spec, &options](uint64_t seed) {
            return BuildBenchmark(spec, seed, options.scale);
          },
          config, bench::MakeTrainConfig(options), options.repeats,
          /*undirect_input=*/!spec.expect_directed);
      ADPA_CHECK(cell.ok()) << cell.status().ToString();
      row.push_back(cell->ToString());
      std::fprintf(stderr, ".");
    }
    table.AddRow(row);
  }
  std::fprintf(stderr, "\n");
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
