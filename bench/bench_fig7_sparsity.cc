// Fig. 7: robustness under feature, edge, and label sparsity on CiteSeer
// (upper panel) and Squirrel (lower panel).
//
// Paper shape to reproduce: A2DUG degrades most under feature sparsity
// (no propagation to fill features in) but tolerates edge sparsity;
// JacobiConv suffers under feature sparsity; ADPA and DirGNN stay the most
// robust across all three axes.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/random.h"
#include "src/data/sparsity.h"

namespace adpa {
namespace {

enum class SparsityKind { kFeature, kEdge, kLabel };

Result<Dataset> BuildSparse(const BenchmarkSpec& spec, uint64_t seed,
                            double scale, SparsityKind kind, double level) {
  Result<Dataset> base = BuildBenchmark(spec, seed, scale);
  if (!base.ok() || level <= 0.0) return base;
  Rng rng(seed * 31337 + 17);
  switch (kind) {
    case SparsityKind::kFeature:
      return MaskFeatures(*base, level, &rng);
    case SparsityKind::kEdge:
      return DropEdges(*base, level, &rng);
    case SparsityKind::kLabel: {
      // level is the fraction of training labels to drop.
      std::vector<int64_t> per_class_count(base->num_classes, 0);
      for (int64_t i : base->train_idx) ++per_class_count[base->labels[i]];
      int64_t min_count = base->num_nodes();
      for (int64_t c : per_class_count) min_count = std::min(min_count, c);
      const int64_t keep = std::max<int64_t>(
          1, static_cast<int64_t>((1.0 - level) *
                                  static_cast<double>(min_count)));
      return ReduceTrainLabels(*base, keep, &rng);
    }
  }
  return base;
}

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 1, .epochs = 40, .patience = 10, .scale = 0.35});
  std::printf(
      "Fig. 7: performance under feature/edge/label sparsity\n"
      "(repeats=%d epochs=%d scale=%.2f)\n",
      options.repeats, options.epochs, options.scale);
  const char* models[] = {"JacobiConv", "A2DUG", "DirGNN", "ADPA"};
  const double levels[] = {0.0, 0.2, 0.4, 0.6, 0.8};
  const struct {
    SparsityKind kind;
    const char* label;
  } kinds[] = {{SparsityKind::kFeature, "feature sparsity"},
               {SparsityKind::kEdge, "edge sparsity"},
               {SparsityKind::kLabel, "label sparsity"}};
  for (const char* ds_name : {"CiteSeer", "Squirrel"}) {
    const BenchmarkSpec spec = std::move(FindBenchmark(ds_name)).value();
    for (const auto& kind : kinds) {
      std::printf("\n%s — %s:\n", ds_name, kind.label);
      TablePrinter table({"Model", "0%", "20%", "40%", "60%", "80%"});
      for (const char* model : models) {
        std::vector<std::string> row = {model};
        for (double level : levels) {
          const bool undirect = model == std::string("ADPA")
                                    ? !spec.expect_directed
                                    : ShouldUndirectInput(model);
          Result<RepeatedResult> cell = RunRepeated(
              model,
              [&, level](uint64_t seed) {
                return BuildSparse(spec, seed, options.scale, kind.kind,
                                   level);
              },
              bench::TunedConfig(model, spec),
              bench::MakeTrainConfig(options), options.repeats, undirect);
          ADPA_CHECK(cell.ok()) << cell.status().ToString();
          row.push_back(FormatDouble(cell->mean, 1));
          std::fprintf(stderr, ".");
        }
        table.AddRow(row);
      }
      table.Print();
    }
  }
  std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
