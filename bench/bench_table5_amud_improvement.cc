// Table V: the two "abnormal" heterophilous datasets (Actor and
// Amazon-rating) where AMUD recommends the *undirected* transformation.
// For each directed model we report the D- (natural digraph) and U-
// (AMUD-suggested undirected) rows plus the relative improvement.
//
// Paper shape to reproduce: U- rows beat D- rows for every directed model
// (positive "AMUD Improv."), with ADPA the most robust (smallest gap), and
// undirected baselines given for context.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 2, .epochs = 50, .patience = 15, .scale = 0.5});
  std::printf(
      "Table V: improvement from the undirected transformation suggested by "
      "AMUD\n(repeats=%d epochs=%d scale=%.2f)\n\n",
      options.repeats, options.epochs, options.scale);

  const BenchmarkSpec actor = std::move(FindBenchmark("Actor")).value();
  const BenchmarkSpec rating =
      std::move(FindBenchmark("AmazonRating")).value();

  TablePrinter table({"Model", "Actor", "AmazonRating", "AMUD Improv."});
  for (const char* model :
       {"GCN", "LINKX", "BerNet", "JacobiConv", "GloGNN", "AERO-GNN"}) {
    table.AddRow({model,
                  bench::RunCell(model, actor, options, 1).ToString(),
                  bench::RunCell(model, rating, options, 1).ToString(),
                  "-"});
    std::fprintf(stderr, ".");
  }
  for (const char* model : {"MagNet", "DIMPA", "DirGNN", "ADPA"}) {
    const RepeatedResult d_actor = bench::RunCell(model, actor, options, 0);
    const RepeatedResult d_rating = bench::RunCell(model, rating, options, 0);
    const RepeatedResult u_actor = bench::RunCell(model, actor, options, 1);
    const RepeatedResult u_rating =
        bench::RunCell(model, rating, options, 1);
    const double improvement =
        0.5 * ((u_actor.mean - d_actor.mean) / d_actor.mean +
               (u_rating.mean - d_rating.mean) / d_rating.mean) *
        100.0;
    table.AddRow({std::string("D-") + model, d_actor.ToString(),
                  d_rating.ToString(), "-"});
    table.AddRow({std::string("U-") + model, u_actor.ToString(),
                  u_rating.ToString(), FormatDouble(improvement, 2) + "%"});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
