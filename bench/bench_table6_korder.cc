// Table VI: ADPA accuracy as a function of the DP operator order k
// (1-order = {A, Aᵀ} ... 5-order = 62 operators).
//
// Paper shape to reproduce: 2-order DPs are optimal on most datasets
// (CoraML, CiteSeer, Chameleon, Squirrel, ...), 3-order occasionally wins
// (Actor, Amazon-rating), 1-order is weakest, and orders 4-5 overfit and
// decay.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

constexpr const char* kDatasets[] = {
    "CoraML",    "CiteSeer", "Actor",     "Tolokers",
    "AmazonRating", "AmazonComputers", "Texas", "Cornell",
    "Wisconsin", "Chameleon", "Squirrel", "RomanEmpire"};

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 1, .epochs = 40, .patience = 10, .scale = 0.3});
  std::printf(
      "Table VI: ADPA under different k-order DP operators\n"
      "(repeats=%d epochs=%d scale=%.2f)\n\n",
      options.repeats, options.epochs, options.scale);
  TablePrinter table({"Dataset", "1-order", "2-order", "3-order", "4-order",
                      "5-order"});
  for (const char* ds_name : kDatasets) {
    const BenchmarkSpec spec = std::move(FindBenchmark(ds_name)).value();
    std::vector<std::string> row = {ds_name};
    for (int order = 1; order <= 5; ++order) {
      ModelConfig config = bench::TunedConfig("ADPA", spec);
      config.pattern_order = order;
      // Fig. 1 workflow: AMUndirected datasets feed ADPA the undirected
      // transformation.
      Result<RepeatedResult> cell = RunRepeated(
          "ADPA",
          [&spec, &options](uint64_t seed) {
            return BuildBenchmark(spec, seed, options.scale);
          },
          config, bench::MakeTrainConfig(options), options.repeats,
          /*undirect_input=*/!spec.expect_directed);
      ADPA_CHECK(cell.ok()) << cell.status().ToString();
      row.push_back(cell->ToString());
      std::fprintf(stderr, ".");
    }
    table.AddRow(row);
  }
  std::fprintf(stderr, "\n");
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
