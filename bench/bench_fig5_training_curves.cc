// Fig. 5: convergence curves — per-epoch validation accuracy for a panel
// of models on Tolokers & WikiCS (Score < 0.5) and Roman-empire & Cornell
// (Score > 0.5).
//
// Paper shape to reproduce: ADPA sits on or above the other curves from
// early epochs and converges stably, while the small WebKB-style dataset
// produces visibly noisier curves for the less stable baselines (the paper
// calls out GPRGNN and NSTE).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/random.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 1, .epochs = 60, .patience = 0, .scale = 0.4});
  std::printf(
      "Fig. 5: validation-accuracy training curves (epochs=%d scale=%.2f; "
      "sampled every 10 epochs)\n",
      options.epochs, options.scale);

  const char* models[] = {"GCN", "GPRGNN", "MagNet", "NSTE", "DirGNN",
                          "ADPA"};
  for (const char* ds_name :
       {"Tolokers", "WikiCS", "RomanEmpire", "Cornell"}) {
    const BenchmarkSpec spec = std::move(FindBenchmark(ds_name)).value();
    std::printf("\n%s:\n", ds_name);
    std::vector<std::string> headers = {"Model"};
    for (int epoch = 10; epoch <= options.epochs; epoch += 10) {
      headers.push_back("ep" + std::to_string(epoch));
    }
    TablePrinter table(headers);
    for (const char* model_name : models) {
      Dataset ds =
          std::move(BuildBenchmark(spec, /*seed=*/0, options.scale)).value();
      if (ShouldUndirectInput(model_name)) ds = ds.WithUndirectedGraph();
      Rng rng(7);
      ModelPtr model = std::move(
          CreateModel(model_name, ds, bench::TunedConfig(model_name, spec),
                      &rng)).value();
      TrainConfig tc = bench::MakeTrainConfig(options);
      tc.patience = 0;  // full-length curves
      tc.record_curves = true;
      const TrainResult result = TrainModel(model.get(), ds, tc, &rng);
      std::vector<std::string> row = {model_name};
      for (size_t epoch = 9; epoch < result.val_curve.size(); epoch += 10) {
        row.push_back(FormatDouble(result.val_curve[epoch] * 100.0, 1));
      }
      while (row.size() < headers.size()) row.push_back("-");
      table.AddRow(row);
      std::fprintf(stderr, ".");
    }
    table.Print();
  }
  std::fprintf(stderr, "\n");
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
