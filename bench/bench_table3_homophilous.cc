// Table III: accuracy of all 16 models on the six homophilous datasets
// (AMUD score < 0.5), with the average-rank column.
//
// Paper shape to reproduce: undirected GNNs out-rank directed GNNs in this
// regime, and ADPA remains competitive (rank ~1) despite being a directed
// method — it degrades gracefully on AMUndirected inputs.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

constexpr const char* kDatasets[] = {"CoraML",   "CiteSeer", "PubMed",
                                     "Tolokers", "WikiCS",   "AmazonComputers"};

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 2, .epochs = 50, .patience = 15, .scale = 0.5});
  std::printf(
      "Table III: performance on homophilous (AMUD Score < 0.5) datasets\n"
      "(repeats=%d epochs=%d scale=%.2f; undirected models get U- input,\n"
      " directed models the natural digraph; ADPA gets U- per the Fig. 1 "
      "workflow)\n\n",
      options.repeats, options.epochs, options.scale);

  std::vector<std::string> headers = {"Model"};
  for (const char* ds : kDatasets) headers.push_back(ds);
  headers.push_back("Rank");
  TablePrinter table(headers);

  std::vector<std::vector<double>> means;  // [model][dataset]
  std::vector<std::vector<std::string>> rows;
  for (const std::string& model : AllModelNames()) {
    std::vector<std::string> row = {model};
    std::vector<double> model_means;
    for (const char* ds : kDatasets) {
      const BenchmarkSpec spec = std::move(FindBenchmark(ds)).value();
      // Workflow of Fig. 1: these are AMUndirected datasets, so ADPA also
      // consumes the undirected transformation here.
      const int force_undirect =
          model == "ADPA" ? 1 : (ShouldUndirectInput(model) ? 1 : 0);
      const RepeatedResult cell =
          bench::RunCell(model, spec, options, force_undirect);
      row.push_back(cell.ToString());
      model_means.push_back(cell.mean);
      std::fprintf(stderr, ".");
    }
    means.push_back(model_means);
    rows.push_back(row);
  }
  std::fprintf(stderr, "\n");
  const std::vector<double> ranks = bench::AverageRanks(means);
  for (size_t m = 0; m < rows.size(); ++m) {
    rows[m].push_back(FormatDouble(ranks[m], 1));
    table.AddRow(rows[m]);
  }
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
