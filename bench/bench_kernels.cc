// google-benchmark micro-kernels backing the Sec. IV-D complexity analysis:
// SpMM and DP propagation scale as O(k·K·m·f) and are training-free, dense
// transforms as O(L·n·f²), and the AMUD analysis as O(nnz of the 2-order
// reachabilities).

#include <benchmark/benchmark.h>

#include "src/amud/amud.h"
#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/graph/patterns.h"
#include "src/models/adpa.h"
#include "src/tensor/optimizer.h"
#include "src/tensor/simd.h"
#include "src/train/trainer.h"

namespace adpa {
namespace {

Dataset MakeGraph(int64_t nodes, double degree, int64_t features,
                  uint64_t seed = 7) {
  DsbmConfig config;
  config.num_nodes = nodes;
  config.num_classes = 5;
  config.avg_out_degree = degree;
  config.class_transition = CyclicTransition(5, 0.7, 0.1);
  config.feature_dim = features;
  config.seed = seed;
  return std::move(GenerateDsbm(config)).value();
}

void BM_SpMM(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = state.range(1);
  SetNumThreads(static_cast<int>(state.range(2)));
  Dataset ds = MakeGraph(n, 8.0, f);
  const SparseMatrix op =
      NormalizeSymmetric(AddSelfLoops(ds.graph.AdjacencyMatrix()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Multiply(ds.features));
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() * f);
  SetNumThreads(0);
}
BENCHMARK(BM_SpMM)
    ->ArgNames({"n", "f", "threads"})
    ->Args({1000, 32, 1})
    ->Args({1000, 128, 1})
    ->Args({4000, 32, 1})
    ->Args({4000, 128, 1})
    ->Args({4000, 128, 2})
    ->Args({4000, 128, 4})
    ->Args({4000, 128, 8});

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  SetNumThreads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(n, 64, &rng);
  Matrix b = Matrix::RandomNormal(64, 64, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_DenseMatMul)
    ->ArgNames({"n", "threads"})
    ->Args({500, 1})
    ->Args({2000, 1})
    ->Args({8000, 1})
    ->Args({8000, 2})
    ->Args({8000, 4});

// Verbatim copy of the seed MatMul kernel (naive ikj, float accumulation,
// zero-skip) — the baseline the blocked kernel is measured against.
Matrix SeedMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  const int64_t n = a.rows(), k = a.cols(), m = b.cols();
  for (int64_t i = 0; i < n; ++i) {
    float* out_row = out.Row(i);
    const float* a_row = a.Row(i);
    for (int64_t p = 0; p < k; ++p) {
      const float a_ip = a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b.Row(p);
      for (int64_t j = 0; j < m; ++j) out_row[j] += a_ip * b_row[j];
    }
  }
  return out;
}

void BM_MatMulSeedKernel512(benchmark::State& state) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(512, 512, &rng);
  Matrix b = Matrix::RandomNormal(512, 512, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeedMatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
}
BENCHMARK(BM_MatMulSeedKernel512);

void BM_MatMulBlocked512(benchmark::State& state) {
  SetNumThreads(static_cast<int>(state.range(0)));
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(512, 512, &rng);
  Matrix b = Matrix::RandomNormal(512, 512, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulBlocked512)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

/// Restores the startup dispatch level on destruction so a pinned-level
/// benchmark cannot leak its level into the rest of the suite.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : previous_(simd::ActiveLevel()) {
    simd::SetLevel(level);
  }
  ~ScopedLevel() { simd::SetLevel(previous_); }

 private:
  simd::Level previous_;
};

// Single-thread 512^3 GEMM pinned to each dispatch level. level:0 (portable)
// IS the historical blocked kernel, so the level:2/level:0 items_per_second
// ratio is the headline speedup tracked in BENCH_kernels.json.
void BM_MatMulDispatch512(benchmark::State& state) {
  const simd::Level level = static_cast<simd::Level>(state.range(0));
  if (!simd::LevelSupported(level)) {
    state.SkipWithError("dispatch level not supported by this CPU");
    return;
  }
  ScopedLevel scoped(level);
  state.SetLabel(simd::LevelName(level));
  SetNumThreads(1);
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(512, 512, &rng);
  Matrix b = Matrix::RandomNormal(512, 512, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 512 * 512 * 512);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulDispatch512)->ArgNames({"level"})->Arg(0)->Arg(1)->Arg(2);

// The per-hop propagation chain out = (1-alpha) * (A_hat * x) + alpha * x,
// fused into one pass (SparseMatrix::MultiplyAxpbyInto) vs. the unfused
// Multiply + ScaleInPlace + AddScaledInPlace sequence it replaces. Both run
// at the startup dispatch level.
void BM_HopChainUnfused(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = state.range(1);
  SetNumThreads(static_cast<int>(state.range(2)));
  Dataset ds = MakeGraph(n, 8.0, f);
  const SparseMatrix op =
      NormalizeSymmetric(AddSelfLoops(ds.graph.AdjacencyMatrix()));
  const float alpha = 0.15f;
  for (auto _ : state) {
    Matrix out = op.Multiply(ds.features);
    out.ScaleInPlace(1.0f - alpha);
    out.AddScaledInPlace(ds.features, alpha);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() * f);
  SetNumThreads(0);
}
BENCHMARK(BM_HopChainUnfused)
    ->ArgNames({"n", "f", "threads"})
    ->Args({4000, 128, 1})
    ->Args({4000, 128, 8});

void BM_HopChainFused(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t f = state.range(1);
  SetNumThreads(static_cast<int>(state.range(2)));
  Dataset ds = MakeGraph(n, 8.0, f);
  const SparseMatrix op =
      NormalizeSymmetric(AddSelfLoops(ds.graph.AdjacencyMatrix()));
  const float alpha = 0.15f;
  Matrix out;  // reused across iterations, as in the serve/propagation paths
  for (auto _ : state) {
    op.MultiplyAxpbyInto(ds.features, ds.features, alpha, 1.0f - alpha, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * op.nnz() * f);
  SetNumThreads(0);
}
BENCHMARK(BM_HopChainFused)
    ->ArgNames({"n", "f", "threads"})
    ->Args({4000, 128, 1})
    ->Args({4000, 128, 8});

// The decoupled-propagation claim: pre-processing cost grows linearly in
// the pattern order budget k and the step count K, independent of training.
void BM_DpPropagation(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  const int steps = static_cast<int>(state.range(1));
  Dataset ds = MakeGraph(2000, 8.0, 64);
  PatternSet patterns(ds.graph.AdjacencyMatrix(), 0.5, false);
  const auto dps = EnumeratePatterns(order);
  for (auto _ : state) {
    std::vector<Matrix> states(dps.size(), ds.features);
    for (int l = 0; l < steps; ++l) {
      patterns.ApplyStep(dps, &states);
    }
    benchmark::DoNotOptimize(states);
  }
}
BENCHMARK(BM_DpPropagation)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Args({3, 2});

void BM_AdpaForward(benchmark::State& state) {
  Dataset ds = MakeGraph(static_cast<int64_t>(state.range(0)), 8.0, 64);
  Rng rng(3);
  ModelConfig config;
  AdpaModel model(ds, config, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(/*training=*/false, &rng));
  }
}
BENCHMARK(BM_AdpaForward)->Arg(500)->Arg(2000);

void BM_AdpaTrainEpoch(benchmark::State& state) {
  Dataset ds = MakeGraph(1000, 8.0, 64);
  std::vector<int64_t> train_idx;
  for (int64_t i = 0; i < ds.num_nodes(); i += 2) train_idx.push_back(i);
  Rng rng(4);
  ModelConfig config;
  AdpaModel model(ds, config, &rng);
  Adam adam(model.Parameters(), 0.01f);
  for (auto _ : state) {
    adam.ZeroGrad();
    ag::Variable logits = model.Forward(true, &rng);
    ag::Variable loss = ag::MaskedCrossEntropy(logits, ds.labels, train_idx);
    ag::Backward(loss);
    adam.Step();
  }
}
BENCHMARK(BM_AdpaTrainEpoch);

void BM_AmudAnalysis(benchmark::State& state) {
  Dataset ds = MakeGraph(static_cast<int64_t>(state.range(0)), 6.0, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAmud(ds.graph, ds.labels, 5));
  }
}
BENCHMARK(BM_AmudAnalysis)->Arg(500)->Arg(2000);

void BM_PatternReachability(benchmark::State& state) {
  Dataset ds = MakeGraph(2000, static_cast<double>(state.range(0)), 16);
  PatternSet patterns(ds.graph.AdjacencyMatrix(), 0.5, false);
  const DirectedPattern aat{{Hop::kOut, Hop::kIn}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(patterns.Reachability(aat));
  }
}
BENCHMARK(BM_PatternReachability)->Arg(4)->Arg(16);

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  // Provenance for tools/bench_to_json.sh: numbers from a debug/sanitizer
  // build of THIS code must not land in the checked-in BENCH_*.json files.
  // (The stock "library_build_type" context key only describes how the
  // installed google-benchmark library was compiled.)
#ifdef NDEBUG
  benchmark::AddCustomContext("adpa_build_type", "release");
#else
  benchmark::AddCustomContext("adpa_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "adpa_simd_level", adpa::simd::LevelName(adpa::simd::ActiveLevel()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
