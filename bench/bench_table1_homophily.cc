// Table I: homophily measures under the natural directed topology vs. the
// coarse undirected transformation, plus the AMUD score, for the four
// motivating datasets (CoraML, Chameleon, CiteSeer, Squirrel).
//
// Paper shape to reproduce: the five classical measures barely move between
// the directed and undirected versions of each dataset (they cannot see
// direction), while the AMUD score cleanly separates the homophilous
// citation graphs (S < 0.5, model undirected) from the heterophilous wiki
// graphs (S > 0.5, keep directed).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/amud/amud.h"
#include "src/metrics/homophily.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options =
      bench::ParseBenchOptions(argc, argv, {.repeats = 1, .scale = 1.0});
  std::printf(
      "Table I: homophily, naturally directed -> undirected transformation, "
      "and AMUD score\n(scale=%.2f)\n\n", options.scale);
  TablePrinter table({"Dataset", "H_node", "H_edge", "H_class", "H_adj",
                      "LI", "AMUD-S", "Guidance"});
  for (const char* name : {"CoraML", "Chameleon", "CiteSeer", "Squirrel"}) {
    Dataset ds = std::move(
        BuildBenchmarkByName(name, /*seed=*/0, options.scale)).value();
    const HomophilyReport directed =
        ComputeHomophilyReport(ds.graph, ds.labels, ds.num_classes);
    const HomophilyReport undirected = ComputeHomophilyReport(
        ds.graph.ToUndirected(), ds.labels, ds.num_classes);
    const AmudReport amud =
        std::move(ComputeAmud(ds.graph, ds.labels, ds.num_classes)).value();
    auto pair = [](double d, double u) {
      return FormatDouble(d, 3) + "->" + FormatDouble(u, 3);
    };
    table.AddRow({name, pair(directed.node, undirected.node),
                  pair(directed.edge, undirected.edge),
                  pair(directed.cls, undirected.cls),
                  pair(directed.adjusted, undirected.adjusted),
                  pair(directed.li, undirected.li),
                  FormatDouble(amud.score, 3),
                  amud.decision == AmudDecision::kDirected ? "D-" : "U-"});
  }
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
