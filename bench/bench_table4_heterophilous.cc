// Table IV: accuracy of all 16 models on the six heterophilous datasets
// with directed structure (AMUD score > 0.5), with the average-rank column.
//
// Paper shape to reproduce: directed GNNs out-rank undirected GNNs in this
// regime, and ADPA takes the top rank.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

constexpr const char* kDatasets[] = {"Texas",     "Cornell",  "Wisconsin",
                                     "Chameleon", "Squirrel", "RomanEmpire"};

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 2, .epochs = 50, .patience = 15, .scale = 0.7});
  std::printf(
      "Table IV: performance on heterophilous (AMUD Score > 0.5) datasets\n"
      "(repeats=%d epochs=%d scale=%.2f; undirected models get U- input,\n"
      " directed models and ADPA the natural digraph)\n\n",
      options.repeats, options.epochs, options.scale);

  std::vector<std::string> headers = {"Model"};
  for (const char* ds : kDatasets) headers.push_back(ds);
  headers.push_back("Rank");
  TablePrinter table(headers);

  std::vector<std::vector<double>> means;
  std::vector<std::vector<std::string>> rows;
  for (const std::string& model : AllModelNames()) {
    std::vector<std::string> row = {model};
    std::vector<double> model_means;
    for (const char* ds : kDatasets) {
      const BenchmarkSpec spec = std::move(FindBenchmark(ds)).value();
      const RepeatedResult cell = bench::RunCell(model, spec, options);
      row.push_back(cell.ToString());
      model_means.push_back(cell.mean);
      std::fprintf(stderr, ".");
    }
    means.push_back(model_means);
    rows.push_back(row);
  }
  std::fprintf(stderr, "\n");
  const std::vector<double> ranks = bench::AverageRanks(means);
  for (size_t m = 0; m < rows.size(); ++m) {
    rows[m].push_back(FormatDouble(ranks[m], 1));
    table.AddRow(rows[m]);
  }
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
