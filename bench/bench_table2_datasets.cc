// Table II: statistics of all 14 benchmark datasets — node/edge/feature
// counts, class counts, split protocol, edge & adjusted homophily, and the
// AMUD score with its U-/D- guidance.
//
// Paper shape to reproduce: six homophilous datasets score U-, six
// directed-heterophilous ones score D-, and the two "abnormal" cases
// (Actor, Amazon-rating) are heterophilous by homophily metrics yet score
// U- because their direction carries no label signal.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/amud/amud.h"
#include "src/metrics/homophily.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options =
      bench::ParseBenchOptions(argc, argv, {.repeats = 1, .scale = 1.0});
  std::printf("Table II: dataset statistics (scale=%.2f)\n\n", options.scale);
  TablePrinter table({"Dataset", "Nodes", "Edges", "Feats", "Classes",
                      "Split", "E.Homo", "Adj.Homo", "AMUD-Score",
                      "Description"});
  for (const BenchmarkSpec& spec : BenchmarkSuite()) {
    Dataset ds =
        std::move(BuildBenchmark(spec, /*seed=*/0, options.scale)).value();
    const double edge_h = EdgeHomophily(ds.graph, ds.labels);
    const double adj_h =
        AdjustedHomophily(ds.graph, ds.labels, ds.num_classes);
    const AmudReport amud =
        std::move(ComputeAmud(ds.graph, ds.labels, ds.num_classes)).value();
    std::string split =
        spec.protocol == SplitProtocol::kPerClass
            ? std::to_string(spec.train_per_class) + "/class"
            : FormatDouble(spec.train_fraction * 100, 0) + "%/" +
                  FormatDouble(spec.val_fraction * 100, 0) + "%";
    table.AddRow(
        {spec.name, std::to_string(ds.num_nodes()),
         std::to_string(ds.num_edges()), std::to_string(ds.feature_dim()),
         std::to_string(ds.num_classes), split, FormatDouble(edge_h, 3),
         FormatDouble(adj_h, 3),
         FormatDouble(amud.score, 3) +
             (amud.decision == AmudDecision::kDirected ? "(D-)" : "(U-)"),
         spec.description});
  }
  table.Print();
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
