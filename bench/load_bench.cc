// load_bench — sustained-load benchmark for the TCP serving path.
//
// Self-hosted: builds a registry benchmark, snapshots a freshly initialized
// ADPA model to a temporary checkpoint, loads it into a SessionRegistry,
// and starts the real epoll Server (src/net/server.h) on an ephemeral
// loopback port — the full production stack, kernel sockets included, with
// no external orchestration.
//
// Two load shapes, both measured from the client side:
//
//  * closed loop — C connections, each sending one request and waiting for
//    its reply before the next. Reports per-connection-count QPS and
//    p50/p99 round-trip latency. Closed loops understate tail latency under
//    saturation (a slow reply throttles the offered load), so they bound
//    capacity, not user-visible latency.
//  * open loop — requests are pipelined on a schedule at a fixed offered
//    rate, and each latency is measured from the request's SCHEDULED send
//    time, not the actual write: a server stall makes every queued request
//    look as slow as a real user would see it (no coordinated omission).
//    The rate ladder is derived from the closed-loop capacity, and the
//    report's headline number is `sustained_qps_at_slo`: the highest
//    achieved rate whose open-loop p99 stays under --slo_p99_ms.
//
// Emits a JSON report merged into BENCH_serve.json by tools/bench_to_json.sh
// (rows carry `"transport": "tcp"`; the in-process serve_bench rows carry
// `"transport": "in_process"`).
//
//   load_bench [--name=Texas --scale=1.0 --nodes_per_request=8
//               --requests_per_connection=1000 --open_loop_seconds=2
//               --slo_p99_ms=2.0 --threads=8 --seed=1]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "src/core/flags.h"
#include "src/core/logging.h"
#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/data/benchmarks.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/net/framing.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/serve/hot_swap.h"
#include "src/serve/metrics.h"
#include "src/tensor/simd.h"

namespace adpa {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Blocking JSONL client over one TCP connection: write whole lines, read
/// whole reply lines through the same LineFramer the server uses.
class BenchClient {
 public:
  BenchClient(const std::string& host, uint16_t port)
      : framer_(net::LineFramer::kDefaultMaxLineBytes) {
    Result<net::FdOwner> fd = net::ConnectTcp(host, port);
    ADPA_CHECK(fd.ok()) << fd.status().ToString();
    fd_ = std::move(*fd);
  }

  void Send(const std::string& line) {
    size_t offset = 0;
    while (offset < line.size()) {
      Result<net::IoResult> io =
          net::WriteSome(fd_.get(), line.data() + offset,
                         line.size() - offset);
      ADPA_CHECK(io.ok()) << io.status().ToString();
      ADPA_CHECK(!io->closed) << "server closed the connection mid-send";
      offset += static_cast<size_t>(io->bytes);
    }
  }

  /// Blocks until one full reply line is available.
  std::string RecvLine() {
    std::string line;
    char buffer[16384];
    while (true) {
      if (framer_.NextLine(&line) == net::LineFramer::Next::kLine) {
        return line;
      }
      Result<net::IoResult> io =
          net::ReadSome(fd_.get(), buffer, sizeof(buffer));
      ADPA_CHECK(io.ok()) << io.status().ToString();
      ADPA_CHECK(!io->closed) << "server closed the connection mid-reply";
      framer_.Append(buffer, static_cast<size_t>(io->bytes));
    }
  }

 private:
  net::FdOwner fd_;
  net::LineFramer framer_;
};

/// A deterministic pool of query lines cycled by every worker.
std::vector<std::string> BuildQueries(int64_t num_nodes, int nodes_per_request,
                                      uint64_t seed, int pool_size) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(pool_size);
  for (int q = 0; q < pool_size; ++q) {
    std::string line = "{\"id\": " + std::to_string(q) + ", \"nodes\": [";
    for (int i = 0; i < nodes_per_request; ++i) {
      if (i > 0) line += ", ";
      line += std::to_string(rng.UniformInt(num_nodes));
    }
    line += "]}\n";
    pool.push_back(std::move(line));
  }
  return pool;
}

struct LoadStats {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t requests = 0;
};

LoadStats Summarize(std::vector<double> latencies_ms, double elapsed_s) {
  LoadStats stats;
  stats.requests = latencies_ms.size();
  if (latencies_ms.empty()) return stats;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[index];
  };
  stats.p50_ms = pct(0.50);
  stats.p99_ms = pct(0.99);
  stats.qps = elapsed_s > 0.0
                  ? static_cast<double>(latencies_ms.size()) / elapsed_s
                  : 0.0;
  return stats;
}

/// C connections, each a request/reply lockstep loop.
LoadStats RunClosedLoop(const std::string& host, uint16_t port,
                        const std::vector<std::string>& queries,
                        int connections, int requests_per_connection) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);
  const auto start = Clock::now();
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      BenchClient client(host, port);
      std::vector<double>& out = latencies[c];
      out.reserve(requests_per_connection);
      for (int i = 0; i < requests_per_connection; ++i) {
        const std::string& query =
            queries[(c * requests_per_connection + i) % queries.size()];
        const auto t0 = Clock::now();
        client.Send(query);
        (void)client.RecvLine();
        out.push_back(MsSince(t0, Clock::now()));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (const std::vector<double>& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  return Summarize(std::move(all), elapsed_s);
}

struct OpenLoopStats {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t requests = 0;
};

/// One pipelined connection: a sender thread pushes requests on a fixed
/// schedule, a reader thread timestamps each in-order reply. Latency is
/// (reply time − scheduled send time) — a stalled server makes every
/// queued request look slow, exactly as a real user would see it.
OpenLoopStats RunOpenLoop(const std::string& host, uint16_t port,
                          const std::vector<std::string>& queries,
                          double offered_qps, double duration_s) {
  const int total =
      std::max(1, static_cast<int>(offered_qps * duration_s));
  const std::chrono::nanoseconds interval(
      static_cast<int64_t>(1e9 / offered_qps));

  BenchClient client(host, port);
  const auto start = Clock::now();
  std::vector<Clock::time_point> received(total);

  std::thread reader([&] {
    for (int i = 0; i < total; ++i) {
      (void)client.RecvLine();
      received[i] = Clock::now();
    }
  });
  for (int i = 0; i < total; ++i) {
    // No catch-up skipping: if the sender falls behind (socket backpressure)
    // later requests still carry their original schedule, so the backlog
    // shows up as latency rather than silently lowering the offered rate.
    std::this_thread::sleep_until(start + interval * i);
    client.Send(queries[i % queries.size()]);
  }
  reader.join();

  std::vector<double> latencies(total);
  for (int i = 0; i < total; ++i) {
    latencies[i] = MsSince(start + interval * i, received[i]);
  }
  const double elapsed_s =
      std::chrono::duration<double>(received[total - 1] - start).count();

  OpenLoopStats stats;
  const LoadStats base = Summarize(std::move(latencies), elapsed_s);
  stats.offered_qps = offered_qps;
  stats.achieved_qps = base.qps;
  stats.p50_ms = base.p50_ms;
  stats.p99_ms = base.p99_ms;
  stats.requests = base.requests;
  return stats;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  const std::string name = flags.GetString("name", "Texas");
  const double scale = flags.GetDouble("scale", 1.0);
  const int nodes_per_request =
      static_cast<int>(flags.GetInt("nodes_per_request", 8));
  const int requests_per_connection =
      static_cast<int>(flags.GetInt("requests_per_connection", 1000));
  const double open_loop_seconds = flags.GetDouble("open_loop_seconds", 2.0);
  const double slo_p99_ms = flags.GetDouble("slo_p99_ms", 2.0);
  const int threads = static_cast<int>(flags.GetInt("threads", 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Result<Dataset> dataset = BuildBenchmarkByName(name, seed, scale);
  ADPA_CHECK(dataset.ok()) << dataset.status().ToString();
  Rng rng(seed);
  ModelConfig config;
  Result<ModelPtr> model = CreateModel("ADPA", *dataset, config, &rng);
  ADPA_CHECK(model.ok()) << model.status().ToString();
  const Checkpoint checkpoint =
      MakeCheckpoint(**model, "ADPA", *dataset, config, TrainConfig());
  const std::string ckpt_path =
      "/tmp/adpa_load_bench_" + std::to_string(::getpid()) + ".ckpt";
  Status saved = SaveCheckpoint(checkpoint, ckpt_path);
  ADPA_CHECK(saved.ok()) << saved.ToString();

  SetNumThreads(threads);
  serve::SessionRegistry registry(&*dataset, serve::EngineOptions{});
  Result<serve::SessionRegistry::ReloadInfo> loaded =
      registry.Reload(ckpt_path);
  ADPA_CHECK(loaded.ok()) << loaded.status().ToString();

  serve::ServeMetrics metrics;
  net::ServerOptions options;  // ephemeral loopback port
  Result<std::unique_ptr<net::Server>> server =
      net::Server::Create(options, &registry, &metrics);
  ADPA_CHECK(server.ok()) << server.status().ToString();
  std::thread loop([&] {
    const Status status = (*server)->Serve();
    ADPA_CHECK(status.ok()) << status.ToString();
  });
  const uint16_t port = (*server)->port();

  const std::vector<std::string> queries = BuildQueries(
      dataset->num_nodes(), nodes_per_request, seed, /*pool_size=*/256);

#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::printf("{\n  \"bench\": \"serve_load\",\n  \"transport\": \"tcp\",\n"
              "  \"build_type\": \"%s\",\n  \"simd_level\": \"%s\",\n"
              "  \"dataset\": \"%s\",\n  \"nodes\": %lld,\n"
              "  \"threads\": %d,\n  \"nodes_per_request\": %d,\n"
              "  \"slo_p99_ms\": %.2f,\n  \"closed_loop\": [\n",
              build_type, simd::LevelName(simd::ActiveLevel()),
              dataset->name.c_str(),
              static_cast<long long>(dataset->num_nodes()), threads,
              nodes_per_request, slo_p99_ms);

  const int connection_counts[] = {1, 4, 16};
  double capacity_qps = 0.0;
  for (size_t i = 0; i < 3; ++i) {
    const LoadStats stats =
        RunClosedLoop("127.0.0.1", port, queries, connection_counts[i],
                      requests_per_connection);
    capacity_qps = std::max(capacity_qps, stats.qps);
    std::printf("    {\"connections\": %d, \"requests\": %llu, "
                "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                connection_counts[i],
                static_cast<unsigned long long>(stats.requests), stats.qps,
                stats.p50_ms, stats.p99_ms, i + 1 < 3 ? "," : "");
  }

  // Binary search for the saturation knee: the highest offered rate whose
  // open-loop p99 meets the SLO. The closed-loop capacity bounds the search
  // from above (an open loop past it can only build queue), and every probe
  // is reported so the latency-vs-rate curve is visible in the JSON.
  std::printf("  ],\n  \"open_loop\": [\n");
  const int kProbes = 6;
  double lo_qps = 0.0;
  double hi_qps = capacity_qps;
  double sustained_qps = 0.0;
  for (int i = 0; i < kProbes; ++i) {
    const double offered = i == 0 ? hi_qps : 0.5 * (lo_qps + hi_qps);
    const OpenLoopStats stats =
        RunOpenLoop("127.0.0.1", port, queries, offered, open_loop_seconds);
    const bool meets_slo = stats.p99_ms <= slo_p99_ms;
    if (meets_slo) {
      lo_qps = offered;
      sustained_qps = std::max(sustained_qps, stats.achieved_qps);
    } else {
      hi_qps = offered;
    }
    std::printf("    {\"offered_qps\": %.1f, \"achieved_qps\": %.1f, "
                "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"meets_slo\": %s}%s\n",
                stats.offered_qps, stats.achieved_qps, stats.p50_ms,
                stats.p99_ms, meets_slo ? "true" : "false",
                i + 1 < kProbes ? "," : "");
  }
  std::printf("  ],\n  \"sustained_qps_at_slo\": %.1f\n}\n", sustained_qps);

  (*server)->RequestStop();
  loop.join();
  std::remove(ckpt_path.c_str());
  return 0;
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
