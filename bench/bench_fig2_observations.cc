// Fig. 2: the two empirical observations motivating AMUD.
//  (a)/(b) O1 — on CoraML, undirected GNNs on the undirected transformation
//          beat directed GNNs on the natural digraph; on Chameleon the
//          situation flips.
//  (c)/(d) O2 — undirected edge augmentation (U- input) helps directed
//          GNNs on CiteSeer but hurts them on Squirrel.

#include <cstdio>

#include "bench/bench_common.h"

namespace adpa {
namespace {

void Run(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseBenchOptions(
      argc, argv, {.repeats = 2, .epochs = 50, .patience = 15, .scale = 0.5});
  std::printf(
      "Fig. 2 (a,b) — O1: U- undirected GNNs vs D- directed GNNs\n"
      "(repeats=%d epochs=%d scale=%.2f)\n\n",
      options.repeats, options.epochs, options.scale);
  {
    TablePrinter table({"Model", "Input", "CoraML", "Chameleon"});
    const char* undirected_models[] = {"GCN", "GPRGNN", "AERO-GNN"};
    const char* directed_models[] = {"DiGCN", "NSTE", "DirGNN"};
    for (const char* model : undirected_models) {
      const BenchmarkSpec cora = std::move(FindBenchmark("CoraML")).value();
      const BenchmarkSpec cham =
          std::move(FindBenchmark("Chameleon")).value();
      table.AddRow({std::string("U-") + model, "undirected",
                    bench::RunCell(model, cora, options, 1).ToString(),
                    bench::RunCell(model, cham, options, 1).ToString()});
    }
    for (const char* model : directed_models) {
      const BenchmarkSpec cora = std::move(FindBenchmark("CoraML")).value();
      const BenchmarkSpec cham =
          std::move(FindBenchmark("Chameleon")).value();
      table.AddRow({std::string("D-") + model, "directed",
                    bench::RunCell(model, cora, options, 0).ToString(),
                    bench::RunCell(model, cham, options, 0).ToString()});
    }
    table.Print();
  }

  std::printf(
      "\nFig. 2 (c,d) — O2: undirected augmentation for directed GNNs\n\n");
  {
    TablePrinter table({"Model", "CiteSeer", "Squirrel"});
    for (const char* model : {"DiGCN", "NSTE", "DirGNN"}) {
      const BenchmarkSpec cite = std::move(FindBenchmark("CiteSeer")).value();
      const BenchmarkSpec squi = std::move(FindBenchmark("Squirrel")).value();
      table.AddRow({std::string("D-") + model,
                    bench::RunCell(model, cite, options, 0).ToString(),
                    bench::RunCell(model, squi, options, 0).ToString()});
      table.AddRow({std::string("U-") + model,
                    bench::RunCell(model, cite, options, 1).ToString(),
                    bench::RunCell(model, squi, options, 1).ToString()});
    }
    table.Print();
  }
  std::printf(
      "\nExpected shape: U- rows win the CoraML/CiteSeer columns, D- rows "
      "win Chameleon/Squirrel.\n");
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) {
  adpa::Run(argc, argv);
  return 0;
}
