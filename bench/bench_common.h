#pragma once
// Shared plumbing for the per-table/figure bench binaries. Every binary
// accepts:
//   --repeats=N   seeded repetitions per cell (default varies per bench)
//   --epochs=N    max training epochs
//   --patience=N  early-stopping patience (0 disables)
//   --scale=F     node-count multiplier for the registry datasets
//   --threads=N   parallel runtime width (0 = auto; results are identical
//                 for any value, see src/core/parallel.h)
// Defaults are sized for a single-core sweep; raise them (e.g. --repeats=10
// --epochs=300 --scale=1.5) to approach the paper's full protocol.

#include <cstdio>
#include <string>

#include "src/core/flags.h"
#include "src/core/logging.h"
#include "src/core/parallel.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/models/factory.h"
#include "src/train/experiment.h"
#include "src/train/trainer.h"

namespace adpa {
namespace bench {

struct BenchOptions {
  int repeats = 3;
  int epochs = 80;
  int patience = 20;
  double scale = 0.5;
};

inline BenchOptions ParseBenchOptions(int argc, char** argv,
                                      BenchOptions defaults) {
  Flags flags;
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "bad flags; using defaults\n");
    return defaults;
  }
  BenchOptions options = defaults;
  options.repeats =
      static_cast<int>(flags.GetInt("repeats", defaults.repeats));
  options.epochs = static_cast<int>(flags.GetInt("epochs", defaults.epochs));
  options.patience =
      static_cast<int>(flags.GetInt("patience", defaults.patience));
  options.scale = flags.GetDouble("scale", defaults.scale);
  if (flags.Has("threads")) {
    SetNumThreads(static_cast<int>(flags.GetInt("threads", 0)));
  }
  return options;
}

inline TrainConfig MakeTrainConfig(const BenchOptions& options) {
  TrainConfig config;
  config.max_epochs = options.epochs;
  config.patience = options.patience;
  return config;
}

/// Per-model hyperparameters, standing in for the paper's Optuna search
/// (Sec. V-A): a shared budget with the few per-regime choices that the
/// search reliably lands on.
inline ModelConfig TunedConfig(const std::string& model_name,
                               const BenchmarkSpec& spec) {
  ModelConfig config;
  if (model_name == "ADPA" && spec.expect_directed) {
    // Heterophilous digraphs benefit from one extra propagation step
    // (Fig. 6 shows the curve peaking at K = 3 there).
    config.propagation_steps = 3;
  }
  return config;
}

/// Trains `model_name` on `spec` for `repeats` seeded dataset draws.
/// The U-/D- input convention follows the model type unless forced.
inline RepeatedResult RunCell(const std::string& model_name,
                              const BenchmarkSpec& spec,
                              const BenchOptions& options,
                              int force_undirect = -1) {
  const bool undirect = force_undirect >= 0
                            ? force_undirect != 0
                            : ShouldUndirectInput(model_name);
  Result<RepeatedResult> result = RunRepeated(
      model_name,
      [&spec, &options](uint64_t seed) {
        return BuildBenchmark(spec, seed, options.scale);
      },
      TunedConfig(model_name, spec), MakeTrainConfig(options),
      options.repeats, undirect);
  ADPA_CHECK(result.ok()) << model_name << " on " << spec.name << ": "
                          << result.status().ToString();
  return *result;
}

/// Average rank column used by Tables III/IV: rank of each model within
/// each dataset (1 = best), averaged across datasets.
inline std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& accuracy_by_model_dataset) {
  const size_t num_models = accuracy_by_model_dataset.size();
  if (num_models == 0) return {};
  const size_t num_datasets = accuracy_by_model_dataset[0].size();
  std::vector<double> ranks(num_models, 0.0);
  for (size_t d = 0; d < num_datasets; ++d) {
    for (size_t m = 0; m < num_models; ++m) {
      double rank = 1.0;
      for (size_t other = 0; other < num_models; ++other) {
        if (other != m && accuracy_by_model_dataset[other][d] >
                              accuracy_by_model_dataset[m][d]) {
          rank += 1.0;
        }
      }
      ranks[m] += rank;
    }
  }
  for (double& r : ranks) r /= static_cast<double>(num_datasets);
  return ranks;
}

}  // namespace bench
}  // namespace adpa

