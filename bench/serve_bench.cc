// serve_bench — latency/throughput benchmark for the batched serving path.
//
// Builds a registry benchmark, snapshots a freshly initialized ADPA model
// into a checkpoint (training does not change inference cost), then drives
// the InferenceSession + MicroBatcher stack with bursts of point queries at
// 1, 2, and 8 kernel threads. Emits a JSON report (BENCH_serve.json via
// tools/bench_to_json.sh): per-thread-count p50/p99/mean request latency
// and sustained QPS.
//
//   serve_bench [--name=Texas --scale=1.0 --requests=400
//                --nodes_per_request=8 --burst=16 --seed=1]

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/flags.h"
#include "src/core/logging.h"
#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/data/benchmarks.h"
#include "src/io/checkpoint.h"
#include "src/models/factory.h"
#include "src/serve/batcher.h"
#include "src/serve/engine.h"
#include "src/serve/metrics.h"
#include "src/tensor/simd.h"

namespace adpa {
namespace {

struct RunStats {
  int threads = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double qps = 0.0;
  double mean_batch_requests = 0.0;
  uint64_t requests = 0;
};

RunStats RunAtThreadCount(const serve::InferenceSession& session, int threads,
                          int num_requests, int nodes_per_request, int burst,
                          uint64_t seed) {
  SetNumThreads(threads);
  serve::ServeMetrics metrics;
  serve::MicroBatcher batcher(&session, &metrics);
  Rng rng(seed);

  auto draw_nodes = [&] {
    std::vector<int64_t> nodes(nodes_per_request);
    for (int64_t& node : nodes) {
      node = rng.UniformInt(session.num_nodes());
    }
    return nodes;
  };

  // Warmup: touch every code path once before timing.
  auto warm = batcher.Submit(draw_nodes());
  batcher.PumpOnce();
  ADPA_CHECK(warm.Wait().ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<serve::MicroBatcher::Ticket> tickets;
  tickets.reserve(burst);
  int remaining = num_requests;
  while (remaining > 0) {
    const int in_burst = remaining < burst ? remaining : burst;
    tickets.clear();
    for (int i = 0; i < in_burst; ++i) {
      tickets.push_back(batcher.Submit(draw_nodes()));
    }
    while (batcher.queue_depth() > 0) batcher.PumpOnce();
    for (auto& ticket : tickets) ADPA_CHECK(ticket.Wait().ok());
    remaining -= in_burst;
  }
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  batcher.Shutdown();

  const serve::MetricsSnapshot snapshot = metrics.Snapshot();
  RunStats stats;
  stats.threads = threads;
  stats.p50_ms = snapshot.p50_latency_ms;
  stats.p99_ms = snapshot.p99_latency_ms;
  stats.mean_ms = snapshot.mean_latency_ms;
  stats.mean_batch_requests = snapshot.mean_batch_requests;
  stats.requests = snapshot.requests;
  stats.qps = elapsed_s > 0.0
                  ? static_cast<double>(num_requests + 1) / elapsed_s
                  : 0.0;
  return stats;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv)) return 2;
  const std::string name = flags.GetString("name", "Texas");
  const double scale = flags.GetDouble("scale", 1.0);
  const int requests = static_cast<int>(flags.GetInt("requests", 400));
  const int nodes_per_request =
      static_cast<int>(flags.GetInt("nodes_per_request", 8));
  const int burst = static_cast<int>(flags.GetInt("burst", 16));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  Result<Dataset> dataset = BuildBenchmarkByName(name, seed, scale);
  ADPA_CHECK(dataset.ok()) << dataset.status().ToString();
  Rng rng(seed);
  ModelConfig config;
  Result<ModelPtr> model = CreateModel("ADPA", *dataset, config, &rng);
  ADPA_CHECK(model.ok()) << model.status().ToString();
  const Checkpoint checkpoint =
      MakeCheckpoint(**model, "ADPA", *dataset, config, TrainConfig());
  Result<serve::InferenceSession> session =
      serve::InferenceSession::Create(checkpoint, *dataset);
  ADPA_CHECK(session.ok()) << session.status().ToString();

  // build_type is the provenance key tools/bench_to_json.sh keys off: a
  // debug/sanitizer build must not overwrite the checked-in numbers.
#ifdef NDEBUG
  const char* build_type = "release";
#else
  const char* build_type = "debug";
#endif
  std::printf("{\n  \"bench\": \"serve\",\n  \"transport\": \"in_process\",\n"
              "  \"build_type\": \"%s\",\n"
              "  \"simd_level\": \"%s\",\n  \"dataset\": \"%s\",\n"
              "  \"nodes\": %lld,\n  \"requests\": %d,\n"
              "  \"nodes_per_request\": %d,\n  \"burst\": %d,\n"
              "  \"runs\": [\n",
              build_type, simd::LevelName(simd::ActiveLevel()),
              dataset->name.c_str(),
              static_cast<long long>(dataset->num_nodes()), requests,
              nodes_per_request, burst);
  const int thread_counts[] = {1, 2, 8};
  for (size_t i = 0; i < 3; ++i) {
    const RunStats stats =
        RunAtThreadCount(*session, thread_counts[i], requests,
                         nodes_per_request, burst, seed + i);
    std::printf("    {\"threads\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                "\"mean_ms\": %.4f, \"qps\": %.1f, "
                "\"mean_batch_requests\": %.2f}%s\n",
                stats.threads, stats.p50_ms, stats.p99_ms, stats.mean_ms,
                stats.qps, stats.mean_batch_requests, i + 1 < 3 ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}

}  // namespace
}  // namespace adpa

int main(int argc, char** argv) { return adpa::Main(argc, argv); }
