// Homophilous pipeline: a CoraML-style citation network, where AMUD
// recommends the undirected transformation and classical undirected GNNs
// shine. Compares an MLP, GCN, GPR-GNN, and ADPA on the same task —
// demonstrating that ADPA stays competitive on AMUndirected inputs.

#include <cstdio>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/models/factory.h"
#include "src/train/trainer.h"

int main() {
  using namespace adpa;
  Result<Dataset> dataset = BuildBenchmarkByName("CoraML", /*seed=*/1);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("CoraML-style citation network: %lld nodes, %lld edges\n",
              static_cast<long long>(dataset->num_nodes()),
              static_cast<long long>(dataset->num_edges()));

  Result<AmudReport> amud =
      ComputeAmud(dataset->graph, dataset->labels, dataset->num_classes);
  std::printf("AMUD S = %s -> %s\n\n", FormatDouble(amud->score, 3).c_str(),
              amud->decision == AmudDecision::kDirected
                  ? "keep directed"
                  : "undirected transformation");
  // Follow the guidance: all models below consume the undirected graph.
  const Dataset input = dataset->WithUndirectedGraph();

  TablePrinter table({"Model", "Val acc", "Test acc", "Epochs"});
  for (const char* name : {"MLP", "GCN", "GPRGNN", "ADPA"}) {
    Rng rng(7);
    ModelConfig config;
    Result<ModelPtr> model = CreateModel(name, input, config, &rng);
    TrainConfig train_config;
    train_config.max_epochs = 150;
    train_config.patience = 30;
    const TrainResult result =
        TrainModel(model->get(), input, train_config, &rng);
    table.AddRow({name, FormatDouble(result.best_val_accuracy * 100, 1),
                  FormatDouble(result.test_accuracy * 100, 1),
                  std::to_string(result.epochs_run)});
  }
  table.Print();
  std::printf(
      "\nThe structure-free MLP trails the graph models by a wide margin — "
      "homophilous\npropagation is doing real work here.\n");
  return 0;
}
