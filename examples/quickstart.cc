// Quickstart: the full AMUD -> ADPA pipeline on a freshly sampled digraph,
// in ~40 lines of user code.
//
//   1. sample (or load) a natural digraph with node features and labels,
//   2. ask AMUD whether to keep its directed edges,
//   3. train ADPA on the recommended topology,
//   4. report test accuracy.

#include <cstdio>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/data/generators.h"
#include "src/data/splits.h"
#include "src/models/adpa.h"
#include "src/train/trainer.h"

int main() {
  using namespace adpa;

  // 1. A directed graph whose labels follow a cyclic class progression —
  //    the kind of structure only directed modeling can see.
  DsbmConfig config;
  config.num_nodes = 600;
  config.num_classes = 5;
  config.avg_out_degree = 6.0;
  config.class_transition = CyclicTransition(5, 0.7, 0.05);
  config.edge_noise = 0.15;
  config.feature_dim = 32;
  config.feature_noise = 4.0;
  config.seed = 42;
  Result<Dataset> dataset = GenerateDsbm(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  Rng rng(42);
  Result<Split> split = SplitFractions(dataset->labels, 5, 0.48, 0.32, &rng);
  dataset->train_idx = split->train;
  dataset->val_idx = split->val;
  dataset->test_idx = split->test;

  // 2. AMUD guidance: should this graph stay directed?
  Result<AmudReport> amud =
      ComputeAmud(dataset->graph, dataset->labels, dataset->num_classes);
  std::printf("%s", amud->ToString().c_str());
  dataset->graph = ApplyAmudDecision(dataset->graph, amud->decision);

  // 3. Train ADPA on the AMUD-recommended topology.
  ModelConfig model_config;  // 2-order DPs, K = 2, both attentions on
  AdpaModel model(*dataset, model_config, &rng);
  TrainConfig train_config;
  train_config.max_epochs = 150;
  train_config.patience = 30;
  const TrainResult result = TrainModel(&model, *dataset, train_config, &rng);

  // 4. Report.
  std::printf("best val accuracy: %.1f%% (epoch %d)\n",
              result.best_val_accuracy * 100.0, result.best_epoch);
  std::printf("test accuracy:     %.1f%%\n", result.test_accuracy * 100.0);
  return 0;
}
