// Sparsity stress demo (the Fig. 7 scenario as a user-facing walkthrough):
// degrade a digraph's features, edges, and training labels and watch how
// ADPA's decoupled propagation holds up against a propagation-free
// baseline (A2DUG) that cannot recover masked features from neighbors.

#include <cstdio>

#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/data/sparsity.h"
#include "src/models/factory.h"
#include "src/train/trainer.h"

namespace {

double TrainOne(const adpa::Dataset& input, const char* model_name) {
  using namespace adpa;
  Rng rng(5);
  Result<ModelPtr> model = CreateModel(model_name, input, ModelConfig(), &rng);
  TrainConfig train_config;
  train_config.max_epochs = 100;
  train_config.patience = 25;
  return TrainModel(model->get(), input, train_config, &rng).test_accuracy;
}

}  // namespace

int main() {
  using namespace adpa;
  Result<Dataset> base = BuildBenchmarkByName("CiteSeer", /*seed=*/2, 0.7);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  Rng rng(99);
  TablePrinter table({"Condition", "A2DUG", "ADPA"});
  auto add_row = [&](const std::string& label, const Dataset& ds) {
    table.AddRow({label, FormatDouble(TrainOne(ds, "A2DUG") * 100, 1),
                  FormatDouble(TrainOne(ds, "ADPA") * 100, 1)});
  };
  add_row("clean", *base);
  add_row("60% features masked",
          std::move(MaskFeatures(*base, 0.6, &rng)).value());
  add_row("60% edges removed", std::move(DropEdges(*base, 0.6, &rng)).value());
  add_row("5 labels per class",
          std::move(ReduceTrainLabels(*base, 5, &rng)).value());
  table.Print();
  std::printf(
      "\nADPA's K-step DP propagation rebuilds masked node profiles from "
      "directed\nneighborhoods; the propagation-free baseline cannot.\n");
  return 0;
}
