// Data-engineering walkthrough: run AMUD over the whole benchmark registry
// and print the modeling guidance next to the classical homophily metrics
// — the tool a data engineer would run on a newly collected digraph before
// choosing a model family (paper Fig. 1 workflow).

#include <cstdio>

#include "src/amud/amud.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/metrics/homophily.h"

int main() {
  using namespace adpa;
  std::printf(
      "AMUD guidance across the benchmark suite\n"
      "(S > 0.5 -> keep directed edges; otherwise undirect)\n\n");
  TablePrinter table({"Dataset", "H_edge", "H_adj", "LI", "r(A*AT,N)",
                      "r(A*A,N)", "S", "Guidance"});
  for (const BenchmarkSpec& spec : BenchmarkSuite()) {
    Result<Dataset> ds = BuildBenchmark(spec, /*seed=*/0, /*scale=*/0.6);
    if (!ds.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   ds.status().ToString().c_str());
      continue;
    }
    const HomophilyReport homophily =
        ComputeHomophilyReport(ds->graph, ds->labels, ds->num_classes);
    Result<AmudReport> amud =
        ComputeAmud(ds->graph, ds->labels, ds->num_classes);
    double r_aat = 0.0, r_aa = 0.0;
    for (const PatternCorrelation& c : amud->correlations) {
      if (c.pattern.Name() == "A*AT") r_aat = c.r;
      if (c.pattern.Name() == "A*A") r_aa = c.r;
    }
    table.AddRow({spec.name, FormatDouble(homophily.edge, 3),
                  FormatDouble(homophily.adjusted, 3),
                  FormatDouble(homophily.li, 3), FormatDouble(r_aat, 3),
                  FormatDouble(r_aa, 3), FormatDouble(amud->score, 3),
                  amud->decision == AmudDecision::kDirected
                      ? "keep directed"
                      : "undirect"});
  }
  table.Print();
  std::printf(
      "\nNote how Actor and AmazonRating are heterophilous by H_edge yet "
      "get 'undirect':\ntheir 2-order DP correlations are equal, so "
      "direction carries no extra label signal.\n");
  return 0;
}
