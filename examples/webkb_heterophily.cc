// Heterophilous digraph pipeline: a WebKB-style page network whose labels
// follow a directed class progression. Shows the U-/D- gap the paper's
// Fig. 2 is built on: the same directed model loses accuracy when the
// input is coarsely undirected, while ADPA on the natural digraph wins.

#include <cstdio>

#include "src/amud/amud.h"
#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/data/benchmarks.h"
#include "src/models/factory.h"
#include "src/train/trainer.h"

namespace {

double TrainOne(const adpa::Dataset& input, const char* model_name,
                uint64_t seed) {
  using namespace adpa;
  Rng rng(seed);
  ModelConfig config;
  config.propagation_steps = 3;
  Result<ModelPtr> model = CreateModel(model_name, input, config, &rng);
  TrainConfig train_config;
  train_config.max_epochs = 150;
  train_config.patience = 30;
  return TrainModel(model->get(), input, train_config, &rng).test_accuracy;
}

}  // namespace

int main() {
  using namespace adpa;
  Result<Dataset> dataset = BuildBenchmarkByName("Wisconsin", /*seed=*/3);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  Result<AmudReport> amud =
      ComputeAmud(dataset->graph, dataset->labels, dataset->num_classes);
  std::printf("WebKB-style page network, AMUD S = %s -> keep directed\n\n",
              FormatDouble(amud->score, 3).c_str());
  std::printf("%s\n", amud->ToString().c_str());

  const Dataset undirected = dataset->WithUndirectedGraph();
  TablePrinter table({"Model", "Input", "Test acc"});
  for (const char* name : {"GCN", "DirGNN", "MagNet", "ADPA"}) {
    const double d_acc = TrainOne(*dataset, name, 11);
    const double u_acc = TrainOne(undirected, name, 11);
    table.AddRow({name, "directed", FormatDouble(d_acc * 100, 1)});
    table.AddRow({name, "undirected", FormatDouble(u_acc * 100, 1)});
  }
  table.Print();
  std::printf(
      "\nFor the models that exploit orientation (MagNet, ADPA) the "
      "directed input wins by a\nwide margin: the class signal lives in "
      "the edge directions, and the coarse undirected\ntransformation "
      "destroys it.\n");
  return 0;
}
