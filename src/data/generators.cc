#include "src/data/generators.h"

#include <algorithm>
#include <unordered_set>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {

Matrix HomophilousTransition(int64_t num_classes, double in_class_prob) {
  ADPA_CHECK_GE(num_classes, 2);
  ADPA_CHECK_GT(in_class_prob, 0.0);
  ADPA_CHECK_LE(in_class_prob, 1.0);
  Matrix m(num_classes, num_classes,
           static_cast<float>((1.0 - in_class_prob) /
                              static_cast<double>(num_classes - 1)));
  for (int64_t c = 0; c < num_classes; ++c) {
    m.At(c, c) = static_cast<float>(in_class_prob);
  }
  return m;
}

Matrix CyclicTransition(int64_t num_classes, double forward_prob,
                        double self_prob) {
  ADPA_CHECK_GE(num_classes, 2);
  ADPA_CHECK_GE(forward_prob, 0.0);
  ADPA_CHECK_GE(self_prob, 0.0);
  ADPA_CHECK_LE(forward_prob + self_prob, 1.0);
  const double rest =
      (1.0 - forward_prob - self_prob) / static_cast<double>(num_classes);
  Matrix m(num_classes, num_classes, static_cast<float>(rest));
  for (int64_t c = 0; c < num_classes; ++c) {
    m.At(c, (c + 1) % num_classes) += static_cast<float>(forward_prob);
    m.At(c, c) += static_cast<float>(self_prob);
  }
  return m;
}

Matrix ShiftMixtureTransition(int64_t num_classes,
                              const std::vector<ClassShift>& shifts) {
  ADPA_CHECK_GE(num_classes, 2);
  double total = 0.0;
  for (const ClassShift& s : shifts) {
    ADPA_CHECK_GE(s.weight, 0.0);
    total += s.weight;
  }
  ADPA_CHECK_LE(total, 1.0 + 1e-9);
  const double rest = (1.0 - total) / static_cast<double>(num_classes);
  Matrix m(num_classes, num_classes, static_cast<float>(rest));
  for (int64_t c = 0; c < num_classes; ++c) {
    for (const ClassShift& s : shifts) {
      const int64_t dst =
          ((c + s.shift) % num_classes + num_classes) % num_classes;
      m.At(c, dst) += static_cast<float>(s.weight);
    }
  }
  return m;
}

Matrix SymmetricHeterophilousTransition(int64_t num_classes,
                                        double self_prob) {
  ADPA_CHECK_GE(num_classes, 2);
  ADPA_CHECK_GE(self_prob, 0.0);
  ADPA_CHECK_LT(self_prob, 1.0);
  // Symmetric class ring: class c connects to its two ring neighbors with
  // equal weight. Heterophilous by edge homophily, yet the structure is
  // direction-free (M = Mᵀ): every 2-order DP carries the same label
  // signal, so AMUD sees no reason to retain directed edges.
  Matrix m(num_classes, num_classes, 0.0f);
  const float neighbor_mass = static_cast<float>((1.0 - self_prob) / 2.0);
  for (int64_t c = 0; c < num_classes; ++c) {
    m.At(c, c) = static_cast<float>(self_prob);
    m.At(c, (c + 1) % num_classes) += neighbor_mass;
    m.At(c, (c + num_classes - 1) % num_classes) += neighbor_mass;
  }
  return m;
}

Result<Dataset> GenerateDsbm(const DsbmConfig& config) {
  if (config.num_nodes < config.num_classes) {
    return Status::InvalidArgument("need at least one node per class");
  }
  if (config.num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (config.class_transition.rows() != config.num_classes ||
      config.class_transition.cols() != config.num_classes) {
    return Status::InvalidArgument("class_transition must be C x C");
  }
  if (config.avg_out_degree <= 0.0 || config.feature_dim <= 0) {
    return Status::InvalidArgument("degree and feature_dim must be positive");
  }

  Rng rng(config.seed);
  const int64_t n = config.num_nodes;
  const int64_t num_classes = config.num_classes;

  // Balanced labels via a shuffled round-robin assignment.
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) labels[i] = i % num_classes;
  rng.Shuffle(&labels);

  std::vector<std::vector<int64_t>> nodes_by_class(num_classes);
  for (int64_t i = 0; i < n; ++i) nodes_by_class[labels[i]].push_back(i);

  // Per-source-class target distributions.
  std::vector<std::vector<double>> transition(num_classes);
  for (int64_t c = 0; c < num_classes; ++c) {
    transition[c].resize(num_classes);
    for (int64_t d = 0; d < num_classes; ++d) {
      const float w = config.class_transition.At(c, d);
      if (w < 0.0f) {
        return Status::InvalidArgument("class_transition has negative weight");
      }
      transition[c][d] = w;
    }
  }

  const int64_t target_edges = static_cast<int64_t>(
      config.avg_out_degree * static_cast<double>(n));
  std::vector<Edge> edges;
  edges.reserve(target_edges * 2);
  for (int64_t e = 0; e < target_edges; ++e) {
    const int64_t u = rng.UniformInt(n);
    int64_t target_class;
    if (rng.Bernoulli(config.edge_noise)) {
      target_class = rng.UniformInt(num_classes);
    } else {
      target_class = rng.Categorical(transition[labels[u]]);
    }
    const auto& pool = nodes_by_class[target_class];
    int64_t v = pool[rng.UniformInt(static_cast<int64_t>(pool.size()))];
    if (u == v) continue;  // simple graph: skip self loops
    edges.push_back({u, v});
    if (config.reciprocal_prob > 0.0 &&
        rng.Bernoulli(config.reciprocal_prob)) {
      edges.push_back({v, u});
    }
  }

  Result<Digraph> graph = Digraph::Create(n, std::move(edges));
  if (!graph.ok()) return graph.status();

  // Class-conditional Gaussian features: x_v = mu_{y_v} + noise.
  Matrix class_means = Matrix::RandomNormal(
      num_classes, config.feature_dim, &rng, 0.0f,
      static_cast<float>(config.feature_signal));
  Matrix features(n, config.feature_dim);
  for (int64_t i = 0; i < n; ++i) {
    const float* mean_row = class_means.Row(labels[i]);
    float* row = features.Row(i);
    for (int64_t c = 0; c < config.feature_dim; ++c) {
      row[c] = mean_row[c] +
               static_cast<float>(rng.Normal(0.0, config.feature_noise));
    }
  }

  Dataset dataset;
  dataset.name = "dsbm";
  dataset.graph = std::move(graph).value();
  dataset.features = std::move(features);
  dataset.labels = std::move(labels);
  dataset.num_classes = num_classes;
  return dataset;
}

}  // namespace adpa
