#include "src/data/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/core/failpoint.h"

namespace adpa {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed dataset: " + what);
}

}  // namespace

Status SaveDatasetToStream(const Dataset& dataset, std::ostream& out) {
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  out << "adpa-dataset 1\n";
  out << "name " << (dataset.name.empty() ? "unnamed" : dataset.name) << "\n";
  out << "nodes " << dataset.num_nodes() << " classes "
      << dataset.num_classes << " features " << dataset.feature_dim()
      << "\n";
  out << "edges " << dataset.num_edges() << "\n";
  for (const Edge& e : dataset.graph.edges()) {
    out << e.src << " " << e.dst << "\n";
  }
  out << "labels\n";
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i] << (i + 1 < dataset.labels.size() ? ' ' : '\n');
  }
  out << "features\n";
  char buffer[32];
  for (int64_t r = 0; r < dataset.features.rows(); ++r) {
    for (int64_t c = 0; c < dataset.features.cols(); ++c) {
      std::snprintf(buffer, sizeof(buffer), "%.6g",
                    static_cast<double>(dataset.features.At(r, c)));
      out << buffer << (c + 1 < dataset.features.cols() ? ' ' : '\n');
    }
  }
  auto write_split = [&out](const char* tag,
                            const std::vector<int64_t>& indices) {
    out << tag << " " << indices.size();
    for (int64_t i : indices) out << " " << i;
    out << "\n";
  };
  write_split("train", dataset.train_idx);
  write_split("val", dataset.val_idx);
  write_split("test", dataset.test_idx);
  out.flush();
  if (!out.good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open for writing: " + path);
  }
  Status st = SaveDatasetToStream(dataset, out);
  if (!st.ok() && st.code() == StatusCode::kInternal) {
    return Status::Internal("write failed: " + path);
  }
  return st;
}

Result<Dataset> LoadDatasetFromStream(std::istream& in,
                                      const DatasetLimits& limits) {
  ADPA_FAILPOINT("dataset.load");
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "adpa-dataset" || version != 1) {
    return Malformed("bad magic/version header");
  }
  std::string tag;
  Dataset dataset;
  if (!(in >> tag >> dataset.name) || tag != "name") {
    return Malformed("expected 'name'");
  }
  int64_t n = 0, f = 0;
  std::string classes_tag, features_tag;
  if (!(in >> tag >> n >> classes_tag >> dataset.num_classes >>
        features_tag >> f) ||
      tag != "nodes" || classes_tag != "classes" ||
      features_tag != "features") {
    return Malformed("expected 'nodes ... classes ... features'");
  }
  if (n < 0 || f < 0 || dataset.num_classes < 2) {
    return Malformed("non-sensical dimensions");
  }
  // Enforce resource ceilings before the first header-sized allocation;
  // header fields are attacker-controlled until proven otherwise.
  if (n > limits.max_nodes) return Malformed("node count exceeds limit");
  if (f > limits.max_features) {
    return Malformed("feature dim exceeds limit");
  }
  if (dataset.num_classes > limits.max_classes) {
    return Malformed("class count exceeds limit");
  }
  if (f > 0 && n > limits.max_feature_entries / f) {
    return Malformed("feature matrix exceeds entry limit");
  }
  int64_t m = 0;
  if (!(in >> tag >> m) || tag != "edges" || m < 0) {
    return Malformed("expected 'edges <m>'");
  }
  if (m > limits.max_edges) return Malformed("edge count exceeds limit");
  std::vector<Edge> edges;
  // Reserve is capped: `m` is still untrusted here, and a truncated body
  // should fail on "truncated edges", not on a header-sized allocation.
  edges.reserve(std::min<int64_t>(m, 1 << 20));
  for (int64_t i = 0; i < m; ++i) {
    Edge e;
    if (!(in >> e.src >> e.dst)) return Malformed("truncated edges");
    edges.push_back(e);
  }
  Result<Digraph> graph = Digraph::Create(n, std::move(edges));
  if (!graph.ok()) return graph.status();
  dataset.graph = std::move(graph).value();

  if (!(in >> tag) || tag != "labels") {
    return Malformed("expected 'labels'");
  }
  dataset.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    if (!(in >> dataset.labels[i])) {
      return Malformed("truncated labels");
    }
  }
  if (!(in >> tag) || tag != "features") {
    return Malformed("expected 'features'");
  }
  dataset.features = Matrix(n, f);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < f; ++c) {
      double value;
      if (!(in >> value)) return Malformed("truncated features");
      dataset.features.At(r, c) = static_cast<float>(value);
    }
  }
  auto read_split = [&](const char* expected,
                        std::vector<int64_t>* indices) -> Status {
    int64_t count;
    if (!(in >> tag >> count) || tag != expected || count < 0) {
      return Malformed(std::string("expected '") + expected + "'");
    }
    if (count > n) return Malformed("split larger than the node set");
    indices->resize(count);
    for (int64_t i = 0; i < count; ++i) {
      if (!(in >> (*indices)[i])) {
        return Malformed("truncated split");
      }
    }
    return Status::OK();
  };
  ADPA_RETURN_IF_ERROR(read_split("train", &dataset.train_idx));
  ADPA_RETURN_IF_ERROR(read_split("val", &dataset.val_idx));
  ADPA_RETURN_IF_ERROR(read_split("test", &dataset.test_idx));
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  Result<Dataset> result = LoadDatasetFromStream(in);
  if (!result.ok() &&
      result.status().code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(result.status().message() + " (file " +
                                   path + ")");
  }
  return result;
}

}  // namespace adpa
