#include "src/data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace adpa {
namespace {

Status MalformedFile(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("malformed dataset file " + path + ": " +
                                 what);
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open for writing: " + path);
  }
  out << "adpa-dataset 1\n";
  out << "name " << (dataset.name.empty() ? "unnamed" : dataset.name) << "\n";
  out << "nodes " << dataset.num_nodes() << " classes "
      << dataset.num_classes << " features " << dataset.feature_dim()
      << "\n";
  out << "edges " << dataset.num_edges() << "\n";
  for (const Edge& e : dataset.graph.edges()) {
    out << e.src << " " << e.dst << "\n";
  }
  out << "labels\n";
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i] << (i + 1 < dataset.labels.size() ? ' ' : '\n');
  }
  out << "features\n";
  char buffer[32];
  for (int64_t r = 0; r < dataset.features.rows(); ++r) {
    for (int64_t c = 0; c < dataset.features.cols(); ++c) {
      std::snprintf(buffer, sizeof(buffer), "%.6g",
                    static_cast<double>(dataset.features.At(r, c)));
      out << buffer << (c + 1 < dataset.features.cols() ? ' ' : '\n');
    }
  }
  auto write_split = [&out](const char* tag,
                            const std::vector<int64_t>& indices) {
    out << tag << " " << indices.size();
    for (int64_t i : indices) out << " " << i;
    out << "\n";
  };
  write_split("train", dataset.train_idx);
  write_split("val", dataset.val_idx);
  write_split("test", dataset.test_idx);
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "adpa-dataset" || version != 1) {
    return MalformedFile(path, "bad magic/version header");
  }
  std::string tag;
  Dataset dataset;
  if (!(in >> tag >> dataset.name) || tag != "name") {
    return MalformedFile(path, "expected 'name'");
  }
  int64_t n = 0, f = 0;
  std::string classes_tag, features_tag;
  if (!(in >> tag >> n >> classes_tag >> dataset.num_classes >>
        features_tag >> f) ||
      tag != "nodes" || classes_tag != "classes" ||
      features_tag != "features") {
    return MalformedFile(path, "expected 'nodes ... classes ... features'");
  }
  if (n < 0 || f < 0 || dataset.num_classes < 2) {
    return MalformedFile(path, "non-sensical dimensions");
  }
  int64_t m = 0;
  if (!(in >> tag >> m) || tag != "edges" || m < 0) {
    return MalformedFile(path, "expected 'edges <m>'");
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (int64_t i = 0; i < m; ++i) {
    Edge e;
    if (!(in >> e.src >> e.dst)) return MalformedFile(path, "truncated edges");
    edges.push_back(e);
  }
  Result<Digraph> graph = Digraph::Create(n, std::move(edges));
  if (!graph.ok()) return graph.status();
  dataset.graph = std::move(graph).value();

  if (!(in >> tag) || tag != "labels") {
    return MalformedFile(path, "expected 'labels'");
  }
  dataset.labels.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    if (!(in >> dataset.labels[i])) {
      return MalformedFile(path, "truncated labels");
    }
  }
  if (!(in >> tag) || tag != "features") {
    return MalformedFile(path, "expected 'features'");
  }
  dataset.features = Matrix(n, f);
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < f; ++c) {
      double value;
      if (!(in >> value)) return MalformedFile(path, "truncated features");
      dataset.features.At(r, c) = static_cast<float>(value);
    }
  }
  auto read_split = [&](const char* expected,
                        std::vector<int64_t>* indices) -> Status {
    int64_t count;
    if (!(in >> tag >> count) || tag != expected || count < 0) {
      return MalformedFile(path, std::string("expected '") + expected + "'");
    }
    indices->resize(count);
    for (int64_t i = 0; i < count; ++i) {
      if (!(in >> (*indices)[i])) {
        return MalformedFile(path, "truncated split");
      }
    }
    return Status::OK();
  };
  ADPA_RETURN_IF_ERROR(read_split("train", &dataset.train_idx));
  ADPA_RETURN_IF_ERROR(read_split("val", &dataset.val_idx));
  ADPA_RETURN_IF_ERROR(read_split("test", &dataset.test_idx));
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace adpa
