#include "src/data/sparsity.h"

#include <algorithm>
#include <unordered_set>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

Status ValidateFraction(double fraction) {
  if (fraction < 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> MaskFeatures(const Dataset& dataset, double fraction,
                             Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  ADPA_RETURN_IF_ERROR(ValidateFraction(fraction));
  Dataset out = dataset;
  std::unordered_set<int64_t> train(dataset.train_idx.begin(),
                                    dataset.train_idx.end());
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < dataset.num_nodes(); ++i) {
    if (train.count(i) == 0) candidates.push_back(i);
  }
  const int64_t mask_count = static_cast<int64_t>(
      fraction * static_cast<double>(candidates.size()));
  rng->Shuffle(&candidates);
  for (int64_t i = 0; i < mask_count; ++i) {
    float* row = out.features.Row(candidates[i]);
    std::fill(row, row + out.features.cols(), 0.0f);
  }
  return out;
}

Result<Dataset> DropEdges(const Dataset& dataset, double fraction, Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  ADPA_RETURN_IF_ERROR(ValidateFraction(fraction));
  const auto& edges = dataset.graph.edges();
  const int64_t keep_count = static_cast<int64_t>(
      (1.0 - fraction) * static_cast<double>(edges.size()));
  std::vector<int64_t> order(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng->Shuffle(&order);
  std::vector<Edge> kept;
  kept.reserve(keep_count);
  for (int64_t i = 0; i < keep_count; ++i) kept.push_back(edges[order[i]]);
  Result<Digraph> graph = Digraph::Create(dataset.num_nodes(), std::move(kept));
  if (!graph.ok()) return graph.status();
  Dataset out = dataset;
  out.graph = std::move(graph).value();
  return out;
}

Result<Dataset> ReduceTrainLabels(const Dataset& dataset, int64_t per_class,
                                  Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  if (per_class <= 0) {
    return Status::InvalidArgument("per_class must be positive");
  }
  std::vector<std::vector<int64_t>> train_by_class(dataset.num_classes);
  for (int64_t i : dataset.train_idx) {
    train_by_class[dataset.labels[i]].push_back(i);
  }
  Dataset out = dataset;
  out.train_idx.clear();
  for (auto& nodes : train_by_class) {
    rng->Shuffle(&nodes);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (static_cast<int64_t>(i) < per_class) {
        out.train_idx.push_back(nodes[i]);
      } else {
        out.test_idx.push_back(nodes[i]);  // surplus becomes unlabeled
      }
    }
  }
  if (out.train_idx.empty()) {
    return Status::FailedPrecondition("no training labels left");
  }
  std::sort(out.train_idx.begin(), out.train_idx.end());
  std::sort(out.test_idx.begin(), out.test_idx.end());
  return out;
}

}  // namespace adpa
