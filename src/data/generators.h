#pragma once
#include <cstdint>
#include <string>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// Configuration of the directed stochastic block model (DSBM) that stands
/// in for the paper's real benchmark graphs (see DESIGN.md, substitutions).
///
/// Edges are sampled as (source u, target v): the target's class is drawn
/// from `class_transition[y_u]`, so the matrix controls both homophily
/// (diagonal mass) and *directional* structure (asymmetric off-diagonal
/// mass, e.g. a cyclic class progression like the paper's Fig. 3 toy).
/// `reciprocal_prob` is the probability that an edge also gets its reverse:
/// high reciprocity means direction carries no information and AMUD should
/// recommend the undirected transformation.
struct DsbmConfig {
  int64_t num_nodes = 1000;
  int64_t num_classes = 5;
  /// Expected number of generated (pre-dedup) directed edges per node.
  double avg_out_degree = 5.0;
  /// C x C row-normalizable non-negative weights: P(dst class | src class).
  Matrix class_transition;
  /// Probability that an edge ignores the transition matrix and picks a
  /// uniformly random target class (topology noise).
  double edge_noise = 0.05;
  /// Probability that a generated edge u->v also adds v->u.
  double reciprocal_prob = 0.0;
  int64_t feature_dim = 64;
  /// Scale of the per-class feature mean vectors.
  double feature_signal = 1.0;
  /// Within-class feature standard deviation (higher = harder task).
  double feature_noise = 1.0;
  uint64_t seed = 1;
};

/// Homophilous transition: `in_class_prob` mass on the diagonal, the rest
/// uniform. Models citation/co-purchase style graphs.
Matrix HomophilousTransition(int64_t num_classes, double in_class_prob);

/// Cyclic (class-progression) transition: edges flow from class c to class
/// (c+1) mod C with probability `forward_prob`, `self_prob` stays in-class,
/// remainder uniform. Low edge homophily but *strong directed structure*:
/// A·Aᵀ / Aᵀ·A are homophilous while A·A walks two classes ahead — exactly
/// the entanglement AMUD is designed to detect (paper Sec. III, Fig. 3).
Matrix CyclicTransition(int64_t num_classes, double forward_prob,
                        double self_prob = 0.0);

/// General asymmetric transition built from a mixture of class shifts:
/// each (shift, weight) entry puts `weight` mass on dst = (src + shift)
/// mod C. Models messier real-world directed structure than a pure cycle
/// (web pages point at several "later" page types, not exactly one).
/// Remaining mass (1 - Σ weights) is spread uniformly. Weights must be
/// non-negative and sum to at most 1.
struct ClassShift {
  int64_t shift = 1;
  double weight = 0.5;
};
Matrix ShiftMixtureTransition(int64_t num_classes,
                              const std::vector<ClassShift>& shifts);

/// Symmetric heterophilous transition: uniform off-diagonal with
/// `self_prob` on the diagonal. Combined with high `reciprocal_prob`, this
/// models Actor/Amazon-rating style graphs: heterophilous by edge homophily
/// yet with direction-free structure (AMUD should say undirected).
Matrix SymmetricHeterophilousTransition(int64_t num_classes,
                                        double self_prob = 0.05);

/// Samples a DSBM dataset (graph + Gaussian class-conditional features +
/// balanced labels). Splits are left empty; apply a split builder next.
Result<Dataset> GenerateDsbm(const DsbmConfig& config);

}  // namespace adpa

