#include "src/data/splits.h"

#include <algorithm>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

std::vector<std::vector<int64_t>> NodesByClass(
    const std::vector<int64_t>& labels, int64_t num_classes) {
  std::vector<std::vector<int64_t>> by_class(num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(static_cast<int64_t>(i));
  }
  return by_class;
}

}  // namespace

Result<Split> SplitPerClass(const std::vector<int64_t>& labels,
                            int64_t num_classes, int64_t train_per_class,
                            int64_t num_val, int64_t num_test, Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  if (train_per_class <= 0) {
    return Status::InvalidArgument("train_per_class must be positive");
  }
  auto by_class = NodesByClass(labels, num_classes);
  Split split;
  std::vector<int64_t> remaining;
  for (int64_t c = 0; c < num_classes; ++c) {
    if (static_cast<int64_t>(by_class[c].size()) < train_per_class) {
      return Status::FailedPrecondition(
          "class " + std::to_string(c) + " has fewer than " +
          std::to_string(train_per_class) + " nodes");
    }
    rng->Shuffle(&by_class[c]);
    for (int64_t i = 0; i < static_cast<int64_t>(by_class[c].size()); ++i) {
      if (i < train_per_class) {
        split.train.push_back(by_class[c][i]);
      } else {
        remaining.push_back(by_class[c][i]);
      }
    }
  }
  rng->Shuffle(&remaining);
  if (num_val + std::max<int64_t>(num_test, 1) >
      static_cast<int64_t>(remaining.size())) {
    return Status::FailedPrecondition("not enough nodes for val/test splits");
  }
  split.val.assign(remaining.begin(), remaining.begin() + num_val);
  if (num_test <= 0) {
    split.test.assign(remaining.begin() + num_val, remaining.end());
  } else {
    split.test.assign(remaining.begin() + num_val,
                      remaining.begin() + num_val + num_test);
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

Result<Split> SplitFractions(const std::vector<int64_t>& labels,
                             int64_t num_classes, double train_fraction,
                             double val_fraction, Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  if (train_fraction <= 0.0 || val_fraction < 0.0 ||
      train_fraction + val_fraction >= 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  auto by_class = NodesByClass(labels, num_classes);
  Split split;
  for (int64_t c = 0; c < num_classes; ++c) {
    auto& nodes = by_class[c];
    if (nodes.empty()) continue;
    rng->Shuffle(&nodes);
    const int64_t size = static_cast<int64_t>(nodes.size());
    // Round but keep at least one training node per non-empty class.
    int64_t train_count = std::max<int64_t>(
        1, static_cast<int64_t>(train_fraction * static_cast<double>(size)));
    int64_t val_count =
        static_cast<int64_t>(val_fraction * static_cast<double>(size));
    train_count = std::min(train_count, size);
    val_count = std::min(val_count, size - train_count);
    for (int64_t i = 0; i < size; ++i) {
      if (i < train_count) {
        split.train.push_back(nodes[i]);
      } else if (i < train_count + val_count) {
        split.val.push_back(nodes[i]);
      } else {
        split.test.push_back(nodes[i]);
      }
    }
  }
  if (split.test.empty()) {
    return Status::FailedPrecondition("test split came out empty");
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace adpa
