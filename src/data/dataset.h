#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/digraph.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// A semi-supervised node-classification task: a (di)graph, node features,
/// node labels, and index-based train/validation/test splits.
struct Dataset {
  std::string name;
  Digraph graph;
  Matrix features;              ///< n x f
  std::vector<int64_t> labels;  ///< n, values in [0, num_classes)
  int64_t num_classes = 0;
  std::vector<int64_t> train_idx;
  std::vector<int64_t> val_idx;
  std::vector<int64_t> test_idx;

  int64_t num_nodes() const { return graph.num_nodes(); }
  int64_t num_edges() const { return graph.num_edges(); }
  int64_t feature_dim() const { return features.cols(); }

  /// Structural validation: shapes agree, labels in range, splits disjoint
  /// and in range. Returns the first violation found.
  ADPA_NODISCARD Status Validate() const;

  /// Copy of this dataset with the graph replaced by its undirected
  /// transformation (features/labels/splits shared structure unchanged).
  Dataset WithUndirectedGraph() const;
};

}  // namespace adpa

