#pragma once
#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/core/status.h"
#include "src/data/dataset.h"

namespace adpa {

/// Plain-text dataset (de)serialization so users can bring their own
/// graphs. The format is line-oriented and self-describing:
///
///   adpa-dataset 1            # magic + version
///   name <string>
///   nodes <n> classes <C> features <f>
///   edges <m>
///   <src> <dst>               # m lines
///   labels
///   <label_0> ... <label_{n-1}>
///   features
///   <f floats per line, n lines>
///   train <k> <idx...>
///   val <k> <idx...>
///   test <k> <idx...>
///
/// Everything after `edges` is whitespace-separated, so files survive
/// reformatting. Floats round-trip at %.6g precision.

/// Resource ceilings enforced *before* any allocation sized by a header
/// field. A hostile file can otherwise claim `nodes 10^12 features 10^6`
/// and drive the loader into a terabyte allocation long before the
/// "truncated features" check is reached. Defaults are generous for real
/// workloads; fuzz targets pass tight limits.
struct DatasetLimits {
  int64_t max_nodes = 50'000'000;
  int64_t max_edges = 2'000'000'000;
  int64_t max_features = 1'000'000;
  /// Bounds the dense feature allocation (nodes * features).
  int64_t max_feature_entries = 2'000'000'000;
  /// Bounds label-count-shaped allocations downstream: every model sizes
  /// its classifier head and logits as (hidden | nodes) × num_classes, so
  /// a hostile `classes` header field is an allocation bomb even when the
  /// labels themselves are in range.
  int64_t max_classes = 1 << 20;
};

/// Serializes `dataset` to `path`. Fails on I/O errors.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Serializes `dataset` onto an open stream (the body of SaveDataset).
Status SaveDatasetToStream(const Dataset& dataset, std::ostream& out);

/// Parses a dataset written by SaveDataset (or by hand in the same
/// format). Validates the result before returning it.
Result<Dataset> LoadDataset(const std::string& path);

/// Stream-parsing core of LoadDataset, exposed so untrusted payloads can
/// be parsed without touching the filesystem (servers, fuzz harnesses).
/// Never aborts on malformed input: every violation — including header
/// dimensions beyond `limits` — comes back as a non-OK Status.
Result<Dataset> LoadDatasetFromStream(std::istream& in,
                                      const DatasetLimits& limits = {});

}  // namespace adpa
