#pragma once
#include <string>

#include "src/core/status.h"
#include "src/data/dataset.h"

namespace adpa {

/// Plain-text dataset (de)serialization so users can bring their own
/// graphs. The format is line-oriented and self-describing:
///
///   adpa-dataset 1            # magic + version
///   name <string>
///   nodes <n> classes <C> features <f>
///   edges <m>
///   <src> <dst>               # m lines
///   labels
///   <label_0> ... <label_{n-1}>
///   features
///   <f floats per line, n lines>
///   train <k> <idx...>
///   val <k> <idx...>
///   test <k> <idx...>
///
/// Everything after `edges` is whitespace-separated, so files survive
/// reformatting. Floats round-trip at %.6g precision.

/// Serializes `dataset` to `path`. Fails on I/O errors.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Parses a dataset written by SaveDataset (or by hand in the same
/// format). Validates the result before returning it.
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace adpa

