#pragma once
#include <cstdint>
#include <vector>

#include "src/core/status.h"

namespace adpa {

class Rng;

/// Train/val/test node index sets.
struct Split {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

/// Citation-network protocol: `train_per_class` labeled nodes per class,
/// then `num_val` validation and `num_test` (or all remaining when 0) test
/// nodes drawn from the rest. Fails if a class has too few nodes.
Result<Split> SplitPerClass(const std::vector<int64_t>& labels,
                            int64_t num_classes, int64_t train_per_class,
                            int64_t num_val, int64_t num_test, Rng* rng);

/// Percentage protocol (e.g. the paper's 48%/32%/20% WebKB and 50%/25%/25%
/// splits), stratified per class so every class appears in train.
Result<Split> SplitFractions(const std::vector<int64_t>& labels,
                             int64_t num_classes, double train_fraction,
                             double val_fraction, Rng* rng);

}  // namespace adpa

