#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/data/generators.h"
#include "src/data/splits.h"

namespace adpa {

/// Split protocol selector (the paper uses both, per dataset).
enum class SplitProtocol { kPerClass, kFractions };

/// A calibrated synthetic counterpart of one of the paper's 14 benchmark
/// datasets (Table II). `config` controls topology/features; the split
/// fields mirror the paper's protocol for that dataset. `expect_directed`
/// records the AMUD decision the paper reports (D-/U- in Table II), which
/// the calibration tests assert our generator reproduces.
struct BenchmarkSpec {
  std::string name;
  std::string description;
  DsbmConfig config;
  SplitProtocol protocol = SplitProtocol::kPerClass;
  // kPerClass parameters:
  int64_t train_per_class = 20;
  int64_t num_val = 300;
  int64_t num_test = 0;  // 0 = all remaining
  // kFractions parameters:
  double train_fraction = 0.48;
  double val_fraction = 0.32;
  bool expect_directed = false;
  bool homophilous = false;  ///< by edge/adjusted homophily convention
};

/// The full 14-dataset suite, in Table II order.
const std::vector<BenchmarkSpec>& BenchmarkSuite();

/// Looks a spec up by (case-sensitive) name.
Result<BenchmarkSpec> FindBenchmark(const std::string& name);

/// Instantiates the dataset: generates the DSBM with `seed` folded into the
/// spec's base seed, applies the split protocol, and validates. `scale`
/// multiplies the node count (1.0 = calibrated default).
Result<Dataset> BuildBenchmark(const BenchmarkSpec& spec, uint64_t seed,
                               double scale = 1.0);

/// Convenience: FindBenchmark + BuildBenchmark.
Result<Dataset> BuildBenchmarkByName(const std::string& name, uint64_t seed,
                                     double scale = 1.0);

}  // namespace adpa

