#pragma once
#include <cstdint>

#include "src/core/status.h"
#include "src/data/dataset.h"

namespace adpa {

class Rng;

/// Sparsity injectors backing the Fig. 7 robustness experiments. Each
/// returns a modified copy of the dataset; `fraction` must be in [0, 1).

/// Feature sparsity: zeroes the entire feature row of `fraction` of the
/// nodes *outside the training split* (the paper assumes unlabeled nodes
/// may arrive without profiles).
Result<Dataset> MaskFeatures(const Dataset& dataset, double fraction,
                             Rng* rng);

/// Edge sparsity: removes a uniformly random `fraction` of the edges.
Result<Dataset> DropEdges(const Dataset& dataset, double fraction, Rng* rng);

/// Label sparsity: keeps only `per_class` training labels for each class
/// (dropped training nodes are moved to the test split).
Result<Dataset> ReduceTrainLabels(const Dataset& dataset, int64_t per_class,
                                  Rng* rng);

}  // namespace adpa

