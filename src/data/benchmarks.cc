#include "src/data/benchmarks.h"

#include <algorithm>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

// Calibration notes. Node counts are scaled-down versions of the real
// datasets (kept in the paper's relative order); feature dimensions are
// scaled so single-core training stays fast. Feature noise is tuned so that
// accuracies land well below 100% and model ordering is informative.
//
// Direction semantics:
//   * homophilous sets: homophilous transition + high reciprocity, so all
//     four 2-order DPs look alike -> AMUD score below θ (U-).
//   * WebKB/wiki/Roman sets: cyclic class-progression transition with zero
//     reciprocity -> AA differs sharply from AAT -> AMUD above θ (D-).
//   * Actor / Amazon-rating: heterophilous by homophily metrics but with a
//     symmetric transition and high reciprocity -> direction carries no
//     label signal -> AMUD below θ (U-), the paper's two "abnormal" cases.
std::vector<BenchmarkSpec> MakeSuite() {
  std::vector<BenchmarkSpec> suite;

  auto add = [&suite](BenchmarkSpec spec) { suite.push_back(std::move(spec)); };

  {  // CoraML: citation network, 7 classes, homophilous.
    BenchmarkSpec s;
    s.name = "CoraML";
    s.description = "citation network";
    s.config.num_nodes = 1500;
    s.config.num_classes = 7;
    s.config.avg_out_degree = 3.0;
    s.config.class_transition = HomophilousTransition(7, 0.80);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.8;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.0;
    s.config.seed = 101;
    s.protocol = SplitProtocol::kPerClass;
    s.train_per_class = 20;
    s.num_val = 300;
    s.homophilous = true;
    add(s);
  }
  {  // CiteSeer: sparser citation network, 6 classes.
    BenchmarkSpec s;
    s.name = "CiteSeer";
    s.description = "citation network";
    s.config.num_nodes = 1300;
    s.config.num_classes = 6;
    s.config.avg_out_degree = 1.8;
    s.config.class_transition = HomophilousTransition(6, 0.74);
    s.config.edge_noise = 0.08;
    s.config.reciprocal_prob = 0.8;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.6;
    s.config.seed = 102;
    s.protocol = SplitProtocol::kPerClass;
    s.train_per_class = 20;
    s.num_val = 300;
    s.homophilous = true;
    add(s);
  }
  {  // PubMed: 3 classes, denser; naturally undirected in the paper.
    BenchmarkSpec s;
    s.name = "PubMed";
    s.description = "citation network (naturally undirected)";
    s.config.num_nodes = 1500;
    s.config.num_classes = 3;
    s.config.avg_out_degree = 4.5;
    s.config.class_transition = HomophilousTransition(3, 0.80);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 1.0;  // fully symmetric
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.4;
    s.config.seed = 103;
    s.protocol = SplitProtocol::kPerClass;
    s.train_per_class = 20;
    s.num_val = 300;
    s.homophilous = true;
    add(s);
  }
  {  // Tolokers: 2 classes, dense crowd-sourcing graph, weak features.
    BenchmarkSpec s;
    s.name = "Tolokers";
    s.description = "crowd-sourcing network";
    s.config.num_nodes = 1400;
    s.config.num_classes = 2;
    s.config.avg_out_degree = 20.0;
    s.config.class_transition = HomophilousTransition(2, 0.62);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.8;
    s.config.feature_dim = 16;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.2;
    s.config.seed = 104;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.50;
    s.val_fraction = 0.25;
    s.homophilous = true;
    add(s);
  }
  {  // WikiCS: 10 classes, web-link graph.
    BenchmarkSpec s;
    s.name = "WikiCS";
    s.description = "web-link network";
    s.config.num_nodes = 1300;
    s.config.num_classes = 10;
    s.config.avg_out_degree = 12.0;
    s.config.class_transition = HomophilousTransition(10, 0.70);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.75;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.8;
    s.config.seed = 105;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.05;
    s.val_fraction = 0.15;
    s.homophilous = true;
    add(s);
  }
  {  // Amazon-computers: co-purchase, 10 classes.
    BenchmarkSpec s;
    s.name = "AmazonComputers";
    s.description = "co-purchase network";
    s.config.num_nodes = 1400;
    s.config.num_classes = 10;
    s.config.avg_out_degree = 10.0;
    s.config.class_transition = HomophilousTransition(10, 0.78);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.85;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.4;
    s.config.seed = 106;
    s.protocol = SplitProtocol::kPerClass;
    s.train_per_class = 20;
    s.num_val = 300;
    s.homophilous = true;
    add(s);
  }
  {  // Texas: tiny WebKB page graph, strongly directed heterophily.
    BenchmarkSpec s;
    s.name = "Texas";
    s.description = "web-page network (WebKB)";
    s.config.num_nodes = 183;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 1.6;
    s.config.class_transition = CyclicTransition(5, 0.85, 0.03);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.0;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 3.4;
    s.config.seed = 107;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    s.expect_directed = true;
    add(s);
  }
  {  // Cornell.
    BenchmarkSpec s;
    s.name = "Cornell";
    s.description = "web-page network (WebKB)";
    s.config.num_nodes = 183;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 1.7;
    s.config.class_transition = CyclicTransition(5, 0.80, 0.08);
    s.config.edge_noise = 0.08;
    s.config.reciprocal_prob = 0.0;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 3.6;
    s.config.seed = 108;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    s.expect_directed = true;
    add(s);
  }
  {  // Wisconsin.
    BenchmarkSpec s;
    s.name = "Wisconsin";
    s.description = "web-page network (WebKB)";
    s.config.num_nodes = 251;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 1.8;
    s.config.class_transition = CyclicTransition(5, 0.78, 0.12);
    s.config.edge_noise = 0.08;
    s.config.reciprocal_prob = 0.0;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 3.5;
    s.config.seed = 109;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    s.expect_directed = true;
    add(s);
  }
  {  // Chameleon (filtered): wiki pages, directed heterophily, denser.
    BenchmarkSpec s;
    s.name = "Chameleon";
    s.description = "wiki-page network (filtered)";
    s.config.num_nodes = 890;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 8.0;
    s.config.class_transition = CyclicTransition(5, 0.45, 0.18);
    s.config.edge_noise = 0.25;
    s.config.reciprocal_prob = 0.05;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 6.0;
    s.config.seed = 110;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    s.expect_directed = true;
    add(s);
  }
  {  // Squirrel (filtered): like Chameleon, larger and denser.
    BenchmarkSpec s;
    s.name = "Squirrel";
    s.description = "wiki-page network (filtered)";
    s.config.num_nodes = 1100;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 14.0;
    s.config.class_transition = CyclicTransition(5, 0.40, 0.16);
    s.config.edge_noise = 0.30;
    s.config.reciprocal_prob = 0.05;
    s.config.feature_dim = 96;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 6.5;
    s.config.seed = 111;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    s.expect_directed = true;
    add(s);
  }
  {  // Actor: heterophilous by homophily metrics, but direction-free — the
     // first of the paper's two "abnormal" Table V cases.
    BenchmarkSpec s;
    s.name = "Actor";
    s.description = "actor co-occurrence network";
    s.config.num_nodes = 1200;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 3.5;
    s.config.class_transition = SymmetricHeterophilousTransition(5, 0.22);
    s.config.edge_noise = 0.10;
    s.config.reciprocal_prob = 0.85;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 5.2;
    s.config.seed = 112;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.48;
    s.val_fraction = 0.32;
    add(s);
  }
  {  // Roman-empire: many classes, chain-like syntax structure -> directed.
    BenchmarkSpec s;
    s.name = "RomanEmpire";
    s.description = "article syntax network";
    s.config.num_nodes = 1600;
    s.config.num_classes = 18;
    s.config.avg_out_degree = 2.6;
    s.config.class_transition = CyclicTransition(18, 0.80, 0.04);
    s.config.edge_noise = 0.05;
    s.config.reciprocal_prob = 0.0;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 3.6;
    s.config.seed = 113;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.50;
    s.val_fraction = 0.25;
    s.expect_directed = true;
    add(s);
  }
  {  // Amazon-rating: the second "abnormal" case.
    BenchmarkSpec s;
    s.name = "AmazonRating";
    s.description = "rating network";
    s.config.num_nodes = 1500;
    s.config.num_classes = 5;
    s.config.avg_out_degree = 3.8;
    s.config.class_transition = SymmetricHeterophilousTransition(5, 0.38);
    s.config.edge_noise = 0.10;
    s.config.reciprocal_prob = 0.85;
    s.config.feature_dim = 64;
    s.config.feature_signal = 1.0;
    s.config.feature_noise = 4.8;
    s.config.seed = 114;
    s.protocol = SplitProtocol::kFractions;
    s.train_fraction = 0.50;
    s.val_fraction = 0.25;
    add(s);
  }
  return suite;
}

}  // namespace

const std::vector<BenchmarkSpec>& BenchmarkSuite() {
  static const std::vector<BenchmarkSpec>& suite =
      *new std::vector<BenchmarkSpec>(MakeSuite());
  return suite;
}

Result<BenchmarkSpec> FindBenchmark(const std::string& name) {
  for (const BenchmarkSpec& spec : BenchmarkSuite()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown benchmark: " + name);
}

Result<Dataset> BuildBenchmark(const BenchmarkSpec& spec, uint64_t seed,
                               double scale) {
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");
  DsbmConfig config = spec.config;
  config.num_nodes =
      static_cast<int64_t>(static_cast<double>(config.num_nodes) * scale);
  config.seed = config.seed * 0x100000001B3ULL + seed;
  Result<Dataset> dataset = GenerateDsbm(config);
  if (!dataset.ok()) return dataset.status();
  dataset->name = spec.name;

  Rng split_rng(config.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  // The absolute split sizes of the per-class protocol shrink with `scale`
  // (and the training budget is capped so tiny builds stay feasible).
  const int64_t min_class_size = dataset->num_nodes() / dataset->num_classes;
  const int64_t train_per_class =
      std::max<int64_t>(2, std::min(spec.train_per_class,
                                    min_class_size / 3));
  const int64_t num_val = std::max<int64_t>(
      10, static_cast<int64_t>(static_cast<double>(spec.num_val) * scale));
  const int64_t num_test =
      spec.num_test <= 0
          ? 0
          : std::max<int64_t>(10, static_cast<int64_t>(
                                      static_cast<double>(spec.num_test) *
                                      scale));
  Result<Split> split =
      spec.protocol == SplitProtocol::kPerClass
          ? SplitPerClass(dataset->labels, dataset->num_classes,
                          train_per_class, num_val, num_test, &split_rng)
          : SplitFractions(dataset->labels, dataset->num_classes,
                           spec.train_fraction, spec.val_fraction,
                           &split_rng);
  if (!split.ok()) return split.status();
  dataset->train_idx = std::move(split->train);
  dataset->val_idx = std::move(split->val);
  dataset->test_idx = std::move(split->test);
  ADPA_RETURN_IF_ERROR(dataset->Validate());
  return dataset;
}

Result<Dataset> BuildBenchmarkByName(const std::string& name, uint64_t seed,
                                     double scale) {
  Result<BenchmarkSpec> spec = FindBenchmark(name);
  if (!spec.ok()) return spec.status();
  return BuildBenchmark(*spec, seed, scale);
}

}  // namespace adpa
