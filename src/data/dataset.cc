#include "src/data/dataset.h"

#include <unordered_set>

namespace adpa {

Status Dataset::Validate() const {
  if (features.rows() != graph.num_nodes()) {
    return Status::InvalidArgument("feature rows != num_nodes");
  }
  if (static_cast<int64_t>(labels.size()) != graph.num_nodes()) {
    return Status::InvalidArgument("labels size != num_nodes");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  for (int64_t label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label out of range");
    }
  }
  std::unordered_set<int64_t> seen;
  for (const auto* split : {&train_idx, &val_idx, &test_idx}) {
    for (int64_t i : *split) {
      if (i < 0 || i >= graph.num_nodes()) {
        return Status::OutOfRange("split index out of range");
      }
      if (!seen.insert(i).second) {
        return Status::InvalidArgument("splits overlap at node " +
                                       std::to_string(i));
      }
    }
  }
  if (train_idx.empty()) {
    return Status::FailedPrecondition("train split is empty");
  }
  if (test_idx.empty()) {
    return Status::FailedPrecondition("test split is empty");
  }
  return Status::OK();
}

Dataset Dataset::WithUndirectedGraph() const {
  Dataset out = *this;
  out.graph = graph.ToUndirected();
  return out;
}

}  // namespace adpa
