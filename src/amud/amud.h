#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/graph/digraph.h"
#include "src/graph/patterns.h"

namespace adpa {

class Rng;

/// AMUD's verdict for a natural digraph (Sec. III-C): keep the directed
/// edges, or apply the coarse undirected transformation before learning.
enum class AmudDecision { kUndirected, kDirected };

/// Tuning knobs for the AMUD computation.
struct AmudOptions {
  /// Decision threshold θ of Sec. III-C; S > θ keeps directed edges.
  double threshold = 0.5;
  /// Per-row fill-in cap when materializing 2-order DP reachability.
  /// 0 disables the guard (exact reachability).
  int64_t max_row_nnz = 0;
};

/// Correlation of one DP with the node profiles.
struct PatternCorrelation {
  DirectedPattern pattern;
  double r = 0.0;         ///< Pearson r(G_d, N), Eq. (7)
  double r_squared = 0.0; ///< R² = r², the linear-fit determination
};

/// Full AMUD report: per-pattern correlations (the 2 first-order operators
/// are included for inspection; the guidance score uses the 4 second-order
/// ones per Sec. III-C), the guidance score S of Eq. (8), and the decision.
struct AmudReport {
  std::vector<PatternCorrelation> correlations;
  double score = 0.0;
  AmudDecision decision = AmudDecision::kUndirected;

  std::string ToString() const;
};

/// Pearson correlation (Eq. 4–7) between the boolean pair variable
/// G_d(u,v) — "v is reachable from u through `reachability`" — and the node
/// profile agreement N(u,v) = 1[labels_u == labels_v], over all ordered
/// pairs u != v. Both variables are binary, so this is the phi coefficient
/// and is computed exactly from contingency counts in O(nnz + n).
double PatternLabelCorrelation(const SparseMatrix& reachability,
                               const std::vector<int64_t>& labels);

/// Same correlation restricted to ordered pairs whose *both* endpoints are
/// in `known_idx` — the semi-supervised variant used for DP selection,
/// where only training labels may be consulted (Sec. IV-B).
double PatternLabelCorrelationMasked(const SparseMatrix& reachability,
                                     const std::vector<int64_t>& labels,
                                     const std::vector<int64_t>& known_idx);

/// The paper's DP-selection rule (Sec. IV-B): enumerate all patterns up to
/// `max_order`, rank them by r(G_d, N) computed on the labeled subset, and
/// return the `keep` most positively correlated ones. Guides ADPA toward
/// the operators whose propagation rule matches the label structure.
Result<std::vector<DirectedPattern>> SelectPatternsByCorrelation(
    const Digraph& graph, const std::vector<int64_t>& labels,
    const std::vector<int64_t>& known_idx, int max_order, int keep,
    const AmudOptions& options = {});

/// Monte-Carlo estimate of the same correlation from `num_samples` uniformly
/// sampled ordered pairs. Used by tests to validate the closed form and
/// available for graphs too large to materialize reachability.
double PatternLabelCorrelationSampled(const Digraph& graph,
                                      const DirectedPattern& pattern,
                                      const std::vector<int64_t>& labels,
                                      int64_t num_samples, Rng* rng);

/// Runs the full AMUD analysis on a natural digraph: computes R²(G_d, N)
/// for the first- and second-order DPs, derives the guidance score
/// S = α · sqrt(Σ_{i≠j} ‖R²_i − R²_j‖² / C(4,2)) with α = 1/max R² (Eq. 8,
/// scale-invariant reading; see the .cc for rationale), and recommends
/// directed modeling iff S > θ. If no second-order DP correlates with the
/// profiles at all (max R² below a noise floor), S is defined as 0 —
/// directed topology without label signal cannot help directed models.
Result<AmudReport> ComputeAmud(const Digraph& graph,
                               const std::vector<int64_t>& labels,
                               int64_t num_classes,
                               const AmudOptions& options = {});

/// Convenience: applies the AMUD decision, returning either the graph
/// itself (kDirected) or its undirected transformation (kUndirected).
Digraph ApplyAmudDecision(const Digraph& graph, AmudDecision decision);

}  // namespace adpa

