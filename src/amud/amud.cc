#include "src/amud/amud.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/core/strings.h"

namespace adpa {
namespace {

/// Phi coefficient of two binary variables from contingency counts:
///   x = 1[pair is pattern-connected], y = 1[pair endpoints share a label]
/// over the population of all ordered pairs u != v.
double PhiCoefficient(double total_pairs, double connected_pairs,
                      double same_label_pairs,
                      double connected_same_label_pairs) {
  const double n11 = connected_same_label_pairs;
  const double n1x = connected_pairs;
  const double nx1 = same_label_pairs;
  const double numerator = total_pairs * n11 - n1x * nx1;
  const double denominator = std::sqrt(n1x * (total_pairs - n1x)) *
                             std::sqrt(nx1 * (total_pairs - nx1));
  if (denominator < 1e-12) return 0.0;
  return numerator / denominator;
}

}  // namespace

double PatternLabelCorrelation(const SparseMatrix& reachability,
                               const std::vector<int64_t>& labels) {
  const int64_t n = reachability.rows();
  ADPA_CHECK_EQ(reachability.cols(), n);
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  if (n < 2) return 0.0;

  // Same-label ordered pairs: Σ_c n_c (n_c - 1).
  int64_t max_label = 0;
  for (int64_t label : labels) max_label = std::max(max_label, label);
  std::vector<int64_t> class_counts(max_label + 1, 0);
  for (int64_t label : labels) ++class_counts[label];
  double same_label_pairs = 0.0;
  for (int64_t count : class_counts) {
    same_label_pairs += static_cast<double>(count) * (count - 1);
  }

  // Connected pairs (diagonal entries excluded: pairs require u != v).
  double connected = 0.0;
  double connected_same = 0.0;
  const auto& row_ptr = reachability.row_ptr();
  const auto& col_idx = reachability.col_idx();
  const auto& values = reachability.values();
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
      const int64_t v = col_idx[p];
      if (v == u || values[p] == 0.0f) continue;
      connected += 1.0;
      connected_same += labels[u] == labels[v];
    }
  }

  const double total_pairs = static_cast<double>(n) * (n - 1);
  return PhiCoefficient(total_pairs, connected, same_label_pairs,
                        connected_same);
}

double PatternLabelCorrelationMasked(const SparseMatrix& reachability,
                                     const std::vector<int64_t>& labels,
                                     const std::vector<int64_t>& known_idx) {
  const int64_t n = reachability.rows();
  ADPA_CHECK_EQ(reachability.cols(), n);
  ADPA_CHECK_EQ(static_cast<int64_t>(labels.size()), n);
  if (known_idx.size() < 2) return 0.0;
  std::vector<uint8_t> known(n, 0);
  for (int64_t i : known_idx) {
    ADPA_CHECK_GE(i, 0);
    ADPA_CHECK_LT(i, n);
    known[i] = 1;
  }
  int64_t max_label = 0;
  for (int64_t i : known_idx) max_label = std::max(max_label, labels[i]);
  std::vector<int64_t> class_counts(max_label + 1, 0);
  for (int64_t i : known_idx) ++class_counts[labels[i]];
  double same_label_pairs = 0.0;
  for (int64_t count : class_counts) {
    same_label_pairs += static_cast<double>(count) * (count - 1);
  }
  double connected = 0.0, connected_same = 0.0;
  const auto& row_ptr = reachability.row_ptr();
  const auto& col_idx = reachability.col_idx();
  const auto& values = reachability.values();
  for (int64_t u = 0; u < n; ++u) {
    if (!known[u]) continue;
    for (int64_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
      const int64_t v = col_idx[p];
      if (v == u || !known[v] || values[p] == 0.0f) continue;
      connected += 1.0;
      connected_same += labels[u] == labels[v];
    }
  }
  const double m = static_cast<double>(known_idx.size());
  return PhiCoefficient(m * (m - 1.0), connected, same_label_pairs,
                        connected_same);
}

Result<std::vector<DirectedPattern>> SelectPatternsByCorrelation(
    const Digraph& graph, const std::vector<int64_t>& labels,
    const std::vector<int64_t>& known_idx, int max_order, int keep,
    const AmudOptions& options) {
  if (max_order < 1) return Status::InvalidArgument("max_order must be >= 1");
  if (keep < 1) return Status::InvalidArgument("keep must be >= 1");
  if (known_idx.size() < 2) {
    return Status::FailedPrecondition(
        "DP selection needs at least two labeled nodes");
  }
  PatternSet patterns(graph.AdjacencyMatrix(), /*conv_r=*/0.5,
                      /*self_loops=*/false);
  std::vector<std::pair<double, DirectedPattern>> scored;
  for (const DirectedPattern& p : EnumeratePatterns(max_order)) {
    const double r = PatternLabelCorrelationMasked(
        patterns.Reachability(p, options.max_row_nnz), labels, known_idx);
    scored.emplace_back(r, p);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  std::vector<DirectedPattern> selected;
  const int count = std::min<int>(keep, static_cast<int>(scored.size()));
  for (int i = 0; i < count; ++i) selected.push_back(scored[i].second);
  return selected;
}

double PatternLabelCorrelationSampled(const Digraph& graph,
                                      const DirectedPattern& pattern,
                                      const std::vector<int64_t>& labels,
                                      int64_t num_samples, Rng* rng) {
  ADPA_CHECK(rng != nullptr);
  ADPA_CHECK_GT(num_samples, 0);
  const int64_t n = graph.num_nodes();
  ADPA_CHECK_GE(n, 2);

  // Reachability probe: walk the pattern word from u collecting the frontier
  // (bounded breadth via sets) and test membership of v. For sampling we
  // instead materialize per-source frontiers lazily.
  PatternSet patterns(graph.AdjacencyMatrix(), /*conv_r=*/0.5,
                      /*self_loops=*/false);
  const SparseMatrix reach = patterns.Reachability(pattern);

  double connected = 0.0, same = 0.0, connected_same = 0.0;
  for (int64_t s = 0; s < num_samples; ++s) {
    const int64_t u = rng->UniformInt(n);
    int64_t v = rng->UniformInt(n - 1);
    if (v >= u) ++v;  // uniform over ordered pairs with u != v
    const bool is_connected = reach.At(u, v) != 0.0f;
    const bool is_same = labels[u] == labels[v];
    connected += is_connected;
    same += is_same;
    connected_same += is_connected && is_same;
  }
  return PhiCoefficient(static_cast<double>(num_samples), connected, same,
                        connected_same);
}

std::string AmudReport::ToString() const {
  std::ostringstream out;
  out << "AMUD score S = " << FormatDouble(score, 3) << " -> "
      << (decision == AmudDecision::kDirected ? "retain directed edges"
                                              : "undirected transformation")
      << "\n";
  for (const PatternCorrelation& c : correlations) {
    out << "  r(" << c.pattern.Name() << ", N) = " << FormatDouble(c.r, 4)
        << "  R^2 = " << FormatDouble(c.r_squared, 4) << "\n";
  }
  return out.str();
}

Result<AmudReport> ComputeAmud(const Digraph& graph,
                               const std::vector<int64_t>& labels,
                               int64_t num_classes,
                               const AmudOptions& options) {
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument("AMUD requires at least two nodes");
  }
  if (static_cast<int64_t>(labels.size()) != graph.num_nodes()) {
    return Status::InvalidArgument("labels size must equal num_nodes");
  }
  for (int64_t label : labels) {
    if (label < 0 || label >= num_classes) {
      return Status::OutOfRange("label out of range");
    }
  }
  if (graph.num_edges() == 0) {
    return Status::FailedPrecondition("AMUD requires a non-empty edge set");
  }

  PatternSet patterns(graph.AdjacencyMatrix(), /*conv_r=*/0.5,
                      /*self_loops=*/false);

  AmudReport report;
  // First-order operators, reported for inspection / DP selection.
  for (Hop hop : {Hop::kOut, Hop::kIn}) {
    DirectedPattern p{{hop}};
    const double r = PatternLabelCorrelation(
        patterns.Reachability(p, options.max_row_nnz), labels);
    report.correlations.push_back({p, r, r * r});
  }
  // Second-order operators drive the Eq. (8) score.
  std::vector<double> second_order_r2;
  for (const DirectedPattern& p : SecondOrderPatterns()) {
    const double r = PatternLabelCorrelation(
        patterns.Reachability(p, options.max_row_nnz), labels);
    report.correlations.push_back({p, r, r * r});
    second_order_r2.push_back(r * r);
  }

  // Eq. (8): S = α sqrt(Σ_{i≠j} ||R²_i − R²_j||² / C(4,2)), α = 1 / max R².
  // This is the scale-invariant reading of the paper's formula: the RMS
  // disparity among the four 2-order DP correlations, measured relative to
  // the strongest correlation. Equal correlations (direction carries no
  // extra label signal) give S ≈ 0; a split between strong and near-zero
  // patterns (direction-dependent structure) gives S ≈ 1.15.
  double max_r2 = 0.0;
  for (double r2 : second_order_r2) max_r2 = std::max(max_r2, r2);
  double disparity = 0.0;
  for (size_t i = 0; i < second_order_r2.size(); ++i) {
    for (size_t j = 0; j < second_order_r2.size(); ++j) {
      if (i == j) continue;
      const double diff = second_order_r2[i] - second_order_r2[j];
      disparity += diff * diff;
    }
  }
  constexpr double kPairCount = 6.0;  // C(4, 2)
  constexpr double kMinSignal = 1e-5;
  if (max_r2 < kMinSignal) {
    // No second-order operator correlates with the profiles at all:
    // directed topology carries no signal, recommend undirected modeling.
    report.score = 0.0;
  } else {
    report.score = std::sqrt(disparity / kPairCount) / max_r2;
  }
  report.decision = report.score > options.threshold
                        ? AmudDecision::kDirected
                        : AmudDecision::kUndirected;
  return report;
}

Digraph ApplyAmudDecision(const Digraph& graph, AmudDecision decision) {
  return decision == AmudDecision::kDirected ? graph : graph.ToUndirected();
}

}  // namespace adpa
