#include "src/train/trainer.h"

#include <algorithm>
#include <iostream>
#include <utility>

#include "src/core/failpoint.h"
#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/io/checkpoint.h"
#include "src/tensor/autograd.h"
#include "src/tensor/optimizer.h"
#include "src/tensor/tape_analysis.h"

namespace adpa {
namespace {

/// Captures the complete training cursor into a v2 checkpoint and
/// atomically rewrites `config.checkpoint_path`. Everything that influences
/// a future epoch goes in: weights (via MakeCheckpoint), Adam moments and
/// step count, the RNG stream, and the early-stopping bookkeeping.
Status SaveTrainingSnapshot(const Model& model, const Dataset& dataset,
                            const TrainConfig& config,
                            const SnapshotContext& context,
                            const Adam& optimizer, const Rng& rng,
                            int next_epoch, int epochs_since_best,
                            const TrainResult& progress) {
  ADPA_FAILPOINT("trainer.snapshot");
  Checkpoint snapshot = MakeCheckpoint(model, context.model_name, dataset,
                                       context.model_config, config);
  TrainState state;
  state.next_epoch = next_epoch;
  state.epochs_since_best = epochs_since_best;
  state.best_epoch = progress.best_epoch;
  state.best_val_accuracy = progress.best_val_accuracy;
  state.test_accuracy = progress.test_accuracy;
  state.rng = rng.SaveState();
  AdamState adam_state = optimizer.ExportState();
  state.optimizer_step_count = adam_state.step_count;
  state.adam_first_moment = std::move(adam_state.first_moment);
  state.adam_second_moment = std::move(adam_state.second_moment);
  state.val_curve = progress.val_curve;
  state.train_loss_curve = progress.train_loss_curve;
  snapshot.train_state = std::move(state);
  return SaveCheckpoint(snapshot, config.checkpoint_path);
}

}  // namespace

double Accuracy(const Matrix& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& indices) {
  ADPA_CHECK(!indices.empty());
  int64_t correct = 0;
  for (int64_t i : indices) {
    const float* row = logits.Row(i);
    int64_t argmax = 0;
    for (int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    correct += argmax == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

TrainResult TrainModel(Model* model, const Dataset& dataset,
                       const TrainConfig& config, Rng* rng) {
  Result<TrainResult> result =
      TrainModelResumable(model, dataset, config, rng);
  ADPA_CHECK(result.ok()) << result.status().ToString();
  return *std::move(result);
}

Result<TrainResult> TrainModelResumable(Model* model, const Dataset& dataset,
                                        const TrainConfig& config, Rng* rng,
                                        const SnapshotContext* context) {
  ADPA_CHECK(model != nullptr);
  ADPA_CHECK(rng != nullptr);
  ADPA_CHECK_OK(dataset.Validate());
  ADPA_CHECK(!dataset.val_idx.empty())
      << "TrainModel needs a validation split for model selection";

  Adam optimizer(model->Parameters(), config.learning_rate,
                 config.weight_decay);
  TrainResult result;
  int epochs_since_best = 0;
  int start_epoch = 0;

  if (!config.resume_from.empty()) {
    Result<Checkpoint> snapshot = TryLoadCheckpoint(config.resume_from);
    ADPA_RETURN_IF_ERROR(snapshot.status());
    if (!snapshot->train_state.has_value()) {
      return Status::InvalidArgument(
          config.resume_from +
          " is a final checkpoint without training state; only periodic "
          "snapshots (--checkpoint_every) can be resumed");
    }
    // Order matters: weights first, then the optimizer moments that pair
    // with them, then the RNG stream — after this block every bit of
    // mutable training state matches the instant the snapshot was taken.
    ADPA_RETURN_IF_ERROR(LoadCheckpointIntoModel(*snapshot, model));
    TrainState& state = *snapshot->train_state;
    AdamState adam_state;
    adam_state.step_count = state.optimizer_step_count;
    adam_state.first_moment = std::move(state.adam_first_moment);
    adam_state.second_moment = std::move(state.adam_second_moment);
    ADPA_RETURN_IF_ERROR(optimizer.RestoreState(std::move(adam_state)));
    // analyze:allow(unchecked-status): Rng::RestoreState is void, name-collides with AdamOptimizer's
    rng->RestoreState(state.rng);
    start_epoch = state.next_epoch;
    epochs_since_best = state.epochs_since_best;
    result.best_val_accuracy = state.best_val_accuracy;
    result.best_epoch = state.best_epoch;
    result.test_accuracy = state.test_accuracy;
    result.epochs_run = start_epoch;
    result.resumed_from_epoch = start_epoch;
    if (config.record_curves) {
      result.val_curve = std::move(state.val_curve);
      result.train_loss_curve = std::move(state.train_loss_curve);
    }
  }

  const bool snapshots_enabled =
      config.checkpoint_every > 0 && !config.checkpoint_path.empty();
  const SnapshotContext default_context;
  const SnapshotContext& snapshot_context =
      context != nullptr ? *context : default_context;

  for (int epoch = start_epoch; epoch < config.max_epochs; ++epoch) {
    ADPA_FAILPOINT("trainer.epoch");
    // Training step.
    optimizer.ZeroGrad();
    ag::Variable logits = model->Forward(/*training=*/true, rng);
    ag::Variable loss =
        ag::MaskedCrossEntropy(logits, dataset.labels, dataset.train_idx);
    if (config.verify_tape && epoch == start_epoch) {
      // One-shot structural audit of the loss graph: op-shape and
      // backward-closure invariants are hard errors; dead (unreachable)
      // parameters are reported so callers can assert on them.
      const ag::TapeReport report =
          ag::AnalyzeTape(loss, model->Parameters());
      ADPA_CHECK(report.ok()) << report.Summary();
      result.dead_parameters =
          static_cast<int64_t>(report.dead_params.size());
    }
    ag::Backward(loss);
    optimizer.Step();
    if (config.check_finite) {
      loss.value().CheckFinite("training loss");
      logits.value().CheckFinite("training logits");
      for (const ag::Variable& p : model->Parameters()) {
        p.value().CheckFinite("parameter after optimizer step");
      }
    }

    // Evaluation pass (no dropout).
    ag::Variable eval_logits = model->Forward(/*training=*/false, rng);
    const double val_acc =
        Accuracy(eval_logits.value(), dataset.labels, dataset.val_idx);
    if (config.record_curves) {
      result.val_curve.push_back(val_acc);
      result.train_loss_curve.push_back(loss.value().At(0, 0));
    }
    result.epochs_run = epoch + 1;
    bool stop = false;
    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      result.best_epoch = epoch;
      result.test_accuracy =
          Accuracy(eval_logits.value(), dataset.labels, dataset.test_idx);
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      stop = config.patience > 0 && epochs_since_best >= config.patience;
    }

    if (snapshots_enabled && (epoch + 1) % config.checkpoint_every == 0) {
      const Status saved = SaveTrainingSnapshot(
          *model, dataset, config, snapshot_context, optimizer, *rng,
          /*next_epoch=*/epoch + 1, epochs_since_best, result);
      if (!saved.ok()) {
        // A lost snapshot only costs resume granularity; training goes on.
        std::cerr << "warning: training snapshot write failed ("
                  << saved.ToString() << "); continuing without it\n";
      }
    }
    if (stop) break;
  }
  return result;
}

}  // namespace adpa
