#include "src/train/trainer.h"

#include <algorithm>

#include "src/core/logging.h"
#include "src/core/random.h"
#include "src/tensor/autograd.h"
#include "src/tensor/optimizer.h"
#include "src/tensor/tape_analysis.h"

namespace adpa {

double Accuracy(const Matrix& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& indices) {
  ADPA_CHECK(!indices.empty());
  int64_t correct = 0;
  for (int64_t i : indices) {
    const float* row = logits.Row(i);
    int64_t argmax = 0;
    for (int64_t c = 1; c < logits.cols(); ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    correct += argmax == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(indices.size());
}

TrainResult TrainModel(Model* model, const Dataset& dataset,
                       const TrainConfig& config, Rng* rng) {
  ADPA_CHECK(model != nullptr);
  ADPA_CHECK(rng != nullptr);
  ADPA_CHECK_OK(dataset.Validate());
  ADPA_CHECK(!dataset.val_idx.empty())
      << "TrainModel needs a validation split for model selection";

  Adam optimizer(model->Parameters(), config.learning_rate,
                 config.weight_decay);
  TrainResult result;
  int epochs_since_best = 0;
  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    // Training step.
    optimizer.ZeroGrad();
    ag::Variable logits = model->Forward(/*training=*/true, rng);
    ag::Variable loss =
        ag::MaskedCrossEntropy(logits, dataset.labels, dataset.train_idx);
    if (config.verify_tape && epoch == 0) {
      // One-shot structural audit of the loss graph: op-shape and
      // backward-closure invariants are hard errors; dead (unreachable)
      // parameters are reported so callers can assert on them.
      const ag::TapeReport report =
          ag::AnalyzeTape(loss, model->Parameters());
      ADPA_CHECK(report.ok()) << report.Summary();
      result.dead_parameters =
          static_cast<int64_t>(report.dead_params.size());
    }
    ag::Backward(loss);
    optimizer.Step();
    if (config.check_finite) {
      loss.value().CheckFinite("training loss");
      logits.value().CheckFinite("training logits");
      for (const ag::Variable& p : model->Parameters()) {
        p.value().CheckFinite("parameter after optimizer step");
      }
    }

    // Evaluation pass (no dropout).
    ag::Variable eval_logits = model->Forward(/*training=*/false, rng);
    const double val_acc =
        Accuracy(eval_logits.value(), dataset.labels, dataset.val_idx);
    if (config.record_curves) {
      result.val_curve.push_back(val_acc);
      result.train_loss_curve.push_back(loss.value().At(0, 0));
    }
    result.epochs_run = epoch + 1;
    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      result.best_epoch = epoch;
      result.test_accuracy =
          Accuracy(eval_logits.value(), dataset.labels, dataset.test_idx);
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      if (config.patience > 0 && epochs_since_best >= config.patience) break;
    }
  }
  return result;
}

}  // namespace adpa
