#pragma once
#include <functional>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/models/model.h"
#include "src/train/trainer.h"

namespace adpa {

/// Aggregated accuracy over repeated seeded runs (the paper reports
/// mean ± std over 10 repeats; benches default to fewer for CPU budgets).
struct RepeatedResult {
  double mean = 0.0;    ///< mean test accuracy, in percent
  double stddev = 0.0;  ///< sample standard deviation, in percent
  std::vector<double> accuracies;  ///< per-run test accuracy, in percent

  std::string ToString() const;  ///< "84.5±0.6"
};

/// Computes mean ± std (percent) from raw [0,1] accuracies.
RepeatedResult Aggregate(const std::vector<double>& accuracies);

/// Builds a fresh dataset for run `run` (so graph sampling noise is part of
/// the variance, like re-splitting in the paper's protocol).
using DatasetBuilder = std::function<Result<Dataset>(uint64_t run_seed)>;

/// Trains `model_name` on `runs` freshly built datasets and aggregates test
/// accuracy. `undirect_input` applies the coarse undirected transformation
/// before training (the U- convention for undirected baselines).
Result<RepeatedResult> RunRepeated(const std::string& model_name,
                                   const DatasetBuilder& builder,
                                   const ModelConfig& model_config,
                                   const TrainConfig& train_config, int runs,
                                   bool undirect_input);

/// Standard input convention of the paper's tables: undirected baselines
/// get U- input, directed baselines (and ADPA on directed datasets) get
/// the natural digraph.
bool ShouldUndirectInput(const std::string& model_name);

}  // namespace adpa

