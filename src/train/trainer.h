#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/models/model.h"
#include "src/tensor/matrix.h"

namespace adpa {

class Rng;

/// Full-batch training configuration shared by every experiment.
struct TrainConfig {
  int max_epochs = 200;
  /// Early stopping: stop after `patience` epochs without a new best
  /// validation accuracy. <= 0 disables early stopping.
  int patience = 30;
  float learning_rate = 0.01f;
  float weight_decay = 5e-4f;
  /// Record per-epoch validation accuracy / training loss (Fig. 5 curves).
  bool record_curves = false;
  /// Abort (ADPA_CHECK) on the first NaN/Inf in the training loss, logits,
  /// or any parameter after an optimizer step. Off by default — it adds a
  /// full scan of every checked tensor per epoch — but invaluable when
  /// hunting silent numerical drift (adpa_cli --check_finite).
  bool check_finite = false;
  /// Run the autograd tape analyzer (src/tensor/tape_analysis.h) on the
  /// first step's loss graph: abort on structural violations and report
  /// parameters unreachable from the loss via
  /// TrainResult::dead_parameters. One-time cost proportional to the tape
  /// size; subsequent epochs rebuild the same graph shape.
  bool verify_tape = false;

  // --- Crash-safe training (DESIGN.md §10). These three fields are resume
  // mechanics, not hyperparameters: they are deliberately NOT serialized
  // into checkpoints, so the final checkpoint of a resumed run is
  // byte-identical to that of an uninterrupted one.

  /// > 0: every `checkpoint_every` epochs, atomically rewrite
  /// `checkpoint_path` with a full training snapshot (weights + Adam
  /// moments + RNG/epoch cursor). A failed snapshot write is a warning,
  /// never a training abort.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  /// Non-empty: restore the snapshot at this path before the first epoch
  /// and continue from its recorded cursor. At the same thread count the
  /// resumed run reaches bitwise-identical final weights.
  std::string resume_from;
};

/// Outcome of one training run. `test_accuracy` is measured at the epoch
/// with the best validation accuracy (standard protocol).
struct TrainResult {
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  int best_epoch = 0;
  int epochs_run = 0;
  /// Number of parameters unreachable from the loss (only populated when
  /// TrainConfig::verify_tape is set; such parameters never train).
  int64_t dead_parameters = 0;
  /// Epoch the run resumed at (-1 when it started fresh).
  int resumed_from_epoch = -1;
  std::vector<double> val_curve;
  std::vector<double> train_loss_curve;
};

/// Identity stamped into periodic training snapshots so a `resume_from`
/// file is self-describing: adpa_cli rebuilds the model from the snapshot's
/// recorded config and patterns alone, with no flag archaeology.
struct SnapshotContext {
  std::string model_name = "snapshot";
  ModelConfig model_config;
};

/// Fraction of rows in `indices` whose argmax logit equals the label.
double Accuracy(const Matrix& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& indices);

/// Trains `model` on `dataset` with Adam + masked cross-entropy, evaluating
/// on the validation split each epoch and reporting test accuracy at the
/// best validation epoch (the parameters themselves are left at their final
/// state; the best-epoch test metric is captured on the fly).
TrainResult TrainModel(Model* model, const Dataset& dataset,
                       const TrainConfig& config, Rng* rng);

/// TrainModel plus the crash-safety machinery: honors
/// TrainConfig::{checkpoint_every, checkpoint_path, resume_from} and
/// surfaces snapshot-restore failures as a Status instead of aborting.
/// `context` (optional) stamps the model identity into snapshots. The model
/// must be constructed exactly as in the original run (same config, same
/// patterns) — snapshot restore overwrites its weights and the RNG state,
/// which is what makes resumption bitwise-exact.
Result<TrainResult> TrainModelResumable(Model* model, const Dataset& dataset,
                                        const TrainConfig& config, Rng* rng,
                                        const SnapshotContext* context =
                                            nullptr);

}  // namespace adpa

