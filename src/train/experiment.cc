#include "src/train/experiment.h"

#include <cmath>

#include "src/core/random.h"
#include "src/core/strings.h"
#include "src/models/factory.h"

namespace adpa {

std::string RepeatedResult::ToString() const {
  return FormatMeanStd(mean, stddev, 1);
}

RepeatedResult Aggregate(const std::vector<double>& accuracies) {
  RepeatedResult result;
  if (accuracies.empty()) return result;
  double sum = 0.0;
  for (double acc : accuracies) {
    result.accuracies.push_back(acc * 100.0);
    sum += acc * 100.0;
  }
  result.mean = sum / static_cast<double>(accuracies.size());
  if (accuracies.size() > 1) {
    double sq = 0.0;
    for (double acc : result.accuracies) {
      sq += (acc - result.mean) * (acc - result.mean);
    }
    result.stddev =
        std::sqrt(sq / static_cast<double>(accuracies.size() - 1));
  }
  return result;
}

Result<RepeatedResult> RunRepeated(const std::string& model_name,
                                   const DatasetBuilder& builder,
                                   const ModelConfig& model_config,
                                   const TrainConfig& train_config, int runs,
                                   bool undirect_input) {
  if (runs <= 0) return Status::InvalidArgument("runs must be positive");
  std::vector<double> accuracies;
  for (int run = 0; run < runs; ++run) {
    Result<Dataset> dataset = builder(static_cast<uint64_t>(run));
    if (!dataset.ok()) return dataset.status();
    Dataset input =
        undirect_input ? dataset->WithUndirectedGraph() : std::move(*dataset);
    Rng rng(0xC0FFEE ^ (static_cast<uint64_t>(run) * 7919));
    Result<ModelPtr> model =
        CreateModel(model_name, input, model_config, &rng);
    if (!model.ok()) return model.status();
    const TrainResult result =
        TrainModel(model->get(), input, train_config, &rng);
    accuracies.push_back(result.test_accuracy);
  }
  return Aggregate(accuracies);
}

bool ShouldUndirectInput(const std::string& model_name) {
  return !IsDirectedModel(model_name);
}

}  // namespace adpa
