#pragma once
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/models/model.h"
#include "src/train/trainer.h"

namespace adpa {

/// Deterministic hyperparameter grid, standing in for the paper's Optuna
/// search (Sec. V-A). Empty axes keep the base config's value. The default
/// axes mirror the paper's reported grids: dropout from {0.2,...,0.8},
/// learning rate from {0.1, 0.01, 0.001}, K and layer depth from 1..5.
struct GridSearchSpace {
  std::vector<float> learning_rates = {0.1f, 0.01f, 0.001f};
  std::vector<float> dropouts = {0.2f, 0.4f, 0.6f, 0.8f};
  std::vector<int> propagation_steps = {};
  std::vector<int> num_layers = {};
};

/// One evaluated grid point.
struct GridTrial {
  ModelConfig model_config;
  float learning_rate = 0.0f;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Search outcome: the winning configuration by validation accuracy plus
/// the full trial log (for sensitivity plots).
struct GridSearchResult {
  GridTrial best;
  std::vector<GridTrial> trials;
};

/// Exhaustively evaluates the grid for `model_name` on `dataset` and picks
/// the configuration with the best validation accuracy. Each grid point
/// trains once with a seed derived from its position, so the search is
/// fully reproducible.
Result<GridSearchResult> GridSearch(const std::string& model_name,
                                    const Dataset& dataset,
                                    const ModelConfig& base_config,
                                    const TrainConfig& train_config,
                                    const GridSearchSpace& space,
                                    uint64_t seed = 0);

}  // namespace adpa

