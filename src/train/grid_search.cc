#include "src/train/grid_search.h"

#include "src/core/random.h"
#include "src/models/factory.h"

namespace adpa {

Result<GridSearchResult> GridSearch(const std::string& model_name,
                                    const Dataset& dataset,
                                    const ModelConfig& base_config,
                                    const TrainConfig& train_config,
                                    const GridSearchSpace& space,
                                    uint64_t seed) {
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  // Degenerate axes fall back to the base configuration's value.
  const std::vector<float> lrs = space.learning_rates.empty()
                                     ? std::vector<float>{0.01f}
                                     : space.learning_rates;
  const std::vector<float> dropouts = space.dropouts.empty()
                                          ? std::vector<float>{base_config
                                                                   .dropout}
                                          : space.dropouts;
  const std::vector<int> steps =
      space.propagation_steps.empty()
          ? std::vector<int>{base_config.propagation_steps}
          : space.propagation_steps;
  const std::vector<int> layers = space.num_layers.empty()
                                      ? std::vector<int>{base_config
                                                             .num_layers}
                                      : space.num_layers;

  GridSearchResult result;
  uint64_t trial_index = 0;
  for (float lr : lrs) {
    for (float dropout : dropouts) {
      for (int k : steps) {
        for (int depth : layers) {
          ModelConfig config = base_config;
          config.dropout = dropout;
          config.propagation_steps = k;
          config.num_layers = depth;
          TrainConfig tc = train_config;
          tc.learning_rate = lr;
          Rng rng(seed * 1000003 + trial_index * 7919 + 13);
          Result<ModelPtr> model =
              CreateModel(model_name, dataset, config, &rng);
          if (!model.ok()) return model.status();
          const TrainResult trained =
              TrainModel(model->get(), dataset, tc, &rng);
          GridTrial trial;
          trial.model_config = config;
          trial.learning_rate = lr;
          trial.val_accuracy = trained.best_val_accuracy;
          trial.test_accuracy = trained.test_accuracy;
          result.trials.push_back(trial);
          if (trial.val_accuracy > result.best.val_accuracy) {
            result.best = trial;
          }
          ++trial_index;
        }
      }
    }
  }
  if (result.trials.empty()) {
    return Status::InvalidArgument("empty search space");
  }
  return result;
}

}  // namespace adpa
