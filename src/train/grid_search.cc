#include "src/train/grid_search.h"

#include "src/core/parallel.h"
#include "src/core/random.h"
#include "src/models/factory.h"

namespace adpa {

Result<GridSearchResult> GridSearch(const std::string& model_name,
                                    const Dataset& dataset,
                                    const ModelConfig& base_config,
                                    const TrainConfig& train_config,
                                    const GridSearchSpace& space,
                                    uint64_t seed) {
  ADPA_RETURN_IF_ERROR(dataset.Validate());
  // Degenerate axes fall back to the base configuration's value.
  const std::vector<float> lrs = space.learning_rates.empty()
                                     ? std::vector<float>{0.01f}
                                     : space.learning_rates;
  const std::vector<float> dropouts = space.dropouts.empty()
                                          ? std::vector<float>{base_config
                                                                   .dropout}
                                          : space.dropouts;
  const std::vector<int> steps =
      space.propagation_steps.empty()
          ? std::vector<int>{base_config.propagation_steps}
          : space.propagation_steps;
  const std::vector<int> layers = space.num_layers.empty()
                                      ? std::vector<int>{base_config
                                                             .num_layers}
                                      : space.num_layers;

  // Flatten the grid so trials can be dispatched by index. Trial order (and
  // the per-trial RNG seed derived from it) matches the nested-loop order
  // the search has always used.
  struct TrialSpec {
    float lr;
    float dropout;
    int steps;
    int depth;
  };
  std::vector<TrialSpec> specs;
  specs.reserve(lrs.size() * dropouts.size() * steps.size() * layers.size());
  for (float lr : lrs) {
    for (float dropout : dropouts) {
      for (int k : steps) {
        for (int depth : layers) {
          specs.push_back({lr, dropout, k, depth});
        }
      }
    }
  }
  if (specs.empty()) {
    return Status::InvalidArgument("empty search space");
  }

  // Trials are independent (own RNG, own model) and write disjoint slots,
  // so they run in parallel; the kernels inside each trial then run inline
  // (nested), which by the ParallelFor contract produces the same bits as
  // running them on the full pool. Failures are collected per slot and the
  // first one in trial order is reported, as the serial loop did.
  GridSearchResult result;
  result.trials.resize(specs.size());
  std::vector<Status> failures(specs.size(), Status::OK());
  const int64_t num_trials = static_cast<int64_t>(specs.size());
  ParallelFor(0, num_trials, 1, [&](int64_t begin, int64_t end) {
    for (int64_t trial_index = begin; trial_index < end; ++trial_index) {
      const TrialSpec& spec = specs[trial_index];
      ModelConfig config = base_config;
      config.dropout = spec.dropout;
      config.propagation_steps = spec.steps;
      config.num_layers = spec.depth;
      TrainConfig tc = train_config;
      tc.learning_rate = spec.lr;
      Rng rng(seed * 1000003 + static_cast<uint64_t>(trial_index) * 7919 + 13);
      Result<ModelPtr> model = CreateModel(model_name, dataset, config, &rng);
      if (!model.ok()) {
        failures[trial_index] = model.status();
        continue;
      }
      const TrainResult trained = TrainModel(model->get(), dataset, tc, &rng);
      GridTrial& trial = result.trials[trial_index];
      trial.model_config = config;
      trial.learning_rate = spec.lr;
      trial.val_accuracy = trained.best_val_accuracy;
      trial.test_accuracy = trained.test_accuracy;
    }
  });
  for (const Status& status : failures) {
    ADPA_RETURN_IF_ERROR(status);
  }
  // Winner selection stays serial and in trial order (strict >), so ties
  // resolve exactly as in the sequential search.
  for (const GridTrial& trial : result.trials) {
    if (trial.val_accuracy > result.best.val_accuracy) {
      result.best = trial;
    }
  }
  return result;
}

}  // namespace adpa
