#include "src/net/framing.h"

namespace adpa::net {

void LineFramer::Append(const char* data, size_t size) {
  if (oversized_) return;  // stream already condemned; don't buy memory
  buffer_.append(data, size);
  // The cap is checked lazily in NextLine so that a chunk carrying
  // "short\nHUGE..." still yields the short line before the oversized latch
  // fires — byte-at-a-time and whole-chunk delivery must agree.
}

LineFramer::Next LineFramer::NextLine(std::string* line) {
  if (oversized_) return Next::kOversized;
  if (scanned_ < consumed_) scanned_ = consumed_;
  const size_t newline = buffer_.find('\n', scanned_);
  if (newline == std::string::npos) {
    scanned_ = buffer_.size();
    // A trailing '\r' may be the first half of a CRLF terminator whose
    // '\n' is still in flight; it would be stripped, so it must not count
    // against the cap — otherwise a line of exactly max_line_bytes ending
    // in "\r\n" would latch or not depending on where the read-chunk
    // boundary fell (found by fuzz_framing's chunked-replay comparison).
    size_t pending = buffer_.size() - consumed_;
    if (pending > 0 && buffer_.back() == '\r') --pending;
    if (pending > max_line_bytes_) {
      oversized_ = true;
      buffer_.clear();
      consumed_ = scanned_ = 0;
      return Next::kOversized;
    }
    Compact();
    return Next::kNeedMore;
  }
  size_t end = newline;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;  // CRLF
  if (end - consumed_ > max_line_bytes_) {
    oversized_ = true;
    buffer_.clear();
    consumed_ = scanned_ = 0;
    return Next::kOversized;
  }
  line->assign(buffer_, consumed_, end - consumed_);
  consumed_ = newline + 1;
  scanned_ = consumed_;
  Compact();
  return Next::kLine;
}

bool LineFramer::TakeRemainder(std::string* line) {
  if (oversized_ || consumed_ >= buffer_.size()) return false;
  size_t end = buffer_.size();
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  if (end <= consumed_) {
    buffer_.clear();
    consumed_ = scanned_ = 0;
    return false;
  }
  line->assign(buffer_, consumed_, end - consumed_);
  buffer_.clear();
  consumed_ = scanned_ = 0;
  return true;
}

void LineFramer::Compact() {
  // Amortized: only shift when at least half (and a real amount) of the
  // buffer is dead prefix, so each byte is moved O(1) times overall.
  if (consumed_ >= 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    scanned_ -= consumed_;
    consumed_ = 0;
  }
}

}  // namespace adpa::net
