#include "src/net/server.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/serve/jsonl.h"

namespace adpa::net {
namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + " failed: " + std::strerror(errno));
}

/// Async-signal-safe single-byte write to the self-pipe. The pipe is
/// non-blocking: if it is somehow full, commands are already queued and
/// dropping this one is harmless (wake commands are idempotent).
void SendWakeByte(int fd, char command) {
  while (true) {
    const ssize_t wrote = ::write(fd, &command, 1);
    if (wrote >= 0 || errno != EINTR) return;
  }
}

/// Drain budget once a stop request lands: connections that cannot absorb
/// their replies within this window are force-closed so shutdown cannot
/// hang on a stalled client.
constexpr std::chrono::seconds kDrainBudget{5};

}  // namespace

Server::Server(const ServerOptions& options, serve::SessionRegistry* registry,
               serve::ServeMetrics* metrics)
    : options_(options),
      registry_(registry),
      batcher_(*registry, metrics, options.batcher) {}

Server::~Server() = default;

Result<std::unique_ptr<Server>> Server::Create(
    const ServerOptions& options, serve::SessionRegistry* registry,
    serve::ServeMetrics* metrics) {
  if (registry == nullptr) {
    return Status::InvalidArgument("Server::Create: registry must not be null");
  }
  std::unique_ptr<Server> server(new Server(options, registry, metrics));
  ADPA_RETURN_IF_ERROR(server->SetupSockets());
  return server;
}

Status Server::SetupSockets() {
  Result<ListenSocket> listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port;

  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return ErrnoStatus("epoll_create1");
  epoll_.Reset(epoll_fd);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return ErrnoStatus("pipe2");
  }
  wake_reader_.Reset(pipe_fds[0]);
  wake_writer_.Reset(pipe_fds[1]);

  // Emergency descriptor for EMFILE storms on accept. Held open from the
  // start so the reserve exists even once the table is full.
  const int reserve = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  if (reserve < 0) return ErrnoStatus("open(/dev/null)");
  reserve_fd_.Reset(reserve);

  for (const int fd : {listener_.fd.get(), wake_reader_.get()}) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl(add)");
    }
  }
  return Status::OK();
}

void Server::RequestStop() const { SendWakeByte(wake_writer_.get(), 'T'); }

void Server::RequestReload() const { SendWakeByte(wake_writer_.get(), 'H'); }

Status Server::Serve() {
  std::array<epoll_event, 64> events;
  while (true) {
    int timeout_ms = -1;
    if (draining_) {
      if (connections_.empty()) break;
      // lint:allow(deterministic-randomness) — drain budget, not results
      const auto now = std::chrono::steady_clock::now();
      if (now >= drain_deadline_) {
        connections_.clear();  // budget exhausted: force-close stragglers
        break;
      }
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              drain_deadline_ - now)
              .count()) +
          1;
    }
    if (HygieneEnabled() && !connections_.empty()) {
      // lint:allow(deterministic-randomness) — hygiene clock, not results
      const int hygiene_ms = NextHygieneDelayMs(std::chrono::steady_clock::now());
      if (hygiene_ms >= 0 && (timeout_ms < 0 || hygiene_ms < timeout_ms)) {
        timeout_ms = hygiene_ms;
      }
    }

    const int ready = ::epoll_wait(epoll_.get(), events.data(),
                                   static_cast<int>(events.size()),
                                   timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("epoll_wait");
    }

    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_reader_.get()) {
        HandleWake();
      } else if (fd == listener_.fd.get()) {
        HandleAccept();
      } else {
        HandleReadable(fd);
      }
    }

    if (HygieneEnabled()) EnforceHygiene();

    // All requests harvested this wakeup — including lines from several
    // connections readable at once — coalesce through one pump pass.
    PumpQueue();
    for (auto& [fd, conn] : connections_) {
      if (conn->dead) continue;
      ResolvePending(conn.get());
      FlushWrites(conn.get());
    }
    CollectFinished();
    if (draining_ && connections_.empty()) break;
  }
  return Status::OK();
}

void Server::HandleWake() {
  char commands[64];
  while (true) {
    const ssize_t got =
        ::read(wake_reader_.get(), commands, sizeof(commands));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;  // EAGAIN: the pipe is drained
    for (ssize_t i = 0; i < got; ++i) {
      if (commands[i] == 'T') {
        StartDrain();
      } else if (commands[i] == 'H') {
        // SIGHUP convention: re-read the last loaded checkpoint path.
        // Answer everything already queued with the old session first so
        // the reply stream has a clean swap boundary.
        PumpQueue();
        const Result<serve::SessionRegistry::ReloadInfo> info =
            registry_->ReloadCurrent();
        if (info.ok()) {
          ++stats_.reloads;
        } else {
          ++stats_.reload_failures;
        }
      }
    }
  }
}

void Server::HandleAccept() {
  while (!draining_) {
    Result<AcceptResult> accepted = AcceptConnection(listener_.fd.get());
    if (!accepted.ok()) {
      // A peer that vanished mid-handshake (or the net.accept failpoint):
      // count it and keep listening. Level-triggered epoll re-reports any
      // still-pending connection on the next wakeup.
      ++stats_.io_errors;
      break;
    }
    if (accepted->would_block) break;
    if (accepted->fd_exhausted) {
      ++stats_.fd_exhausted;
      DrainAcceptWithReserveFd();
      break;  // level-triggered epoll re-reports any remaining backlog
    }
    if (static_cast<int64_t>(connections_.size()) >=
        options_.max_connections) {
      ++stats_.over_capacity;
      continue;  // the AcceptResult closes the surplus fd
    }
    const int fd = accepted->fd.get();
    auto conn = std::make_unique<Connection>(std::move(accepted->fd),
                                             options_.max_line_bytes);
    if (HygieneEnabled()) {
      // lint:allow(deterministic-randomness) — hygiene clock, not results
      conn->last_read = std::chrono::steady_clock::now();
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
      ++stats_.io_errors;
      continue;  // conn (and its fd) die at scope exit
    }
    conn->interest = EPOLLIN;
    connections_.emplace(fd, std::move(conn));
    ++stats_.accepted;
  }
}

void Server::DrainAcceptWithReserveFd() {
  if (!reserve_fd_.valid()) return;  // already lost the reserve: nothing to do
  reserve_fd_.Reset();               // free one descriptor
  {
    // With one fd free, accept the queued connection and close it at scope
    // exit: the newcomer gets an orderly refusal instead of hanging in
    // connect() while the listener busy-reports EMFILE forever.
    Result<AcceptResult> shed = AcceptConnection(listener_.fd.get());
    if (shed.ok() && shed->fd.valid()) ++stats_.over_capacity;
  }
  const int reserve = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  if (reserve >= 0) reserve_fd_.Reset(reserve);
  // If even /dev/null will not open, the table is still full: the reserve
  // stays lost until descriptors free up, and the next EMFILE report is a
  // no-op rather than a busy loop.
}

void Server::HandleReadable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;  // closed earlier in this batch
  Connection* conn = it->second.get();
  char chunk[16384];
  while (!conn->dead && !conn->close_after_flush && !conn->peer_eof &&
         !draining_) {
    const Result<IoResult> got =
        ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok()) {
      // Mid-stream read failure: the protocol state is unknown, so there
      // is nothing meaningful left to answer — drop the connection.
      ++stats_.io_errors;
      conn->dead = true;
      return;
    }
    if (got->closed) {
      conn->peer_eof = true;
      ++stats_.closed_by_peer;
      break;
    }
    if (got->would_block || got->bytes == 0) break;
    const size_t buffered_before = conn->framer.buffered_bytes();
    conn->framer.Append(chunk, static_cast<size_t>(got->bytes));
    ProcessLines(conn);
    if (HygieneEnabled()) {
      // lint:allow(deterministic-randomness) — hygiene clock, not results
      const auto now = std::chrono::steady_clock::now();
      conn->last_read = now;
      const size_t buffered_after = conn->framer.buffered_bytes();
      if (buffered_after == 0) {
        conn->has_partial = false;
      } else if (!conn->has_partial ||
                 buffered_after <
                     buffered_before + static_cast<size_t>(got->bytes)) {
        // The oldest unconsumed byte arrived in this read (buffer was
        // empty, or a completed line consumed the older bytes). Pure
        // growth of an existing partial keeps the original clock — that
        // is what defeats a 1-byte-per-second trickle.
        conn->has_partial = true;
        conn->partial_since = now;
      }
    }
  }
  if (conn->peer_eof && !conn->dead && !conn->close_after_flush) {
    // Serve a final unterminated line, mirroring the stdin server at EOF.
    std::string last;
    if (conn->framer.TakeRemainder(&last)) HandleLine(conn, last);
  }
  UpdateInterest(conn);
}

void Server::ProcessLines(Connection* conn) {
  std::string line;
  while (!conn->close_after_flush) {
    const LineFramer::Next next = conn->framer.NextLine(&line);
    if (next == LineFramer::Next::kLine) {
      HandleLine(conn, line);
      continue;
    }
    if (next == LineFramer::Next::kOversized) {
      ++stats_.dropped;
      PendingReply reply;
      reply.immediate = serve::FormatErrorReply(
          -1, "request line exceeds " +
                  std::to_string(conn->framer.max_line_bytes()) +
                  " bytes; closing connection");
      conn->pending.push_back(std::move(reply));
      conn->close_after_flush = true;
    }
    break;
  }
}

void Server::HandleLine(Connection* conn, const std::string& line) {
  if (line.empty()) return;  // blank lines are ignored, as in stdin mode
  Result<serve::ServeRequest> request = serve::ParseRequestLine(line);
  PendingReply reply;
  if (!request.ok()) {
    reply.immediate = serve::FormatErrorReply(-1, request.status().message());
  } else if (request->is_reload) {
    if (!options_.allow_reload) {
      reply.immediate = serve::FormatErrorReply(
          request->id, "reload is disabled on this server");
    } else {
      // Flush queries received ahead of the reload so they are answered by
      // the old session: the swap lands on a clean reply boundary.
      PumpQueue();
      const Result<serve::SessionRegistry::ReloadInfo> info =
          registry_->Reload(request->reload_path);
      if (info.ok()) {
        ++stats_.reloads;
        reply.immediate = serve::FormatReloadReply(request->id, info->path,
                                                   info->generation);
      } else {
        ++stats_.reload_failures;
        reply.immediate =
            serve::FormatErrorReply(request->id, info.status().message());
      }
    }
  } else {
    reply.has_ticket = true;
    reply.id = request->id;
    reply.ticket =
        batcher_.Submit(std::move(request->nodes), request->deadline_ms);
  }
  conn->pending.push_back(std::move(reply));
}

void Server::PumpQueue() {
  // PumpOnce blocks on the condvar when the queue is empty (it was built
  // for a dedicated pump thread); the event loop — like the stdin server —
  // only pumps while work is queued.
  while (batcher_.queue_depth() > 0) batcher_.PumpOnce();
}

void Server::ResolvePending(Connection* conn) {
  while (!conn->pending.empty()) {
    PendingReply& front = conn->pending.front();
    std::string reply;
    if (!front.has_ticket) {
      reply = std::move(front.immediate);
    } else {
      // The queue was pumped dry before this runs, so every submitted
      // ticket is already delivered: Wait returns without blocking.
      Result<std::vector<int64_t>> classes = front.ticket.Wait();
      if (classes.ok()) {
        reply = serve::FormatClassesReply(front.id, *classes);
      } else if (classes.status().code() == StatusCode::kUnavailable) {
        reply = serve::FormatOverloadedReply(front.id,
                                             classes.status().message());
      } else {
        reply = serve::FormatErrorReply(front.id, classes.status().message());
      }
    }
    conn->out += reply;
    conn->out += '\n';
    conn->pending.pop_front();
    if (conn->out.size() - conn->out_offset >
        options_.max_write_buffer_bytes) {
      // Slow consumer: replies are piling up faster than the client reads.
      // Dropping the connection bounds per-connection memory.
      ++stats_.dropped;
      conn->dead = true;
      return;
    }
  }
}

void Server::FlushWrites(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const Result<IoResult> wrote =
        WriteSome(conn->fd.get(), conn->out.data() + conn->out_offset,
                  conn->out.size() - conn->out_offset);
    if (!wrote.ok()) {
      ++stats_.io_errors;
      conn->dead = true;
      return;
    }
    if (wrote->closed) {
      conn->dead = true;  // peer vanished; nothing left to deliver to
      return;
    }
    if (wrote->would_block) break;
    conn->out_offset += static_cast<size_t>(wrote->bytes);
  }
  if (conn->out_offset >= conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
    if (conn->close_after_flush ||
        ((conn->peer_eof || draining_) && conn->pending.empty())) {
      conn->dead = true;
      return;
    }
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(Connection* conn) {
  if (conn->dead) return;
  uint32_t want = 0;
  // Once reading stops (EOF, condemned stream, drain), EPOLLIN must come
  // off the mask: a level-triggered EOF or unread payload would otherwise
  // wake the loop continuously.
  if (!conn->peer_eof && !conn->close_after_flush && !draining_) {
    want |= EPOLLIN;
  }
  if (conn->out_offset < conn->out.size()) want |= EPOLLOUT;
  if (want == conn->interest) return;
  epoll_event event{};
  event.events = want;
  event.data.fd = conn->fd.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &event) != 0) {
    ++stats_.io_errors;
    conn->dead = true;
    return;
  }
  conn->interest = want;
}

void Server::CollectFinished() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second->dead) {
      // Closing the fd (FdOwner destructor) deregisters it from epoll.
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

int Server::NextHygieneDelayMs(
    std::chrono::steady_clock::time_point now) const {
  std::chrono::steady_clock::time_point earliest{};
  bool have_deadline = false;
  for (const auto& [fd, conn] : connections_) {
    const Connection* c = conn.get();
    if (c->dead) continue;
    if (options_.stall_timeout_ms > 0 && c->has_partial) {
      const auto deadline =
          c->partial_since +
          std::chrono::milliseconds(options_.stall_timeout_ms);
      if (!have_deadline || deadline < earliest) earliest = deadline;
      have_deadline = true;
    }
    if (options_.idle_timeout_ms > 0 && c->pending.empty() &&
        c->out_offset >= c->out.size()) {
      const auto deadline =
          c->last_read + std::chrono::milliseconds(options_.idle_timeout_ms);
      if (!have_deadline || deadline < earliest) earliest = deadline;
      have_deadline = true;
    }
  }
  if (!have_deadline) return -1;
  if (earliest <= now) return 0;
  return static_cast<int>(
             std::chrono::duration_cast<std::chrono::milliseconds>(earliest -
                                                                   now)
                 .count()) +
         1;
}

void Server::EnforceHygiene() {
  if (connections_.empty()) return;
  // lint:allow(deterministic-randomness) — hygiene clock, not results
  const auto now = std::chrono::steady_clock::now();
  for (auto& [fd, conn] : connections_) {
    Connection* c = conn.get();
    if (c->dead) continue;
    if (options_.stall_timeout_ms > 0 && c->has_partial &&
        now - c->partial_since >=
            std::chrono::milliseconds(options_.stall_timeout_ms)) {
      // Slow-loris: the line never completed, so there is no reply to owe.
      // Abrupt drop — buffered replies for earlier requests die with it.
      ++stats_.stall_dropped;
      c->dead = true;
      continue;
    }
    if (options_.idle_timeout_ms > 0 && c->pending.empty() &&
        c->out_offset >= c->out.size() &&
        now - c->last_read >=
            std::chrono::milliseconds(options_.idle_timeout_ms)) {
      // Nothing owed in either direction: orderly FIN. A dangling partial
      // line is discarded, exactly as drain discards one.
      ++stats_.idle_closed;
      c->dead = true;
    }
  }
}

void Server::StartDrain() {
  if (draining_) return;
  draining_ = true;
  // lint:allow(deterministic-randomness) — drain budget, not results
  drain_deadline_ = std::chrono::steady_clock::now() + kDrainBudget;
  // Stop accepting: closing the listener both refuses new connections and
  // removes it from the epoll set.
  listener_.fd.Reset();
  // Answer every complete request already buffered; an unterminated
  // partial line was never finished by the client and is discarded.
  for (auto& [fd, conn] : connections_) {
    if (conn->dead) continue;
    ProcessLines(conn.get());
    UpdateInterest(conn.get());
  }
}

}  // namespace adpa::net
