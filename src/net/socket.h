#pragma once
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/status.h"

/// Thin Status-returning wrappers over the POSIX socket API. This file and
/// its .cc are (with framing/server) the only places in src/ allowed to
/// touch raw socket/epoll syscalls — the `socket-isolation` lint rule
/// mirrors `simd-isolation` so the network surface stays auditable in one
/// directory. Everything is non-blocking: the event loop in
/// src/net/server.cc owns all waiting.
namespace adpa::net {

/// Owned POSIX file descriptor: closes on destruction, move-only. A default
/// constructed (or moved-from) owner holds -1 and closes nothing.
class FdOwner {
 public:
  FdOwner() = default;
  explicit FdOwner(int fd) : fd_(fd) {}
  ~FdOwner() { Reset(); }

  FdOwner(FdOwner&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdOwner& operator=(FdOwner&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdOwner(const FdOwner&) = delete;
  FdOwner& operator=(const FdOwner&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the held descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1);
  /// Relinquishes ownership without closing.
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// "host:port" split for --listen specs. The host part is a numeric IPv4
/// address or a name resolvable by getaddrinfo; port 0 asks the kernel for
/// an ephemeral port (the bound port comes back from ListenTcp).
struct HostPort {
  std::string host;
  uint16_t port = 0;
};
ADPA_NODISCARD Result<HostPort> ParseHostPort(const std::string& spec);

/// A bound, listening, non-blocking TCP socket plus the port it actually
/// bound (meaningful when the requested port was 0).
struct ListenSocket {
  FdOwner fd;
  uint16_t port = 0;
};

/// socket + SO_REUSEADDR + bind + listen, all non-blocking. IPv4 only —
/// the serving surface is explicit about its address family rather than
/// half-supporting IPv6.
ADPA_NODISCARD Result<ListenSocket> ListenTcp(const std::string& host,
                                              uint16_t port,
                                              int backlog = 128);

/// Blocking connect to host:port (clients — tests, the load generator —
/// want simple blocking sockets; the server never calls this).
ADPA_NODISCARD Result<FdOwner> ConnectTcp(const std::string& host,
                                          uint16_t port);

/// Outcome of one non-blocking read/write attempt. `would_block` and
/// `closed` are ordinary states, not errors: only genuine syscall failures
/// come back as a non-OK Status.
struct IoResult {
  int64_t bytes = 0;  ///< bytes actually transferred (may be short)
  bool would_block = false;
  bool closed = false;  ///< read: peer sent EOF; write: peer vanished
};

/// One ::recv attempt (retries EINTR). Failpoints: `net.read` injects a
/// syscall-level failure, `net.read.short` caps the read at 1 byte so every
/// framing path is exercised under byte-at-a-time delivery.
ADPA_NODISCARD Result<IoResult> ReadSome(int fd, char* buffer, size_t cap);

/// One ::send attempt (MSG_NOSIGNAL, retries EINTR). Failpoints:
/// `net.write` injects a failure, `net.write.short` caps the write at
/// 1 byte (short-count path).
ADPA_NODISCARD Result<IoResult> WriteSome(int fd, const char* data,
                                          size_t size);

/// One non-blocking ::accept attempt on a listening socket. The accepted
/// fd is made non-blocking before it is returned. `would_block` (with an
/// invalid fd) means no pending connection. Per-connection accept errors
/// (a peer that vanished mid-handshake, the `net.accept` failpoint) come
/// back as a non-OK Status: the caller counts them and keeps listening —
/// an accept error never tears the server down. EMFILE/ENFILE is reported
/// separately via `fd_exhausted` (also an OK result, no fd): the process
/// is out of descriptors, and the server answers with its reserved-fd
/// drain (DESIGN.md §15) instead of error-counting a condition that would
/// otherwise re-trigger on every epoll wakeup. The `net.accept.emfile`
/// failpoint forces this path deterministically.
struct AcceptResult {
  FdOwner fd;
  bool would_block = false;
  bool fd_exhausted = false;  ///< accept failed with EMFILE or ENFILE
};
ADPA_NODISCARD Result<AcceptResult> AcceptConnection(int listen_fd);

Status SetNonBlocking(int fd);

}  // namespace adpa::net
