#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/core/failpoint.h"

namespace adpa::net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Numeric-only IPv4 resolution: the serving surface binds explicit
/// addresses ("127.0.0.1", "0.0.0.0"), not names — no DNS in the server.
Status ResolveIpv4(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (host.empty() || host == "*") {
    addr->sin_addr.s_addr = htonl(INADDR_ANY);
    return Status::OK();
  }
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument(
        "not a numeric IPv4 address: \"" + host +
        "\" (use e.g. 127.0.0.1, or * / empty for INADDR_ANY)");
  }
  return Status::OK();
}

}  // namespace

void FdOwner::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<HostPort> ParseHostPort(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("expected host:port, got \"" + spec +
                                   "\"");
  }
  HostPort out;
  out.host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("port must be a number in [0, 65535], "
                                   "got \"" + port_text + "\"");
  }
  // 6 digits always overflow; shorter strings fit in a long.
  if (port_text.size() > 5 || std::stol(port_text) > 65535) {
    return Status::InvalidArgument("port must be a number in [0, 65535], "
                                   "got \"" + port_text + "\"");
  }
  out.port = static_cast<uint16_t>(std::stol(port_text));
  return out;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Result<ListenSocket> ListenTcp(const std::string& host, uint16_t port,
                               int backlog) {
  sockaddr_in addr;
  ADPA_RETURN_IF_ERROR(ResolveIpv4(host, port, &addr));
  FdOwner fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int enable = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof(enable)) < 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return Errno("listen");
  ADPA_RETURN_IF_ERROR(SetNonBlocking(fd.get()));

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Errno("getsockname");
  }
  ListenSocket out;
  out.fd = std::move(fd);
  out.port = ntohs(bound.sin_port);
  return out;
}

Result<FdOwner> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  ADPA_RETURN_IF_ERROR(ResolveIpv4(host.empty() ? "127.0.0.1" : host, port,
                                   &addr));
  FdOwner fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  // Request/reply lines are small; without TCP_NODELAY every closed-loop
  // client would eat a Nagle delay per request.
  const int enable = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable,
                   sizeof(enable)) < 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return fd;
}

Result<IoResult> ReadSome(int fd, char* buffer, size_t cap) {
  ADPA_FAILPOINT("net.read");
  if (!ADPA_FAILPOINT_STATUS("net.read.short").ok() && cap > 1) cap = 1;
  IoResult result;
  while (true) {
    const ssize_t got = ::recv(fd, buffer, cap, 0);
    if (got > 0) {
      result.bytes = got;
      return result;
    }
    if (got == 0) {
      result.closed = true;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    if (errno == ECONNRESET) {
      result.closed = true;
      return result;
    }
    return Errno("recv");
  }
}

Result<IoResult> WriteSome(int fd, const char* data, size_t size) {
  ADPA_FAILPOINT("net.write");
  if (!ADPA_FAILPOINT_STATUS("net.write.short").ok() && size > 1) size = 1;
  IoResult result;
  while (true) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent >= 0) {
      result.bytes = sent;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      result.closed = true;
      return result;
    }
    return Errno("send");
  }
}

Result<AcceptResult> AcceptConnection(int listen_fd) {
  ADPA_FAILPOINT("net.accept");
  AcceptResult result;
  if (!ADPA_FAILPOINT_STATUS("net.accept.emfile").ok()) {
    result.fd_exhausted = true;
    return result;
  }
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      result.fd.Reset(fd);
      ADPA_RETURN_IF_ERROR(SetNonBlocking(fd));
      const int enable = 1;
      if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                       sizeof(enable)) < 0) {
        return Errno("setsockopt(TCP_NODELAY)");
      }
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.would_block = true;
      return result;
    }
    if (errno == EMFILE || errno == ENFILE) {
      result.fd_exhausted = true;
      return result;
    }
    // The peer hung up between connect and accept: a per-connection
    // condition, reported as an error so the server can count it without
    // treating the listener as broken.
    return Errno("accept");
  }
}

}  // namespace adpa::net
