#pragma once
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "src/core/status.h"
#include "src/net/framing.h"
#include "src/net/socket.h"
#include "src/serve/batcher.h"
#include "src/serve/hot_swap.h"
#include "src/serve/metrics.h"

namespace adpa::net {

struct ServerOptions {
  /// Bind address. Port 0 picks an ephemeral port; read it back from
  /// Server::port() (the harness and tests depend on this).
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Per-connection line cap; a longer line is answered with a framing
  /// error and the connection is closed (LineFramer latches — see
  /// src/net/framing.h for why resync is unsafe).
  size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
  /// Per-connection reply backlog cap; a client that stops reading while
  /// replies accumulate past this is dropped (bounded memory under
  /// slow-consumer abuse).
  size_t max_write_buffer_bytes = 4u << 20;
  /// Accepted-connection ceiling; extra connects are closed immediately.
  int64_t max_connections = 1024;

  /// Connection hygiene (DESIGN.md §15); 0 disables each timeout, which is
  /// the default so timing never leaks into unit-test harnesses. Idle: a
  /// connection that has sent no bytes for this long and is owed nothing
  /// (no queued replies, write buffer flushed) is closed cleanly — the
  /// client sees an orderly FIN. An unfinished partial line is discarded,
  /// exactly as drain discards one.
  int64_t idle_timeout_ms = 0;
  /// Read-stall (slow-loris) timeout: a connection whose current request
  /// line has been sitting incomplete for this long is dropped without a
  /// reply. The clock starts when the oldest unconsumed byte of the
  /// partial arrives and is NOT reset by further bytes of the same line,
  /// so a 1-byte-per-second trickle cannot hold a connection open.
  int64_t stall_timeout_ms = 0;

  /// Queue-full reject and deadline-shed semantics are the batcher's
  /// (DESIGN.md §10 degradation matrix) — they apply per request exactly as
  /// in stdin mode.
  serve::MicroBatcher::Options batcher;

  /// When false, {"reload": ...} admin requests are answered with an error
  /// instead of swapping checkpoints.
  bool allow_reload = true;
};

/// Counters the single-threaded event loop keeps outside ServeMetrics
/// (which tracks requests; these track connections). Read them after
/// Serve() returns, or from the loop thread.
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t closed_by_peer = 0;       ///< clean EOF from the client
  uint64_t dropped = 0;              ///< oversized line / write-buffer cap
  uint64_t io_errors = 0;            ///< read/write/accept syscall failures
  uint64_t over_capacity = 0;        ///< connects refused at max_connections
  uint64_t reloads = 0;              ///< successful checkpoint swaps
  uint64_t reload_failures = 0;      ///< rejected swaps (old session kept)
  uint64_t idle_closed = 0;          ///< reaped by the idle timeout
  uint64_t stall_dropped = 0;        ///< reaped by the read-stall timeout
  uint64_t fd_exhausted = 0;         ///< EMFILE accepts absorbed via the
                                     ///< reserved emergency fd
};

/// epoll-based multi-client JSONL inference server (DESIGN.md §14).
///
/// One thread runs Serve(): it owns every socket, the LineFramer per
/// connection, and the batcher pump, so the network layer needs no locks at
/// all — concurrency lives in the kernel (epoll) and in the ParallelFor
/// worker pool under each coalesced forward. Clients connect over TCP,
/// write one JSONL request per line, and read one reply line per request,
/// in order, per connection. Requests from concurrently readable
/// connections coalesce into shared batches through the existing
/// MicroBatcher, keeping its queue-full reject and deadline-shed semantics
/// per request.
///
/// Admin: {"reload": "path"} loads the checkpoint and atomically swaps it
/// into the SessionRegistry; queries already received ahead of the reload
/// are answered by the old session before the swap (the pump is flushed
/// first), so every connection sees a clean old→new reply boundary.
///
/// Shutdown: RequestStop() (or a signal handler writing 'T' to wake_fd())
/// stops accepting, answers everything already received, flushes every
/// write buffer, and returns from Serve(). RequestReload() / 'H' re-reads
/// the last loaded checkpoint path (the SIGHUP convention).
class Server {
 public:
  /// `registry` and `metrics` must outlive the server; `metrics` may be
  /// null. The registry may be empty (no session yet) — queries are then
  /// answered with a structured error until a reload succeeds.
  static Result<std::unique_ptr<Server>> Create(
      const ServerOptions& options, serve::SessionRegistry* registry,
      serve::ServeMetrics* metrics);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (== options.port unless that was 0).
  uint16_t port() const { return port_; }

  /// Write end of the self-pipe. Async-signal-safe wakeups: write a single
  /// byte 'T' (drain and stop) or 'H' (reload current checkpoint path).
  int wake_fd() const { return wake_writer_.get(); }

  /// Thread-safe wakeups for tests and embedders (write to the self-pipe).
  void RequestStop() const;
  void RequestReload() const;

  /// Serves until a stop request, then drains: stops accepting, answers
  /// every request already received, flushes replies (bounded by a 5 s
  /// drain budget per loop exit), closes all connections. Only
  /// environmental failures (epoll itself breaking) return non-OK;
  /// per-connection errors are counted in stats() and survived.
  ADPA_NODISCARD Status Serve();

  const ServerStats& stats() const { return stats_; }

 private:
  struct PendingReply {
    bool has_ticket = false;
    int64_t id = 0;
    serve::MicroBatcher::Ticket ticket;
    std::string immediate;  ///< pre-formatted reply (errors, reload acks)
  };

  struct Connection {
    Connection(FdOwner socket, size_t max_line_bytes)
        : fd(std::move(socket)), framer(max_line_bytes) {}

    FdOwner fd;
    LineFramer framer;
    std::deque<PendingReply> pending;  ///< replies owed, in request order
    std::string out;                   ///< bytes owed to the socket
    size_t out_offset = 0;
    bool peer_eof = false;           ///< no more requests; close once idle
    bool close_after_flush = false;  ///< condemned (oversized line)
    bool dead = false;               ///< close at end of loop iteration
    uint32_t interest = 0;           ///< epoll event mask currently armed

    /// Hygiene clocks, stamped by the loop thread only. `last_read` is the
    /// accept time or the last time bytes arrived; `partial_since` is when
    /// the oldest unconsumed byte of the current incomplete line arrived
    /// (valid only while `has_partial`).
    std::chrono::steady_clock::time_point last_read;
    std::chrono::steady_clock::time_point partial_since;
    bool has_partial = false;
  };

  Server(const ServerOptions& options, serve::SessionRegistry* registry,
         serve::ServeMetrics* metrics);

  Status SetupSockets();
  void HandleWake();
  void HandleAccept();
  /// EMFILE/ENFILE on accept: burn the reserved emergency fd to accept one
  /// queued connection, close it immediately (shedding the newcomer, not
  /// an established client), then re-arm the reserve. Without this the
  /// level-triggered listener would re-report the same pending connection
  /// on every wakeup, forever, while the client hangs in connect().
  void DrainAcceptWithReserveFd();
  void HandleReadable(int fd);
  void ProcessLines(Connection* conn);
  void HandleLine(Connection* conn, const std::string& line);
  void PumpQueue();
  void ResolvePending(Connection* conn);
  void FlushWrites(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CollectFinished();
  void StartDrain();
  bool HygieneEnabled() const {
    return options_.idle_timeout_ms > 0 || options_.stall_timeout_ms > 0;
  }
  /// Milliseconds until the earliest idle/stall deadline, or -1 when no
  /// connection has one armed. Bounds the epoll_wait timeout.
  int NextHygieneDelayMs(std::chrono::steady_clock::time_point now) const;
  /// Reaps connections past their idle/stall deadline (marks them dead;
  /// CollectFinished closes them).
  void EnforceHygiene();

  const ServerOptions options_;
  serve::SessionRegistry* const registry_;
  serve::MicroBatcher batcher_;

  ListenSocket listener_;
  uint16_t port_ = 0;
  FdOwner epoll_;
  FdOwner wake_reader_;
  FdOwner wake_writer_;
  /// Reserved emergency descriptor (/dev/null), closed and re-opened to
  /// absorb EMFILE storms on accept — see DrainAcceptWithReserveFd.
  FdOwner reserve_fd_;

  std::map<int, std::unique_ptr<Connection>> connections_;
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;
  ServerStats stats_;
};

}  // namespace adpa::net
