#pragma once
#include <cstddef>
#include <string>

namespace adpa::net {

/// Length-capped line framing over a per-connection byte stream.
///
/// TCP delivers arbitrary chunks; the JSONL protocol is one request per
/// '\n'-terminated line. The framer buffers incoming bytes and hands back
/// complete lines with the terminator stripped ("\r\n" and "\n" both
/// delimit, so telnet-style CRLF clients work). The sequence of lines is a
/// pure function of the byte stream — chunk boundaries never change what
/// comes out, a property fuzz_framing checks by replaying every input both
/// whole and byte-at-a-time.
///
/// A line longer than `max_line_bytes` latches the framer into an oversized
/// state: NextLine reports kOversized forever after, Append drops further
/// input, and the connection owner is expected to answer with a framing
/// error and close. Latching (instead of skip-to-next-newline resync) is
/// deliberate — inside an overlong "line" there is no way to know whether a
/// later '\n' is a frame boundary or payload bytes of the same hostile
/// request, so the only safe protocol state is "this stream is broken".
/// The cap also bounds per-connection memory: the buffer never grows past
/// max_line_bytes + one read chunk (+1 for a trailing '\r' that may be the
/// first half of a CRLF terminator — it will be stripped, so it does not
/// count against the cap).
class LineFramer {
 public:
  /// Default cap: comfortably above the largest legal request line
  /// (max_nodes node ids of ≤ 19 digits) while bounding hostile streams.
  static constexpr size_t kDefaultMaxLineBytes = 1u << 20;

  LineFramer() : LineFramer(kDefaultMaxLineBytes) {}
  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Buffers `size` bytes from the stream. No-op once oversized.
  void Append(const char* data, size_t size);

  enum class Next {
    kLine,      ///< `*line` holds one complete line (terminator stripped)
    kNeedMore,  ///< no complete line buffered; Append more bytes
    kOversized  ///< the cap was exceeded; the stream is unrecoverable
  };

  /// Extracts the next complete line, if any.
  Next NextLine(std::string* line);

  /// Hands out a non-empty unterminated trailing line, if one is buffered
  /// (mirrors the stdin server, which serves a final line without '\n' at
  /// EOF). Returns false when nothing (or only emptiness) remains. Only
  /// meaningful after the peer sent EOF; never returns oversized data.
  bool TakeRemainder(std::string* line);

  /// Bytes currently buffered (diagnostics and tests).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool oversized() const { return oversized_; }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  /// Drops the consumed prefix once it dominates the buffer, keeping
  /// Append/NextLine amortized O(bytes) instead of O(bytes · lines).
  void Compact();

  const size_t max_line_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;   ///< bytes of buffer_ already returned as lines
  size_t scanned_ = 0;    ///< newline search resumes here (no rescans)
  bool oversized_ = false;
};

}  // namespace adpa::net
