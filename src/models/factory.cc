#include "src/models/factory.h"

#include <memory>

#include "src/models/adpa.h"
#include "src/models/directed.h"
#include "src/models/extended.h"
#include "src/models/undirected.h"

namespace adpa {

Result<ModelPtr> CreateModel(const std::string& name, const Dataset& dataset,
                             const ModelConfig& config, Rng* rng) {
  if (name == "MLP") return ModelPtr(new MlpModel(dataset, config, rng));
  if (name == "GCN") return ModelPtr(new GcnModel(dataset, config, rng));
  if (name == "SGC") return ModelPtr(new SgcModel(dataset, config, rng));
  if (name == "LINKX") return ModelPtr(new LinkxModel(dataset, config, rng));
  if (name == "GloGNN") return ModelPtr(new GloGnnModel(dataset, config, rng));
  if (name == "AERO-GNN") {
    return ModelPtr(new AeroGnnModel(dataset, config, rng));
  }
  if (name == "GPRGNN") return ModelPtr(new GprGnnModel(dataset, config, rng));
  if (name == "BerNet") return ModelPtr(new BernNetModel(dataset, config, rng));
  if (name == "JacobiConv") {
    return ModelPtr(new JacobiConvModel(dataset, config, rng));
  }
  if (name == "DGCN") return ModelPtr(new DgcnModel(dataset, config, rng));
  if (name == "DiGCN") return ModelPtr(new DiGcnModel(dataset, config, rng));
  if (name == "MagNet") return ModelPtr(new MagNetModel(dataset, config, rng));
  if (name == "NSTE") return ModelPtr(new NsteModel(dataset, config, rng));
  if (name == "DIMPA") return ModelPtr(new DimpaModel(dataset, config, rng));
  if (name == "DirGNN") return ModelPtr(new DirGnnModel(dataset, config, rng));
  if (name == "A2DUG") return ModelPtr(new A2dugModel(dataset, config, rng));
  if (name == "ADPA") return ModelPtr(new AdpaModel(dataset, config, rng));
  if (name == "H2GCN") return ModelPtr(new H2GcnModel(dataset, config, rng));
  if (name == "APPNP") return ModelPtr(new AppnpModel(dataset, config, rng));
  if (name == "GraphSAGE") {
    return ModelPtr(new GraphSageModel(dataset, config, rng));
  }
  return Status::NotFound("unknown model: " + name);
}

Result<ModelPtr> CreateModelWithPatterns(const std::string& name,
                                         const Dataset& dataset,
                                         const ModelConfig& config,
                                         std::vector<DirectedPattern> patterns,
                                         Rng* rng) {
  if (name == "ADPA" && !patterns.empty()) {
    return ModelPtr(new AdpaModel(dataset, config, std::move(patterns), rng));
  }
  return CreateModel(name, dataset, config, rng);
}

const std::vector<std::string>& UndirectedModelNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "GCN",    "SGC",    "LINKX",  "BerNet",
      "JacobiConv", "GPRGNN", "GloGNN", "AERO-GNN"};
  return names;
}

const std::vector<std::string>& DirectedModelNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "DGCN", "DiGCN", "MagNet", "NSTE", "DIMPA", "DirGNN", "A2DUG"};
  return names;
}

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>(
      [] {
        std::vector<std::string> all = UndirectedModelNames();
        for (const std::string& name : DirectedModelNames()) {
          all.push_back(name);
        }
        all.push_back("ADPA");
        return all;
      }());
  return names;
}

bool IsDirectedModel(const std::string& name) {
  for (const std::string& directed : DirectedModelNames()) {
    if (name == directed) return true;
  }
  return name == "ADPA";
}

}  // namespace adpa
