#pragma once
#include <cstdint>
#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/matrix.h"

namespace adpa {

/// Classic label propagation (Zhu & Ghahramani), the parameter-free method
/// whose "consistent and strong performance" the paper cites as the
/// empirical basis of the homophily assumption (Sec. II-B). Iterates
///   F ← (1-α) Ã F + α F⁰
/// from the one-hot training labels F⁰, with training rows clamped.
struct LabelPropagationResult {
  Matrix scores;                     ///< n x C soft label distribution
  std::vector<int64_t> predictions;  ///< argmax per node
};

/// Runs `steps` propagation rounds with restart weight `alpha` over the
/// symmetrically normalized adjacency of `dataset.graph` (as given: pass
/// an undirected transformation for the classical algorithm).
LabelPropagationResult PropagateLabels(const Dataset& dataset, int steps,
                                       float alpha);

/// Accuracy of PropagateLabels on the dataset's test split.
double LabelPropagationAccuracy(const Dataset& dataset, int steps = 10,
                                float alpha = 0.1f);

}  // namespace adpa

