#pragma once
#include <string>
#include <vector>

#include "src/graph/patterns.h"
#include "src/models/model.h"
#include "src/tensor/nn.h"

namespace adpa {

/// ADPA — Adaptive Directed Pattern Aggregation (paper Sec. IV), the core
/// contribution. The model decouples propagation from training:
///
///  1. *DP-guided feature propagation* (Eq. 9, training-free, cached at
///     construction): for every directed pattern G_g of order ≤
///     `config.pattern_order` and every step l = 1..K, compute
///     X_g^(l) = G_g X_g^(l-1), yielding K·k propagated blocks plus the
///     initial residual X^(0).
///  2. *Node-wise DP attention* (Eq. 10): per step l, fuse the k+1 blocks
///     with per-node weights into X̄^(l) ∈ R^{n×h}. Four interchangeable
///     variants (Original / Gate / Recursive / JK — Table VII).
///  3. *Node-wise hop attention* (Eq. 11): per-node softmax over the K
///     fused representations, X* = Σ_l W_hop[:,l] ⊙ X̄^(l).
///  4. MLP classifier on X*.
///
/// Ablation switches: `use_dp_attention = false` replaces step 2's weights
/// with a uniform average; `use_hop_attention = false` replaces step 3 with
/// a uniform average; `initial_residual = false` drops X^(0) from the
/// block list (Eq. 9's over-smoothing guard).
///
/// ADPA accepts both AMDirected and AMUndirected inputs: on a symmetric
/// graph A = Aᵀ and the DP set degenerates gracefully.
class AdpaModel : public Model {
 public:
  AdpaModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);

  /// Restore/serving path: propagate with exactly `patterns` instead of
  /// deriving a set from the dataset. Correlation-selected subsets
  /// (Sec. IV-B) depend on the training labels and split, so a checkpoint's
  /// recorded set cannot be safely re-derived at load time.
  AdpaModel(const Dataset& dataset, const ModelConfig& config,
            std::vector<DirectedPattern> patterns, Rng* rng);

  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "ADPA"; }

  /// Patterns actually used (k of them), for inspection/tests.
  const std::vector<DirectedPattern>& patterns() const { return patterns_; }
  int steps() const { return steps_; }

 private:
  /// Runs the configured DP attention over the k+1 blocks of one step.
  ag::Variable FuseStep(const std::vector<ag::Variable>& blocks, int step,
                        bool training, Rng* rng);

  ModelConfig config_;
  std::vector<DirectedPattern> patterns_;
  int steps_;  // K
  // propagated_[l][g]: block g of step l (g = 0 is the initial residual).
  std::vector<std::vector<ag::Variable>> propagated_;

  // DP attention parameters (per variant; only the active set is created).
  ag::Variable dp_weights_;              // Original: n x (k+1) logits
  std::vector<nn::Linear> gate_layers_;  // Gate: one f->1 scorer per block
  std::vector<nn::Linear> recursive_layers_;  // Recursive: 2f->1 scorers
  nn::Mlp dp_fuse_;                      // (k+1)f -> h fusion MLP (Eq. 10)
  nn::Linear jk_fuse_;                   // JK variant: (k+1)f -> h linear

  // Hop attention (Eq. 11).
  nn::Linear hop_scorer_;  // K·h -> K
  nn::Mlp classifier_;     // h -> C
};

}  // namespace adpa

