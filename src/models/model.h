#pragma once
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/tensor/autograd.h"

namespace adpa {

class Rng;

/// Node-wise attention variants for ADPA's DP attention (Table VII).
enum class DpAttention { kOriginal, kGate, kRecursive, kJk };

/// Shared hyperparameter bag for all models. Fields a model does not use
/// are ignored; the factory documents which models read which knobs.
struct ModelConfig {
  int64_t hidden = 64;
  int num_layers = 2;        ///< MLP / stacked-conv depth
  float dropout = 0.5f;
  int propagation_steps = 2; ///< K (SGC power, GPR steps, ADPA hops, ...)
  int pattern_order = 2;     ///< max DP order for ADPA / A2DUG (1..5)
  double conv_r = 0.5;       ///< Eq. (1) normalization exponent
  float alpha = 0.1f;        ///< teleport/PPR coefficient (DiGCN, GloGNN)
  float magnet_q = 0.25f;    ///< magnetic Laplacian phase parameter
  // ADPA switches (Sec. IV-C + ablations):
  DpAttention dp_attention = DpAttention::kOriginal;
  bool use_dp_attention = true;
  bool use_hop_attention = true;
  bool initial_residual = true;
  /// If > 0, keep only this many DP operators, ranked by their correlation
  /// r(G_d, N) with the *training* labels (the Sec. IV-B selection rule);
  /// 0 uses the full k-order enumeration.
  int select_patterns = 0;
  /// Add self loops to the DP propagation operators. Off by default:
  /// the initial residual X^(0) already carries self-information, and
  /// keeping neighborhoods self-free preserves the directional signal
  /// under heterophily (the H2GCN ego/neighbor separation argument).
  bool propagation_self_loops = false;
};

/// Common interface: a model is bound to one dataset at construction (it
/// precomputes whatever operators it needs) and exposes a differentiable
/// forward pass producing n x C logits.
class Model {
 public:
  virtual ~Model() = default;

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Full-batch forward pass. `training` toggles dropout; `rng` must be
  /// non-null when training.
  virtual ag::Variable Forward(bool training, Rng* rng) = 0;

  /// All trainable parameters.
  virtual std::vector<ag::Variable> Parameters() const = 0;

  virtual std::string name() const = 0;

 protected:
  Model() = default;
};

using ModelPtr = std::unique_ptr<Model>;

}  // namespace adpa

