#include "src/models/undirected.h"

#include <cmath>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

/// The shared Eq. (1) convolution operator Ã = D̂^{r-1}(A+I)D̂^{-r}.
SparseMatrix ConvolutionOperator(const Dataset& dataset, double conv_r) {
  return NormalizeConvolution(AddSelfLoops(dataset.graph.AdjacencyMatrix()),
                              conv_r);
}

}  // namespace

// ------------------------------------------------------------------- MLP --

MlpModel::MlpModel(const Dataset& dataset, const ModelConfig& config,
                   Rng* rng)
    : features_(ag::Constant(dataset.features)),
      mlp_(dataset.feature_dim(), config.hidden, dataset.num_classes,
           config.num_layers, rng, config.dropout),
      dropout_(config.dropout) {}

ag::Variable MlpModel::Forward(bool training, Rng* rng) {
  ag::Variable h = ag::Dropout(features_, dropout_, training, rng);
  return mlp_.Forward(h, training, rng);
}

std::vector<ag::Variable> MlpModel::Parameters() const {
  return mlp_.Parameters();
}

// ------------------------------------------------------------------- GCN --

GcnModel::GcnModel(const Dataset& dataset, const ModelConfig& config,
                   Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_(ConvolutionOperator(dataset, config.conv_r)),
      dropout_(config.dropout) {
  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    const int64_t out_dim =
        i + 1 == depth ? dataset.num_classes : config.hidden;
    layers_.emplace_back(in_dim, out_dim, rng);
    in_dim = out_dim;
  }
}

ag::Variable GcnModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = ag::Dropout(h, dropout_, training, rng);
    h = ag::SpMM(op_, h);
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

std::vector<ag::Variable> GcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const nn::Linear& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ------------------------------------------------------------------- SGC --

SgcModel::SgcModel(const Dataset& dataset, const ModelConfig& config,
                   Rng* rng)
    : classifier_(dataset.feature_dim(), dataset.num_classes, rng) {
  const SparseMatrix op = ConvolutionOperator(dataset, config.conv_r);
  Matrix x = dataset.features;
  for (int k = 0; k < std::max(1, config.propagation_steps); ++k) {
    x = op.Multiply(x);
  }
  propagated_ = ag::Constant(std::move(x));
}

ag::Variable SgcModel::Forward(bool training, Rng* rng) {
  (void)training;
  (void)rng;
  return classifier_.Forward(propagated_);
}

std::vector<ag::Variable> SgcModel::Parameters() const {
  return classifier_.Parameters();
}

// ----------------------------------------------------------------- LINKX --

LinkxModel::LinkxModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : features_(ag::Constant(dataset.features)),
      adjacency_(dataset.graph.AdjacencyMatrix()),
      adj_embedding_(
          ag::Parameter(nn::GlorotUniform(dataset.num_nodes(), config.hidden,
                                          rng))),
      feature_mlp_(dataset.feature_dim(), config.hidden, config.hidden,
                   /*num_layers=*/2, rng, config.dropout),
      fuse_mlp_(2 * config.hidden, config.hidden, dataset.num_classes,
                std::max(2, config.num_layers), rng, config.dropout),
      dropout_(config.dropout) {}

ag::Variable LinkxModel::Forward(bool training, Rng* rng) {
  // h_A = MLP_A(A): the first layer of MLP_A over adjacency rows is exactly
  // A @ W with a per-node embedding table W, computed sparsely.
  ag::Variable h_adj = ag::Relu(ag::SpMM(adjacency_, adj_embedding_));
  ag::Variable h_feat = feature_mlp_.Forward(features_, training, rng);
  ag::Variable fused = ag::ConcatCols({h_adj, h_feat});
  fused = ag::Dropout(fused, dropout_, training, rng);
  return fuse_mlp_.Forward(fused, training, rng);
}

std::vector<ag::Variable> LinkxModel::Parameters() const {
  std::vector<ag::Variable> params = {adj_embedding_};
  for (const auto& p : feature_mlp_.Parameters()) params.push_back(p);
  for (const auto& p : fuse_mlp_.Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------- GloGNN --

GloGnnModel::GloGnnModel(const Dataset& dataset, const ModelConfig& config,
                         Rng* rng)
    : features_(ag::Constant(dataset.features)),
      encoder_(dataset.feature_dim(), config.hidden, config.hidden,
               /*num_layers=*/2, rng, config.dropout),
      query_(config.hidden, config.hidden, rng, /*bias=*/false),
      key_(config.hidden, config.hidden, rng, /*bias=*/false),
      classifier_(config.hidden, dataset.num_classes, rng),
      // σ(2) ≈ 0.88: start close to the residual path so the low-rank
      // global term is phased in by training rather than drowning the
      // signal at initialization.
      gamma_(ag::Parameter(Matrix(1, 1, 2.0f))),
      dropout_(config.dropout) {}

ag::Variable GloGnnModel::Forward(bool training, Rng* rng) {
  ag::Variable z0 = encoder_.Forward(features_, training, rng);
  // Low-rank global mixing: T·Z₀ ≈ Q (Kᵀ Z₀) / n. The rank-h factorization
  // replaces GloGNN's dense n x n coefficient matrix at O(n·h²) cost while
  // keeping the global (all-pairs) information flow.
  ag::Variable q = query_.Forward(z0);
  ag::Variable k = key_.Forward(z0);
  ag::Variable kt_z = ag::MatMulTransposeA(k, z0);  // h x h
  ag::Variable global = ag::Scale(
      ag::MatMul(q, kt_z), 1.0f / static_cast<float>(features_.rows()));
  ag::Variable gate = ag::Sigmoid(gamma_);
  ag::Variable one_minus = ag::Sub(ag::Constant(Matrix(1, 1, 1.0f)), gate);
  ag::Variable mixed = ag::Add(ag::ScaleScalar(global, one_minus),
                               ag::ScaleScalar(z0, gate));
  mixed = ag::Dropout(ag::Relu(mixed), dropout_, training, rng);
  return classifier_.Forward(mixed);
}

std::vector<ag::Variable> GloGnnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& p : encoder_.Parameters()) params.push_back(p);
  for (const auto& p : query_.Parameters()) params.push_back(p);
  for (const auto& p : key_.Parameters()) params.push_back(p);
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  params.push_back(gamma_);
  return params;
}

// -------------------------------------------------------------- AERO-GNN --

AeroGnnModel::AeroGnnModel(const Dataset& dataset, const ModelConfig& config,
                           Rng* rng)
    : encoder_(dataset.feature_dim(), config.hidden, config.hidden,
               /*num_layers=*/2, rng, config.dropout),
      hop_scorer_((std::max(1, config.propagation_steps) + 1) * config.hidden,
                  std::max(1, config.propagation_steps) + 1, rng),
      classifier_(config.hidden, dataset.num_classes, rng),
      dropout_(config.dropout) {
  const SparseMatrix op = ConvolutionOperator(dataset, config.conv_r);
  Matrix x = dataset.features;
  hops_.push_back(ag::Constant(x));
  for (int k = 0; k < std::max(1, config.propagation_steps); ++k) {
    x = op.Multiply(x);
    hops_.push_back(ag::Constant(x));
  }
}

ag::Variable AeroGnnModel::Forward(bool training, Rng* rng) {
  // Encode each hop, score hops per node, and take the attention-weighted
  // sum — a decoupled approximation of AERO-GNN's deep attention.
  std::vector<ag::Variable> encoded;
  encoded.reserve(hops_.size());
  for (const ag::Variable& hop : hops_) {
    encoded.push_back(encoder_.Forward(hop, training, rng));
  }
  ag::Variable stacked = ag::ConcatCols(encoded);
  ag::Variable scores = ag::SoftmaxRows(hop_scorer_.Forward(stacked));
  ag::Variable combined;
  for (size_t k = 0; k < encoded.size(); ++k) {
    ag::Variable weighted = ag::ScaleRows(
        encoded[k], ag::SliceCols(scores, static_cast<int64_t>(k),
                                  static_cast<int64_t>(k) + 1));
    combined = k == 0 ? weighted : ag::Add(combined, weighted);
  }
  combined = ag::Dropout(ag::Relu(combined), dropout_, training, rng);
  return classifier_.Forward(combined);
}

std::vector<ag::Variable> AeroGnnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& p : encoder_.Parameters()) params.push_back(p);
  for (const auto& p : hop_scorer_.Parameters()) params.push_back(p);
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------- GPRGNN --

GprGnnModel::GprGnnModel(const Dataset& dataset, const ModelConfig& config,
                         Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_(ConvolutionOperator(dataset, config.conv_r)),
      encoder_(dataset.feature_dim(), config.hidden, dataset.num_classes,
               /*num_layers=*/2, rng, config.dropout),
      steps_(std::max(1, config.propagation_steps)),
      dropout_(config.dropout) {
  // PPR-style initialization γ_k = α(1-α)^k keeps early training close to
  // APPNP, per the original paper.
  const float alpha = config.alpha;
  for (int k = 0; k <= steps_; ++k) {
    Matrix g(1, 1);
    g.At(0, 0) = alpha * std::pow(1.0f - alpha, static_cast<float>(k));
    gammas_.push_back(ag::Parameter(std::move(g)));
  }
}

ag::Variable GprGnnModel::Forward(bool training, Rng* rng) {
  ag::Variable h = encoder_.Forward(features_, training, rng);
  ag::Variable z = ag::ScaleScalar(h, gammas_[0]);
  for (int k = 1; k <= steps_; ++k) {
    h = ag::SpMM(op_, h);
    z = ag::Add(z, ag::ScaleScalar(h, gammas_[k]));
  }
  return z;
}

std::vector<ag::Variable> GprGnnModel::Parameters() const {
  std::vector<ag::Variable> params = encoder_.Parameters();
  for (const auto& g : gammas_) params.push_back(g);
  return params;
}

// --------------------------------------------------------------- BernNet --

BernNetModel::BernNetModel(const Dataset& dataset, const ModelConfig& config,
                           Rng* rng)
    : features_(ag::Constant(dataset.features)),
      encoder_(dataset.feature_dim(), config.hidden, dataset.num_classes,
               /*num_layers=*/2, rng, config.dropout),
      degree_(std::max(1, config.propagation_steps)),
      dropout_(config.dropout) {
  const SparseMatrix conv = ConvolutionOperator(dataset, 0.5);
  const SparseMatrix identity = SparseMatrix::Identity(dataset.num_nodes());
  // L = I - Ã; 2I - L = I + Ã.
  SparseMatrix neg = conv;
  neg.ScaleInPlace(-1.0f);
  laplacian_ = identity.AddSparse(neg);
  two_i_minus_l_ = identity.AddSparse(conv);
  for (int k = 0; k <= degree_; ++k) {
    thetas_.push_back(ag::Parameter(Matrix(1, 1, 1.0f)));
  }
}

ag::Variable BernNetModel::Forward(bool training, Rng* rng) {
  ag::Variable h0 = encoder_.Forward(features_, training, rng);
  const int big_k = degree_;
  // Bernstein basis: B_k = C(K,k)/2^K (2I-L)^{K-k} L^k applied to h0.
  // First the L^k ladder, then each term finished with (2I-L) powers.
  std::vector<ag::Variable> l_powers = {h0};
  for (int k = 1; k <= big_k; ++k) {
    l_powers.push_back(ag::SpMM(laplacian_, l_powers.back()));
  }
  ag::Variable out;
  double binom = 1.0;
  const double scale = std::pow(0.5, big_k);
  for (int k = 0; k <= big_k; ++k) {
    ag::Variable term = l_powers[k];
    for (int j = 0; j < big_k - k; ++j) {
      term = ag::SpMM(two_i_minus_l_, term);
    }
    term = ag::Scale(term, static_cast<float>(binom * scale));
    term = ag::ScaleScalar(term, thetas_[k]);
    out = k == 0 ? term : ag::Add(out, term);
    binom = binom * static_cast<double>(big_k - k) /
            static_cast<double>(k + 1);
  }
  return out;
}

std::vector<ag::Variable> BernNetModel::Parameters() const {
  std::vector<ag::Variable> params = encoder_.Parameters();
  for (const auto& t : thetas_) params.push_back(t);
  return params;
}

// ------------------------------------------------------------ JacobiConv --

JacobiConvModel::JacobiConvModel(const Dataset& dataset,
                                 const ModelConfig& config, Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_(ConvolutionOperator(dataset, 0.5)),
      transform_(dataset.feature_dim(), dataset.num_classes, rng),
      degree_(std::max(1, config.propagation_steps)),
      dropout_(config.dropout) {
  for (int k = 0; k <= degree_; ++k) {
    Matrix a(1, 1);
    a.At(0, 0) = k == 0 ? 1.0f : 0.5f;
    alphas_.push_back(ag::Parameter(std::move(a)));
  }
}

ag::Variable JacobiConvModel::Forward(bool training, Rng* rng) {
  ag::Variable h0 = ag::Dropout(features_, dropout_, training, rng);
  h0 = transform_.Forward(h0);
  // Legendre (Jacobi a=b=0) three-term recurrence on the operator Ã:
  //   P₀ = h, P₁ = Ã h, k·P_k = (2k-1)·Ã·P_{k-1} - (k-1)·P_{k-2}.
  ag::Variable prev2 = h0;
  ag::Variable out = ag::ScaleScalar(prev2, alphas_[0]);
  if (degree_ >= 1) {
    ag::Variable prev1 = ag::SpMM(op_, h0);
    out = ag::Add(out, ag::ScaleScalar(prev1, alphas_[1]));
    for (int k = 2; k <= degree_; ++k) {
      const float a = (2.0f * k - 1.0f) / static_cast<float>(k);
      const float b = (k - 1.0f) / static_cast<float>(k);
      ag::Variable next = ag::Sub(ag::Scale(ag::SpMM(op_, prev1), a),
                                  ag::Scale(prev2, b));
      out = ag::Add(out, ag::ScaleScalar(next, alphas_[k]));
      prev2 = prev1;
      prev1 = next;
    }
  }
  return out;
}

std::vector<ag::Variable> JacobiConvModel::Parameters() const {
  std::vector<ag::Variable> params = transform_.Parameters();
  for (const auto& a : alphas_) params.push_back(a);
  return params;
}

}  // namespace adpa
