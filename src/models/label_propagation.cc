#include "src/models/label_propagation.h"

#include <utility>

#include "src/core/logging.h"
#include "src/graph/sparse_matrix.h"
#include "src/train/trainer.h"

namespace adpa {

LabelPropagationResult PropagateLabels(const Dataset& dataset, int steps,
                                       float alpha) {
  ADPA_CHECK_GE(steps, 1);
  ADPA_CHECK_GE(alpha, 0.0f);
  ADPA_CHECK_LE(alpha, 1.0f);
  const int64_t n = dataset.num_nodes();
  const int64_t c = dataset.num_classes;
  Matrix seed(n, c);
  for (int64_t i : dataset.train_idx) seed.At(i, dataset.labels[i]) = 1.0f;

  const SparseMatrix op =
      NormalizeSymmetric(AddSelfLoops(dataset.graph.AdjacencyMatrix()));
  Matrix scores = seed;
  Matrix propagated;  // double-buffered across steps; two allocations total
  for (int step = 0; step < steps; ++step) {
    // Fused single pass: propagated = (1-alpha) * op*scores + alpha * seed
    // (bitwise identical to the unfused Multiply/ScaleInPlace/
    // AddScaledInPlace sequence).
    op.MultiplyAxpbyInto(scores, seed, alpha, 1.0f - alpha, &propagated);
    // Clamp training rows to their known labels.
    for (int64_t i : dataset.train_idx) {
      float* row = propagated.Row(i);
      for (int64_t k = 0; k < c; ++k) row[k] = 0.0f;
      row[dataset.labels[i]] = 1.0f;
    }
    std::swap(scores, propagated);
  }

  LabelPropagationResult result;
  result.predictions.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = scores.Row(i);
    int64_t argmax = 0;
    for (int64_t k = 1; k < c; ++k) {
      if (row[k] > row[argmax]) argmax = k;
    }
    result.predictions[i] = argmax;
  }
  result.scores = std::move(scores);
  return result;
}

double LabelPropagationAccuracy(const Dataset& dataset, int steps,
                                float alpha) {
  const LabelPropagationResult result =
      PropagateLabels(dataset, steps, alpha);
  return Accuracy(result.scores, dataset.labels, dataset.test_idx);
}

}  // namespace adpa
