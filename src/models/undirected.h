#pragma once
#include <string>
#include <vector>

#include "src/graph/sparse_matrix.h"
#include "src/models/model.h"
#include "src/tensor/nn.h"

namespace adpa {

// Undirected baselines (paper Sec. II-B). Each consumes the dataset's graph
// as given — feed `dataset.WithUndirectedGraph()` for the paper's U- input
// convention. All were re-implemented from their defining equations on the
// shared autograd substrate; the two "-lite" models approximate their
// originals with low-rank/decoupled variants (documented inline) because the
// exact formulations require dense n x n attention.

/// Structure-free MLP on raw features (sanity baseline).
class MlpModel : public Model {
 public:
  MlpModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "MLP"; }

 private:
  ag::Variable features_;
  nn::Mlp mlp_;
  float dropout_;
};

/// GCN (Kipf & Welling): stacked Ã X W layers with the Eq. (1) operator.
class GcnModel : public Model {
 public:
  GcnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "GCN"; }

 private:
  ag::Variable features_;
  SparseMatrix op_;
  std::vector<nn::Linear> layers_;
  float dropout_;
};

/// SGC (Wu et al.): precomputed ÃᴷX followed by a linear classifier.
class SgcModel : public Model {
 public:
  SgcModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "SGC"; }

 private:
  ag::Variable propagated_;
  nn::Linear classifier_;
};

/// LINKX (Lim et al.): separate MLPs over the adjacency rows and the node
/// features, fused by an MLP — topology and features never interact
/// through propagation.
class LinkxModel : public Model {
 public:
  LinkxModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "LINKX"; }

 private:
  ag::Variable features_;
  SparseMatrix adjacency_;
  ag::Variable adj_embedding_;  // first MLP_A layer applied via SpMM
  nn::Mlp feature_mlp_;
  nn::Mlp fuse_mlp_;
  float dropout_;
};

/// GloGNN-lite: Z = (1-γ)·T·Z₀ + γ·Z₀ with the global transformation T
/// realized as a low-rank linear attention Q(KᵀZ₀)/n instead of the
/// original dense n x n coefficient solve (same global-mixing role at
/// O(n·h²) cost).
class GloGnnModel : public Model {
 public:
  GloGnnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "GloGNN"; }

 private:
  ag::Variable features_;
  nn::Mlp encoder_;
  nn::Linear query_;
  nn::Linear key_;
  nn::Linear classifier_;
  ag::Variable gamma_;  // 1x1, passed through a sigmoid
  float dropout_;
};

/// AERO-GNN-lite: deep decoupled propagation with per-node, per-hop
/// attention over the Ãᵏ X stack (the original's edge-level attention is
/// approximated by this hop-level attention; its depth-robustness behaviour
/// is preserved).
class AeroGnnModel : public Model {
 public:
  AeroGnnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "AERO-GNN"; }

 private:
  std::vector<ag::Variable> hops_;  // [X, ÃX, ..., ÃᴷX]
  nn::Mlp encoder_;
  nn::Linear hop_scorer_;
  nn::Linear classifier_;
  float dropout_;
};

/// GPR-GNN (Chien et al.): Z = Σ_k γ_k Ãᵏ H₀ with learnable generalized
/// PageRank weights γ and H₀ = MLP(X).
class GprGnnModel : public Model {
 public:
  GprGnnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "GPRGNN"; }

 private:
  ag::Variable features_;
  SparseMatrix op_;
  nn::Mlp encoder_;
  std::vector<ag::Variable> gammas_;  // K+1 scalars
  int steps_;
  float dropout_;
};

/// BernNet (He et al.): Σ_k θ_k Bernstein_k(L̃) MLP(X), θ learnable, with
/// the Bernstein basis expanded through repeated sparse applications of
/// L and 2I - L.
class BernNetModel : public Model {
 public:
  BernNetModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "BernNet"; }

 private:
  ag::Variable features_;
  SparseMatrix laplacian_;       // L = I - Ã
  SparseMatrix two_i_minus_l_;   // 2I - L
  nn::Mlp encoder_;
  std::vector<ag::Variable> thetas_;  // K+1 scalars
  int degree_;
  float dropout_;
};

/// JacobiConv (Wang & Zhang): polynomial spectral filter with an orthogonal
/// (Legendre, i.e. Jacobi(0,0)) basis over Ã and per-order learnable
/// coefficients on a linearly transformed signal.
class JacobiConvModel : public Model {
 public:
  JacobiConvModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "JacobiConv"; }

 private:
  ag::Variable features_;
  SparseMatrix op_;
  nn::Linear transform_;
  std::vector<ag::Variable> alphas_;  // K+1 scalars
  int degree_;
  float dropout_;
};

}  // namespace adpa

