#pragma once
#include <string>
#include <vector>

#include "src/graph/sparse_matrix.h"
#include "src/models/model.h"
#include "src/tensor/nn.h"

namespace adpa {

// Directed baselines (paper Sec. II-C). They consume the dataset's graph
// as given; the paper's D-/U- rows are produced by feeding the natural
// digraph vs. `dataset.WithUndirectedGraph()`.

/// DGCN (Tong et al.): convolution over the undirected proximity plus the
/// two second-order proximities A·Aᵀ (co-targets) and Aᵀ·A (co-sources),
/// fused by concatenation per layer.
class DgcnModel : public Model {
 public:
  DgcnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "DGCN"; }

 private:
  ag::Variable features_;
  SparseMatrix op_sym_;
  SparseMatrix op_out_proximity_;  // normalized A·Aᵀ
  SparseMatrix op_in_proximity_;   // normalized Aᵀ·A
  std::vector<nn::Linear> fuse_layers_;
  float dropout_;
};

/// DiGCN (Tong et al.): convolution with the α-personalized-PageRank
/// symmetric digraph operator (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2})/2.
class DiGcnModel : public Model {
 public:
  DiGcnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "DiGCN"; }

 private:
  ag::Variable features_;
  SparseMatrix op_;
  std::vector<nn::Linear> layers_;
  float dropout_;
};

/// MagNet (Zhang et al.): spectral convolution with the q-magnetic
/// Laplacian — a complex Hermitian operator realized as paired real/imag
/// CSR matrices and a two-channel complex signal path.
class MagNetModel : public Model {
 public:
  MagNetModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "MagNet"; }

 private:
  ag::Variable features_;
  SparseMatrix h_real_;
  SparseMatrix h_imag_;
  // Complex linear layers: separate real/imag weight pairs per layer.
  std::vector<nn::Linear> real_layers_;
  std::vector<nn::Linear> imag_layers_;
  nn::Linear unwind_;  // concat(real, imag) -> classes
  float dropout_;
};

/// NSTE (Kollias et al.): 1-WL-inspired stacked layers with independent
/// self/in/out transforms and learnable in/out mixing scalars.
class NsteModel : public Model {
 public:
  NsteModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "NSTE"; }

 private:
  ag::Variable features_;
  SparseMatrix op_out_;
  SparseMatrix op_in_;
  struct Layer {
    nn::Linear self;
    nn::Linear out;
    nn::Linear in;
  };
  std::vector<Layer> layers_;
  std::vector<ag::Variable> mix_out_;  // one scalar per layer
  std::vector<ag::Variable> mix_in_;
  nn::Linear classifier_;
  float dropout_;
};

/// DIMPA (He et al.): K-hop weighted in/out aggregations s = Σ_k w_k Āᵏ H
/// with learnable hop weights, combined by concatenation.
class DimpaModel : public Model {
 public:
  DimpaModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "DIMPA"; }

 private:
  ag::Variable features_;
  SparseMatrix op_out_;
  SparseMatrix op_in_;
  nn::Mlp encoder_;
  std::vector<ag::Variable> weights_out_;  // K+1 scalars
  std::vector<ag::Variable> weights_in_;
  nn::Linear classifier_;
  int steps_;
  float dropout_;
};

/// Dir-GNN (Rossi et al.): per-layer separate in/out propagation with
/// independent weights and jumping-knowledge concatenation.
class DirGnnModel : public Model {
 public:
  DirGnnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "DirGNN"; }

 private:
  ag::Variable features_;
  SparseMatrix op_out_;
  SparseMatrix op_in_;
  struct Layer {
    nn::Linear self;
    nn::Linear out;
    nn::Linear in;
  };
  std::vector<Layer> layers_;
  nn::Linear jk_classifier_;
  int64_t hidden_;
  float dropout_;
};

/// A2DUG (Maekawa et al.): jointly leverages aggregated features and
/// adjacency-list embeddings for both the directed and undirected views,
/// fused by a single MLP (no recursive propagation).
class A2dugModel : public Model {
 public:
  A2dugModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "A2DUG"; }

 private:
  // Precomputed aggregations: X, A X, Aᵀ X, A_u X (training-free).
  std::vector<ag::Variable> aggregated_;
  SparseMatrix adj_directed_;
  SparseMatrix adj_transposed_;
  SparseMatrix adj_undirected_;
  ag::Variable embed_directed_;
  ag::Variable embed_transposed_;
  ag::Variable embed_undirected_;
  nn::Linear input_proj_;
  nn::Mlp fuse_mlp_;
  float dropout_;
};

}  // namespace adpa

