#include "src/models/extended.h"

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

constexpr int64_t kProximityRowCap = 256;

/// Exact 2-hop neighborhood: nodes reachable in two (undirected) steps but
/// not adjacent and not the node itself — H2GCN's N̄₂.
SparseMatrix TwoHopNeighborhood(const SparseMatrix& adjacency) {
  const SparseMatrix squared =
      adjacency.MultiplySparse(adjacency, kProximityRowCap).Binarized();
  std::vector<Triplet> triplets;
  const auto& row_ptr = squared.row_ptr();
  const auto& col_idx = squared.col_idx();
  for (int64_t u = 0; u < squared.rows(); ++u) {
    for (int64_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
      const int64_t v = col_idx[p];
      if (v != u && adjacency.At(u, v) == 0.0f) {
        triplets.push_back({u, v, 1.0f});
      }
    }
  }
  return SparseMatrix::FromTriplets(squared.rows(), squared.cols(),
                                    std::move(triplets));
}

}  // namespace

// ----------------------------------------------------------------- H2GCN --

H2GcnModel::H2GcnModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : features_(ag::Constant(dataset.features)),
      rounds_(std::max(1, std::min(config.propagation_steps, 3))),
      dropout_(config.dropout) {
  // H2GCN uses the symmetrized topology with ego/neighbor separation
  // (no self loops in the propagation operators).
  const SparseMatrix a = dataset.graph.AdjacencyMatrix();
  const SparseMatrix sym = a.AddSparse(a.Transposed()).Binarized();
  hop1_ = NormalizeSymmetric(sym);
  hop2_ = NormalizeSymmetric(TwoHopNeighborhood(sym));
  embed_ = nn::Linear(dataset.feature_dim(), config.hidden, rng);
  // Jump connection over h0 plus 2 blocks per round.
  const int64_t final_dim = config.hidden * (1 + 2 * rounds_);
  classifier_ = nn::Linear(final_dim, dataset.num_classes, rng);
}

ag::Variable H2GcnModel::Forward(bool training, Rng* rng) {
  ag::Variable h0 = ag::Relu(embed_.Forward(
      ag::Dropout(features_, dropout_, training, rng)));
  std::vector<ag::Variable> jumps = {h0};
  ag::Variable current = h0;
  for (int round = 0; round < rounds_; ++round) {
    ag::Variable n1 = ag::SpMM(hop1_, current);
    ag::Variable n2 = ag::SpMM(hop2_, current);
    jumps.push_back(n1);
    jumps.push_back(n2);
    // Recurrent state: the sum keeps width constant across rounds (the
    // original's growing concatenation is preserved through `jumps`).
    current = ag::Add(n1, n2);
  }
  ag::Variable jumped = ag::ConcatCols(jumps);
  jumped = ag::Dropout(jumped, dropout_, training, rng);
  return classifier_.Forward(jumped);
}

std::vector<ag::Variable> H2GcnModel::Parameters() const {
  std::vector<ag::Variable> params = embed_.Parameters();
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

// ----------------------------------------------------------------- APPNP --

AppnpModel::AppnpModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_(NormalizeSymmetric(
          AddSelfLoops(dataset.graph.AdjacencyMatrix()))),
      encoder_(dataset.feature_dim(), config.hidden, dataset.num_classes,
               /*num_layers=*/2, rng, config.dropout),
      steps_(std::max(1, config.propagation_steps)),
      alpha_(config.alpha) {}

ag::Variable AppnpModel::Forward(bool training, Rng* rng) {
  ag::Variable h = encoder_.Forward(features_, training, rng);
  ag::Variable z = h;
  for (int k = 0; k < steps_; ++k) {
    z = ag::Add(ag::Scale(ag::SpMM(op_, z), 1.0f - alpha_),
                ag::Scale(h, alpha_));
  }
  return z;
}

std::vector<ag::Variable> AppnpModel::Parameters() const {
  return encoder_.Parameters();
}

// ------------------------------------------------------------- GraphSAGE --

GraphSageModel::GraphSageModel(const Dataset& dataset,
                               const ModelConfig& config, Rng* rng)
    : features_(ag::Constant(dataset.features)),
      mean_op_(NormalizeRow(dataset.graph.AdjacencyMatrix())),
      dropout_(config.dropout) {
  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    layers_.push_back({nn::Linear(in_dim, config.hidden, rng),
                       nn::Linear(in_dim, config.hidden, rng, false)});
    in_dim = config.hidden;
  }
  classifier_ = nn::Linear(config.hidden, dataset.num_classes, rng);
}

ag::Variable GraphSageModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  for (const Layer& layer : layers_) {
    h = ag::Dropout(h, dropout_, training, rng);
    h = ag::Relu(ag::Add(layer.self.Forward(h),
                         layer.neighbor.Forward(ag::SpMM(mean_op_, h))));
  }
  return classifier_.Forward(h);
}

std::vector<ag::Variable> GraphSageModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const Layer& layer : layers_) {
    for (const auto& p : layer.self.Parameters()) params.push_back(p);
    for (const auto& p : layer.neighbor.Parameters()) params.push_back(p);
  }
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

const std::vector<std::string>& ExtendedModelNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"H2GCN", "APPNP", "GraphSAGE"};
  return names;
}

}  // namespace adpa
