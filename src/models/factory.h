#pragma once
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/graph/patterns.h"
#include "src/models/model.h"

namespace adpa {

/// Instantiates a model by its paper name ("GCN", "MagNet", "ADPA", ...).
/// The dataset is consumed as given: callers choose the U-/D- input by
/// passing the natural digraph or `dataset.WithUndirectedGraph()`.
Result<ModelPtr> CreateModel(const std::string& name, const Dataset& dataset,
                             const ModelConfig& config, Rng* rng);

/// Checkpoint-restore variant: for ADPA, propagate with exactly `patterns`
/// (a checkpoint's recorded DP set) instead of re-deriving one from the
/// dataset — correlation-selected subsets depend on the training split,
/// which the dataset content hash does not cover, so re-derivation can
/// silently bind restored weights to a different pattern subset. Models
/// without a pattern set — and an empty `patterns` — fall back to
/// CreateModel.
Result<ModelPtr> CreateModelWithPatterns(const std::string& name,
                                         const Dataset& dataset,
                                         const ModelConfig& config,
                                         std::vector<DirectedPattern> patterns,
                                         Rng* rng);

/// The 8 undirected baselines of the paper's tables (Sec. V-A), in table
/// order: GCN, SGC, LINKX, BerNet, JacobiConv, GPRGNN, GloGNN, AERO-GNN.
const std::vector<std::string>& UndirectedModelNames();

/// The 7 directed baselines: DGCN, DiGCN, MagNet, NSTE, DIMPA, DirGNN,
/// A2DUG.
const std::vector<std::string>& DirectedModelNames();

/// All 16 models (undirected + directed + ADPA), Table III/IV row order.
const std::vector<std::string>& AllModelNames();

/// True for models that exploit edge direction (Table III/IV's lower
/// block plus ADPA). Extension models (H2GCN, APPNP, GraphSAGE — see
/// `src/models/extended.h`) are undirected and resolvable by CreateModel
/// but not part of the paper's 16-row tables.
bool IsDirectedModel(const std::string& name);

}  // namespace adpa

