#pragma once
#include <string>
#include <vector>

#include "src/graph/sparse_matrix.h"
#include "src/models/model.h"
#include "src/tensor/nn.h"

namespace adpa {

// Extension baselines beyond the paper's Table III/IV panel — the methods
// its background section builds on (Sec. II-B). Available through the
// factory under their own names and through ExtendedModelNames().

/// H2GCN (Zhu et al.): ego/neighbor separation, higher-order (2-hop)
/// neighborhoods, and intermediate-representation combination — the
/// heterophily design trio. Decoupled variant: rounds of
/// h_k = [Ā₁ h_{k-1} ‖ Ā₂ h_{k-1}] with a final jump concatenation.
class H2GcnModel : public Model {
 public:
  H2GcnModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "H2GCN"; }

 private:
  ag::Variable features_;
  SparseMatrix hop1_;  // sym-normalized 1-hop, no self loops
  SparseMatrix hop2_;  // sym-normalized exact-2-hop neighborhood
  nn::Linear embed_;
  nn::Linear classifier_;
  int rounds_;
  float dropout_;
};

/// APPNP (Klicpera et al.): predict-then-propagate — an MLP followed by
/// K personalized-PageRank iterations Z ← (1-α) Ã Z + α H.
class AppnpModel : public Model {
 public:
  AppnpModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "APPNP"; }

 private:
  ag::Variable features_;
  SparseMatrix op_;
  nn::Mlp encoder_;
  int steps_;
  float alpha_;
};

/// GraphSAGE (Hamilton et al.), mean aggregator, full-batch:
/// h' = relu(W_self h + W_neigh · mean-aggregate(h)).
class GraphSageModel : public Model {
 public:
  GraphSageModel(const Dataset& dataset, const ModelConfig& config, Rng* rng);
  ag::Variable Forward(bool training, Rng* rng) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "GraphSAGE"; }

 private:
  ag::Variable features_;
  SparseMatrix mean_op_;  // row-normalized adjacency (no self loops)
  struct Layer {
    nn::Linear self;
    nn::Linear neighbor;
  };
  std::vector<Layer> layers_;
  nn::Linear classifier_;
  float dropout_;
};

/// Names of the extension models (not part of the paper's 16-row tables).
const std::vector<std::string>& ExtendedModelNames();

}  // namespace adpa

