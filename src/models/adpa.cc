#include "src/models/adpa.h"

#include "src/amud/amud.h"
#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

std::vector<DirectedPattern> ChoosePatterns(const Dataset& dataset,
                                            const ModelConfig& config) {
  const int max_order = std::max(1, config.pattern_order);
  if (config.select_patterns <= 0 || dataset.train_idx.size() < 2) {
    return EnumeratePatterns(max_order);
  }
  // Sec. IV-B: rank DPs by their correlation with the labeled subset and
  // keep the strongest. Falls back to the full enumeration on failure.
  Result<std::vector<DirectedPattern>> selected =
      SelectPatternsByCorrelation(dataset.graph, dataset.labels,
                                  dataset.train_idx, max_order,
                                  config.select_patterns);
  return selected.ok() ? *selected : EnumeratePatterns(max_order);
}

}  // namespace

AdpaModel::AdpaModel(const Dataset& dataset, const ModelConfig& config,
                     Rng* rng)
    : AdpaModel(dataset, config, ChoosePatterns(dataset, config), rng) {}

AdpaModel::AdpaModel(const Dataset& dataset, const ModelConfig& config,
                     std::vector<DirectedPattern> patterns, Rng* rng)
    : config_(config),
      patterns_(std::move(patterns)),
      steps_(std::max(1, config.propagation_steps)) {
  const int64_t f = dataset.feature_dim();
  const int64_t n = dataset.num_nodes();
  const int64_t k = static_cast<int64_t>(patterns_.size());

  // --- Stage 1: training-free K-step DP-guided propagation (Eq. 9). ---
  PatternSet pattern_set(dataset.graph.AdjacencyMatrix(), config.conv_r,
                         config.propagation_self_loops);
  // Iterated per-pattern states X_g^(l) = G_g X_g^(l-1).
  std::vector<Matrix> state(k, dataset.features);
  propagated_.resize(steps_);
  for (int l = 0; l < steps_; ++l) {
    std::vector<ag::Variable> blocks;
    if (config_.initial_residual) {
      blocks.push_back(ag::Constant(dataset.features));
    }
    pattern_set.ApplyStep(patterns_, &state);
    for (int64_t g = 0; g < k; ++g) {
      blocks.push_back(ag::Constant(state[g]));
    }
    propagated_[l] = std::move(blocks);
  }
  const int64_t blocks_per_step =
      k + (config_.initial_residual ? 1 : 0);

  // --- Stage 2 parameters: node-wise DP attention (Eq. 10). ---
  if (config_.use_dp_attention) {
    switch (config_.dp_attention) {
      case DpAttention::kOriginal:
        dp_weights_ = ag::Parameter(Matrix(n, blocks_per_step));
        break;
      case DpAttention::kGate:
        for (int64_t g = 0; g < blocks_per_step; ++g) {
          gate_layers_.emplace_back(f, 1, rng);
        }
        break;
      case DpAttention::kRecursive:
        for (int64_t g = 0; g < blocks_per_step; ++g) {
          recursive_layers_.emplace_back(2 * f, 1, rng);
        }
        break;
      case DpAttention::kJk:
        break;  // fusion layer only
    }
  }
  if (config_.use_dp_attention && config_.dp_attention == DpAttention::kJk) {
    jk_fuse_ = nn::Linear(blocks_per_step * f, config.hidden, rng);
  } else if (config_.dp_attention == DpAttention::kRecursive &&
             config_.use_dp_attention) {
    // Recursive attention accumulates into a single f-wide state.
    jk_fuse_ = nn::Linear(f, config.hidden, rng);
  } else {
    dp_fuse_ = nn::Mlp(blocks_per_step * f, config.hidden, config.hidden,
                       /*num_layers=*/2, rng, config.dropout);
  }

  // --- Stage 3 parameters: node-wise hop attention (Eq. 11). ---
  if (config_.use_hop_attention) {
    hop_scorer_ = nn::Linear(steps_ * config.hidden, steps_, rng);
  }
  classifier_ = nn::Mlp(config.hidden, config.hidden, dataset.num_classes,
                        std::max(1, config.num_layers - 1), rng,
                        config.dropout);
}

ag::Variable AdpaModel::FuseStep(const std::vector<ag::Variable>& blocks,
                                 int step, bool training, Rng* rng) {
  (void)step;
  const int64_t num_blocks = static_cast<int64_t>(blocks.size());
  if (!config_.use_dp_attention) {
    // Ablation: uniform average of blocks, then the fusion MLP on the
    // (replicated) concatenation to keep parameter shapes unchanged.
    ag::Variable mean = blocks[0];
    for (int64_t g = 1; g < num_blocks; ++g) {
      mean = ag::Add(mean, blocks[g]);
    }
    mean = ag::Scale(mean, 1.0f / static_cast<float>(num_blocks));
    std::vector<ag::Variable> replicated(num_blocks, mean);
    return ag::Relu(dp_fuse_.Forward(ag::ConcatCols(replicated), training,
                                     rng));
  }
  switch (config_.dp_attention) {
    case DpAttention::kOriginal: {
      // Eq. (10): learnable per-node, per-block weights, softmax-normalized
      // across blocks, then MLP over the weighted concatenation.
      ag::Variable weights = ag::SoftmaxRows(dp_weights_);
      std::vector<ag::Variable> scaled;
      scaled.reserve(num_blocks);
      for (int64_t g = 0; g < num_blocks; ++g) {
        scaled.push_back(
            ag::ScaleRows(blocks[g], ag::SliceCols(weights, g, g + 1)));
      }
      return ag::Relu(
          dp_fuse_.Forward(ag::ConcatCols(scaled), training, rng));
    }
    case DpAttention::kGate: {
      // Per-block sigmoid gate computed from the block itself.
      std::vector<ag::Variable> scaled;
      scaled.reserve(num_blocks);
      for (int64_t g = 0; g < num_blocks; ++g) {
        ag::Variable gate = ag::Sigmoid(gate_layers_[g].Forward(blocks[g]));
        scaled.push_back(ag::ScaleRows(blocks[g], gate));
      }
      return ag::Relu(
          dp_fuse_.Forward(ag::ConcatCols(scaled), training, rng));
    }
    case DpAttention::kRecursive: {
      // GAMLP-style recursive attention: each block is gated against the
      // running accumulated representation.
      ag::Variable acc = blocks[0];
      for (int64_t g = 1; g < num_blocks; ++g) {
        ag::Variable score = ag::Sigmoid(recursive_layers_[g].Forward(
            ag::ConcatCols({blocks[g], acc})));
        acc = ag::Add(acc, ag::ScaleRows(blocks[g], score));
      }
      return ag::Relu(jk_fuse_.Forward(acc));
    }
    case DpAttention::kJk: {
      // Jumping-knowledge fusion: unweighted concatenation + linear.
      return ag::Relu(jk_fuse_.Forward(ag::ConcatCols(blocks)));
    }
  }
  ADPA_CHECK(false) << "unreachable";
  return blocks[0];
}

ag::Variable AdpaModel::Forward(bool training, Rng* rng) {
  // Stage 2: fuse the k+1 blocks of every step.
  std::vector<ag::Variable> fused;
  fused.reserve(steps_);
  for (int l = 0; l < steps_; ++l) {
    fused.push_back(FuseStep(propagated_[l], l, training, rng));
  }

  // Stage 3: node-wise hop attention across the K fused representations.
  ag::Variable combined;
  if (config_.use_hop_attention && steps_ > 1) {
    ag::Variable scores =
        ag::SoftmaxRows(hop_scorer_.Forward(ag::ConcatCols(fused)));
    for (int l = 0; l < steps_; ++l) {
      ag::Variable weighted =
          ag::ScaleRows(fused[l], ag::SliceCols(scores, l, l + 1));
      combined = l == 0 ? weighted : ag::Add(combined, weighted);
    }
  } else {
    combined = fused[0];
    for (int l = 1; l < steps_; ++l) combined = ag::Add(combined, fused[l]);
    if (steps_ > 1) {
      combined = ag::Scale(combined, 1.0f / static_cast<float>(steps_));
    }
  }

  combined = ag::Dropout(combined, config_.dropout, training, rng);
  return classifier_.Forward(combined, training, rng);
}

std::vector<ag::Variable> AdpaModel::Parameters() const {
  std::vector<ag::Variable> params;
  if (dp_weights_.defined()) params.push_back(dp_weights_);
  for (const auto& layer : gate_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& layer : recursive_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  if (dp_fuse_.num_layers() > 0) {
    for (const auto& p : dp_fuse_.Parameters()) params.push_back(p);
  }
  if (jk_fuse_.in_features() > 0) {
    for (const auto& p : jk_fuse_.Parameters()) params.push_back(p);
  }
  if (config_.use_hop_attention && hop_scorer_.in_features() > 0) {
    for (const auto& p : hop_scorer_.Parameters()) params.push_back(p);
  }
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace adpa
