#include "src/models/directed.h"

#include <cmath>
#include <numbers>

#include "src/core/logging.h"
#include "src/core/random.h"

namespace adpa {
namespace {

/// Per-row fill-in cap for materialized second-order proximities.
constexpr int64_t kProximityRowCap = 256;

SparseMatrix NormalizedOut(const Dataset& dataset, double conv_r) {
  return NormalizeConvolution(AddSelfLoops(dataset.graph.AdjacencyMatrix()),
                              conv_r);
}

SparseMatrix NormalizedIn(const Dataset& dataset, double conv_r) {
  return NormalizeConvolution(
      AddSelfLoops(dataset.graph.AdjacencyMatrix().Transposed()), conv_r);
}

}  // namespace

// ------------------------------------------------------------------ DGCN --

DgcnModel::DgcnModel(const Dataset& dataset, const ModelConfig& config,
                     Rng* rng)
    : features_(ag::Constant(dataset.features)), dropout_(config.dropout) {
  const SparseMatrix a = dataset.graph.AdjacencyMatrix();
  const SparseMatrix at = a.Transposed();
  op_sym_ = NormalizeSymmetric(AddSelfLoops(a.AddSparse(at).Binarized()));
  op_out_proximity_ = NormalizeSymmetric(
      AddSelfLoops(a.MultiplySparse(at, kProximityRowCap).Binarized()));
  op_in_proximity_ = NormalizeSymmetric(
      AddSelfLoops(at.MultiplySparse(a, kProximityRowCap).Binarized()));

  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    const int64_t out_dim =
        i + 1 == depth ? dataset.num_classes : config.hidden;
    // Each layer fuses the three proximities by concatenation: 3*in -> out.
    fuse_layers_.emplace_back(3 * in_dim, out_dim, rng);
    in_dim = out_dim;
  }
}

ag::Variable DgcnModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  for (size_t i = 0; i < fuse_layers_.size(); ++i) {
    h = ag::Dropout(h, dropout_, training, rng);
    ag::Variable fused = ag::ConcatCols({ag::SpMM(op_sym_, h),
                                         ag::SpMM(op_out_proximity_, h),
                                         ag::SpMM(op_in_proximity_, h)});
    h = fuse_layers_[i].Forward(fused);
    if (i + 1 < fuse_layers_.size()) h = ag::Relu(h);
  }
  return h;
}

std::vector<ag::Variable> DgcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const nn::Linear& layer : fuse_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ----------------------------------------------------------------- DiGCN --

DiGcnModel::DiGcnModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : features_(ag::Constant(dataset.features)), dropout_(config.dropout) {
  // P: row-stochastic transition over Â = A + I. π: stationary distribution
  // of the α-teleport chain, estimated by power iteration.
  const SparseMatrix p =
      NormalizeRow(AddSelfLoops(dataset.graph.AdjacencyMatrix()));
  const int64_t n = p.rows();
  const float alpha = config.alpha;
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const auto& row_ptr = p.row_ptr();
  const auto& col_idx = p.col_idx();
  const auto& values = p.values();
  for (int iter = 0; iter < 64; ++iter) {
    std::fill(next.begin(), next.end(),
              static_cast<double>(alpha) / static_cast<double>(n));
    for (int64_t u = 0; u < n; ++u) {
      const double mass = (1.0 - alpha) * pi[u];
      for (int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
        next[col_idx[e]] += mass * values[e];
      }
    }
    double delta = 0.0;
    for (int64_t u = 0; u < n; ++u) delta += std::fabs(next[u] - pi[u]);
    pi.swap(next);
    if (delta < 1e-10) break;
  }
  // Symmetrized operator: (Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2.
  std::vector<Triplet> triplets;
  triplets.reserve(2 * p.nnz());
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      const int64_t v = col_idx[e];
      const double w = values[e];
      const double scale = 0.5 * std::sqrt(std::max(pi[u], 1e-12) /
                                           std::max(pi[v], 1e-12));
      triplets.push_back({u, v, static_cast<float>(scale * w)});
      triplets.push_back({v, u, static_cast<float>(scale * w)});
    }
  }
  op_ = SparseMatrix::FromTriplets(n, n, std::move(triplets));

  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    const int64_t out_dim =
        i + 1 == depth ? dataset.num_classes : config.hidden;
    layers_.emplace_back(in_dim, out_dim, rng);
    in_dim = out_dim;
  }
}

ag::Variable DiGcnModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = ag::Dropout(h, dropout_, training, rng);
    h = layers_[i].Forward(ag::SpMM(op_, h));
    if (i + 1 < layers_.size()) h = ag::Relu(h);
  }
  return h;
}

std::vector<ag::Variable> DiGcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const nn::Linear& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------- MagNet --

MagNetModel::MagNetModel(const Dataset& dataset, const ModelConfig& config,
                         Rng* rng)
    : features_(ag::Constant(dataset.features)), dropout_(config.dropout) {
  // H = Ã_s ⊙ exp(iΘ), Θ = 2πq(A - Aᵀ); Ã_s is the symmetrically
  // normalized symmetrized adjacency with self loops.
  const SparseMatrix a = dataset.graph.AdjacencyMatrix();
  const SparseMatrix at = a.Transposed();
  SparseMatrix sym = a.AddSparse(at);
  sym.ScaleInPlace(0.5f);
  const SparseMatrix a_s = NormalizeSymmetric(AddSelfLoops(sym.Binarized()));
  const double q = static_cast<double>(config.magnet_q);
  std::vector<Triplet> real_t, imag_t;
  const auto& row_ptr = a_s.row_ptr();
  const auto& col_idx = a_s.col_idx();
  const auto& values = a_s.values();
  for (int64_t u = 0; u < a_s.rows(); ++u) {
    for (int64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      const int64_t v = col_idx[e];
      const double theta = 2.0 * std::numbers::pi * q *
                           (static_cast<double>(a.At(u, v)) -
                            static_cast<double>(a.At(v, u)));
      const double w = values[e];
      real_t.push_back({u, v, static_cast<float>(w * std::cos(theta))});
      const double imag = w * std::sin(theta);
      if (imag != 0.0) {
        imag_t.push_back({u, v, static_cast<float>(imag)});
      }
    }
  }
  h_real_ = SparseMatrix::FromTriplets(a_s.rows(), a_s.cols(),
                                       std::move(real_t));
  h_imag_ = SparseMatrix::FromTriplets(a_s.rows(), a_s.cols(),
                                       std::move(imag_t));

  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    real_layers_.emplace_back(in_dim, config.hidden, rng);
    imag_layers_.emplace_back(in_dim, config.hidden, rng, /*bias=*/false);
    in_dim = config.hidden;
  }
  unwind_ = nn::Linear(2 * config.hidden, dataset.num_classes, rng);
}

ag::Variable MagNetModel::Forward(bool training, Rng* rng) {
  // Complex signal (zr, zi), starting with zi = 0.
  ag::Variable zr = features_;
  ag::Variable zi;
  for (size_t i = 0; i < real_layers_.size(); ++i) {
    zr = ag::Dropout(zr, dropout_, training, rng);
    if (zi.defined()) zi = ag::Dropout(zi, dropout_, training, rng);
    // Propagation: (Hre + iHim)(zr + izi).
    ag::Variable pr = ag::SpMM(h_real_, zr);
    ag::Variable pi_var = zi.defined()
                              ? ag::Add(ag::SpMM(h_real_, zi),
                                        ag::SpMM(h_imag_, zr))
                              : ag::SpMM(h_imag_, zr);
    if (zi.defined()) pr = ag::Sub(pr, ag::SpMM(h_imag_, zi));
    // Complex linear: (pr + i·pi)(Wr + i·Wi).
    const nn::Linear& wr = real_layers_[i];
    const nn::Linear& wi = imag_layers_[i];
    ag::Variable new_r = ag::Sub(wr.Forward(pr), wi.Forward(pi_var));
    ag::Variable new_i = ag::Add(wr.Forward(pi_var), wi.Forward(pr));
    zr = ag::Relu(new_r);
    zi = ag::Relu(new_i);
  }
  return unwind_.Forward(ag::ConcatCols({zr, zi}));
}

std::vector<ag::Variable> MagNetModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : real_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& layer : imag_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& p : unwind_.Parameters()) params.push_back(p);
  return params;
}

// ------------------------------------------------------------------ NSTE --

NsteModel::NsteModel(const Dataset& dataset, const ModelConfig& config,
                     Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_out_(NormalizedOut(dataset, config.conv_r)),
      op_in_(NormalizedIn(dataset, config.conv_r)),
      dropout_(config.dropout) {
  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    layers_.push_back({nn::Linear(in_dim, config.hidden, rng),
                       nn::Linear(in_dim, config.hidden, rng, false),
                       nn::Linear(in_dim, config.hidden, rng, false)});
    // 0.5 keeps the summed self+in+out magnitude near the single-branch
    // scale at init; 1.0 makes deep stacks prone to divergence.
    mix_out_.push_back(ag::Parameter(Matrix(1, 1, 0.5f)));
    mix_in_.push_back(ag::Parameter(Matrix(1, 1, 0.5f)));
    in_dim = config.hidden;
  }
  classifier_ = nn::Linear(config.hidden, dataset.num_classes, rng);
}

ag::Variable NsteModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = ag::Dropout(h, dropout_, training, rng);
    ag::Variable self_term = layers_[i].self.Forward(h);
    ag::Variable out_term = ag::ScaleScalar(
        layers_[i].out.Forward(ag::SpMM(op_out_, h)), mix_out_[i]);
    ag::Variable in_term = ag::ScaleScalar(
        layers_[i].in.Forward(ag::SpMM(op_in_, h)), mix_in_[i]);
    h = ag::Relu(ag::Add(ag::Add(self_term, out_term), in_term));
  }
  return classifier_.Forward(h);
}

std::vector<ag::Variable> NsteModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.self.Parameters()) params.push_back(p);
    for (const auto& p : layer.out.Parameters()) params.push_back(p);
    for (const auto& p : layer.in.Parameters()) params.push_back(p);
  }
  for (const auto& s : mix_out_) params.push_back(s);
  for (const auto& s : mix_in_) params.push_back(s);
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

// ----------------------------------------------------------------- DIMPA --

DimpaModel::DimpaModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_out_(NormalizedOut(dataset, /*conv_r=*/0.0)),  // row-stochastic
      op_in_(NormalizedIn(dataset, /*conv_r=*/0.0)),
      encoder_(dataset.feature_dim(), config.hidden, config.hidden,
               /*num_layers=*/2, rng, config.dropout),
      steps_(std::max(1, config.propagation_steps)),
      dropout_(config.dropout) {
  for (int k = 0; k <= steps_; ++k) {
    weights_out_.push_back(ag::Parameter(Matrix(1, 1, 1.0f)));
    weights_in_.push_back(ag::Parameter(Matrix(1, 1, 1.0f)));
  }
  classifier_ = nn::Linear(2 * config.hidden, dataset.num_classes, rng);
}

ag::Variable DimpaModel::Forward(bool training, Rng* rng) {
  ag::Variable h = encoder_.Forward(features_, training, rng);
  ag::Variable s_out = ag::ScaleScalar(h, weights_out_[0]);
  ag::Variable s_in = ag::ScaleScalar(h, weights_in_[0]);
  ag::Variable hop_out = h;
  ag::Variable hop_in = h;
  for (int k = 1; k <= steps_; ++k) {
    hop_out = ag::SpMM(op_out_, hop_out);
    hop_in = ag::SpMM(op_in_, hop_in);
    s_out = ag::Add(s_out, ag::ScaleScalar(hop_out, weights_out_[k]));
    s_in = ag::Add(s_in, ag::ScaleScalar(hop_in, weights_in_[k]));
  }
  ag::Variable combined = ag::ConcatCols({s_out, s_in});
  combined = ag::Dropout(combined, dropout_, training, rng);
  return classifier_.Forward(combined);
}

std::vector<ag::Variable> DimpaModel::Parameters() const {
  std::vector<ag::Variable> params = encoder_.Parameters();
  for (const auto& w : weights_out_) params.push_back(w);
  for (const auto& w : weights_in_) params.push_back(w);
  for (const auto& p : classifier_.Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------- DirGNN --

DirGnnModel::DirGnnModel(const Dataset& dataset, const ModelConfig& config,
                         Rng* rng)
    : features_(ag::Constant(dataset.features)),
      op_out_(NormalizedOut(dataset, config.conv_r)),
      op_in_(NormalizedIn(dataset, config.conv_r)),
      hidden_(config.hidden),
      dropout_(config.dropout) {
  const int depth = std::max(2, config.num_layers);
  int64_t in_dim = dataset.feature_dim();
  for (int i = 0; i < depth; ++i) {
    layers_.push_back({nn::Linear(in_dim, config.hidden, rng),
                       nn::Linear(in_dim, config.hidden, rng, false),
                       nn::Linear(in_dim, config.hidden, rng, false)});
    in_dim = config.hidden;
  }
  // Jumping knowledge over all layer outputs.
  jk_classifier_ =
      nn::Linear(depth * config.hidden, dataset.num_classes, rng);
}

ag::Variable DirGnnModel::Forward(bool training, Rng* rng) {
  ag::Variable h = features_;
  std::vector<ag::Variable> jumps;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = ag::Dropout(h, dropout_, training, rng);
    // α = 0.5 in/out mixing realized through independent weights.
    ag::Variable combined =
        ag::Add(ag::Add(layers_[i].self.Forward(h),
                        layers_[i].out.Forward(ag::SpMM(op_out_, h))),
                layers_[i].in.Forward(ag::SpMM(op_in_, h)));
    h = ag::Relu(combined);
    jumps.push_back(h);
  }
  return jk_classifier_.Forward(ag::ConcatCols(jumps));
}

std::vector<ag::Variable> DirGnnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.self.Parameters()) params.push_back(p);
    for (const auto& p : layer.out.Parameters()) params.push_back(p);
    for (const auto& p : layer.in.Parameters()) params.push_back(p);
  }
  for (const auto& p : jk_classifier_.Parameters()) params.push_back(p);
  return params;
}

// ----------------------------------------------------------------- A2DUG --

A2dugModel::A2dugModel(const Dataset& dataset, const ModelConfig& config,
                       Rng* rng)
    : dropout_(config.dropout) {
  const SparseMatrix a = dataset.graph.AdjacencyMatrix();
  adj_directed_ = a;
  adj_transposed_ = a.Transposed();
  adj_undirected_ = a.AddSparse(adj_transposed_).Binarized();
  const SparseMatrix norm_d = NormalizeRow(AddSelfLoops(adj_directed_));
  const SparseMatrix norm_t = NormalizeRow(AddSelfLoops(adj_transposed_));
  const SparseMatrix norm_u = NormalizeRow(AddSelfLoops(adj_undirected_));

  // Training-free aggregated features for every view.
  aggregated_.push_back(ag::Constant(dataset.features));
  aggregated_.push_back(ag::Constant(norm_d.Multiply(dataset.features)));
  aggregated_.push_back(ag::Constant(norm_t.Multiply(dataset.features)));
  aggregated_.push_back(ag::Constant(norm_u.Multiply(dataset.features)));

  const int64_t n = dataset.num_nodes();
  embed_directed_ =
      ag::Parameter(nn::GlorotUniform(n, config.hidden / 2, rng));
  embed_transposed_ =
      ag::Parameter(nn::GlorotUniform(n, config.hidden / 2, rng));
  embed_undirected_ =
      ag::Parameter(nn::GlorotUniform(n, config.hidden / 2, rng));

  const int64_t agg_dim = 4 * dataset.feature_dim();
  input_proj_ = nn::Linear(agg_dim, config.hidden, rng);
  fuse_mlp_ = nn::Mlp(config.hidden + 3 * (config.hidden / 2), config.hidden,
                      dataset.num_classes, std::max(2, config.num_layers),
                      rng, config.dropout);
}

ag::Variable A2dugModel::Forward(bool training, Rng* rng) {
  ag::Variable agg = ag::ConcatCols(aggregated_);
  agg = ag::Dropout(agg, dropout_, training, rng);
  ag::Variable h_agg = ag::Relu(input_proj_.Forward(agg));
  ag::Variable h_d = ag::Relu(ag::SpMM(adj_directed_, embed_directed_));
  ag::Variable h_t = ag::Relu(ag::SpMM(adj_transposed_, embed_transposed_));
  ag::Variable h_u = ag::Relu(ag::SpMM(adj_undirected_, embed_undirected_));
  ag::Variable fused = ag::ConcatCols({h_agg, h_d, h_t, h_u});
  return fuse_mlp_.Forward(fused, training, rng);
}

std::vector<ag::Variable> A2dugModel::Parameters() const {
  std::vector<ag::Variable> params = {embed_directed_, embed_transposed_,
                                      embed_undirected_};
  for (const auto& p : input_proj_.Parameters()) params.push_back(p);
  for (const auto& p : fuse_mlp_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace adpa
