#pragma once
#include <cstdint>
#include <memory>
#include <string>

#include "src/core/mutex.h"
#include "src/core/status.h"
#include "src/core/thread_annotations.h"
#include "src/serve/engine.h"

namespace adpa::serve {

/// Atomic hot checkpoint swap for live serving (DESIGN.md §14).
///
/// The registry owns the currently serving InferenceSession behind a
/// shared_ptr. Readers (the batcher pump) take a reference with Current()
/// and keep the session alive for the whole batch they are executing;
/// Reload() builds a replacement session off to the side — checkpoint read,
/// CRC check, dataset-hash validation, Eq. 9 propagation replay or cache
/// load — and only when the new session is fully constructed flips the
/// pointer under the mutex. In-flight batches keep serving from the old
/// session until their shared_ptr releases it; new batches pick up the new
/// one. A reload that fails at any stage leaves the serving pointer
/// untouched: the live session keeps answering, the error goes back to the
/// admin client as a structured reply.
///
/// Thread safety: Current()/current_path()/generation() are safe from any
/// thread. Concurrent Reload() calls are safe too — each builds its own
/// candidate and the flips serialize on the mutex (last flip wins) — but
/// the intended topology is simpler: the single-threaded network event loop
/// (src/net/server.cc) is the only caller, so admin reload requests are
/// naturally serialized in arrival order.
class SessionRegistry {
 public:
  /// `dataset` must outlive the registry. `options` applies to every load,
  /// so a propagation cache configured once keeps accelerating reloads
  /// (same dataset ⇒ same content-hash key ⇒ cache hit).
  SessionRegistry(const Dataset* dataset, EngineOptions options)
      : dataset_(dataset), options_(std::move(options)) {}

  /// The serving session; null until the first successful Reload.
  std::shared_ptr<const InferenceSession> Current() const
      ADPA_EXCLUDES(mu_);

  struct ReloadInfo {
    std::string path;
    std::string model_name;
    /// Monotone swap counter: 1 after the initial load, +1 per swap.
    int64_t generation = 0;
    bool used_propagation_cache = false;
  };

  /// Loads `path` and, on success, atomically makes it the serving
  /// session. On failure the previous session (if any) keeps serving.
  /// Failpoint `net.reload.load` fires before the checkpoint read.
  ADPA_NODISCARD Result<ReloadInfo> Reload(const std::string& path)
      ADPA_EXCLUDES(mu_);

  /// Re-reads the path of the last successful load — the SIGHUP action
  /// ("the checkpoint file was replaced on disk; pick it up").
  ADPA_NODISCARD Result<ReloadInfo> ReloadCurrent() ADPA_EXCLUDES(mu_);

  /// Path of the last successful load ("" before the first).
  std::string current_path() const ADPA_EXCLUDES(mu_);
  int64_t generation() const ADPA_EXCLUDES(mu_);

 private:
  const Dataset* const dataset_;
  const EngineOptions options_;

  mutable Mutex mu_;
  std::shared_ptr<const InferenceSession> current_ ADPA_GUARDED_BY(mu_);
  std::string path_ ADPA_GUARDED_BY(mu_);
  int64_t generation_ ADPA_GUARDED_BY(mu_) = 0;
};

}  // namespace adpa::serve
