#include "src/serve/hot_swap.h"

#include <utility>

#include "src/core/failpoint.h"
#include "src/io/checkpoint.h"

namespace adpa::serve {

std::shared_ptr<const InferenceSession> SessionRegistry::Current() const {
  MutexLock lock(&mu_);
  return current_;
}

Result<SessionRegistry::ReloadInfo> SessionRegistry::Reload(
    const std::string& path) {
  // Everything slow — disk, CRC, propagation replay — happens before the
  // lock; the critical section is just the pointer flip.
  ADPA_FAILPOINT("net.reload.load");
  Result<Checkpoint> checkpoint = TryLoadCheckpoint(path, options_.limits);
  if (!checkpoint.ok()) return checkpoint.status();
  Result<InferenceSession> session =
      InferenceSession::Create(*checkpoint, *dataset_, options_);
  if (!session.ok()) return session.status();

  ReloadInfo info;
  info.path = path;
  info.model_name = checkpoint->model_name;
  info.used_propagation_cache = session->used_propagation_cache();
  auto next =
      std::make_shared<const InferenceSession>(std::move(*session));
  {
    MutexLock lock(&mu_);
    current_ = std::move(next);
    path_ = path;
    info.generation = ++generation_;
  }
  return info;
}

Result<SessionRegistry::ReloadInfo> SessionRegistry::ReloadCurrent() {
  std::string path;
  {
    MutexLock lock(&mu_);
    path = path_;
  }
  if (path.empty()) {
    return Status::FailedPrecondition(
        "no checkpoint has been loaded yet; nothing to re-read");
  }
  return Reload(path);
}

std::string SessionRegistry::current_path() const {
  MutexLock lock(&mu_);
  return path_;
}

int64_t SessionRegistry::generation() const {
  MutexLock lock(&mu_);
  return generation_;
}

}  // namespace adpa::serve
