#include "src/serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace adpa::serve {

void ServeMetrics::RecordRequest(double latency_ms, int64_t nodes_answered,
                                 bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  if (!ok) ++errors_;
  nodes_ += static_cast<uint64_t>(nodes_answered);
  latencies_ms_.push_back(latency_ms);
}

void ServeMetrics::RecordBatch(int64_t coalesced_requests) {
  std::lock_guard<std::mutex> lock(mu_);
  ++batches_;
  batched_requests_ += static_cast<uint64_t>(coalesced_requests);
}

void ServeMetrics::RecordQueueDepth(int64_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

MetricsSnapshot ServeMetrics::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.requests = requests_;
  snapshot.errors = errors_;
  snapshot.nodes = nodes_;
  snapshot.batches = batches_;
  snapshot.max_queue_depth = max_queue_depth_;
  if (batches_ > 0) {
    snapshot.mean_batch_requests =
        static_cast<double>(batched_requests_) / static_cast<double>(batches_);
  }
  if (!latencies_ms_.empty()) {
    double total = 0.0;
    for (double v : latencies_ms_) total += v;
    snapshot.mean_latency_ms =
        total / static_cast<double>(latencies_ms_.size());
    snapshot.p50_latency_ms = Percentile(latencies_ms_, 50.0);
    snapshot.p99_latency_ms = Percentile(latencies_ms_, 99.0);
  }
  return snapshot;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: smallest value with at least p% of samples at or below it.
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace adpa::serve
