#include "src/serve/metrics.h"

#include <algorithm>
#include <cmath>

namespace adpa::serve {
namespace {

/// splitmix64: a full-period 64-bit mixer; one multiply-xor chain per draw.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void ServeMetrics::RecordRequest(double latency_ms, int64_t nodes_answered,
                                 bool ok) {
  MutexLock lock(&mu_);
  ++requests_;
  if (!ok) ++errors_;
  nodes_ += static_cast<uint64_t>(nodes_answered);
  latency_sum_ms_ += latency_ms;
  ++latency_samples_;
  if (latencies_ms_.size() < kLatencyReservoirCapacity) {
    // Bounded growth: the reservoir caps at kLatencyReservoirCapacity.
    latencies_ms_.push_back(latency_ms);  // analyze:allow(alloc): bounded reservoir
  } else {
    // Algorithm R: sample n replaces a random reservoir slot with
    // probability capacity/n, keeping every sample equally likely to stay.
    const uint64_t slot = NextRandom(&reservoir_state_) % latency_samples_;
    if (slot < kLatencyReservoirCapacity) {
      latencies_ms_[static_cast<size_t>(slot)] = latency_ms;
    }
  }
}

void ServeMetrics::RecordBatch(int64_t coalesced_requests) {
  MutexLock lock(&mu_);
  ++batches_;
  batched_requests_ += static_cast<uint64_t>(coalesced_requests);
}

void ServeMetrics::RecordQueueDepth(int64_t depth) {
  MutexLock lock(&mu_);
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

void ServeMetrics::RecordRejected() {
  MutexLock lock(&mu_);
  ++rejected_;
}

void ServeMetrics::RecordShed() {
  MutexLock lock(&mu_);
  ++shed_;
}

MetricsSnapshot ServeMetrics::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  snapshot.requests = requests_;
  snapshot.errors = errors_;
  snapshot.nodes = nodes_;
  snapshot.batches = batches_;
  snapshot.rejected = rejected_;
  snapshot.shed = shed_;
  snapshot.max_queue_depth = max_queue_depth_;
  if (batches_ > 0) {
    snapshot.mean_batch_requests =
        static_cast<double>(batched_requests_) / static_cast<double>(batches_);
  }
  if (latency_samples_ > 0) {
    snapshot.mean_latency_ms =
        latency_sum_ms_ / static_cast<double>(latency_samples_);
    snapshot.p50_latency_ms = Percentile(latencies_ms_, 50.0);
    snapshot.p99_latency_ms = Percentile(latencies_ms_, 99.0);
  }
  return snapshot;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: smallest value with at least p% of samples at or below it.
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

}  // namespace adpa::serve
