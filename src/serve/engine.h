#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/core/thread_annotations.h"
#include "src/data/dataset.h"
#include "src/io/checkpoint.h"
#include "src/tensor/matrix.h"
#include "src/tensor/workspace.h"

namespace adpa::serve {

/// Options for InferenceSession::Create.
struct EngineOptions {
  /// When non-empty, the Eq. 9 propagation precompute is read from this
  /// sidecar cache file if its content-hash key matches, and (optionally)
  /// written there after a miss. A stale or unreadable cache is a miss,
  /// never an error.
  std::string propagation_cache_path;
  bool write_cache_on_miss = true;
  CheckpointLimits limits;
};

/// No-tape ADPA inference over a loaded checkpoint.
///
/// The training path builds an autograd graph (ag::Variable nodes) on every
/// forward; serving does not need gradients, so this engine re-implements
/// the eval-mode forward directly on Matrix kernels — zero Node
/// allocations, Dropout elided (it is the identity in eval mode). Every op
/// calls the *same* kernel the corresponding ag:: op's forward calls
/// (adpa::MatMul, AddRowBroadcast, adpa::ScaleRows, …), so the logits are
/// bitwise identical to `model.Forward(/*training=*/false, …)` — a property
/// serve_test asserts for all four DP-attention variants.
///
/// Because every stage is row-wise over nodes (matmuls contract over
/// feature columns; softmax/attention are per-row), `ForwardRows` on a node
/// subset equals the corresponding rows of `ForwardAll` bit for bit, which
/// is what makes cheap micro-batched point queries possible.
class InferenceSession {
 public:
  /// Validates the checkpoint against `dataset` (content hash, shapes),
  /// replays or cache-loads the K-step DP propagation, and binds every
  /// tensor to its role (mirroring AdpaModel::Parameters() order).
  static Result<InferenceSession> Create(const Checkpoint& checkpoint,
                                         const Dataset& dataset,
                                         const EngineOptions& options = {});

  /// Logits for every node (num_nodes x num_classes).
  Matrix ForwardAll() const;

  /// Logits for the given nodes, one row per entry of `nodes` (indices may
  /// repeat). Fails on out-of-range indices. ADPA_HOT: steady-state calls
  /// must stay allocation-free (tools/analyze.py enforces this).
  ADPA_HOT Result<Matrix> ForwardRows(const std::vector<int64_t>& nodes) const;

  /// Argmax classes for the given nodes (ties break to the lowest index).
  ADPA_HOT Result<std::vector<int64_t>> Classify(
      const std::vector<int64_t>& nodes) const;

  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_classes() const { return num_classes_; }
  int steps() const { return steps_; }
  int64_t blocks_per_step() const { return blocks_per_step_; }
  /// True when the Eq. 9 precompute came from the sidecar cache.
  bool used_propagation_cache() const { return used_propagation_cache_; }

  /// True when the sidecar cache existed but was corrupt/truncated and the
  /// session degraded to recompute-and-rewrite (DESIGN.md §10). A missing
  /// file or a key mismatch is an ordinary miss, not degradation.
  bool cache_degraded() const { return cache_degraded_; }

 private:
  InferenceSession() = default;

  struct LinearParams {
    Matrix weight;  // in x out
    Matrix bias;    // 1 x out
  };

  /// Shared eval forward over borrowed block matrices; `dp_rows` is the
  /// per-node dp_weights slice for kOriginal (empty row set otherwise).
  /// Every intermediate lives in `ws` (the caller's per-thread workspace),
  /// so steady-state forwards perform zero heap allocations; helpers return
  /// pointers to workspace slots, valid until the workspace is Reset.
  Matrix ForwardBlocks(const std::vector<std::vector<const Matrix*>>& blocks,
                       const Matrix& dp_rows, Workspace* ws) const;
  Matrix* FuseStep(const std::vector<const Matrix*>& blocks,
                   const Matrix& dp_rows, Workspace* ws) const;
  Matrix* MlpForward(const std::vector<LinearParams>& layers,
                     const Matrix& input, Workspace* ws) const;

  ModelConfig config_;
  int steps_ = 0;
  int64_t blocks_per_step_ = 0;
  int64_t num_nodes_ = 0;
  int64_t num_classes_ = 0;
  bool used_propagation_cache_ = false;
  bool cache_degraded_ = false;

  /// blocks_[l][g]: block g of propagation step l (residual X^(0) first
  /// when config_.initial_residual), each num_nodes x feature_dim.
  std::vector<std::vector<Matrix>> blocks_;

  // Parameters, positionally bound from the checkpoint tensor list.
  Matrix dp_weights_;                          // kOriginal: n x B logits
  std::vector<LinearParams> gate_layers_;      // kGate
  std::vector<LinearParams> recursive_layers_; // kRecursive (index 0 unused)
  std::vector<LinearParams> dp_fuse_;          // fusion MLP (2 layers)
  LinearParams jk_fuse_;                       // kJk / kRecursive fusion
  LinearParams hop_scorer_;                    // Eq. 11 scorer
  std::vector<LinearParams> classifier_;       // head MLP
};

/// Replays the training-free Eq. 9 precompute exactly as the AdpaModel
/// constructor does: blocks[l] = [X^(0) if initial_residual] ++
/// [G_g-propagated states after l+1 steps].
std::vector<std::vector<Matrix>> ComputePropagationBlocks(
    const Dataset& dataset, const ModelConfig& config,
    const std::vector<DirectedPattern>& patterns);

}  // namespace adpa::serve
