#pragma once
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/mutex.h"
#include "src/core/status.h"
#include "src/core/thread_annotations.h"
#include "src/serve/engine.h"
#include "src/serve/metrics.h"

namespace adpa::serve {

class SessionRegistry;

/// Micro-batching request queue in front of an InferenceSession.
///
/// Concurrent clients call `Submit` (thread-safe, returns a Ticket) and
/// block on `Ticket::Wait`. A single pump thread — the caller who loops on
/// `PumpOnce` — coalesces everything pending into one `Classify` call, so
/// concurrent point queries share a single forward pass whose kernels
/// fan out across the ParallelFor worker pool. The batcher itself spawns no
/// threads (src/ bans raw std::thread); whoever owns the serving loop
/// provides the pump.
///
/// Batching never changes answers: ForwardRows is row-wise, so a node's
/// logits are bitwise identical no matter which batch it lands in.
class MicroBatcher {
 public:
  struct Options {
    /// Soft cap on nodes per coalesced forward; a single larger request
    /// still runs alone rather than being split.
    int64_t max_batch_nodes = 4096;
    /// Hard ceiling on queued requests. A Submit against a full queue is
    /// rejected with kUnavailable (counted in ServeMetrics::rejected) —
    /// bounded memory under overload, and clients get a retryable error
    /// instead of unbounded latency.
    int64_t max_queue_depth = 4096;
  };

  /// A client-side handle for one submitted request.
  class Ticket {
   public:
    /// Blocks until the pump answers; returns the predicted class per
    /// queried node, or the per-request error.
    Result<std::vector<int64_t>> Wait();

   private:
    friend class MicroBatcher;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// `session` and `metrics` must outlive the batcher; `metrics` may be
  /// null.
  MicroBatcher(const InferenceSession* session, ServeMetrics* metrics);
  MicroBatcher(const InferenceSession* session, ServeMetrics* metrics,
               Options options);

  /// Hot-swap form: each pump resolves the serving session through
  /// `registry` at batch-formation time and pins it (shared_ptr) for the
  /// whole batch — an in-flight batch finishes on the session it started
  /// with even if a reload flips the registry mid-forward. `registry` must
  /// outlive the batcher.
  MicroBatcher(const SessionRegistry& registry, ServeMetrics* metrics,
               Options options);

  /// Enqueues a request. Thread-safe. After Shutdown, tickets resolve to
  /// FailedPrecondition instead of being silently dropped; against a full
  /// queue they resolve to kUnavailable. `deadline_ms` > 0 bounds the queue
  /// wait: a request still unpumped after that long is shed with a
  /// kUnavailable error instead of being served stale (0 = no deadline).
  Ticket Submit(std::vector<int64_t> nodes, int64_t deadline_ms = 0)
      ADPA_EXCLUDES(mu_);

  /// Blocks until at least one request is pending (or shutdown), coalesces
  /// the queue into one forward, and delivers every reply. Returns false
  /// once shut down with an empty queue — the pump loop's exit condition.
  ADPA_HOT bool PumpOnce() ADPA_EXCLUDES(mu_);

  /// Wakes the pump and fails all future Submits. Idempotent.
  void Shutdown() ADPA_EXCLUDES(mu_);

  /// Requests currently waiting (diagnostics; racy by nature).
  int64_t queue_depth() const ADPA_EXCLUDES(mu_);

 private:
  struct Request {
    std::vector<int64_t> nodes;
    int64_t deadline_ms = 0;  ///< 0 = no deadline
    std::chrono::steady_clock::time_point enqueue_time;
    std::shared_ptr<Ticket::State> state;
  };

  void Deliver(Request* request, Result<std::vector<int64_t>> result)
      ADPA_EXCLUDES(mu_);

  /// Session/registry/metrics/options are set at construction and never
  /// reassigned; const-ness is what makes their lock-free reads provably
  /// safe. Exactly one of session_/registry_ is non-null.
  const InferenceSession* const session_;
  const SessionRegistry* const registry_;
  ServeMetrics* const metrics_;
  const Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Request> queue_ ADPA_GUARDED_BY(mu_);
  bool shutdown_ ADPA_GUARDED_BY(mu_) = false;
};

}  // namespace adpa::serve
