#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

namespace adpa::serve {

/// One JSON-lines inference request: {"id": 7, "nodes": [0, 12, 3]}.
struct ServeRequest {
  int64_t id = 0;
  std::vector<int64_t> nodes;
};

/// Parses exactly the serving request schema — an object with an integer
/// "id" and an integer array "nodes", in either order, nothing else.
/// Hand-rolled on purpose: no JSON dependency, hostile input comes back as
/// a Status (never a crash), and the restricted grammar keeps the parser
/// auditable. Limits: `max_nodes` bounds the array before it is built.
Result<ServeRequest> ParseRequestLine(const std::string& line,
                                      uint64_t max_nodes = 1u << 20);

/// {"id":7,"classes":[1,0,2]} — integers only, so golden-file comparisons
/// never trip over float formatting.
std::string FormatClassesReply(int64_t id, const std::vector<int64_t>& classes);

/// {"id":7,"error":"..."} with the message JSON-escaped.
std::string FormatErrorReply(int64_t id, const std::string& message);

/// Escapes backslash, double quote, and control characters (\uXXXX).
std::string EscapeJsonString(const std::string& text);

}  // namespace adpa::serve
