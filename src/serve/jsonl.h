#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

namespace adpa::serve {

/// One JSON-lines serving request. Two shapes share the schema:
///   query:  {"id": 7, "nodes": [0, 12, 3], "deadline_ms": 50}
///   admin:  {"id": 7, "reload": "/path/to/model.ckpt"}   (id optional)
struct ServeRequest {
  int64_t id = 0;
  std::vector<int64_t> nodes;
  /// Maximum queue wait the client will accept, in milliseconds; requests
  /// older than this are shed with an `overloaded` reply instead of served
  /// stale. 0 (the default, and the value when the key is absent) means no
  /// deadline.
  int64_t deadline_ms = 0;
  /// Admin hot-swap request: non-empty `reload_path` (with is_reload set)
  /// asks the server to load this checkpoint and atomically swap it in.
  /// Mutually exclusive with nodes/deadline_ms.
  bool is_reload = false;
  std::string reload_path;
};

/// Parses exactly the serving request schema — an object with an integer
/// "id", an integer array "nodes", and an optional non-negative integer
/// "deadline_ms" (or, for the admin shape, a string "reload" with an
/// optional "id"), in any order, nothing else. Hand-rolled on purpose: no
/// JSON dependency, hostile input comes back as a Status (never a crash),
/// and the restricted grammar keeps the parser auditable. Limits:
/// `max_nodes` bounds the array before it is built; the reload path is a
/// plain string with no escape processing (backslashes are rejected) capped
/// at 4096 bytes.
Result<ServeRequest> ParseRequestLine(const std::string& line,
                                      uint64_t max_nodes = 1u << 20);

/// {"id":7,"classes":[1,0,2]} — integers only, so golden-file comparisons
/// never trip over float formatting.
std::string FormatClassesReply(int64_t id, const std::vector<int64_t>& classes);

/// {"id":7,"error":"..."} with the message JSON-escaped.
std::string FormatErrorReply(int64_t id, const std::string& message);

/// {"id":7,"error":"overloaded","detail":"..."} — the structured shape
/// clients match on to retry with backoff (queue full or deadline shed).
std::string FormatOverloadedReply(int64_t id, const std::string& detail);

/// {"id":7,"reloaded":"/path","generation":2} — the admin hot-swap ack;
/// `generation` is the registry's monotone swap counter.
std::string FormatReloadReply(int64_t id, const std::string& path,
                              int64_t generation);

/// Escapes backslash, double quote, and control characters (\uXXXX).
std::string EscapeJsonString(const std::string& text);

/// One parsed reply line — the read-side mirror of the Format* functions
/// above. The soak harness (bench/soak_harness.cc) checks every byte the
/// server emits against this restricted grammar, so the grammar itself is
/// part of the serving contract: exactly one of the four shapes, keys in
/// the order the formatters emit them, nothing else.
struct ServeReply {
  enum class Kind {
    kClasses,     ///< {"id":N,"classes":[...]}
    kError,       ///< {"id":N,"error":"..."}
    kOverloaded,  ///< {"id":N,"error":"overloaded","detail":"..."}
    kReloaded,    ///< {"id":N,"reloaded":"...","generation":G}
  };
  Kind kind = Kind::kError;
  int64_t id = 0;
  std::vector<int64_t> classes;  ///< kClasses only
  std::string message;           ///< kError text / kOverloaded detail
  std::string reloaded_path;     ///< kReloaded only
  int64_t generation = 0;        ///< kReloaded only
};

/// Parses exactly the reply schema the formatters produce (fixed key
/// order, escaped strings decoded for the simple escapes EscapeJsonString
/// emits). `max_classes` bounds the array before it is built. Any
/// deviation — unknown key, reordered keys, trailing bytes, truncation —
/// is an InvalidArgument, never a crash (fuzz_jsonl drives this parser
/// alongside the request parser).
Result<ServeReply> ParseReplyLine(const std::string& line,
                                  uint64_t max_classes = 1u << 20);

}  // namespace adpa::serve
