#include "src/serve/batcher.h"

#include <utility>

#include "src/serve/hot_swap.h"

namespace adpa::serve {

struct MicroBatcher::Ticket::State {
  Mutex mu;
  CondVar cv;
  bool done ADPA_GUARDED_BY(mu) = false;
  std::optional<Result<std::vector<int64_t>>> result ADPA_GUARDED_BY(mu);
};

Result<std::vector<int64_t>> MicroBatcher::Ticket::Wait() {
  MutexLock lock(&state_->mu);
  // analyze:allow(unchecked-status): CondVar::Wait is void, name-collides with Ticket::Wait
  while (!state_->done) state_->cv.Wait(&state_->mu);
  return *state_->result;
}

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           ServeMetrics* metrics)
    : MicroBatcher(session, metrics, Options{}) {}

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           ServeMetrics* metrics, Options options)
    : session_(session),
      registry_(nullptr),
      metrics_(metrics),
      options_(options) {}

MicroBatcher::MicroBatcher(const SessionRegistry& registry,
                           ServeMetrics* metrics, Options options)
    : session_(nullptr),
      registry_(&registry),
      metrics_(metrics),
      options_(options) {}

MicroBatcher::Ticket MicroBatcher::Submit(std::vector<int64_t> nodes,
                                          int64_t deadline_ms) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  Request request;
  request.nodes = std::move(nodes);
  request.deadline_ms = deadline_ms;
  // Wall-clock reads feed queue deadlines/latency metrics only, never
  // results.
  // lint:allow(deterministic-randomness)
  request.enqueue_time = std::chrono::steady_clock::now();
  request.state = ticket.state_;
  enum class Reject { kNone, kShutdown, kQueueFull };
  Reject reject = Reject::kNone;
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      reject = Reject::kShutdown;
    } else if (static_cast<int64_t>(queue_.size()) >=
               options_.max_queue_depth) {
      reject = Reject::kQueueFull;
    } else {
      queue_.push_back(std::move(request));
      if (metrics_ != nullptr) {
        metrics_->RecordQueueDepth(static_cast<int64_t>(queue_.size()));
      }
    }
  }
  switch (reject) {
    case Reject::kNone:
      cv_.NotifyOne();
      break;
    case Reject::kShutdown:
      Deliver(&request, Status::FailedPrecondition("batcher is shut down"));
      break;
    case Reject::kQueueFull:
      if (metrics_ != nullptr) metrics_->RecordRejected();
      Deliver(&request,
              Status::Unavailable(
                  "queue full (" +
                  std::to_string(options_.max_queue_depth) +
                  " requests pending); retry with backoff"));
      break;
  }
  return ticket;
}

bool MicroBatcher::PumpOnce() {
  std::vector<Request> batch;
  std::vector<Request> shed;
  {
    MutexLock lock(&mu_);
    // analyze:allow(unchecked-status): CondVar::Wait is void, name-collides with Ticket::Wait
    while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
    if (queue_.empty()) return false;  // shut down and fully drained
    // lint:allow(deterministic-randomness) — deadline check, not results
    const auto now = std::chrono::steady_clock::now();
    int64_t total_nodes = 0;
    while (!queue_.empty()) {
      Request& front = queue_.front();
      if (front.deadline_ms > 0) {
        const double waited_ms =
            std::chrono::duration<double, std::milli>(now -
                                                      front.enqueue_time)
                .count();
        if (waited_ms > static_cast<double>(front.deadline_ms)) {
          // Past its deadline: serving it now would hand the client an
          // answer it already gave up on — shed instead of serve stale.
          shed.push_back(std::move(front));  // analyze:allow(alloc): shed list is bounded by queue depth
          queue_.pop_front();
          continue;
        }
      }
      const int64_t request_nodes = static_cast<int64_t>(front.nodes.size());
      if (!batch.empty() &&
          total_nodes + request_nodes > options_.max_batch_nodes) {
        break;
      }
      total_nodes += request_nodes;
      batch.push_back(std::move(front));  // analyze:allow(alloc): batch assembly, bounded by max_batch_nodes
      queue_.pop_front();
    }
  }

  for (Request& request : shed) {
    if (metrics_ != nullptr) metrics_->RecordShed();
    Deliver(&request,
            Status::Unavailable("deadline exceeded after " +
                                std::to_string(request.deadline_ms) +  // analyze:allow(alloc): error path only
                                " ms in queue; retry with backoff"));
  }
  if (batch.empty()) return true;  // everything pending was shed

  // Resolve and pin the serving session for this whole batch: with a
  // registry, a hot checkpoint swap landing mid-forward cannot release the
  // model under us — the shared_ptr keeps the old session alive until every
  // reply of this batch is delivered.
  std::shared_ptr<const InferenceSession> pinned;
  const InferenceSession* session = session_;
  if (registry_ != nullptr) {
    pinned = registry_->Current();
    session = pinned.get();
  }
  if (session == nullptr) {
    for (Request& request : batch) {
      Deliver(&request, Status::FailedPrecondition(
                            "no model is loaded yet; reload a checkpoint"));
    }
    return true;
  }

  std::vector<int64_t> merged;
  for (const Request& request : batch) {
    merged.insert(merged.end(), request.nodes.begin(), request.nodes.end());  // analyze:allow(alloc): coalesced id list, bounded by max_batch_nodes
  }
  if (metrics_ != nullptr) {
    metrics_->RecordBatch(static_cast<int64_t>(batch.size()));
  }
  Result<std::vector<int64_t>> all = session->Classify(merged);
  size_t offset = 0;
  for (Request& request : batch) {
    if (all.ok()) {
      std::vector<int64_t> slice(
          all->begin() + static_cast<int64_t>(offset),
          all->begin() + static_cast<int64_t>(offset + request.nodes.size()));
      offset += request.nodes.size();
      Deliver(&request, std::move(slice));
    } else {
      // One malformed request must not poison its batch mates: fall back
      // to answering each request on its own so errors stay per-request.
      Deliver(&request, session->Classify(request.nodes));
    }
  }
  return true;
}

void MicroBatcher::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

int64_t MicroBatcher::queue_depth() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(queue_.size());
}

void MicroBatcher::Deliver(Request* request,
                           Result<std::vector<int64_t>> result) {
  // lint:allow(deterministic-randomness) — latency metric, not results
  const auto now = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(now - request->enqueue_time)
          .count();
  const bool ok = result.ok();
  const int64_t nodes_answered =
      ok ? static_cast<int64_t>(result->size()) : 0;
  {
    MutexLock lock(&request->state->mu);
    request->state->result = std::move(result);
    request->state->done = true;
  }
  request->state->cv.NotifyAll();
  if (metrics_ != nullptr) {
    metrics_->RecordRequest(latency_ms, nodes_answered, ok);
  }
}

}  // namespace adpa::serve
