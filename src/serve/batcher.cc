#include "src/serve/batcher.h"

#include <utility>

namespace adpa::serve {

struct MicroBatcher::Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<std::vector<int64_t>>> result;
};

Result<std::vector<int64_t>> MicroBatcher::Ticket::Wait() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return *state_->result;
}

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           ServeMetrics* metrics)
    : MicroBatcher(session, metrics, Options{}) {}

MicroBatcher::MicroBatcher(const InferenceSession* session,
                           ServeMetrics* metrics, Options options)
    : session_(session), metrics_(metrics), options_(options) {}

MicroBatcher::Ticket MicroBatcher::Submit(std::vector<int64_t> nodes) {
  Ticket ticket;
  ticket.state_ = std::make_shared<Ticket::State>();
  Request request;
  request.nodes = std::move(nodes);
  // Wall-clock read is for queue-latency metrics only, never results.
  // lint:allow(deterministic-randomness)
  request.enqueue_time = std::chrono::steady_clock::now();
  request.state = ticket.state_;
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      rejected = true;
    } else {
      queue_.push_back(std::move(request));
      if (metrics_ != nullptr) {
        metrics_->RecordQueueDepth(static_cast<int64_t>(queue_.size()));
      }
    }
  }
  if (rejected) {
    Deliver(&request,
            Status::FailedPrecondition("batcher is shut down"));
  } else {
    cv_.notify_one();
  }
  return ticket;
}

bool MicroBatcher::PumpOnce() {
  std::vector<Request> batch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // shut down and fully drained
    int64_t total_nodes = 0;
    while (!queue_.empty()) {
      const int64_t request_nodes =
          static_cast<int64_t>(queue_.front().nodes.size());
      if (!batch.empty() &&
          total_nodes + request_nodes > options_.max_batch_nodes) {
        break;
      }
      total_nodes += request_nodes;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }

  std::vector<int64_t> merged;
  for (const Request& request : batch) {
    merged.insert(merged.end(), request.nodes.begin(), request.nodes.end());
  }
  if (metrics_ != nullptr) {
    metrics_->RecordBatch(static_cast<int64_t>(batch.size()));
  }
  Result<std::vector<int64_t>> all = session_->Classify(merged);
  size_t offset = 0;
  for (Request& request : batch) {
    if (all.ok()) {
      std::vector<int64_t> slice(
          all->begin() + static_cast<int64_t>(offset),
          all->begin() + static_cast<int64_t>(offset + request.nodes.size()));
      offset += request.nodes.size();
      Deliver(&request, std::move(slice));
    } else {
      // One malformed request must not poison its batch mates: fall back
      // to answering each request on its own so errors stay per-request.
      Deliver(&request, session_->Classify(request.nodes));
    }
  }
  return true;
}

void MicroBatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

int64_t MicroBatcher::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

void MicroBatcher::Deliver(Request* request,
                           Result<std::vector<int64_t>> result) {
  // lint:allow(deterministic-randomness) — latency metric, not results
  const auto now = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(now - request->enqueue_time)
          .count();
  const bool ok = result.ok();
  const int64_t nodes_answered =
      ok ? static_cast<int64_t>(result->size()) : 0;
  {
    std::lock_guard<std::mutex> lock(request->state->mu);
    request->state->result = std::move(result);
    request->state->done = true;
  }
  request->state->cv.notify_all();
  if (metrics_ != nullptr) {
    metrics_->RecordRequest(latency_ms, nodes_answered, ok);
  }
}

}  // namespace adpa::serve
