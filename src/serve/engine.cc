#include "src/serve/engine.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <utility>

#include "src/core/failpoint.h"
#include "src/core/logging.h"
#include "src/core/parallel.h"

namespace adpa::serve {
namespace {

/// Elementwise maps matching the ag::Relu / ag::Sigmoid forwards bit for
/// bit (same expressions, same ApplyFn loop).
void ReluInPlace(Matrix* m) {
  m->ApplyFn([](float v) { return v > 0.0f ? v : 0.0f; });
}
void SigmoidInPlace(Matrix* m) {
  m->ApplyFn([](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

/// Positional reader over the checkpoint tensor list with shape checking.
struct TensorCursor {
  const std::vector<NamedTensor>& tensors;
  size_t next = 0;

  Status Take(int64_t rows, int64_t cols, const char* role, Matrix* out) {
    if (next >= tensors.size()) {
      return Status::InvalidArgument(
          std::string("checkpoint is missing tensor for ") + role +
          " (parameter list too short)");
    }
    const NamedTensor& tensor = tensors[next];
    if (tensor.value.rows() != rows || tensor.value.cols() != cols) {
      return Status::InvalidArgument(
          std::string("checkpoint tensor ") + tensor.name + " bound to " +
          role + " has shape " + std::to_string(tensor.value.rows()) + "x" +
          std::to_string(tensor.value.cols()) + ", expected " +
          std::to_string(rows) + "x" + std::to_string(cols));
    }
    *out = tensor.value;
    ++next;
    return Status::OK();
  }
};

Matrix* LinearForward(const Matrix& x, const Matrix& weight,
                      const Matrix& bias, Workspace* ws) {
  // Same kernels as nn::Linear::Forward: ag::MatMul then ag::AddBias,
  // writing into a workspace slot instead of a fresh Matrix.
  Matrix* out = ws->Acquire(x.rows(), weight.cols());
  MatMulInto(x, weight, out);
  AddRowBroadcastInPlace(out, bias);
  return out;
}

/// Per-thread forward scratch. The micro-batcher pumps batches on the
/// submitting thread, so each serving thread owns one workspace plus the
/// reusable view vectors, and steady-state forwards never allocate.
struct ForwardScratch {
  Workspace ws;
  std::vector<std::vector<const Matrix*>> block_views;
  Matrix dp_rows;
  /// Reused view lists for FuseStep / ForwardBlocks so steady-state
  /// forwards build their per-step pointer lists without reallocating.
  std::vector<const Matrix*> fuse_views;
  std::vector<const Matrix*> fused_steps;
};

ForwardScratch& Scratch() {
  thread_local ForwardScratch scratch;
  return scratch;
}

bool BlocksShapedLike(const std::vector<std::vector<Matrix>>& blocks,
                      int steps, int64_t per_step, int64_t rows,
                      int64_t cols) {
  if (static_cast<int64_t>(blocks.size()) != steps) return false;
  for (const auto& step_blocks : blocks) {
    if (static_cast<int64_t>(step_blocks.size()) != per_step) return false;
    for (const Matrix& block : step_blocks) {
      if (block.rows() != rows || block.cols() != cols) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<std::vector<Matrix>> ComputePropagationBlocks(
    const Dataset& dataset, const ModelConfig& config,
    const std::vector<DirectedPattern>& patterns) {
  // Mirrors the AdpaModel constructor's Eq. 9 loop exactly: iterated
  // per-pattern states advanced one application per step.
  const int steps = std::max(1, config.propagation_steps);
  const int64_t k = static_cast<int64_t>(patterns.size());
  PatternSet pattern_set(dataset.graph.AdjacencyMatrix(), config.conv_r,
                         config.propagation_self_loops);
  std::vector<Matrix> state(k, dataset.features);
  std::vector<std::vector<Matrix>> blocks(steps);
  for (int l = 0; l < steps; ++l) {
    if (config.initial_residual) blocks[l].push_back(dataset.features);
    pattern_set.ApplyStep(patterns, &state);
    for (int64_t g = 0; g < k; ++g) blocks[l].push_back(state[g]);
  }
  return blocks;
}

Result<InferenceSession> InferenceSession::Create(
    const Checkpoint& checkpoint, const Dataset& dataset,
    const EngineOptions& options) {
  const ModelConfig& config = checkpoint.model_config;
  if (checkpoint.patterns.empty()) {
    return Status::InvalidArgument(
        "checkpoint records no DP patterns; serving supports ADPA "
        "checkpoints only");
  }
  if (checkpoint.dataset_hash != 0 &&
      checkpoint.dataset_hash != DatasetContentHash(dataset)) {
    return Status::FailedPrecondition(
        "dataset content hash does not match the checkpoint (graph, "
        "features, or labels changed since training)");
  }
  const int64_t n = dataset.num_nodes();
  const int64_t f = dataset.feature_dim();
  const int64_t num_classes = dataset.num_classes;
  if (n <= 0 || f <= 0 || num_classes <= 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  if (config.hidden <= 0) {
    return Status::InvalidArgument("checkpoint has non-positive hidden dim");
  }

  InferenceSession session;
  session.config_ = config;
  session.steps_ = std::max(1, config.propagation_steps);
  session.num_nodes_ = n;
  session.num_classes_ = num_classes;
  const int64_t k = static_cast<int64_t>(checkpoint.patterns.size());
  const int64_t B = k + (config.initial_residual ? 1 : 0);
  session.blocks_per_step_ = B;

  // --- Eq. 9 precompute: sidecar cache hit, else replay (and refresh). ---
  // Graceful degradation is the contract here: a corrupt, truncated, or
  // unreadable cache must never fail startup — the session recomputes and
  // rewrites the sidecar, paying one slow start instead of an outage.
  const PropagationCacheKey key =
      MakePropagationCacheKey(dataset, config, checkpoint.patterns);
  if (!options.propagation_cache_path.empty()) {
    Status injected = ADPA_FAILPOINT_STATUS("serve.cache.load");
    Result<PropagationCache> cached =
        injected.ok() ? TryLoadPropagationCache(
                            options.propagation_cache_path, options.limits)
                      : Result<PropagationCache>(std::move(injected));
    if (cached.ok() && cached->key == key &&
        BlocksShapedLike(cached->blocks, session.steps_, B, n, f)) {
      session.blocks_ = std::move(cached->blocks);
      session.used_propagation_cache_ = true;
    } else if (!cached.ok() &&
               cached.status().code() != StatusCode::kNotFound) {
      session.cache_degraded_ = true;
      std::cerr << "warning: propagation cache "
                << options.propagation_cache_path << " is unusable ("
                << cached.status().ToString()
                << "); recomputing and rewriting it\n";
    }
  }
  if (!session.used_propagation_cache_) {
    session.blocks_ =
        ComputePropagationBlocks(dataset, config, checkpoint.patterns);
    if (!options.propagation_cache_path.empty() &&
        options.write_cache_on_miss) {
      PropagationCache cache;
      cache.key = key;
      cache.blocks = session.blocks_;
      // Best effort: a failed cache write only costs the next startup. The
      // atomic rewrite also heals the corrupt-sidecar case above.
      Status cache_write = ADPA_FAILPOINT_STATUS("serve.cache.write");
      if (cache_write.ok()) {
        cache_write =
            SavePropagationCache(cache, options.propagation_cache_path);
      }
      if (!cache_write.ok()) {
        std::cerr << "warning: propagation cache write failed ("
                  << cache_write.ToString() << "); serving uncached\n";
      }
    }
  }

  // --- Bind tensors positionally, mirroring AdpaModel::Parameters(). ---
  TensorCursor cursor{checkpoint.tensors};
  const int64_t h = config.hidden;
  if (config.use_dp_attention) {
    switch (config.dp_attention) {
      case DpAttention::kOriginal:
        ADPA_RETURN_IF_ERROR(
            cursor.Take(n, B, "dp_weights", &session.dp_weights_));
        break;
      case DpAttention::kGate:
        session.gate_layers_.resize(B);
        for (int64_t g = 0; g < B; ++g) {
          ADPA_RETURN_IF_ERROR(cursor.Take(
              f, 1, "gate weight", &session.gate_layers_[g].weight));
          ADPA_RETURN_IF_ERROR(
              cursor.Take(1, 1, "gate bias", &session.gate_layers_[g].bias));
        }
        break;
      case DpAttention::kRecursive:
        session.recursive_layers_.resize(B);
        for (int64_t g = 0; g < B; ++g) {
          ADPA_RETURN_IF_ERROR(
              cursor.Take(2 * f, 1, "recursive weight",
                          &session.recursive_layers_[g].weight));
          ADPA_RETURN_IF_ERROR(cursor.Take(
              1, 1, "recursive bias", &session.recursive_layers_[g].bias));
        }
        break;
      case DpAttention::kJk:
        break;
    }
  }
  const bool uses_jk_fuse =
      config.use_dp_attention && (config.dp_attention == DpAttention::kJk ||
                                  config.dp_attention == DpAttention::kRecursive);
  if (!uses_jk_fuse) {
    session.dp_fuse_.resize(2);
    ADPA_RETURN_IF_ERROR(cursor.Take(B * f, h, "dp_fuse layer 0 weight",
                                     &session.dp_fuse_[0].weight));
    ADPA_RETURN_IF_ERROR(cursor.Take(1, h, "dp_fuse layer 0 bias",
                                     &session.dp_fuse_[0].bias));
    ADPA_RETURN_IF_ERROR(cursor.Take(h, h, "dp_fuse layer 1 weight",
                                     &session.dp_fuse_[1].weight));
    ADPA_RETURN_IF_ERROR(cursor.Take(1, h, "dp_fuse layer 1 bias",
                                     &session.dp_fuse_[1].bias));
  } else {
    const int64_t jk_in =
        config.dp_attention == DpAttention::kJk ? B * f : f;
    ADPA_RETURN_IF_ERROR(
        cursor.Take(jk_in, h, "jk_fuse weight", &session.jk_fuse_.weight));
    ADPA_RETURN_IF_ERROR(
        cursor.Take(1, h, "jk_fuse bias", &session.jk_fuse_.bias));
  }
  if (config.use_hop_attention) {
    ADPA_RETURN_IF_ERROR(cursor.Take(session.steps_ * h, session.steps_,
                                     "hop_scorer weight",
                                     &session.hop_scorer_.weight));
    ADPA_RETURN_IF_ERROR(cursor.Take(1, session.steps_, "hop_scorer bias",
                                     &session.hop_scorer_.bias));
  }
  const int classifier_layers = std::max(1, config.num_layers - 1);
  session.classifier_.resize(classifier_layers);
  for (int i = 0; i < classifier_layers; ++i) {
    const int64_t in = i == 0 ? h : h;
    const int64_t out = i + 1 == classifier_layers ? num_classes : h;
    ADPA_RETURN_IF_ERROR(cursor.Take(in, out, "classifier weight",
                                     &session.classifier_[i].weight));
    ADPA_RETURN_IF_ERROR(
        cursor.Take(1, out, "classifier bias", &session.classifier_[i].bias));
  }
  if (cursor.next != checkpoint.tensors.size()) {
    return Status::InvalidArgument(
        "checkpoint has " +
        std::to_string(checkpoint.tensors.size() - cursor.next) +
        " unconsumed tensors (config mismatch)");
  }
  return session;
}

Matrix* InferenceSession::MlpForward(const std::vector<LinearParams>& layers,
                                     const Matrix& input, Workspace* ws) const {
  // nn::Mlp::Forward in eval mode: activation between layers, dropout is
  // the identity, no activation after the last layer.
  Matrix* h = LinearForward(input, layers[0].weight, layers[0].bias, ws);
  for (size_t i = 1; i < layers.size(); ++i) {
    ReluInPlace(h);
    h = LinearForward(*h, layers[i].weight, layers[i].bias, ws);
  }
  return h;
}

Matrix* InferenceSession::FuseStep(const std::vector<const Matrix*>& blocks,
                                   const Matrix& dp_rows,
                                   Workspace* ws) const {
  const int64_t num_blocks = static_cast<int64_t>(blocks.size());
  const int64_t rows = blocks[0]->rows();
  const int64_t cols = blocks[0]->cols();
  Matrix* concat = ws->Acquire(rows, num_blocks * cols);
  std::vector<const Matrix*>& views = Scratch().fuse_views;
  if (!config_.use_dp_attention) {
    Matrix* mean = ws->Acquire(rows, cols);
    *mean = *blocks[0];
    for (int64_t g = 1; g < num_blocks; ++g) mean->AddInPlace(*blocks[g]);
    mean->ScaleInPlace(1.0f / static_cast<float>(num_blocks));
    views.assign(num_blocks, mean);  // analyze:allow(alloc): thread_local capacity reuse
    ConcatColsInto(views, concat);
    Matrix* fused = MlpForward(dp_fuse_, *concat, ws);
    ReluInPlace(fused);
    return fused;
  }
  switch (config_.dp_attention) {
    case DpAttention::kOriginal: {
      Matrix* weights = ws->Acquire(dp_rows.rows(), dp_rows.cols());
      SoftmaxRowsInto(dp_rows, weights);
      Matrix* column = ws->Acquire(rows, 1);
      views.clear();
      for (int64_t g = 0; g < num_blocks; ++g) {
        SliceColsInto(*weights, g, g + 1, column);
        Matrix* scaled_g = ws->Acquire(rows, cols);
        ScaleRowsInto(*blocks[g], *column, scaled_g);
        views.push_back(scaled_g);  // analyze:allow(alloc): thread_local capacity reuse
      }
      ConcatColsInto(views, concat);
      Matrix* fused = MlpForward(dp_fuse_, *concat, ws);
      ReluInPlace(fused);
      return fused;
    }
    case DpAttention::kGate: {
      views.clear();
      for (int64_t g = 0; g < num_blocks; ++g) {
        Matrix* gate = LinearForward(*blocks[g], gate_layers_[g].weight,
                                     gate_layers_[g].bias, ws);
        SigmoidInPlace(gate);
        Matrix* scaled_g = ws->Acquire(rows, cols);
        ScaleRowsInto(*blocks[g], *gate, scaled_g);
        views.push_back(scaled_g);  // analyze:allow(alloc): thread_local capacity reuse
      }
      ConcatColsInto(views, concat);
      Matrix* fused = MlpForward(dp_fuse_, *concat, ws);
      ReluInPlace(fused);
      return fused;
    }
    case DpAttention::kRecursive: {
      Matrix* acc = ws->Acquire(rows, cols);
      *acc = *blocks[0];
      Matrix* pair = ws->Acquire(rows, 2 * cols);
      Matrix* scaled = ws->Acquire(rows, cols);
      for (int64_t g = 1; g < num_blocks; ++g) {
        ConcatColsInto({blocks[g], acc}, pair);
        Matrix* score = LinearForward(*pair, recursive_layers_[g].weight,
                                      recursive_layers_[g].bias, ws);
        SigmoidInPlace(score);
        ScaleRowsInto(*blocks[g], *score, scaled);
        acc->AddInPlace(*scaled);
      }
      Matrix* fused = LinearForward(*acc, jk_fuse_.weight, jk_fuse_.bias, ws);
      ReluInPlace(fused);
      return fused;
    }
    case DpAttention::kJk: {
      ConcatColsInto(blocks, concat);
      Matrix* fused =
          LinearForward(*concat, jk_fuse_.weight, jk_fuse_.bias, ws);
      ReluInPlace(fused);
      return fused;
    }
  }
  ADPA_CHECK(false) << "unreachable";
  return concat;
}

Matrix InferenceSession::ForwardBlocks(
    const std::vector<std::vector<const Matrix*>>& blocks,
    const Matrix& dp_rows, Workspace* ws) const {
  // Per-step fused outputs live in the thread_local scratch (not a fresh
  // vector) so steady-state forwards reuse its capacity. FuseStep writes
  // only Scratch().fuse_views, never fused_steps, so the lists don't alias.
  std::vector<const Matrix*>& fused = Scratch().fused_steps;
  fused.clear();
  for (const auto& step_blocks : blocks) {
    fused.push_back(FuseStep(step_blocks, dp_rows, ws));  // analyze:allow(alloc): thread_local capacity reuse
  }

  Matrix* combined = nullptr;
  if (config_.use_hop_attention && steps_ > 1) {
    Matrix* hop_concat =
        ws->Acquire(fused[0]->rows(), steps_ * fused[0]->cols());
    ConcatColsInto(fused, hop_concat);
    Matrix* scores = LinearForward(*hop_concat, hop_scorer_.weight,
                                   hop_scorer_.bias, ws);
    Matrix* weights = ws->Acquire(scores->rows(), scores->cols());
    SoftmaxRowsInto(*scores, weights);
    Matrix* column = ws->Acquire(fused[0]->rows(), 1);
    combined = ws->Acquire(fused[0]->rows(), fused[0]->cols());
    Matrix* weighted = ws->Acquire(fused[0]->rows(), fused[0]->cols());
    for (int l = 0; l < steps_; ++l) {
      SliceColsInto(*weights, l, l + 1, column);
      if (l == 0) {
        ScaleRowsInto(*fused[l], *column, combined);
      } else {
        ScaleRowsInto(*fused[l], *column, weighted);
        combined->AddInPlace(*weighted);
      }
    }
  } else {
    combined = ws->Acquire(fused[0]->rows(), fused[0]->cols());
    *combined = *fused[0];
    for (int l = 1; l < steps_; ++l) combined->AddInPlace(*fused[l]);
    if (steps_ > 1) {
      combined->ScaleInPlace(1.0f / static_cast<float>(steps_));
    }
  }
  // Training applies Dropout here; in eval mode it is the identity. The
  // returned logits are copied out of the workspace so the caller owns them
  // past the next Reset (batch x classes — the one small copy per forward).
  return *MlpForward(classifier_, *combined, ws);
}

Matrix InferenceSession::ForwardAll() const {
  ForwardScratch& scratch = Scratch();
  scratch.ws.Reset();
  scratch.block_views.resize(blocks_.size());
  for (size_t l = 0; l < blocks_.size(); ++l) {
    scratch.block_views[l].clear();
    for (const Matrix& block : blocks_[l]) {
      scratch.block_views[l].push_back(&block);
    }
  }
  return ForwardBlocks(scratch.block_views, dp_weights_, &scratch.ws);
}

Result<Matrix> InferenceSession::ForwardRows(
    const std::vector<int64_t>& nodes) const {
  if (nodes.empty()) {
    return Status::InvalidArgument("empty node list");
  }
  for (int64_t node : nodes) {
    if (node < 0 || node >= num_nodes_) {
      // analyze:allow(alloc): error path only
      return Status::OutOfRange("node index " + std::to_string(node) +
                                " out of range [0, " +
                                std::to_string(num_nodes_) +  // analyze:allow(alloc): error path only
                                ")");
    }
  }
  // Batched serving is latency-bound and its ops are sub-millisecond:
  // fanning them out pays a cold worker wake-up per op, which measurably
  // costs more than the parallel speedup buys (BENCH_serve.json's 8-thread
  // QPS sat *below* 1-thread before this pin). Run the whole request
  // inline; results are identical by the thread-count-invariance contract.
  SerialSection serial;
  ForwardScratch& scratch = Scratch();
  scratch.ws.Reset();
  scratch.block_views.resize(blocks_.size());  // analyze:allow(alloc): thread_local capacity reuse
  for (size_t l = 0; l < blocks_.size(); ++l) {
    scratch.block_views[l].clear();
    for (const Matrix& block : blocks_[l]) {
      Matrix* gathered = scratch.ws.Acquire(
          static_cast<int64_t>(nodes.size()), block.cols());
      GatherRowsInto(block, nodes, gathered);
      scratch.block_views[l].push_back(gathered);  // analyze:allow(alloc): thread_local capacity reuse
    }
  }
  if (dp_weights_.empty()) {
    scratch.dp_rows.Resize(0, 0);
  } else {
    GatherRowsInto(dp_weights_, nodes, &scratch.dp_rows);
  }
  return ForwardBlocks(scratch.block_views, scratch.dp_rows, &scratch.ws);
}

Result<std::vector<int64_t>> InferenceSession::Classify(
    const std::vector<int64_t>& nodes) const {
  Result<Matrix> logits = ForwardRows(nodes);
  ADPA_RETURN_IF_ERROR(logits.status());
  // The one unavoidable allocation: the result the client owns.
  std::vector<int64_t> classes(nodes.size());
  for (int64_t r = 0; r < logits->rows(); ++r) {
    const float* row = logits->Row(r);
    int64_t best = 0;
    for (int64_t c = 1; c < logits->cols(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    classes[static_cast<size_t>(r)] = best;
  }
  return classes;
}

}  // namespace adpa::serve
