#include "src/serve/jsonl.h"

#include <cctype>
#include <cstdio>

namespace adpa::serve {
namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed request: " + what);
}

/// Cursor over one request line for the restricted JSON grammar.
struct Parser {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status ParseInt(int64_t* out) {
    SkipSpace();
    const size_t start = pos;
    bool negative = false;
    if (pos < text.size() && text[pos] == '-') {
      negative = true;
      ++pos;
    }
    int64_t value = 0;
    size_t digits = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (++digits > 18) {
        return Malformed("integer too large at offset " +
                         std::to_string(start));
      }
      value = value * 10 + (text[pos] - '0');
      ++pos;
    }
    if (digits == 0) {
      return Malformed("expected integer at offset " + std::to_string(start));
    }
    *out = negative ? -value : value;
    return Status::OK();
  }

  /// Keys are bare identifiers in this schema — no escapes to handle.
  Status ParseKey(std::string* out) {
    if (!Consume('"')) return Malformed("expected '\"' to open a key");
    const size_t start = pos;
    while (pos < text.size() && text[pos] != '"') ++pos;
    if (pos >= text.size()) return Malformed("unterminated key");
    *out = text.substr(start, pos - start);
    ++pos;  // closing quote
    return Status::OK();
  }

  /// Restricted string value (the reload path): no escape processing — a
  /// backslash is rejected outright, which keeps the grammar auditable and
  /// makes round-tripping trivial. Bounded so a hostile line cannot grow an
  /// arbitrarily large path string.
  Status ParseString(std::string* out, size_t max_bytes) {
    if (!Consume('"')) return Malformed("expected '\"' to open a string");
    const size_t start = pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        return Malformed("escape sequences are not supported in strings");
      }
      if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return Malformed("raw control character in string");
      }
      if (pos - start >= max_bytes) {
        return Malformed("string exceeds " + std::to_string(max_bytes) +
                         " bytes");
      }
      ++pos;
    }
    if (pos >= text.size()) return Malformed("unterminated string");
    *out = text.substr(start, pos - start);
    ++pos;  // closing quote
    return Status::OK();
  }
};

}  // namespace

Result<ServeRequest> ParseRequestLine(const std::string& line,
                                      uint64_t max_nodes) {
  Parser parser{line};
  if (!parser.Consume('{')) return Malformed("expected '{'");
  ServeRequest request;
  bool saw_id = false, saw_nodes = false, saw_deadline = false;
  bool saw_reload = false;
  while (true) {
    std::string key;
    ADPA_RETURN_IF_ERROR(parser.ParseKey(&key));
    if (!parser.Consume(':')) return Malformed("expected ':' after key");
    if (key == "id") {
      if (saw_id) return Malformed("duplicate \"id\"");
      ADPA_RETURN_IF_ERROR(parser.ParseInt(&request.id));
      saw_id = true;
    } else if (key == "nodes") {
      if (saw_nodes) return Malformed("duplicate \"nodes\"");
      if (!parser.Consume('[')) return Malformed("expected '[' for nodes");
      if (!parser.Consume(']')) {
        while (true) {
          int64_t node = 0;
          ADPA_RETURN_IF_ERROR(parser.ParseInt(&node));
          if (request.nodes.size() >= max_nodes) {
            return Malformed("nodes array exceeds limit");
          }
          request.nodes.push_back(node);
          if (parser.Consume(']')) break;
          if (!parser.Consume(',')) {
            return Malformed("expected ',' or ']' in nodes");
          }
        }
      }
      saw_nodes = true;
    } else if (key == "reload") {
      if (saw_reload) return Malformed("duplicate \"reload\"");
      ADPA_RETURN_IF_ERROR(parser.ParseString(&request.reload_path, 4096));
      if (request.reload_path.empty()) {
        return Malformed("reload path must be non-empty");
      }
      request.is_reload = true;
      saw_reload = true;
    } else if (key == "deadline_ms") {
      if (saw_deadline) return Malformed("duplicate \"deadline_ms\"");
      ADPA_RETURN_IF_ERROR(parser.ParseInt(&request.deadline_ms));
      if (request.deadline_ms < 0) {
        return Malformed("deadline_ms must be non-negative");
      }
      saw_deadline = true;
    } else {
      return Malformed("unknown key \"" + key + "\"");
    }
    if (parser.Consume('}')) break;
    if (!parser.Consume(',')) return Malformed("expected ',' or '}'");
  }
  parser.SkipSpace();
  if (parser.pos != line.size()) {
    return Malformed("trailing characters after '}'");
  }
  if (saw_reload) {
    // Admin shape: reload stands alone (id optional, defaulting to 0).
    if (saw_nodes || saw_deadline) {
      return Malformed("\"reload\" cannot be combined with a query");
    }
    return request;
  }
  if (!saw_id) return Malformed("missing \"id\"");
  if (!saw_nodes) return Malformed("missing \"nodes\"");
  return request;
}

std::string FormatClassesReply(int64_t id,
                               const std::vector<int64_t>& classes) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"classes\":[";
  for (size_t i = 0; i < classes.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(classes[i]);
  }
  out += "]}";
  return out;
}

std::string FormatErrorReply(int64_t id, const std::string& message) {
  return "{\"id\":" + std::to_string(id) + ",\"error\":\"" +
         EscapeJsonString(message) + "\"}";
}

std::string FormatOverloadedReply(int64_t id, const std::string& detail) {
  return "{\"id\":" + std::to_string(id) +
         ",\"error\":\"overloaded\",\"detail\":\"" +
         EscapeJsonString(detail) + "\"}";
}

std::string FormatReloadReply(int64_t id, const std::string& path,
                              int64_t generation) {
  return "{\"id\":" + std::to_string(id) + ",\"reloaded\":\"" +
         EscapeJsonString(path) + "\",\"generation\":" +
         std::to_string(generation) + "}";
}

namespace {

Status MalformedReply(const std::string& what) {
  return Status::InvalidArgument("malformed reply: " + what);
}

/// Byte-exact cursor over one reply line. Stricter than the request
/// parser on purpose: the formatters emit no whitespace and a fixed key
/// order, so the reader accepts exactly that and nothing else — any
/// corruption a fault injects between FormatX and the client shows up as
/// a parse failure, not a silent reinterpretation.
struct ReplyParser {
  const std::string& text;
  size_t pos = 0;

  bool Literal(const char* lit) {
    const size_t len = std::char_traits<char>::length(lit);
    if (text.compare(pos, len, lit) != 0) return false;
    pos += len;
    return true;
  }

  Status ParseInt(int64_t* out) {
    const size_t start = pos;
    bool negative = false;
    if (pos < text.size() && text[pos] == '-') {
      negative = true;
      ++pos;
    }
    int64_t value = 0;
    size_t digits = 0;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (++digits > 18) {
        return MalformedReply("integer too large at offset " +
                              std::to_string(start));
      }
      value = value * 10 + (text[pos] - '0');
      ++pos;
    }
    if (digits == 0) {
      return MalformedReply("expected integer at offset " +
                            std::to_string(start));
    }
    // std::to_string never emits leading zeros (or "-0"); a reply that
    // has them did not come from the formatters.
    const size_t first_digit = start + (negative ? 1 : 0);
    if (digits > 1 && text[first_digit] == '0') {
      return MalformedReply("leading zero at offset " +
                            std::to_string(start));
    }
    if (negative && value == 0) {
      return MalformedReply("negative zero at offset " +
                            std::to_string(start));
    }
    *out = negative ? -value : value;
    return Status::OK();
  }

  /// Decodes a string body (opening quote already consumed) accepting
  /// exactly the escapes EscapeJsonString emits.
  Status DecodeString(std::string* out, size_t max_bytes) {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return MalformedReply("raw control character in string");
      }
      if (out->size() >= max_bytes) {
        return MalformedReply("string exceeds " + std::to_string(max_bytes) +
                              " bytes");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return MalformedReply("dangling backslash");
      const char escape = text[pos++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'u': {
          if (pos + 4 > text.size()) {
            return MalformedReply("truncated \\u escape");
          }
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos + static_cast<size_t>(i)];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return MalformedReply("bad \\u escape digit");
            }
          }
          // The formatter only \u-escapes control characters.
          if (value >= 0x20) {
            return MalformedReply("\\u escape outside the control range");
          }
          pos += 4;
          out->push_back(static_cast<char>(value));
          break;
        }
        default:
          return MalformedReply(std::string("unknown escape \\") + escape);
      }
    }
    return MalformedReply("unterminated string");
  }
};

}  // namespace

Result<ServeReply> ParseReplyLine(const std::string& line,
                                  uint64_t max_classes) {
  ReplyParser parser{line};
  ServeReply reply;
  if (!parser.Literal("{\"id\":")) {
    return MalformedReply("expected {\"id\":...");
  }
  ADPA_RETURN_IF_ERROR(parser.ParseInt(&reply.id));
  if (parser.Literal(",\"classes\":[")) {
    reply.kind = ServeReply::Kind::kClasses;
    if (!parser.Literal("]")) {
      while (true) {
        int64_t value = 0;
        ADPA_RETURN_IF_ERROR(parser.ParseInt(&value));
        if (reply.classes.size() >= max_classes) {
          return MalformedReply("classes array exceeds limit");
        }
        reply.classes.push_back(value);
        if (parser.Literal("]")) break;
        if (!parser.Literal(",")) {
          return MalformedReply("expected ',' or ']' in classes");
        }
      }
    }
    if (!parser.Literal("}")) return MalformedReply("expected '}'");
  } else if (parser.Literal(",\"error\":\"")) {
    reply.kind = ServeReply::Kind::kError;
    ADPA_RETURN_IF_ERROR(parser.DecodeString(&reply.message, 1u << 16));
    if (reply.message == "overloaded" &&
        parser.Literal(",\"detail\":\"")) {
      reply.kind = ServeReply::Kind::kOverloaded;
      reply.message.clear();
      ADPA_RETURN_IF_ERROR(parser.DecodeString(&reply.message, 1u << 16));
    }
    if (!parser.Literal("}")) return MalformedReply("expected '}'");
  } else if (parser.Literal(",\"reloaded\":\"")) {
    reply.kind = ServeReply::Kind::kReloaded;
    ADPA_RETURN_IF_ERROR(parser.DecodeString(&reply.reloaded_path, 4096));
    if (!parser.Literal(",\"generation\":")) {
      return MalformedReply("expected \"generation\"");
    }
    ADPA_RETURN_IF_ERROR(parser.ParseInt(&reply.generation));
    if (reply.generation < 0) {
      return MalformedReply("generation must be non-negative");
    }
    if (!parser.Literal("}")) return MalformedReply("expected '}'");
  } else {
    return MalformedReply("expected \"classes\", \"error\", or "
                          "\"reloaded\" after the id");
  }
  if (parser.pos != line.size()) {
    return MalformedReply("trailing characters after '}'");
  }
  return reply;
}

std::string EscapeJsonString(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace adpa::serve
