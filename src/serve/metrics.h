#pragma once
#include <cstdint>
#include <mutex>
#include <vector>

namespace adpa::serve {

/// Point-in-time view of the serving counters.
struct MetricsSnapshot {
  uint64_t requests = 0;       ///< completed requests (ok or error)
  uint64_t errors = 0;         ///< requests answered with a non-OK Status
  uint64_t nodes = 0;          ///< total node queries answered
  uint64_t batches = 0;        ///< forward passes executed
  int64_t max_queue_depth = 0; ///< high-water mark of pending requests
  double mean_batch_requests = 0.0;  ///< requests coalesced per forward
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Thread-safe request/batch/queue-depth counters for the serving path.
/// Latency samples are recorded by the batcher (enqueue → reply delivery)
/// and summarized on demand; wall-clock reads stay in the batcher so this
/// class is trivially testable with synthetic samples.
class ServeMetrics {
 public:
  void RecordRequest(double latency_ms, int64_t nodes_answered, bool ok);
  void RecordBatch(int64_t coalesced_requests);
  void RecordQueueDepth(int64_t depth);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  uint64_t requests_ = 0;
  uint64_t errors_ = 0;
  uint64_t nodes_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_requests_ = 0;
  int64_t max_queue_depth_ = 0;
  std::vector<double> latencies_ms_;
};

/// Nearest-rank percentile (p in [0, 100]) of `values`; 0 when empty.
/// Deterministic: sorts a copy, no interpolation.
double Percentile(std::vector<double> values, double p);

}  // namespace adpa::serve
