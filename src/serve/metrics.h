#pragma once
#include <cstdint>
#include <vector>

#include "src/core/mutex.h"
#include "src/core/thread_annotations.h"

namespace adpa::serve {

/// Point-in-time view of the serving counters.
struct MetricsSnapshot {
  uint64_t requests = 0;       ///< completed requests (ok or error)
  uint64_t errors = 0;         ///< requests answered with a non-OK Status
  uint64_t nodes = 0;          ///< total node queries answered
  uint64_t batches = 0;        ///< forward passes executed
  uint64_t rejected = 0;       ///< requests refused at Submit (queue full)
  uint64_t shed = 0;           ///< requests dropped past their deadline
  int64_t max_queue_depth = 0; ///< high-water mark of pending requests
  double mean_batch_requests = 0.0;  ///< requests coalesced per forward
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

/// Thread-safe request/batch/queue-depth counters for the serving path.
/// Latency samples are recorded by the batcher (enqueue → reply delivery)
/// and summarized on demand; wall-clock reads stay in the batcher so this
/// class is trivially testable with synthetic samples.
///
/// Memory is bounded for long-running servers: the mean is an exact running
/// sum, while p50/p99 come from a fixed-size uniform reservoir (Vitter's
/// Algorithm R over a deterministic internal PRNG — no wall clock, no
/// global seeding), so percentiles stay representative of the whole run
/// without retaining one sample per request.
class ServeMetrics {
 public:
  void RecordRequest(double latency_ms, int64_t nodes_answered, bool ok)
      ADPA_EXCLUDES(mu_);
  void RecordBatch(int64_t coalesced_requests) ADPA_EXCLUDES(mu_);
  void RecordQueueDepth(int64_t depth) ADPA_EXCLUDES(mu_);
  /// Overload accounting: a rejection is a Submit refused on a full queue,
  /// a shed is a queued request dropped once its deadline expired. Both
  /// also surface as per-request kUnavailable errors via RecordRequest.
  void RecordRejected() ADPA_EXCLUDES(mu_);
  void RecordShed() ADPA_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const ADPA_EXCLUDES(mu_);

  /// Percentiles are exact up to this many requests, sampled beyond it.
  static constexpr size_t kLatencyReservoirCapacity = 4096;

 private:
  mutable Mutex mu_;
  uint64_t requests_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t errors_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t nodes_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t batches_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t shed_ ADPA_GUARDED_BY(mu_) = 0;
  uint64_t batched_requests_ ADPA_GUARDED_BY(mu_) = 0;
  int64_t max_queue_depth_ ADPA_GUARDED_BY(mu_) = 0;
  /// Over every sample ever recorded.
  double latency_sum_ms_ ADPA_GUARDED_BY(mu_) = 0.0;
  /// Samples offered to the reservoir.
  uint64_t latency_samples_ ADPA_GUARDED_BY(mu_) = 0;
  /// splitmix64 state for reservoir slot draws.
  uint64_t reservoir_state_ ADPA_GUARDED_BY(mu_) = 0x9e3779b97f4a7c15ull;
  /// ≤ kLatencyReservoirCapacity entries.
  std::vector<double> latencies_ms_ ADPA_GUARDED_BY(mu_);
};

/// Nearest-rank percentile (p in [0, 100]) of `values`; 0 when empty.
/// Deterministic: sorts a copy, no interpolation.
double Percentile(std::vector<double> values, double p);

}  // namespace adpa::serve
