#ifndef ADPA_CORE_LOGGING_H_
#define ADPA_CORE_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace adpa {
namespace internal_logging {

/// Terminates the process after printing `message` with source location.
/// Used by the ADPA_CHECK family for internal invariant violations; API-level
/// misuse is reported through Status instead.
[[noreturn]] void FatalError(const char* file, int line,
                             const std::string& message);

/// Stream-collecting helper so CHECK macros can use `<<` syntax.
class FatalMessageStream {
 public:
  FatalMessageStream(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalMessageStream() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  FatalMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace adpa

/// Internal invariant check: aborts with a message when `condition` is false.
/// Reserve for programmer errors; recoverable conditions return Status.
#define ADPA_CHECK(condition)                                       \
  if (!(condition))                                                 \
  ::adpa::internal_logging::FatalMessageStream(__FILE__, __LINE__)  \
      << "Check failed: " #condition " "

#define ADPA_CHECK_EQ(a, b) ADPA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_NE(a, b) ADPA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_LT(a, b) ADPA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_LE(a, b) ADPA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_GT(a, b) ADPA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_GE(a, b) ADPA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails. For call sites where
/// failure indicates a bug rather than recoverable input.
#define ADPA_CHECK_OK(expr)                                          \
  do {                                                               \
    ::adpa::Status _adpa_st = (expr);                                \
    ADPA_CHECK(_adpa_st.ok()) << _adpa_st.ToString();                \
  } while (false)

#endif  // ADPA_CORE_LOGGING_H_
