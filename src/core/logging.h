#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace adpa {
namespace internal_logging {

/// Terminates the process after printing `message` with source location.
/// Used by the ADPA_CHECK family for internal invariant violations; API-level
/// misuse is reported through Status instead.
[[noreturn]] void FatalError(const char* file, int line,
                             const std::string& message);

/// Stream-collecting helper so CHECK macros can use `<<` syntax.
class FatalMessageStream {
 public:
  FatalMessageStream(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalMessageStream() { FatalError(file_, line_, stream_.str()); }

  template <typename T>
  FatalMessageStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace adpa

/// Internal invariant check: aborts with a message when `condition` is false.
/// Reserve for programmer errors; recoverable conditions return Status.
#define ADPA_CHECK(condition)                                       \
  if (!(condition))                                                 \
  ::adpa::internal_logging::FatalMessageStream(__FILE__, __LINE__)  \
      << "Check failed: " #condition " "

#define ADPA_CHECK_EQ(a, b) ADPA_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_NE(a, b) ADPA_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_LT(a, b) ADPA_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_LE(a, b) ADPA_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_GT(a, b) ADPA_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADPA_CHECK_GE(a, b) ADPA_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

/// Aborts if a Status-returning expression fails. For call sites where
/// failure indicates a bug rather than recoverable input.
#define ADPA_CHECK_OK(expr)                                          \
  do {                                                               \
    ::adpa::Status _adpa_st = (expr);                                \
    ADPA_CHECK(_adpa_st.ok()) << _adpa_st.ToString();                \
  } while (false)

/// Debug-only invariant checks. ADPA_DCHECK* behave exactly like their
/// ADPA_CHECK* counterparts when enabled and compile to nothing (the
/// condition is parsed but never evaluated) otherwise, so they are free to
/// sit on hot paths: per-element bounds checks, per-step shape checks, CSR
/// well-formedness sweeps.
///
/// Enabled when NDEBUG is not defined (debug builds) or when
/// ADPA_ENABLE_DCHECKS is defined (the ADPA_FORCE_DCHECKS CMake option; the
/// sanitizer presets turn it on so TSan/ASan/UBSan runs exercise every
/// invariant at full strength).
#if !defined(NDEBUG) || defined(ADPA_ENABLE_DCHECKS)
#define ADPA_DCHECK_IS_ON 1
#else
#define ADPA_DCHECK_IS_ON 0
#endif

#if ADPA_DCHECK_IS_ON
#define ADPA_DCHECK(condition) ADPA_CHECK(condition)
#define ADPA_DCHECK_EQ(a, b) ADPA_CHECK_EQ(a, b)
#define ADPA_DCHECK_NE(a, b) ADPA_CHECK_NE(a, b)
#define ADPA_DCHECK_LT(a, b) ADPA_CHECK_LT(a, b)
#define ADPA_DCHECK_LE(a, b) ADPA_CHECK_LE(a, b)
#define ADPA_DCHECK_GT(a, b) ADPA_CHECK_GT(a, b)
#define ADPA_DCHECK_GE(a, b) ADPA_CHECK_GE(a, b)
#define ADPA_DCHECK_OK(expr) ADPA_CHECK_OK(expr)
#else
// The `while (false)` keeps the condition (and any streamed message)
// compiled but dead, so disabled DCHECKs never emit unused-variable
// warnings and typos still fail to build.
#define ADPA_DCHECK(condition) \
  while (false) ADPA_CHECK(condition)
#define ADPA_DCHECK_EQ(a, b) \
  while (false) ADPA_CHECK_EQ(a, b)
#define ADPA_DCHECK_NE(a, b) \
  while (false) ADPA_CHECK_NE(a, b)
#define ADPA_DCHECK_LT(a, b) \
  while (false) ADPA_CHECK_LT(a, b)
#define ADPA_DCHECK_LE(a, b) \
  while (false) ADPA_CHECK_LE(a, b)
#define ADPA_DCHECK_GT(a, b) \
  while (false) ADPA_CHECK_GT(a, b)
#define ADPA_DCHECK_GE(a, b) \
  while (false) ADPA_CHECK_GE(a, b)
#define ADPA_DCHECK_OK(expr) \
  while (false) ADPA_CHECK_OK(expr)
#endif
