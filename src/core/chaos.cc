#include "src/core/chaos.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace adpa::failpoint {
namespace {

Status BadSpec(const std::string& what) {
  return Status::InvalidArgument("chaos spec: " + what +
                                 " (want <seed>:<intensity>[:<prefix>,...])");
}

/// splitmix64 (Steele et al. 2014) — the same generator core/random.h uses
/// to expand seeds; duplicated here so a schedule is a pure function of the
/// spec with no coupling to Rng's stream layout.
uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits of one draw.
double UnitDraw(uint64_t* state) {
  return static_cast<double>(SplitMix64Next(state) >> 11) * 0x1.0p-53;
}

uint64_t Fnv1a64(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

bool MatchesPrefixes(const std::string& name,
                     const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  for (const auto& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

Status ValidateSpec(const ChaosSpec& spec) {
  if (!(spec.intensity > 0.0) || spec.intensity > 1.0) {
    return BadSpec("intensity must lie in (0, 1]");
  }
  const auto catalog = Catalog();
  for (const auto& prefix : spec.prefixes) {
    if (prefix.empty()) return BadSpec("empty prefix");
    bool matched = false;
    for (const auto& entry : catalog) {
      if (entry.first.rfind(prefix, 0) == 0) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return BadSpec("prefix \"" + prefix +
                     "\" matches no failpoint catalog name");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ChaosSpec> ParseChaosSpec(const std::string& text) {
  // Field 1: seed (decimal uint64).
  const size_t colon1 = text.find(':');
  if (colon1 == std::string::npos) {
    return BadSpec("missing ':' after seed");
  }
  const std::string seed_text = text.substr(0, colon1);
  if (seed_text.empty() || seed_text.size() > 20 ||
      seed_text.find_first_not_of("0123456789") != std::string::npos) {
    return BadSpec("seed must be a decimal uint64, got \"" + seed_text +
                   "\"");
  }
  errno = 0;
  ChaosSpec spec;
  spec.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return BadSpec("seed \"" + seed_text + "\" overflows uint64");
  }

  // Field 2: intensity (plain decimal, no exponents/signs/hex).
  const size_t colon2 = text.find(':', colon1 + 1);
  const std::string intensity_text =
      text.substr(colon1 + 1, (colon2 == std::string::npos
                                   ? text.size()
                                   : colon2) -
                                  colon1 - 1);
  if (intensity_text.empty() || intensity_text.size() > 10 ||
      intensity_text.find_first_not_of("0123456789.") != std::string::npos ||
      intensity_text.find('.') != intensity_text.rfind('.')) {
    return BadSpec("intensity must be a decimal in (0, 1], got \"" +
                   intensity_text + "\"");
  }
  spec.intensity = std::strtod(intensity_text.c_str(), nullptr);

  // Field 3 (optional): comma-separated catalog-name prefixes.
  if (colon2 != std::string::npos) {
    const std::string prefix_field = text.substr(colon2 + 1);
    size_t start = 0;
    while (start <= prefix_field.size()) {
      size_t end = prefix_field.find(',', start);
      if (end == std::string::npos) end = prefix_field.size();
      const std::string prefix = prefix_field.substr(start, end - start);
      start = end + 1;
      if (prefix.empty()) return BadSpec("empty prefix");
      if (prefix.find_first_not_of(
              "abcdefghijklmnopqrstuvwxyz0123456789._") !=
          std::string::npos) {
        return BadSpec("prefix \"" + prefix + "\" has characters outside "
                       "[a-z0-9._]");
      }
      spec.prefixes.push_back(prefix);
    }
  }

  ADPA_RETURN_IF_ERROR(ValidateSpec(spec));
  return spec;
}

Result<ChaosSchedule> BuildChaosSchedule(const ChaosSpec& spec) {
  ADPA_RETURN_IF_ERROR(ValidateSpec(spec));
  ChaosSchedule schedule;
  schedule.seed = spec.seed;
  schedule.intensity = spec.intensity;
  for (const auto& entry : Catalog()) {
    const std::string& name = entry.first;
    if (!MatchesPrefixes(name, spec.prefixes)) continue;
    ++schedule.eligible;

    // Per-point stream keyed by (seed, name): the point's config never
    // depends on catalog order or on which other points are eligible.
    uint64_t state = spec.seed ^ Fnv1a64(name);
    (void)SplitMix64Next(&state);  // decorrelate weak seed^hash mixes

    if (UnitDraw(&state) >= spec.intensity) continue;

    // `.short` points are interpreted by their seam as "cap this IO at one
    // byte" whenever the hook fires — the only sensible action is error.
    const bool is_short_point =
        name.size() >= 6 && name.compare(name.size() - 6, 6, ".short") == 0;
    const double action_draw = UnitDraw(&state);
    std::string action;
    if (!is_short_point && action_draw < 0.25) {
      const uint64_t delay_ms = 1 + SplitMix64Next(&state) % 9;
      action = "delay(" + std::to_string(delay_ms) + ")";
    } else {
      (void)SplitMix64Next(&state);  // keep the draw count action-invariant
      action = "error(chaos)";
    }

    // Probabilistic trigger: denser as intensity rises. At intensity 1 a
    // point fires every 2nd-5th hit; at 0.1 roughly every 2nd-55th. The
    // floor is 2, not 1, so no point fires on literally every hit — a
    // net.accept that always fails would make soak liveness a coin toss
    // instead of a certainty.
    const uint64_t span =
        4 + static_cast<uint64_t>(60.0 * (1.0 - spec.intensity));
    const uint64_t one_in = 2 + SplitMix64Next(&state) % span;
    schedule.points.push_back(
        {name, action + "@1in" + std::to_string(one_in)});
  }
  return schedule;
}

std::string ChaosSchedule::Describe() const {
  char header[160];
  std::snprintf(header, sizeof(header),
                "chaos: seed=%llu intensity=%g armed %zu/%llu eligible "
                "points\n",
                static_cast<unsigned long long>(seed), intensity,
                points.size(), static_cast<unsigned long long>(eligible));
  std::string out = header;
  for (const auto& point : points) {
    out += "chaos: " + point.name + "=" + point.spec + "\n";
  }
  return out;
}

#if ADPA_FAILPOINTS_ENABLED

Result<ChaosSchedule> ChaosConfigure(const ChaosSpec& spec) {
  auto schedule = BuildChaosSchedule(spec);
  if (!schedule.ok()) return schedule;
  for (const auto& point : schedule->points) {
    // Generated specs use the standard grammar over catalog names, so this
    // can only fail if the generator and parser drift — surface it loudly.
    ADPA_RETURN_IF_ERROR(Configure(point.name, point.spec));
  }
  return schedule;
}

#endif  // ADPA_FAILPOINTS_ENABLED

}  // namespace adpa::failpoint
