#include "src/core/strings.h"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "src/core/logging.h"

namespace adpa {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatMeanStd(double mean, double stddev, int precision) {
  return FormatDouble(mean, precision) + "±" + FormatDouble(stddev, precision);
}

std::vector<std::string> SplitString(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == delimiter) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delimiter;
    out += parts[i];
  }
  return out;
}

namespace {

// Display width in terminal columns. The tables use "±" (2 bytes in UTF-8,
// 1 column), so byte length over-pads; count UTF-8 code points instead.
int DisplayWidth(const std::string& text) {
  int width = 0;
  for (unsigned char c : text) {
    if ((c & 0xC0) != 0x80) ++width;  // count non-continuation bytes
  }
  return width;
}

}  // namespace

std::string PadLeft(const std::string& text, int width) {
  const int deficit = width - DisplayWidth(text);
  return deficit > 0 ? std::string(deficit, ' ') + text : text;
}

std::string PadRight(const std::string& text, int width) {
  const int deficit = width - DisplayWidth(text);
  return deficit > 0 ? text + std::string(deficit, ' ') : text;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ADPA_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<int> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = DisplayWidth(headers_[c]);
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      // First column (names) left-aligned, numeric columns right-aligned.
      out << (c == 0 ? PadRight(row[c], widths[c]) : PadLeft(row[c], widths[c]));
      out << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

// TablePrinter is the one sanctioned stdout surface in the library: the
// bench/example binaries print result tables through it.
void TablePrinter::Print() const {
  std::cout << ToString() << std::flush;  // lint:allow(no-direct-io)
}

}  // namespace adpa
