#pragma once
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/failpoint.h"
#include "src/core/status.h"

/// Seeded chaos scheduling over the failpoint catalog (DESIGN.md §15).
///
/// A chaos spec names a pseudo-random *schedule*, not a fault: from one
/// seed, a splitmix64 stream decides which catalog points arm, with what
/// action, and on what probabilistic trigger. The whole schedule is a pure
/// function of the spec — running twice with the same ADPA_CHAOS value arms
/// byte-identical failpoint configs — so any failure a soak run finds
/// replays exactly from the seed alone.
///
/// Spec grammar (the ADPA_CHAOS env var uses the same string):
///
///   <seed>:<intensity>[:<prefix>[,<prefix>]*]
///
///   seed       decimal uint64, selects the schedule
///   intensity  decimal in (0, 1]: each eligible point arms with this
///              probability, and triggers get denser as it rises
///   prefix     restricts eligibility to catalog names with this prefix
///              (e.g. `net.` keeps chaos off the startup/load path);
///              a prefix matching no catalog name is rejected as a typo
///
/// Examples:  ADPA_CHAOS=7:0.35:net.      ADPA_CHAOS=42:1:dataset.load
///
/// Derivation details that make replay robust: each point draws from its
/// own splitmix64 stream keyed by seed ^ fnv1a(name), so a point's armed
/// config depends only on (seed, name) — narrowing the prefix filter, or
/// adding new points to the catalog, never shifts the schedule of the
/// points that remain. Armed actions are only `error` and small `delay`;
/// chaos never arms `crash`, because the soak harness certifies
/// fault-*tolerance* (the server must survive every schedule) while
/// crash-recovery is crash_harness.sh territory.
///
/// Parsing and schedule construction are always compiled (and fuzzed, see
/// tests/fuzz/fuzz_chaos.cc); actually arming the registry requires
/// -DADPA_FAILPOINTS=ON like every other failpoint feature, and a
/// malformed ADPA_CHAOS value aborts with _exit(41) exactly like a
/// malformed ADPA_FAILPOINTS (a soak run with no faults armed would
/// report vacuous green).

namespace adpa::failpoint {

/// Parsed form of `<seed>:<intensity>[:<prefix>,...]`.
struct ChaosSpec {
  uint64_t seed = 0;
  double intensity = 0.0;             // validated to lie in (0, 1]
  std::vector<std::string> prefixes;  // empty = the whole catalog
};

/// Parses and validates a chaos spec string (grammar above). Prefixes are
/// checked against the catalog so a typo cannot silently arm nothing.
Result<ChaosSpec> ParseChaosSpec(const std::string& text);

/// The realized schedule: which points armed and with what failpoint spec
/// (standard `action@trigger` grammar, feedable to failpoint::Configure).
struct ChaosSchedule {
  struct ArmedPoint {
    std::string name;  // catalog name, e.g. "net.read"
    std::string spec;  // e.g. "error(chaos)@1in23" or "delay(4)@1in11"
  };
  uint64_t seed = 0;
  double intensity = 0.0;
  uint64_t eligible = 0;  // catalog points that matched the prefix filter
  std::vector<ArmedPoint> points;

  /// Multi-line human/grep-able form, one `chaos: ...` line per armed
  /// point plus a header; tools/soak.sh diffs this across runs to prove
  /// replay determinism.
  std::string Describe() const;
};

/// Deterministically expands a spec into a schedule. Pure: no clock, no
/// global state, same spec -> identical schedule on every machine.
Result<ChaosSchedule> BuildChaosSchedule(const ChaosSpec& spec);

#if ADPA_FAILPOINTS_ENABLED

/// Builds the schedule and arms every point in the failpoint registry.
/// Returns the realized schedule so the caller can log it.
Result<ChaosSchedule> ChaosConfigure(const ChaosSpec& spec);

#else  // !ADPA_FAILPOINTS_ENABLED

inline Result<ChaosSchedule> ChaosConfigure(const ChaosSpec&) {
  return Status::FailedPrecondition(
      "failpoints are compiled out; build with -DADPA_FAILPOINTS=ON");
}

#endif  // ADPA_FAILPOINTS_ENABLED

}  // namespace adpa::failpoint
