#include "src/core/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/logging.h"
#include "src/core/mutex.h"
#include "src/core/thread_annotations.h"

namespace adpa {
namespace {

thread_local int tls_region_depth = 0;

/// RAII marker so nested ParallelFor calls detect they are already inside a
/// parallel region and run inline.
struct RegionGuard {
  RegionGuard() { ++tls_region_depth; }
  ~RegionGuard() { --tls_region_depth; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

/// One ParallelFor invocation: a fixed list of chunks claimed via an atomic
/// cursor by whichever threads (workers + the caller) reach it first. Which
/// thread runs which chunk is scheduling-dependent; the chunk list itself —
/// and therefore the work done per output element — is not.
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  // Written once before the job is published to the queue; immutable
  // while any worker can see it.
  // analyze:allow(guard): immutable after publication
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> remaining{0};
  Mutex done_mutex;
  CondVar done_cv;
  std::exception_ptr error ADPA_GUARDED_BY(done_mutex);  ///< first failure
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) : num_threads_(num_threads) {
    ADPA_CHECK_GE(num_threads, 1);
    workers_.reserve(num_threads - 1);
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&mutex_);
      stop_ = true;
    }
    wake_cv_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_threads() const { return num_threads_; }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    const int64_t total = end - begin;
    // Floor division keeps every chunk at least `grain` indices wide.
    const int64_t max_chunks =
        std::max<int64_t>(1, std::min<int64_t>(num_threads_, total / grain));
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->chunks.reserve(max_chunks);
    // Balanced static partition: the first `total % max_chunks` chunks take
    // one extra index, so chunk boundaries depend only on (range, grain,
    // num_threads) — never on runtime timing.
    const int64_t base = total / max_chunks;
    const int64_t extra = total % max_chunks;
    int64_t at = begin;
    for (int64_t c = 0; c < max_chunks; ++c) {
      const int64_t size = base + (c < extra ? 1 : 0);
      job->chunks.emplace_back(at, at + size);
      at += size;
    }
    if (job->chunks.size() == 1) {
      // One chunk: the caller would execute it alone anyway. Skip the
      // queue/wake round-trip entirely — same bits, no pool overhead.
      fn(begin, end);
      return;
    }
    job->remaining.store(static_cast<int>(job->chunks.size()),
                         std::memory_order_relaxed);
    {
      MutexLock lock(&mutex_);
      jobs_.push_back(job);
    }
    // The caller takes one chunk itself, so only `chunks - 1` workers can
    // find work. Waking the whole pool for a 2-3 chunk job is a wake-storm
    // that measurably drags the serving path (sub-millisecond batch ops) at
    // high thread counts; wake exactly as many workers as can help.
    const size_t spare_chunks = job->chunks.size() - 1;
    if (spare_chunks >= workers_.size()) {
      wake_cv_.NotifyAll();
    } else {
      for (size_t i = 0; i < spare_chunks; ++i) wake_cv_.NotifyOne();
    }
    // The caller participates instead of blocking immediately.
    ExecuteChunks(*job);
    std::exception_ptr error;
    {
      MutexLock lock(&job->done_mutex);
      while (job->remaining.load(std::memory_order_acquire) != 0) {
        // analyze:allow(unchecked-status): CondVar::Wait is void, name-collides with Ticket::Wait
        job->done_cv.Wait(&job->done_mutex);
      }
      error = job->error;
    }
    {
      MutexLock lock(&mutex_);
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->get() == job.get()) {
          jobs_.erase(it);
          break;
        }
      }
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(&mutex_);
        // analyze:allow(unchecked-status): CondVar::Wait is void, name-collides with Ticket::Wait
        while (!stop_ && jobs_.empty()) wake_cv_.Wait(&mutex_);
        if (stop_) return;
        job = jobs_.front();
        if (job->next_chunk.load(std::memory_order_relaxed) >=
            job->chunks.size()) {
          // Fully claimed; drop it so the queue drains even if the caller
          // is still waiting on stragglers.
          jobs_.pop_front();
          continue;
        }
      }
      ExecuteChunks(*job);
    }
  }

  static void ExecuteChunks(Job& job) {
    for (;;) {
      const size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks.size()) return;
      {
        RegionGuard guard;
        try {
          (*job.fn)(job.chunks[c].first, job.chunks[c].second);
        } catch (...) {
          MutexLock lock(&job.done_mutex);
          if (!job.error) job.error = std::current_exception();
        }
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        MutexLock lock(&job.done_mutex);
        job.done_cv.NotifyAll();
      }
    }
  }

  const int num_threads_;
  // Touched only by the constructor and destructor, never while workers
  // run.
  // analyze:allow(guard): ctor/dtor only
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar wake_cv_;
  std::deque<std::shared_ptr<Job>> jobs_ ADPA_GUARDED_BY(mutex_);
  bool stop_ ADPA_GUARDED_BY(mutex_) = false;
};

/// Process-wide pool configuration. Bundling the globals behind one guarded
/// struct (instead of a bare mutex + file-scope variables) lets the
/// thread-safety analysis prove every access to them holds `mu`.
struct PoolState {
  Mutex mu;
  int configured_threads ADPA_GUARDED_BY(mu) = 0;  ///< 0 = auto-detect
  ThreadPool* pool ADPA_GUARDED_BY(mu) = nullptr;  ///< leaked at exit
};

PoolState& State() {
  // One-time lazy init, leaked at exit like the pool itself.
  static PoolState* state = new PoolState;  // analyze:allow(alloc): one-time lazy init
  return *state;
}

ThreadPool& GetPool() {
  PoolState& state = State();
  MutexLock lock(&state.mu);
  if (state.pool == nullptr) {
    const int n = state.configured_threads > 0 ? state.configured_threads
                                               : DefaultNumThreads();
    state.pool = new ThreadPool(n);
  }
  return *state.pool;
}

}  // namespace

int DefaultNumThreads() {
  if (const char* env = std::getenv("ADPA_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int GetNumThreads() {
  PoolState& state = State();
  MutexLock lock(&state.mu);
  if (state.pool != nullptr) return state.pool->num_threads();
  return state.configured_threads > 0 ? state.configured_threads
                                      : DefaultNumThreads();
}

void SetNumThreads(int num_threads) {
  ADPA_CHECK(!InParallelRegion())
      << "SetNumThreads called from inside a ParallelFor body";
  PoolState& state = State();
  MutexLock lock(&state.mu);
  state.configured_threads = num_threads > 0 ? num_threads : 0;
  delete state.pool;  // joins workers; rebuilt lazily at the next ParallelFor
  state.pool = nullptr;
}

bool InParallelRegion() { return tls_region_depth > 0; }

SerialSection::SerialSection() { ++tls_region_depth; }
SerialSection::~SerialSection() { --tls_region_depth; }

namespace internal {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  GetPool().Run(begin, end, grain, fn);
}

}  // namespace internal

}  // namespace adpa
