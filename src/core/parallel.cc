#include "src/core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/logging.h"

namespace adpa {
namespace {

thread_local int tls_region_depth = 0;

/// RAII marker so nested ParallelFor calls detect they are already inside a
/// parallel region and run inline.
struct RegionGuard {
  RegionGuard() { ++tls_region_depth; }
  ~RegionGuard() { --tls_region_depth; }
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

/// One ParallelFor invocation: a fixed list of chunks claimed via an atomic
/// cursor by whichever threads (workers + the caller) reach it first. Which
/// thread runs which chunk is scheduling-dependent; the chunk list itself —
/// and therefore the work done per output element — is not.
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  std::atomic<size_t> next_chunk{0};
  std::atomic<int> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first failure; guarded by done_mutex
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) : num_threads_(num_threads) {
    ADPA_CHECK_GE(num_threads, 1);
    workers_.reserve(num_threads - 1);
    for (int i = 0; i + 1 < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  int num_threads() const { return num_threads_; }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    const int64_t total = end - begin;
    // Floor division keeps every chunk at least `grain` indices wide.
    const int64_t max_chunks =
        std::max<int64_t>(1, std::min<int64_t>(num_threads_, total / grain));
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->chunks.reserve(max_chunks);
    // Balanced static partition: the first `total % max_chunks` chunks take
    // one extra index, so chunk boundaries depend only on (range, grain,
    // num_threads) — never on runtime timing.
    const int64_t base = total / max_chunks;
    const int64_t extra = total % max_chunks;
    int64_t at = begin;
    for (int64_t c = 0; c < max_chunks; ++c) {
      const int64_t size = base + (c < extra ? 1 : 0);
      job->chunks.emplace_back(at, at + size);
      at += size;
    }
    if (job->chunks.size() == 1) {
      // One chunk: the caller would execute it alone anyway. Skip the
      // queue/wake round-trip entirely — same bits, no pool overhead.
      fn(begin, end);
      return;
    }
    job->remaining.store(static_cast<int>(job->chunks.size()),
                         std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push_back(job);
    }
    // The caller takes one chunk itself, so only `chunks - 1` workers can
    // find work. Waking the whole pool for a 2-3 chunk job is a wake-storm
    // that measurably drags the serving path (sub-millisecond batch ops) at
    // high thread counts; wake exactly as many workers as can help.
    const size_t spare_chunks = job->chunks.size() - 1;
    if (spare_chunks >= workers_.size()) {
      wake_cv_.notify_all();
    } else {
      for (size_t i = 0; i < spare_chunks; ++i) wake_cv_.notify_one();
    }
    // The caller participates instead of blocking immediately.
    ExecuteChunks(*job);
    {
      std::unique_lock<std::mutex> lock(job->done_mutex);
      job->done_cv.wait(lock, [&job] {
        return job->remaining.load(std::memory_order_acquire) == 0;
      });
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
        if (it->get() == job.get()) {
          jobs_.erase(it);
          break;
        }
      }
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
        if (stop_) return;
        job = jobs_.front();
        if (job->next_chunk.load(std::memory_order_relaxed) >=
            job->chunks.size()) {
          // Fully claimed; drop it so the queue drains even if the caller
          // is still waiting on stragglers.
          jobs_.pop_front();
          continue;
        }
      }
      ExecuteChunks(*job);
    }
  }

  static void ExecuteChunks(Job& job) {
    for (;;) {
      const size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks.size()) return;
      {
        RegionGuard guard;
        try {
          (*job.fn)(job.chunks[c].first, job.chunks[c].second);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.done_mutex);
          if (!job.error) job.error = std::current_exception();
        }
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(job.done_mutex);
        job.done_cv.notify_all();
      }
    }
  }

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool stop_ = false;
};

std::mutex& PoolMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

// Guarded by PoolMutex(). 0 means "auto-detect".
int configured_threads = 0;
ThreadPool* pool = nullptr;  // intentionally leaked at exit

ThreadPool& GetPool() {
  std::lock_guard<std::mutex> lock(PoolMutex());
  if (pool == nullptr) {
    const int n =
        configured_threads > 0 ? configured_threads : DefaultNumThreads();
    pool = new ThreadPool(n);
  }
  return *pool;
}

}  // namespace

int DefaultNumThreads() {
  if (const char* env = std::getenv("ADPA_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int GetNumThreads() {
  std::lock_guard<std::mutex> lock(PoolMutex());
  if (pool != nullptr) return pool->num_threads();
  return configured_threads > 0 ? configured_threads : DefaultNumThreads();
}

void SetNumThreads(int num_threads) {
  ADPA_CHECK(!InParallelRegion())
      << "SetNumThreads called from inside a ParallelFor body";
  std::lock_guard<std::mutex> lock(PoolMutex());
  configured_threads = num_threads > 0 ? num_threads : 0;
  delete pool;  // joins workers; rebuilt lazily at the next ParallelFor
  pool = nullptr;
}

bool InParallelRegion() { return tls_region_depth > 0; }

SerialSection::SerialSection() { ++tls_region_depth; }
SerialSection::~SerialSection() { --tls_region_depth; }

namespace internal {

void ParallelForImpl(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& fn) {
  GetPool().Run(begin, end, grain, fn);
}

}  // namespace internal

}  // namespace adpa
