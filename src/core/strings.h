#pragma once
#include <string>
#include <vector>

namespace adpa {

/// Formats `value` with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 4);

/// "mean±std" with the library's conventional 1-decimal accuracy format,
/// matching the paper's tables (values in percent).
std::string FormatMeanStd(double mean, double stddev, int precision = 1);

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> SplitString(const std::string& text, char delimiter);

/// Joins `parts` with `delimiter`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delimiter);

/// Left-pads or right-pads `text` with spaces to `width` characters.
std::string PadLeft(const std::string& text, int width);
std::string PadRight(const std::string& text, int width);

/// Minimal fixed-width ASCII table printer used by the bench binaries so
/// every experiment emits the same row/column layout the paper reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, rule, rows) to a string.
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adpa

