#include "src/core/hash.h"

namespace adpa {
namespace {

/// CRC32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at first use (byte-at-a-time variant; checkpoint payloads
/// are a few MB at most, so table-per-byte throughput is ample).
const uint32_t* Crc32Table() {
  static const auto* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

void Crc32Accumulator::Update(const void* data, size_t size) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = state_;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  state_ = crc;
}

uint32_t Crc32(const void* data, size_t size) {
  Crc32Accumulator acc;
  acc.Update(data, size);
  return acc.Digest();
}

void Fnv1aHasher::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;  // FNV prime
  }
  state_ = h;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  Fnv1aHasher hasher;
  hasher.Update(data, size);
  return hasher.Digest();
}

}  // namespace adpa
