#pragma once
// The annotated locking primitives are the one place raw <mutex> /
// <condition_variable> types may appear in src/ (enforced by the
// `mutex-annotations` lint rule): everything else locks through these
// wrappers so Clang Thread Safety Analysis sees every acquire/release.
// lint:allow(mutex-annotations)
#include <condition_variable>  // lint:allow(mutex-annotations)
#include <mutex>               // lint:allow(mutex-annotations)

#include "src/core/thread_annotations.h"

namespace adpa {

class CondVar;

/// Annotated exclusive mutex (DESIGN.md §13). A thin wrapper over
/// std::mutex that carries the Clang Thread Safety Analysis capability
/// attributes: members protected by a Mutex are declared
/// `ADPA_GUARDED_BY(mu_)` and the compiler proves every access holds the
/// lock. Compiles to exactly a std::mutex on non-Clang builds.
///
/// Prefer MutexLock for scoped acquisition; Lock()/Unlock() exist for the
/// rare non-scoped protocol.
class ADPA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ADPA_ACQUIRE() { mu_.lock(); }          // lint:allow(mutex-annotations)
  void Unlock() ADPA_RELEASE() { mu_.unlock(); }      // lint:allow(mutex-annotations)
  // Discarding TryLock's result would leak the lock on success; [[nodiscard]]
  // is spelled directly (not ADPA_NODISCARD) to keep mutex.h status.h-free.
  [[nodiscard]] bool TryLock() ADPA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint:allow(mutex-annotations)
};

/// RAII scoped lock over an adpa::Mutex. Construction acquires, destruction
/// releases; the scoped-capability attribute lets the analysis track the
/// held region precisely (including early `return`/`continue` paths).
class ADPA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ADPA_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ADPA_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with adpa::Mutex.
///
/// Wait() deliberately has no predicate overload: Clang's analysis cannot
/// see a lock held across a lambda boundary, so predicates passed as
/// closures would force ADPA_NO_THREAD_SAFETY_ANALYSIS waivers at every
/// wait site. Instead every wait is written as an explicit predicate loop —
///
///     MutexLock lock(&mu_);
///     while (!ready_) cv_.Wait(&mu_);
///
/// — which keeps the guarded reads visible to the analysis and makes the
/// predicate impossible to forget: tools/analyze.py's blocking-under-lock
/// check rejects any Wait() call that is not the body of a while/for loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` (which the caller must hold), blocks until
  /// notified, and reacquires `*mu` before returning. Spurious wakeups are
  /// expected: always call inside a predicate loop (see class comment).
  void Wait(Mutex* mu) ADPA_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release
    // ownership back to the caller's MutexLock without unlocking.
    // lint:allow(mutex-annotations)
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint:allow(mutex-annotations)
};

}  // namespace adpa
