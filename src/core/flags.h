#pragma once
#include <cstdint>
#include <map>
#include <string>

namespace adpa {

/// Minimal `--key=value` / `--key value` command-line parser shared by the
/// bench and example binaries. Unknown flags are rejected so typos in sweep
/// scripts fail loudly instead of silently running the default config.
class Flags {
 public:
  /// Parses argv. Returns false and prints a diagnostic on malformed input.
  bool Parse(int argc, char** argv);

  /// Typed getters with defaults. Malformed numeric values fall back to the
  /// default after printing a warning.
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  bool Has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace adpa

